"""Setuptools shim.

The offline environment lacks the ``wheel`` package that PEP 517 editable
installs require, so ``pip install -e . --no-build-isolation`` falls back
to this legacy path (``python setup.py develop`` works as well).
"""

from setuptools import setup

setup()
