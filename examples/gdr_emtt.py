#!/usr/bin/env python
"""GPUDirect RDMA three ways: eMTT vs ATS/ATC vs RC-routed.

Walks the three GDR datapaths of the paper on one simulated server:

1. Stellar's eMTT — translated TLPs ride PCIe switch P2P (Figure 7);
2. the CX6-style ATS/ATC path — fine until the ATC thrashes (Figure 8);
3. the HyV/MasQ path — reflected through the root complex (Figure 14).

Run:  python examples/gdr_emtt.py
"""

from repro.analysis import Table, format_bytes_axis
from repro.workloads import AtcMissExperiment, emtt_sweep, gdr_datapath_curve


def sweep_demo():
    sizes = [1 << 20, 2 << 20, 4 << 20, 16 << 20, 32 << 20, 64 << 20]
    atc_rows = AtcMissExperiment().sweep(sizes=sizes)
    emtt_rows = emtt_sweep(sizes=sizes)
    table = Table("GDR bandwidth vs message size (16 connections, 4 KiB pages)",
                  ["message", "ATS/ATC Gbps", "ATC hit rate", "eMTT Gbps"])
    for atc, emtt in zip(atc_rows, emtt_rows):
        table.add_row(format_bytes_axis(atc.message_bytes), atc.gbps,
                      atc.atc_hit_rate, emtt.gbps)
    table.print()
    print("\nThe two knees are capacity misses: the ATC covers "
          "16 x 2MB of 4 KiB pages, the IOTLB 16 x 32MB.")


def datapath_demo():
    table = Table("Peak GDR throughput per datapath (Figure 14)",
                  ["datapath", "peak Gbps", "why"])
    for mode, why in (
        ("vstellar", "eMTT: AT=translated, switch P2P"),
        ("bare_metal", "same path, no virtualization"),
        ("hyv_masq", "untranslated, reflected via the root complex"),
    ):
        peak = max(r.gbps for r in gdr_datapath_curve(mode))
        table.add_row(mode, peak, why)
    table.print()


def main():
    sweep_demo()
    print()
    datapath_demo()


if __name__ == "__main__":
    main()
