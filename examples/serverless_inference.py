#!/usr/bin/env python
"""Serverless inference burst: 48 GDR-capable pods in under a minute.

The paper's motivating cloud scenario: an inference platform must spin up
dense fleets of secure containers on demand ("over 100 per server"), each
needing GDR.  The legacy stack fails twice — VF counts are static
(problem 1) and the PCIe switch LUT caps GDR enablement (problem 3) —
while Stellar's vStellar devices scale without touching either limit.

Run:  python examples/serverless_inference.py
"""

from repro.analysis import Table
from repro.core import StellarHost
from repro.legacy import LegacyHost
from repro.pcie import LutCapacityError
from repro.sim.units import GiB, MiB
from repro.virt import SriovError

PODS = 48


def stellar_burst():
    host = StellarHost.build(host_memory_bytes=256 * GiB,
                             gpu_hbm_bytes=8 * GiB)
    total_seconds = 0.0
    gdr_capable = 0
    for index in range(PODS):
        record = host.launch_container(
            "inference-%d" % index, 2 * GiB, rnic_index=index % 4,
        )
        total_seconds += record.total_seconds
        # Every pod registers a GPU buffer for GDR-served weights.
        vdev = record.container.vstellar_device
        gpu = host.rail_gpus(index % 4)[index % 2]
        vdev.reg_mr_gpu(gpu, offset=(index // 4) * 32 * MiB, length=32 * MiB)
        gdr_capable += 1
    lut_used = sum(
        switch.lut_capacity - switch.lut_free for switch in host.fabric.switches
    )
    return {
        "pods": PODS,
        "gdr_capable": gdr_capable,
        "serial_spinup_seconds": total_seconds,
        "lut_entries_consumed": lut_used,
    }


def legacy_burst():
    host = LegacyHost.build(max_vfs_per_rnic=16, lut_capacity=8)
    results = {"pods": 0, "gdr_capable": 0, "failures": []}
    # Problem 1: the VF count must be chosen up front; growing it later
    # would require destroying every tenant.
    for manager in host.sriov_managers:
        manager.set_num_vfs(12)
    try:
        host.sriov_managers[0].set_num_vfs(16)
    except SriovError as exc:
        results["failures"].append("resize: %s" % exc)
    for index in range(PODS):
        manager = host.sriov_managers[index % 4]
        free = [vf for vf in manager.vfs if vf.assigned_to is None]
        if not free:
            results["failures"].append(
                "pod %d: no VF available (static VF pool)" % index
            )
            break
        vf = free[0]
        vf.assigned_to = "inference-%d" % index
        results["pods"] += 1
        try:
            manager.enable_gdr(vf)
            results["gdr_capable"] += 1
        except LutCapacityError:
            if not any("LUT" in f for f in results["failures"]):
                results["failures"].append(
                    "pod %d: switch LUT full; GDR unavailable" % index
                )
    return results


def main():
    stellar = stellar_burst()
    legacy = legacy_burst()

    table = Table("Serverless inference burst: %d pods requested" % PODS,
                  ["metric", "Stellar", "legacy (SR-IOV)"])
    table.add_row("pods launched", stellar["pods"], legacy["pods"])
    table.add_row("GDR-capable pods", stellar["gdr_capable"],
                  legacy["gdr_capable"])
    table.add_row("extra LUT entries", stellar["lut_entries_consumed"] - 4,
                  legacy["gdr_capable"])
    table.add_row("mean spin-up (s)",
                  stellar["serial_spinup_seconds"] / stellar["pods"], "minutes"
                  " (full pin)")
    table.print()

    print("\nLegacy failure log:")
    for failure in legacy["failures"]:
        print("  -", failure)
    assert stellar["gdr_capable"] == PODS
    assert legacy["gdr_capable"] < PODS


if __name__ == "__main__":
    main()
