#!/usr/bin/env python
"""End-to-end LLM training on the simulated fabric.

Places a 256-GPU Llama-33B job on the dual-plane network under both
cluster-scheduling strategies (reranked vs random) and both transports
(CX7-style static QPs vs Stellar's 128-path spray), then reports
iteration-time breakdowns — the Figure 15/16 workflow at example scale.

Run:  python examples/llm_training.py
"""

from repro.analysis import Table
from repro.net import DualPlaneTopology
from repro.training import (
    Framework,
    LLAMA_33B,
    ParallelStrategy,
    Placement,
    TrainingSimulation,
)


def main():
    topology = DualPlaneTopology(segments=2, servers_per_segment=16, rails=4,
                                 aggs_per_plane=60)
    sim = TrainingSimulation(topology=topology, seed=42)
    strategy = ParallelStrategy(tp=2, pp=2, dp=64, grad_accum=8,
                                global_batch=512)
    print("Job: Llama-33B on %d GPUs, strategy TP,PP,DP,EP = %s\n"
          % (strategy.gpus, strategy.label()))

    table = Table("Iteration breakdown by placement and transport",
                  ["placement", "transport", "iter time s", "compute s",
                   "DP comm s", "comm share %", "speed iter/s"])
    speeds = {}
    for placement in (Placement.RERANKED, Placement.RANDOM):
        for transport in ("cx7", "stellar"):
            breakdown = sim.train(
                LLAMA_33B, strategy, framework=Framework.MEGATRON,
                placement=placement, transport=transport,
            )
            speeds[(placement, transport)] = breakdown.speed
            table.add_row(placement.value, transport, breakdown.total,
                          breakdown.compute, breakdown.dp,
                          100 * breakdown.comm_ratio, breakdown.speed)
    table.print()

    for placement in (Placement.RERANKED, Placement.RANDOM):
        gain = (speeds[(placement, "stellar")]
                / speeds[(placement, "cx7")] - 1)
        print("%s placement: Stellar is %.2f%% faster than the CX7 SOTA"
              % (placement.value, 100 * gain))

    # The Figure 15 angle: secure vs regular containers, same transport.
    secure = sim.train(LLAMA_33B, strategy, placement=Placement.RANDOM,
                       transport="stellar", secure_container=True)
    regular = sim.train(LLAMA_33B, strategy, placement=Placement.RANDOM,
                        transport="stellar", secure_container=False)
    print("\nSecure-container overhead: %.2f%% (vStellar's data path is "
          "direct-mapped)" % (100 * (regular.speed / secure.speed - 1)))


if __name__ == "__main__":
    main()
