#!/usr/bin/env python
"""Reproduce the six production problems of the pre-Stellar stack.

Each scenario from Section 3.1 of the paper is staged on the simulated
legacy framework (SR-IOV + VFIO + vSwitch + VxLAN controller) and its
evidence printed; the script then shows how the Stellar design sidesteps
each one.

Run:  python examples/legacy_pitfalls.py
"""

from repro.analysis import Table
from repro.core import StellarHost
from repro.legacy import reproduce_all
from repro.sim.units import GiB


def main():
    print("Staging the six Section 3.1 problems on the legacy stack...\n")
    table = Table("Legacy framework: operational problems",
                  ["problem", "triggered", "evidence"])
    for evidence in reproduce_all():
        table.add_row(evidence.problem, evidence.triggered, evidence.detail)
    table.print()

    print("\nAnd the Stellar counterpoints:")
    host = StellarHost.build(host_memory_bytes=64 * GiB, gpu_hbm_bytes=4 * GiB)
    # (1) dynamic virtual devices — grow and shrink with no reset.
    a = host.launch_container("a", 1 * GiB)
    b = host.launch_container("b", 1 * GiB)
    host.rnics[0].destroy_vdevice(a.container.vstellar_device)
    c = host.launch_container("c", 1 * GiB)
    print("  (1) created 3 vStellar devices and destroyed 1 with zero resets")
    # (2) no upfront pinning.
    print("  (2) container boot took %.1fs (no full-memory pin)"
          % c.boot_seconds)
    # (3) no LUT pressure: all devices share the parent BDF.
    switch = host.fabric.switch_of(host.rnics[0].function.bdf)
    print("  (3) switch LUT usage after all launches: %d/%d entries"
          % (switch.lut_capacity - switch.lut_free, switch.lut_capacity))
    # (5) RDMA and TCP ride separate virtio devices.
    kinds = sorted(d.device_type.value
                   for d in c.container.virtio_devices)
    print("  (5) per-container devices: %s (no shared steering pipeline)"
          % ", ".join(kinds))
    # (6) is quantified in benchmarks/test_fig09_queue_depth.py.
    print("  (6) see the Figure 9/12 benchmarks for the spray counterpart")


if __name__ == "__main__":
    main()
