#!/usr/bin/env python
"""Container startup: the VFIO full-pin tax vs PVDMA on-demand pinning.

Boots GPU pods of increasing memory under both regimes (the Figure 6
experiment) and then drills into where PVDMA's cost actually goes — the
first DMA touching each 2 MiB block.

Run:  python examples/container_startup.py
"""

from repro.analysis import Table, format_bytes_axis
from repro.core import PvdmaEngine
from repro.sim.units import GB, GiB, MiB, format_time
from repro.virt import Hypervisor, MemoryMode, RunDContainer
from repro.workloads import measure_startup


def figure6_sweep():
    table = Table("GPU pod startup time (Figure 6)",
                  ["container memory", "full pin (VFIO)", "PVDMA", "speedup"])
    for row in measure_startup():
        table.add_row(
            format_bytes_axis(row.memory_bytes),
            format_time(row.full_pin_seconds),
            format_time(row.pvdma_seconds),
            "%.0fx" % row.speedup,
        )
    table.print()


def pvdma_anatomy():
    """Where do PVDMA's costs go once the pod is running?"""
    hv = Hypervisor()
    container = RunDContainer("anatomy", 64 * GiB, hv,
                              memory_mode=MemoryMode.PVDMA)
    container.boot()
    pvdma = PvdmaEngine(hv)

    table = Table("PVDMA on-demand pinning anatomy (64 GiB pod)",
                  ["operation", "cost", "map-cache"])
    first = pvdma.dma_prepare(container, 0x0, 256 * MiB)
    stats = pvdma.stats(container)
    table.add_row("first DMA over 256 MiB", format_time(first),
                  "%d misses" % stats.misses)
    second = pvdma.dma_prepare(container, 0x0, 256 * MiB)
    table.add_row("repeat DMA over same region", format_time(second),
                  "%d hits" % stats.hits)
    third = pvdma.dma_prepare(container, 1 * GB, 4096)
    table.add_row("one byte in a fresh block", format_time(third),
                  "%d blocks pinned" % len(pvdma.cached_blocks(container)))
    table.print()
    print("\nRDMA applications reuse their registered buffers, so the "
          "one-time block cost amortizes to zero (Section 5).")


def main():
    figure6_sweep()
    print()
    pvdma_anatomy()


if __name__ == "__main__":
    main()
