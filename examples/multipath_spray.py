#!/usr/bin/env python
"""Multi-path RDMA spraying demo: algorithms, fan-out, and failure.

Recreates the Section 7 exploration at laptop scale: a dual-plane
rail fabric, a handful of permutation flows, and three questions —
how well does each algorithm balance load, what does the path count
buy, and what happens when a link starts dropping packets?

Run:  python examples/multipath_spray.py
"""

from repro.analysis import Table
from repro.collectives import permutation_flows_packet
from repro.core import make_selector
from repro.net import (
    DualPlaneTopology,
    PacketNetSim,
    ServerAddress,
    StaticLoadModel,
    run_flows,
)
from repro.rnic.cc import WindowCC
from repro.sim.rng import RngStream
from repro.sim.units import GB, MB, usec


def load_balance_demo(topology):
    """Static view: how evenly does each algorithm land on the uplinks?"""
    table = Table("Uplink load imbalance (max-min over port bandwidth)",
                  ["algorithm", "paths", "imbalance %"])
    for algorithm, paths in (("single", 1), ("obs", 4), ("obs", 32),
                             ("obs", 128), ("rr", 128)):
        model = StaticLoadModel(topology, seed=3)
        for i in range(8):
            selector = make_selector(algorithm, paths,
                                     rng=RngStream(3, algorithm, i))
            model.add_flow(ServerAddress(0, i), ServerAddress(1, (i + 1) % 8),
                           0, selector, 5 * GB, connection_id=i)
        table.add_row(algorithm, paths, 100 * model.imbalance(0.1))
    table.print()


def packet_level_demo(topology):
    """Dynamic view: queue depth and goodput at packet granularity."""
    table = Table("Packet-level permutation (8 flows)",
                  ["algorithm", "paths", "peak queue KB", "goodput Gbps"])
    for algorithm, paths in (("single", 1), ("obs", 4), ("obs", 128)):
        sim = PacketNetSim(topology, seed=5, ecn_threshold=1 * MB)
        sim.start_queue_monitor(interval=100e-6)
        flows = permutation_flows_packet(
            sim, list(topology.servers()), rails=1,
            message_bytes=200 * MB, algorithm=algorithm, path_count=paths,
            mtu=256 * 1024,
            cc_factory=lambda: WindowCC(init_window=2 * 1024 * 1024,
                                        additive_bytes=64 * 1024,
                                        target_rtt=usec(150)),
            seed=5,
        )
        run_flows(sim, flows, timeout=0.004)
        _, peak = sim.monitored_queue_stats()
        goodput = sum(f.bytes_acked for f in flows) * 8 / 0.004 / len(flows)
        table.add_row(algorithm, paths, peak / 1e3, goodput / 1e9)
    table.print()


def failure_demo(topology):
    """One flow, one lossy link: spraying absorbs what pins cannot."""
    from repro.net import MessageFlow

    table = Table("3% random loss on one uplink (single flow)",
                  ["recovery", "paths", "goodput Gbps", "RTOs"])
    for label, algorithm, paths, recovery in (
        ("go-back-N (legacy)", "single", 1, "go_back_n"),
        ("selective re-spray", "obs", 128, "selective"),
    ):
        sim = PacketNetSim(topology, seed=9)
        flow = MessageFlow(
            sim, "f", ServerAddress(0, 0), ServerAddress(1, 0), 0,
            message_bytes=1000 * MB, algorithm=algorithm, path_count=paths,
            mtu=128 * 1024,
            cc=WindowCC(init_window=2 * 1024 * 1024,
                        additive_bytes=64 * 1024, target_rtt=usec(150)),
            recovery=recovery,
        )
        victim_path = flow.conn.selector._pinned if algorithm == "single" else 0
        route = topology.route(ServerAddress(0, 0), ServerAddress(1, 0), 0,
                               path_id=victim_path)
        sim.inject_loss(route[1], 0.03)
        run_flows(sim, [flow], timeout=0.006)
        table.add_row(label, paths, flow.bytes_acked * 8 / 0.006 / 1e9,
                      flow.rto_count)
    table.print()


def main():
    topology = DualPlaneTopology(segments=2, servers_per_segment=8, rails=1,
                                 planes=2, aggs_per_plane=16)
    print("Fabric: %r (path diversity %d)\n"
          % (topology, topology.path_diversity))
    load_balance_demo(topology)
    packet_level_demo(topology)
    failure_demo(topology)


if __name__ == "__main__":
    main()
