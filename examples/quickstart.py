#!/usr/bin/env python
"""Quickstart: a tour of the Stellar stack in ~60 lines of user code.

Builds a Stellar GPU server, launches two secure containers in seconds
(no SR-IOV reset, no full-memory pinning), registers memory through the
eMTT, and runs RDMA and GDR traffic between the tenants — then shows the
PVDMA map cache and the PCIe routing evidence.

Run:  python examples/quickstart.py
"""

from repro.analysis import Table
from repro.core import StellarHost
from repro.rnic import connect_qps
from repro.sim.units import GiB, MiB, format_time


def main():
    print("Building a Stellar AI server (4 RNICs, 8 GPUs, PVDMA)...")
    host = StellarHost.build(host_memory_bytes=128 * GiB, gpu_hbm_bytes=8 * GiB)

    # --- 1. launch two secure containers -------------------------------
    alice = host.launch_container("alice", memory_bytes=16 * GiB)
    bob = host.launch_container("bob", memory_bytes=16 * GiB, rnic_index=1)
    launch = Table("Container launch (seconds, simulated)",
                   ["tenant", "boot", "devices", "total"])
    for record in (alice, bob):
        launch.add_row(record.container.name, record.boot_seconds,
                       record.device_seconds, record.total_seconds)
    launch.print()

    # --- 2. register memory and connect queue pairs ---------------------
    dev_a = alice.container.vstellar_device
    dev_b = bob.container.vstellar_device
    buf_a = alice.container.alloc_buffer(8 * MiB)
    buf_b = bob.container.alloc_buffer(8 * MiB)
    # PVDMA pins the touched 2 MiB blocks on demand (stage 1-2 of Fig. 4).
    pin_cost = host.dma_prepare(alice.container, buf_a)
    pin_cost += host.dma_prepare(bob.container, buf_b)
    print("\nPVDMA on-demand pinning of 16 MiB of buffers cost %s"
          % format_time(pin_cost))

    mr_a = dev_a.reg_mr_host(buf_a)
    mr_b = dev_b.reg_mr_host(buf_b)
    qp_a = dev_a.create_qp(dev_a.default_pd)
    qp_b = dev_b.create_qp(dev_b.default_pd)
    connect_qps(qp_a, qp_b, nic_a=dev_a, nic_b=dev_b)

    # --- 3. RDMA write through the direct-mapped data path ---------------
    latency = dev_a.rdma_write(qp_a, "hello", mr_a, buf_a.start, 4 * MiB,
                               mr_b.rkey, buf_b.start)
    completion = qp_a.send_cq.poll()[0]
    print("RDMA write of 4 MiB: %s, status=%s, doorbell rings=%d"
          % (format_time(latency), completion.status.value,
             dev_a.doorbell_rings))

    # --- 4. GDR: write into a GPU via the eMTT (bypassing the RC) --------
    gpu = host.rail_gpus(0)[0]
    gdr_mr = dev_a.reg_mr_gpu(gpu, offset=0, length=4 * MiB)
    access, delivery = dev_a.dma_access(gdr_mr, gdr_mr.va_base, 4096,
                                        emit=True)
    print("\nGDR TLP: AT=%s, PCIe path: %s"
          % (access.at.name, " -> ".join(delivery.path)))
    assert not delivery.visited("RC"), "eMTT traffic must bypass the RC"

    # --- 5. map-cache statistics ----------------------------------------
    stats = host.pvdma.stats(alice.container)
    print("PVDMA map cache for alice: %d misses (pinned blocks), %d hits"
          % (stats.misses, stats.hits))
    print("\nQuickstart completed.")


if __name__ == "__main__":
    main()
