# Convenience targets for the Stellar reproduction.

PYTHON ?= python

.PHONY: install test lint simlint simlint-json simlint-sarif bench bench-smoke hybrid-smoke perf perf-smoke figures figures-smoke traces traces-smoke tour examples all clean

install:
	pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	pytest tests/

# Ruff when available (CI installs it); syntax-only fallback otherwise so
# the target stays usable in the dependency-frozen container.
lint:
	@if $(PYTHON) -m ruff --version >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check src tests benchmarks examples; \
	else \
		echo "ruff not installed; running syntax-only fallback (pip install ruff for the full lint)"; \
		$(PYTHON) -m compileall -q src tests benchmarks examples; \
	fi

# Determinism & layering linter (README "Static analysis: simlint").
# Pure-stdlib ast, so unlike ruff it needs no fallback and always runs,
# even in the dependency-frozen container.  Whole-program since v2: the
# per-file rules plus call-graph taint propagation (D-taskpure-deep,
# D-sim-pure) and the export audit (L-api-drift), behind an incremental
# cache (.simlint_cache.json) so warm runs re-parse nothing.
simlint:
	PYTHONPATH=src:$(PYTHONPATH) $(PYTHON) -m repro.lint

simlint-json:
	PYTHONPATH=src:$(PYTHONPATH) $(PYTHON) -m repro.lint --format=json

# CI uploads this as a workflow artifact; any SARIF 2.1.0 consumer
# (GitHub code scanning, IDE viewers) can ingest it.
simlint-sarif:
	PYTHONPATH=src:$(PYTHONPATH) $(PYTHON) -m repro.lint --format=sarif \
		--output simlint.sarif

bench:
	pytest benchmarks/ --benchmark-only -s

# Fast seeded subset for CI: the 16-host fleet churn scenario plus the
# Fig. 6 and Fig. 11 benchmarks with REPRO_BENCH_SMOKE trimming the
# Fig. 11 measurement window (assertions unchanged).  The table mirror
# goes to a scratch file so a partial run never truncates the full
# benchmark_tables.txt artifact.
bench-smoke:
	PYTHONPATH=src:$(PYTHONPATH) $(PYTHON) -m repro fleet
	REPRO_BENCH_SMOKE=1 REPRO_TABLES_FILE=/tmp/repro_bench_smoke_tables.txt \
		PYTHONPATH=src:$(PYTHONPATH) $(PYTHON) -m pytest \
		benchmarks/test_fig06_startup.py benchmarks/test_fig11_link_failure.py \
		--benchmark-only -s

# Hybrid-fidelity determinism cells (churn scenario priced by the
# fidelity controller): two seeds, repeat pairs, every pooled row diffed
# against a sequential re-run.  Promoted packet windows must reproduce
# digest-for-digest like fluid epochs do.
hybrid-smoke:
	PYTHONPATH=src:$(PYTHONPATH) $(PYTHON) -m repro run hybrid-smoke \
		--workers 2 --no-cache --check-sequential

# Tracked perf suite (repro.perf): full-size kernels, events/sec table,
# speedup column vs the newest same-mode entry in BENCH_perf.json.
# Append a run to the trajectory with:
#   make perf PERF_ARGS="--record --label my-change"
perf:
	PYTHONPATH=src:$(PYTHONPATH) $(PYTHON) -m repro.perf $(PERF_ARGS)

# CI-sized perf pass: trimmed kernels plus the >30% machine-normalized
# regression gate against the newest smoke-mode BENCH_perf.json entry.
perf-smoke:
	REPRO_BENCH_SMOKE=1 PYTHONPATH=src:$(PYTHONPATH) \
		$(PYTHON) -m repro.perf --check $(PERF_ARGS)

# Full figure sweeps through the parallel runner (repro.runner): every
# sweep point is a cached TaskSpec, so re-running after a code change
# only recomputes what the change touched (cache under .repro_cache/).
# Extra flags via RUN_ARGS, e.g. make figures RUN_ARGS="--refresh".
figures:
	PYTHONPATH=src:$(PYTHONPATH) $(PYTHON) -m repro run figures $(RUN_ARGS)

# CI-sized pooled subset: 2 workers, cache off, and every pooled row
# diffed byte-for-byte against a sequential re-run (the determinism
# invariant the runner must preserve).
figures-smoke:
	PYTHONPATH=src:$(PYTHONPATH) $(PYTHON) -m repro run figures-smoke \
		--workers 2 --no-cache --check-sequential

# Trace-driven workloads (repro.traces): replay every bundled trace
# twice through the pooled runner (repeat pairs diffed by the suite
# check) plus one record→replay round trip.
traces:
	PYTHONPATH=src:$(PYTHONPATH) $(PYTHON) -m repro run --suite traces \
		$(RUN_ARGS)

# CI-sized trace pass: shape/DAG-validate the bundled library, then
# replay the smallest bundled trace pooled-vs-sequential (same
# determinism invariant as figures-smoke).
traces-smoke:
	PYTHONPATH=src:$(PYTHONPATH) $(PYTHON) -m repro trace validate
	PYTHONPATH=src:$(PYTHONPATH) $(PYTHON) -m repro run --suite traces-smoke \
		--workers 2 --no-cache --check-sequential

tour:
	$(PYTHON) -m repro

examples:
	@for ex in examples/*.py; do echo "== $$ex =="; $(PYTHON) $$ex; done

all: test bench

clean:
	rm -rf build dist src/*.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
