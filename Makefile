# Convenience targets for the Stellar reproduction.

PYTHON ?= python

.PHONY: install test bench tour examples all clean

install:
	pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only -s

tour:
	$(PYTHON) -m repro

examples:
	@for ex in examples/*.py; do echo "== $$ex =="; $(PYTHON) $$ex; done

all: test bench

clean:
	rm -rf build dist src/*.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
