"""Cross-layer telemetry integration: registry wiring, probe, sampler, CLI."""

import json
import subprocess
import sys

import pytest

from repro.analysis import metrics_report, render_report
from repro.net import (
    DualPlaneTopology,
    MessageFlow,
    PacketNetSim,
    ServerAddress,
    run_flows,
)
from repro.obs import (
    MetricsRegistry,
    TimeSeriesSampler,
    Tracer,
    load_chrome_trace,
    metrics_document,
)
from repro.obs.probe import run_probe
from repro.sim.units import KiB, MiB


def spray_run(registry, tracer=None, flow_count=2):
    topology = DualPlaneTopology(segments=2, servers_per_segment=2, rails=1)
    sim = PacketNetSim(topology, seed=7, tracer=tracer)
    sim.register_metrics(registry)
    flows = [
        MessageFlow(
            sim, "f%d" % i, ServerAddress(0, 0), ServerAddress(1, 0), 0,
            message_bytes=256 * KiB, algorithm="obs", path_count=16,
            mtu=64 * KiB, connection_id=i,
        )
        for i in range(flow_count)
    ]
    results = run_flows(sim, flows, timeout=0.05)
    return sim, results


class TestNetworkWiring:
    def test_register_metrics_exposes_net_and_scheduler(self):
        registry = MetricsRegistry("t")
        sim, results = spray_run(registry)
        assert all(r.bytes_acked == 256 * KiB for r in results)
        snap = registry.snapshot()
        assert snap["net.sim.packets_delivered"] > 0
        assert snap["net.packet.latency_us.count"] > 0
        assert snap["scheduler.events_executed"] > 0
        assert any(name.startswith("net.port.") for name in snap)
        assert {"net", "scheduler"} <= set(registry.families())

    def test_ports_accessor_is_public(self):
        registry = MetricsRegistry("t")
        sim, _ = spray_run(registry)
        ports = sim.ports()
        assert ports, "expected at least one port"
        snap = ports[0].snapshot(now=sim.scheduler.now)
        assert {"bytes_tx", "packets_tx", "queue_depth"} <= set(snap)

    def test_flow_spans_traced(self):
        registry = MetricsRegistry("t")
        tracer = Tracer("t")
        sim, results = spray_run(registry, tracer=tracer)
        begins = [e for e in tracer.events if e.ph == "b" and e.name == "flow"]
        ends = [e for e in tracer.events if e.ph == "e" and e.name == "flow"]
        assert len(begins) == len(ends) == len(results)
        assert {e.id for e in begins} == {e.id for e in ends}


class TestSampler:
    def test_samples_on_cadence(self):
        registry = MetricsRegistry("t")
        topology = DualPlaneTopology(segments=2, servers_per_segment=2, rails=1)
        sim = PacketNetSim(topology, seed=7)
        sim.register_metrics(registry)
        sampler = TimeSeriesSampler(
            sim.scheduler, registry, interval=10e-6, prefixes=("scheduler.",),
        ).start()
        flow = MessageFlow(
            sim, "f0", ServerAddress(0, 0), ServerAddress(1, 0), 0,
            message_bytes=256 * KiB, algorithm="obs", path_count=16,
            mtu=64 * KiB, connection_id=0,
        )
        run_flows(sim, [flow], timeout=0.05)
        sampler.stop()
        assert len(sampler.samples) > 2
        times = [t for t, _ in sampler.samples]
        assert times == sorted(times)
        deltas = {round(b - a, 9) for a, b in zip(times, times[1:])}
        assert deltas == {10e-6}
        series = sampler.series("scheduler.events_executed")
        values = [v for _, v in series]
        assert values == sorted(values)  # monotone counter
        assert "scheduler.events_executed" in sampler.columns()

    def test_max_samples_stops(self):
        registry = MetricsRegistry("t")
        topology = DualPlaneTopology(segments=2, servers_per_segment=2, rails=1)
        sim = PacketNetSim(topology, seed=7)
        sim.register_metrics(registry)
        sampler = TimeSeriesSampler(
            sim.scheduler, registry, interval=1e-6, max_samples=3,
        ).start()
        sim.scheduler.run(until=1e-3)
        assert len(sampler.samples) == 3

    def test_dump_formats(self, tmp_path):
        registry = MetricsRegistry("t")
        registry.counter("a.count").inc(4)
        topology = DualPlaneTopology(segments=2, servers_per_segment=2, rails=1)
        sim = PacketNetSim(topology, seed=7)
        sampler = TimeSeriesSampler(sim.scheduler, registry, interval=1e-6,
                                    max_samples=2).start()
        sim.scheduler.run(until=1e-3)
        json_path = tmp_path / "ts.json"
        csv_path = tmp_path / "ts.csv"
        assert sampler.dump(json_path) == 2
        assert sampler.dump(csv_path) == 2
        document = json.loads(json_path.read_text())
        assert len(document["samples"]) == 2
        assert document["samples"][0]["a.count"] == 4
        lines = csv_path.read_text().strip().splitlines()
        assert lines[0].split(",")[:2] == ["t", "a.count"]
        assert len(lines) == 3

    def test_rejects_bad_interval(self):
        topology = DualPlaneTopology(segments=2, servers_per_segment=2, rails=1)
        sim = PacketNetSim(topology, seed=7)
        with pytest.raises(ValueError):
            TimeSeriesSampler(sim.scheduler, MetricsRegistry("t"), interval=0)


class TestProbe:
    @pytest.fixture(scope="class")
    def probe(self):
        return run_probe(registry=MetricsRegistry("probe-test"),
                         tracer=Tracer("probe-test"))

    def test_all_required_families_present(self, probe):
        families = set(probe.registry.families())
        assert {"rnic", "pcie", "net", "scheduler"} <= families
        assert {"pvdma", "mem"} <= families

    def test_flows_complete(self, probe):
        assert probe.flow_results
        assert all(r.bytes_acked == 1 * MiB for r in probe.flow_results)

    def test_trace_and_samples_collected(self, probe):
        assert len(probe.tracer) > 0
        assert len(probe.sampler.samples) > 0

    def test_reports_render(self, probe):
        for title, report in probe.reports():
            table = render_report(title, report)
            assert table.rows

    def test_metrics_report_helper(self, probe):
        report = metrics_report(probe.registry, prefix="rnic.")
        assert report
        assert all(name.startswith("rnic.") for name in report)

    def test_seeded_probe_is_deterministic(self, probe):
        """Regression: a second probe with a fresh registry reproduces the
        first's metric snapshot and rendered reports exactly."""
        second = run_probe(registry=MetricsRegistry("probe-test-2"),
                           tracer=Tracer("probe-test-2"))
        assert second.registry.snapshot() == probe.registry.snapshot()
        first_text = [
            (title, render_report(title, report).rows)
            for title, report in probe.reports()
        ]
        second_text = [
            (title, render_report(title, report).rows)
            for title, report in second.reports()
        ]
        assert first_text == second_text

    def test_metrics_document_shape(self, probe):
        document = metrics_document(probe.registry)
        assert document["generator"] == "repro.obs"
        assert document["metrics"]
        assert document["families"] == probe.registry.families()


@pytest.mark.slow
class TestCliExport:
    def test_acceptance_command(self, tmp_path):
        """The ISSUE.md acceptance command end to end, in a subprocess."""
        trace_path = tmp_path / "t.json"
        metrics_path = tmp_path / "m.json"
        subprocess.run(
            [sys.executable, "-m", "repro", "--trace", str(trace_path),
             "--metrics", str(metrics_path), "spray"],
            check=True, timeout=300, capture_output=True,
        )
        document = load_chrome_trace(trace_path)  # validates monotonicity
        assert document["traceEvents"]
        metrics = json.loads(metrics_path.read_text())
        assert {"rnic", "pcie", "net", "scheduler"} <= set(metrics["families"])
        assert metrics["metrics"]
