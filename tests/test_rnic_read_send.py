"""Unit tests for RDMA READ and two-sided SEND/RECV."""

import pytest

from repro.memory import MemoryKind
from repro.rnic import BaseRnic, Opcode, VerbsError, WcStatus, connect_qps


def make_pair():
    a, b = BaseRnic(name="ra"), BaseRnic(name="rb")
    pd_a, pd_b = a.alloc_pd("t"), b.alloc_pd("t")
    mr_a = a.reg_mr(pd_a, 0x0, [(0x0, 0xA00000, 1 << 20)], MemoryKind.HOST_DRAM, True)
    mr_b = b.reg_mr(pd_b, 0x0, [(0x0, 0xB00000, 1 << 20)], MemoryKind.HOST_DRAM, True)
    qp_a, qp_b = a.create_qp(pd_a), b.create_qp(pd_b)
    connect_qps(qp_a, qp_b, nic_a=a, nic_b=b)
    return a, b, qp_a, qp_b, mr_a, mr_b


class TestRdmaRead:
    def test_read_pulls_bytes_toward_requester(self):
        a, b, qp_a, qp_b, mr_a, mr_b = make_pair()
        latency = a.rdma_read(qp_a, "r1", mr_a, 0x0, 64 * 1024, mr_b.rkey, 0x0)
        wc = qp_a.send_cq.poll()[0]
        assert wc.ok and wc.opcode is Opcode.RDMA_READ
        assert a.bytes_received == 64 * 1024
        assert b.bytes_sent == 64 * 1024
        assert latency > 0

    def test_read_costs_more_than_write(self):
        """Reads pay the request round trip before data flows."""
        a, b, qp_a, qp_b, mr_a, mr_b = make_pair()
        read = a.rdma_read(qp_a, "r", mr_a, 0x0, 64, mr_b.rkey, 0x0)
        write = a.rdma_write(qp_a, "w", mr_a, 0x0, 64, mr_b.rkey, 0x0)
        assert read > write

    def test_read_enforces_remote_pd(self):
        a, b, qp_a, qp_b, mr_a, mr_b = make_pair()
        foreign = b.reg_mr(b.alloc_pd("other"), 0x0,
                           [(0x0, 0xC00000, 4096)], MemoryKind.HOST_DRAM, True)
        a.rdma_read(qp_a, "r", mr_a, 0x0, 64, foreign.rkey, 0x0)
        assert qp_a.send_cq.poll()[0].status is WcStatus.REMOTE_ACCESS_ERROR
        assert a.bytes_received == 0

    def test_read_local_bounds(self):
        a, b, qp_a, qp_b, mr_a, mr_b = make_pair()
        a.rdma_read(qp_a, "r", mr_a, (1 << 20) - 8, 64, mr_b.rkey, 0x0)
        assert qp_a.send_cq.poll()[0].status is WcStatus.LOCAL_PROTECTION_ERROR


class TestSendRecv:
    def test_send_consumes_posted_recv(self):
        a, b, qp_a, qp_b, mr_a, mr_b = make_pair()
        b.post_recv(qp_b, "recv-1", mr_b, 0x0, 64 * 1024)
        a.send(qp_a, "send-1", mr_a, 0x0, 4096)
        send_wc = qp_a.send_cq.poll()[0]
        recv_wc = qp_b.recv_cq.poll()[0]
        assert send_wc.ok and send_wc.opcode is Opcode.SEND
        assert recv_wc.ok and recv_wc.opcode is Opcode.RECV
        assert recv_wc.wr_id == "recv-1"
        assert recv_wc.byte_len == 4096
        assert b.bytes_received == 4096

    def test_send_without_recv_is_rnr(self):
        a, b, qp_a, qp_b, mr_a, mr_b = make_pair()
        a.send(qp_a, "s", mr_a, 0x0, 64)
        assert qp_a.send_cq.poll()[0].status is WcStatus.RETRY_EXCEEDED
        assert b.bytes_received == 0

    def test_recvs_consumed_in_order(self):
        a, b, qp_a, qp_b, mr_a, mr_b = make_pair()
        b.post_recv(qp_b, "first", mr_b, 0x0, 8192)
        b.post_recv(qp_b, "second", mr_b, 0x2000, 8192)
        a.send(qp_a, "s1", mr_a, 0x0, 100)
        a.send(qp_a, "s2", mr_a, 0x0, 200)
        ids = [wc.wr_id for wc in qp_b.recv_cq.poll(2)]
        assert ids == ["first", "second"]

    def test_send_too_big_for_recv_buffer(self):
        a, b, qp_a, qp_b, mr_a, mr_b = make_pair()
        b.post_recv(qp_b, "small", mr_b, 0x0, 64)
        a.send(qp_a, "s", mr_a, 0x0, 4096)
        assert qp_a.send_cq.poll()[0].status is WcStatus.REMOTE_ACCESS_ERROR

    def test_post_recv_validates_pd_and_bounds(self):
        a, b, qp_a, qp_b, mr_a, mr_b = make_pair()
        foreign = b.reg_mr(b.alloc_pd("other"), 0x0,
                           [(0x0, 0xD00000, 4096)], MemoryKind.HOST_DRAM, True)
        with pytest.raises(VerbsError):
            b.post_recv(qp_b, "bad", foreign, 0x0, 64)
        with pytest.raises(VerbsError):
            b.post_recv(qp_b, "oob", mr_b, (1 << 20) - 8, 4096)

    def test_send_requires_rts(self):
        a = BaseRnic()
        pd = a.alloc_pd("t")
        mr = a.reg_mr(pd, 0x0, [(0x0, 0xA00000, 4096)], MemoryKind.HOST_DRAM, True)
        qp = a.create_qp(pd)
        with pytest.raises(VerbsError):
            a.send(qp, "s", mr, 0x0, 64)
