"""simlint v2 whole-program tests: call graph, taint propagation, the
transitive rules (``D-taskpure-deep``/``D-sim-pure``/``L-api-drift``),
SARIF output, and the rule-catalogue/waiver contracts.

The acceptance fixture at the top is the one the per-file linter
*provably* cannot catch: a ``@task`` whose transitively called helper
two call-graph hops away, in another module, reads the wall clock.  The
leaf waives ``D-wallclock`` so every file is per-file clean, yet the
taint still reaches the task."""

import json
import os
import textwrap

import pytest

from repro.lint import (
    RULES,
    lint_project,
    lint_source,
    lint_sources,
    render,
    sarif_document,
)
from repro.lint.callgraph import (
    SCHEDULE_VERBS,
    SUMMARY_SCHEMA,
    ProjectIndex,
    deep_module_name,
    summarize_tree,
)
from repro.lint.purity import (
    TAINT_RULE_KINDS,
    classify,
    collect_taint_sources,
    propagate_taints,
    witness_chain,
)
from repro.lint.report import SARIF_SCHEMA_URI, SARIF_VERSION
from repro.lint.rules import parse_waivers, rule_waived_at, waiver_lines_for

import ast


def _dedent_tree(files):
    return {path: textwrap.dedent(source) for path, source in files.items()}


def _rules_of(report):
    return {v.rule for v in report.violations}


def _index_of(files):
    summaries = []
    for path in sorted(files):
        source = textwrap.dedent(files[path])
        tree = ast.parse(source, filename=path)
        summaries.append(summarize_tree(path, tree, parse_waivers(source)))
    return ProjectIndex(summaries)


# The two-hop acceptance fixture: task -> helper (other module) ->
# wall-clock leaf (third module).  The leaf waives the *per-file* rule
# only, so file-by-file linting sees nothing anywhere.
TWO_HOP = _dedent_tree({
    "src/repro/workloads/wl_alpha.py": """\
        from repro.analysis.wl_beta import helper_total
        from repro.runner.spec import task


        @task
        def alpha_sweep(n, seed=None):
            return {"total": helper_total(n)}
        """,
    "src/repro/analysis/wl_beta.py": """\
        from repro.net.wl_gamma import jitter_sample


        def helper_total(n):
            return jitter_sample(n) + 1
        """,
    "src/repro/net/wl_gamma.py": """\
        import time


        def jitter_sample(n):
            return n + time.time()  # simlint: ok D-wallclock
        """,
    # The runner references tasks by dotted path, which keeps the task
    # itself out of L-api-drift's way (string identifiers count as use).
    "tests/wl_specs.py":
        'SPECS = ["repro.workloads.wl_alpha:alpha_sweep"]\n',
})


class TestTwoHopAcceptance:
    def test_every_file_is_per_file_clean(self):
        for path, source in TWO_HOP.items():
            assert lint_source(source, path=path) == [], path

    def test_per_file_mode_misses_the_taint(self):
        report = lint_sources(TWO_HOP, deep=False)
        assert report.clean

    def test_deep_analysis_catches_it(self):
        report = lint_sources(TWO_HOP)
        assert _rules_of(report) == {"D-taskpure-deep"}
        [violation] = report.violations
        assert violation.path == "src/repro/workloads/wl_alpha.py"
        assert violation.line == 6  # the task's def line
        assert "alpha_sweep" in violation.message
        assert "time.time at src/repro/net/wl_gamma.py:5" in violation.message
        assert "via helper_total -> jitter_sample" in violation.message

    def test_rng_leaf_variant(self):
        files = dict(TWO_HOP)
        files["src/repro/net/wl_gamma.py"] = textwrap.dedent("""\
            import random  # simlint: ok D-random


            def jitter_sample(n):
                return n + random.random()  # simlint: ok D-random
            """)
        for path, source in files.items():
            assert lint_source(source, path=path) == [], path
        report = lint_sources(files)
        assert _rules_of(report) == {"D-taskpure-deep"}
        assert "ambient randomness" in report.violations[0].message

    def test_global_mutation_leaf_variant(self):
        # No waiver needed at the leaf: mutating your own module global
        # is invisible to every per-file rule, only the deep audit sees
        # a @task reaching it.
        files = dict(TWO_HOP)
        files["src/repro/net/wl_gamma.py"] = textwrap.dedent("""\
            _SAMPLES = []


            def jitter_sample(n):
                _SAMPLES.append(n)
                return len(_SAMPLES)
            """)
        for path, source in files.items():
            assert lint_source(source, path=path) == [], path
        report = lint_sources(files)
        assert _rules_of(report) == {"D-taskpure-deep"}
        assert "module-state mutation" in report.violations[0].message

    def test_waiving_the_deep_rule_at_the_source_stops_it(self):
        files = dict(TWO_HOP)
        files["src/repro/net/wl_gamma.py"] = files[
            "src/repro/net/wl_gamma.py"
        ].replace("ok D-wallclock", "ok D-wallclock D-taskpure-deep")
        assert lint_sources(files).clean

    def test_family_waiver_at_the_source_stops_it(self):
        files = dict(TWO_HOP)
        files["src/repro/net/wl_gamma.py"] = files[
            "src/repro/net/wl_gamma.py"
        ].replace("ok D-wallclock", "ok D")
        assert lint_sources(files).clean

    def test_waiver_on_the_task_decorator_line_stops_it(self):
        files = dict(TWO_HOP)
        files["src/repro/workloads/wl_alpha.py"] = files[
            "src/repro/workloads/wl_alpha.py"
        ].replace("@task", "@task  # simlint: ok D-taskpure-deep")
        assert lint_sources(files).clean

    def test_wallclock_allowlist_produces_no_taint(self):
        # The same two-hop shape, but the leaf lives in repro.obs — the
        # sanctioned self-profiling package — so there is no taint at all.
        files = dict(TWO_HOP)
        del files["src/repro/net/wl_gamma.py"]
        files["src/repro/obs/wl_gamma.py"] = textwrap.dedent("""\
            import time


            def jitter_sample(n):
                return n + time.time()
            """)
        files["src/repro/analysis/wl_beta.py"] = files[
            "src/repro/analysis/wl_beta.py"
        ].replace("repro.net.wl_gamma", "repro.obs.wl_gamma")
        assert lint_sources(files).clean


class TestSimPure:
    SIM_FILES = _dedent_tree({
        "src/repro/net/wl_gamma.py": TWO_HOP["src/repro/net/wl_gamma.py"],
        "src/repro/net/burst.py": """\
            from repro.net.wl_gamma import jitter_sample


            class Burst:
                def __init__(self, scheduler):
                    self.scheduler = scheduler

                def start(self):
                    self.scheduler.schedule(1.0, self.tick)

                def tick(self):
                    return jitter_sample(3)
            """,
        "tests/use_burst.py": "from repro.net.burst import Burst\n",
    })

    def test_method_callback_reaching_wallclock_fires(self):
        report = lint_sources(self.SIM_FILES)
        assert _rules_of(report) == {"D-sim-pure"}
        [violation] = report.violations
        assert violation.path == "src/repro/net/burst.py"
        assert "Burst.tick" in violation.message
        assert "wall-clock" in violation.message

    def test_lambda_callback_is_a_root_too(self):
        files = {
            "src/repro/net/wl_gamma.py": TWO_HOP[
                "src/repro/net/wl_gamma.py"
            ],
            "src/repro/net/burst.py": textwrap.dedent("""\
                from repro.net.wl_gamma import jitter_sample


                def arm(scheduler):
                    scheduler.schedule_call(1.0, lambda: jitter_sample(1))
                """),
            "tests/use_burst.py": "from repro.net.burst import arm\n",
        }
        report = lint_sources(files)
        assert _rules_of(report) == {"D-sim-pure"}

    def test_global_mutation_does_not_fire_sim_pure(self):
        # D-sim-pure only audits wallclock/rng: callbacks may mutate
        # their owner's state (that is what callbacks do).
        assert TAINT_RULE_KINDS["D-sim-pure"] == ("wallclock", "rng")
        files = {
            "src/repro/net/wl_gamma.py": textwrap.dedent("""\
                SAMPLES = []


                def jitter_sample(n):
                    SAMPLES.append(n)
                    return len(SAMPLES)
                """),
            "src/repro/net/burst.py": self.SIM_FILES[
                "src/repro/net/burst.py"
            ],
        }
        report = lint_sources(files)
        assert "D-sim-pure" not in _rules_of(report)

    def test_clean_callback_is_clean(self):
        files = {
            "src/repro/net/burst.py": textwrap.dedent("""\
                class Burst:
                    def __init__(self, scheduler):
                        self.scheduler = scheduler

                    def start(self):
                        self.scheduler.schedule(1.0, self.tick)

                    def tick(self):
                        return 7
                """),
            "tests/use_burst.py": "from repro.net.burst import Burst\n",
        }
        assert lint_sources(files).clean

    def test_schedule_verbs_catalogue(self):
        assert SCHEDULE_VERBS == {"schedule", "schedule_call", "schedule_at"}


class TestApiDrift:
    def test_unreferenced_public_symbol_fires(self):
        files = {
            "src/repro/net/drift_a.py": "USED = 1\nUNUSED = 2\n",
            "tests/test_drift_user.py":
                "from repro.net.drift_a import USED\n\nassert USED\n",
        }
        report = lint_sources(files)
        assert [(v.rule, v.path, v.line) for v in report.violations] == [
            ("L-api-drift", "src/repro/net/drift_a.py", 2),
        ]
        assert "UNUSED" in report.violations[0].message

    def test_string_dotted_path_counts_as_usage(self):
        # TaskSpec-style "module:attr" strings must keep the task library
        # alive: the runner resolves those names at run time.
        files = {
            "src/repro/net/drift_a.py": "def spot_check(n):\n    return n\n",
            "tests/test_drift_user.py":
                'SPEC = "repro.net.drift_a:spot_check"\n',
        }
        assert lint_sources(files).clean

    def test_waiver_keeps_an_intentional_export(self):
        files = {
            "src/repro/net/drift_a.py":
                "KEPT = 3  # simlint: ok L-api-drift\n",
        }
        assert lint_sources(files).clean

    def test_main_modules_are_entry_points_not_exports(self):
        files = {
            "src/repro/net/__main__.py": "ENTRY = 1\n\nprint(ENTRY)\n",
        }
        assert lint_sources(files).clean

    def test_non_repro_files_are_not_audited(self):
        files = {
            "tests/helper_mod.py": "ORPHAN = 1\n",
        }
        assert lint_sources(files).clean

    def test_reference_sources_feed_the_pool_without_being_linted(self):
        files = {
            "src/repro/net/drift_a.py": "TUNABLE = 1\n",
        }
        refs = {
            # A reference-only file may itself be wildly non-compliant;
            # only the names it mentions matter.
            "examples/demo.py":
                "import random\nfrom repro.net.drift_a import TUNABLE\n",
        }
        assert lint_sources(files, reference_sources=refs).clean
        assert not lint_sources(files).clean


class TestCallGraph:
    def test_deep_module_name(self):
        assert deep_module_name("src/repro/sim/engine.py") == \
            "repro.sim.engine"
        assert deep_module_name("tests/runner_task_fixtures.py") == \
            "tests.runner_task_fixtures"
        assert deep_module_name("benchmarks/pkg/__init__.py") == \
            "benchmarks.pkg"

    def test_summary_shape_is_json_plain(self):
        source = "def f():\n    return g()\n\n\ndef g():\n    return 1\n"
        tree = ast.parse(source)
        summary = summarize_tree("src/repro/net/mini.py", tree, {})
        assert summary["schema"] == SUMMARY_SCHEMA
        assert json.loads(json.dumps(summary)) == summary
        assert [fn["qualname"] for fn in summary["functions"]] == ["f", "g"]

    def test_cross_module_from_import_resolves(self):
        index = _index_of({
            "src/repro/net/a.py":
                "from repro.net.b import helper\n\n\ndef f():\n"
                "    return helper()\n",
            "src/repro/net/b.py": "def helper():\n    return 1\n",
        })
        assert index.nodes["repro.net.a:f"]["edges"] == \
            ["repro.net.b:helper"]

    def test_module_alias_dotted_call_resolves(self):
        index = _index_of({
            "src/repro/net/a.py":
                "import repro.net.b as nb\n\n\ndef f():\n"
                "    return nb.helper()\n",
            "src/repro/net/b.py": "def helper():\n    return 1\n",
        })
        assert index.nodes["repro.net.a:f"]["edges"] == \
            ["repro.net.b:helper"]

    def test_instantiation_resolves_to_init(self):
        index = _index_of({
            "src/repro/net/a.py":
                "class Widget:\n"
                "    def __init__(self):\n"
                "        self.n = 0\n\n\n"
                "def f():\n"
                "    return Widget()\n",
        })
        assert index.nodes["repro.net.a:f"]["edges"] == \
            ["repro.net.a:Widget.__init__"]

    def test_local_variable_method_call_resolves_by_class(self):
        index = _index_of({
            "src/repro/net/a.py":
                "class Widget:\n"
                "    def poke(self):\n"
                "        return 1\n\n\n"
                "def f():\n"
                "    w = Widget()\n"
                "    return w.poke()\n",
        })
        assert "repro.net.a:Widget.poke" in \
            index.nodes["repro.net.a:f"]["edges"]

    def test_self_attribute_method_call_resolves_by_class(self):
        index = _index_of({
            "src/repro/net/a.py":
                "class Engine:\n"
                "    def step(self):\n"
                "        return 1\n\n\n"
                "class Sim:\n"
                "    def __init__(self):\n"
                "        self.engine = Engine()\n\n"
                "    def run(self):\n"
                "        return self.engine.step()\n",
        })
        assert "repro.net.a:Engine.step" in \
            index.nodes["repro.net.a:Sim.run"]["edges"]

    def test_inherited_method_resolves_through_bases(self):
        index = _index_of({
            "src/repro/net/a.py":
                "class Base:\n"
                "    def poke(self):\n"
                "        return 1\n\n\n"
                "class Child(Base):\n"
                "    def f(self):\n"
                "        return self.poke()\n",
        })
        assert index.nodes["repro.net.a:Child.f"]["edges"] == \
            ["repro.net.a:Base.poke"]

    def test_functools_partial_unwraps(self):
        index = _index_of({
            "src/repro/net/a.py":
                "from functools import partial\n\n\n"
                "def helper(n):\n"
                "    return n\n\n\n"
                "def f():\n"
                "    return partial(helper, 3)\n",
        })
        assert index.nodes["repro.net.a:f"]["edges"] == \
            ["repro.net.a:helper"]

    def test_scheduled_callback_becomes_a_sim_root(self):
        index = _index_of({
            "src/repro/net/a.py":
                "def tick():\n"
                "    return 1\n\n\n"
                "def arm(scheduler):\n"
                "    scheduler.schedule_call(1.0, tick)\n",
        })
        assert "repro.net.a:tick" in index.sim_roots
        assert "repro.net.a:tick" in index.nodes["repro.net.a:arm"]["edges"]

    def test_nested_function_is_an_implicit_edge(self):
        index = _index_of({
            "src/repro/net/a.py":
                "def f():\n"
                "    def inner():\n"
                "        return 1\n"
                "    return inner\n",
        })
        assert index.nodes["repro.net.a:f"]["edges"] == \
            ["repro.net.a:f.<locals>.inner"]

    def test_unresolvable_calls_are_counted_not_guessed(self):
        index = _index_of({
            "src/repro/net/a.py":
                "def f(runner):\n"
                "    return runner()\n",
        })
        assert index.nodes["repro.net.a:f"]["edges"] == []
        assert index.stats["unresolved_calls"] == 1


class TestPurityPrimitives:
    def test_classify_and_witness_chain(self):
        index = _index_of(TWO_HOP)
        sources = collect_taint_sources(index)
        assert [s["kind"] for s in sources] == ["wallclock"]
        reach = propagate_taints(index, sources)
        kinds = classify(index, sources, reach)
        task_id = "repro.workloads.wl_alpha:alpha_sweep"
        assert kinds[task_id] == ["wallclock"]
        chain = witness_chain(index, reach, sources, task_id, 0)
        assert chain == [
            task_id,
            "repro.analysis.wl_beta:helper_total",
            "repro.net.wl_gamma:jitter_sample",
        ]

    def test_source_carries_its_waivers(self):
        index = _index_of(TWO_HOP)
        [source] = collect_taint_sources(index)
        assert source["waived"] == {"D-wallclock"}
        assert source["path"] == "src/repro/net/wl_gamma.py"


class TestSarifOutput:
    def _dirty_report(self):
        return lint_sources(TWO_HOP)

    def test_sarif_2_1_0_shape(self):
        doc = sarif_document(self._dirty_report())
        assert doc["version"] == SARIF_VERSION == "2.1.0"
        assert doc["$schema"] == SARIF_SCHEMA_URI
        assert SARIF_VERSION in SARIF_SCHEMA_URI
        [run] = doc["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "simlint"
        assert [r["id"] for r in driver["rules"]] == sorted(RULES)
        for rule in driver["rules"]:
            assert rule["shortDescription"]["text"] == RULES[rule["id"]]
        assert run["results"], "fixture should produce findings"
        for result in run["results"]:
            assert result["ruleId"] in RULES
            assert driver["rules"][result["ruleIndex"]]["id"] == \
                result["ruleId"]
            assert result["message"]["text"]
            [location] = result["locations"]
            physical = location["physicalLocation"]
            assert "\\" not in physical["artifactLocation"]["uri"]
            region = physical["region"]
            assert region["startLine"] >= 1
            assert region["startColumn"] >= 1

    def test_render_round_trips_all_formats(self):
        report = self._dirty_report()
        assert "D-taskpure-deep" in render(report, "text")
        payload = json.loads(render(report, "json"))
        assert payload["clean"] is False
        assert payload["violations"][0]["rule"] == "D-taskpure-deep"
        sarif = json.loads(render(report, "sarif"))
        assert sarif["version"] == "2.1.0"

    def test_unknown_format_raises(self):
        try:
            render(self._dirty_report(), "xml")
        except ValueError as error:
            assert "xml" in str(error)
        else:
            raise AssertionError("render accepted an unknown format")

    def test_clean_report_has_empty_results(self):
        report = lint_sources({"src/repro/net/ok.py": "_X = 1\nprint(_X)\n"})
        doc = sarif_document(report)
        assert doc["runs"][0]["results"] == []


#: One firing fixture per per-file rule (rule -> (source, path)).
PER_FILE_FIXTURES = {
    "D-random": ("import random\n", "src/repro/net/snippet.py"),
    "D-nprandom": (
        "from numpy import random\n", "src/repro/net/snippet.py",
    ),
    "D-wallclock": (
        "import time\n\n\ndef f():\n    return time.time()\n",
        "src/repro/net/snippet.py",
    ),
    "D-set-iter": (
        "def f():\n    for x in {1, 2}:\n        pass\n",
        "src/repro/net/snippet.py",
    ),
    "D-id-key": (
        "def f(xs):\n    xs.sort(key=id)\n",
        "src/repro/net/snippet.py",
    ),
    "D-taskpure": (
        "@task\ndef t(spec, acc=[]):\n    return acc\n",
        "src/repro/net/snippet.py",
    ),
    "L-layer": (
        "from repro.net import topology\n",
        "src/repro/sim/snippet.py",
    ),
    "L-private": (
        "from repro.net.flow import _stat\n",
        "src/repro/net/snippet.py",
    ),
    "A-snapshot-pair": (
        "class C:\n    def register_metrics(self, registry):\n"
        "        pass\n",
        "src/repro/net/snippet.py",
    ),
    "A-snapshot-plain": (
        "class C:\n    def snapshot(self):\n        return {1, 2}\n",
        "src/repro/net/snippet.py",
    ),
    "A-flight-plain": (
        "class C:\n    def f(self):\n"
        "        self.flight.record('evt', {1, 2})\n",
        "src/repro/net/snippet.py",
    ),
}

#: One firing fixture per whole-program rule (rule -> files dict).
DEEP_FIXTURES = {
    "D-taskpure-deep": TWO_HOP,
    "D-sim-pure": TestSimPure.SIM_FILES,
    "L-api-drift": {"src/repro/net/drift_a.py": "ORPHAN = 1\n"},
}


class TestRuleCatalogue:
    def test_every_rule_has_a_firing_fixture(self):
        covered = set(PER_FILE_FIXTURES) | set(DEEP_FIXTURES)
        assert covered == set(RULES)

    def test_per_file_fixtures_fire_their_rule(self):
        for rule, (source, path) in PER_FILE_FIXTURES.items():
            fired = {v.rule for v in lint_source(source, path=path)}
            assert rule in fired, rule
            assert fired <= set(RULES), rule

    def test_deep_fixtures_fire_their_rule(self):
        for rule, files in DEEP_FIXTURES.items():
            report = lint_sources(files)
            fired = _rules_of(report)
            assert rule in fired, rule
            assert fired <= set(RULES), rule


class TestWaiverEdgeCases:
    def test_one_waiver_names_multiple_rules(self):
        source = "import random  # simlint: ok D-random L-layer\n"
        assert lint_source(source, path="src/repro/net/x.py") == []

    def test_multi_rule_waiver_does_not_cover_unnamed_rules(self):
        source = "import random  # simlint: ok D-wallclock L-layer\n"
        fired = {v.rule for v in lint_source(source, "src/repro/net/x.py")}
        assert fired == {"D-random"}

    def test_two_violations_on_one_line_need_both_names(self):
        # A layer break importing a private name is two findings on the
        # same line; the waiver must name both to silence both.
        source = "from repro.net.flow import _stat" \
            "  # simlint: ok L-layer L-private\n"
        assert lint_source(source, path="src/repro/sim/x.py") == []
        partial = "from repro.net.flow import _stat  # simlint: ok L-layer\n"
        fired = {v.rule for v in lint_source(partial, "src/repro/sim/x.py")}
        assert fired == {"L-private"}

    def test_decorator_line_waiver_covers_the_def(self):
        source = "@task  # simlint: ok D-taskpure\n" \
            "def t(spec, acc=[]):\n    return acc\n"
        assert lint_source(source, path="src/repro/net/x.py") == []

    def test_def_line_waiver_covers_the_body(self):
        source = "@task\n" \
            "def t(spec, acc=[]):  # simlint: ok D-taskpure\n" \
            "    return acc\n"
        assert lint_source(source, path="src/repro/net/x.py") == []

    def test_multiline_call_waives_on_first_line(self):
        source = (
            "import time\n\n\n"
            "def f():\n"
            "    return time.time(  # simlint: ok D-wallclock\n"
            "    )\n"
        )
        assert lint_source(source, path="src/repro/net/x.py") == []

    def test_multiline_call_waives_on_last_line(self):
        source = (
            "import time\n\n\n"
            "def f():\n"
            "    return time.time(\n"
            "    )  # simlint: ok D-wallclock\n"
        )
        assert lint_source(source, path="src/repro/net/x.py") == []

    def test_middle_line_of_a_multiline_call_does_not_waive(self):
        source = (
            "import time\n\n\n"
            "def f():\n"
            "    return time.time(\n"
            "        # simlint: ok D-wallclock\n"
            "    )\n"
        )
        fired = {v.rule for v in lint_source(source, "src/repro/net/x.py")}
        assert fired == {"D-wallclock"}

    def test_waiver_lines_for_covers_span_and_decorators(self):
        tree = ast.parse(
            "@task\n@other\ndef f():\n    return (1 +\n            2)\n"
        )
        fn = tree.body[0]
        assert waiver_lines_for(fn) == {1, 2, 3, 5}

    def test_rule_waived_at_family_and_star(self):
        assert rule_waived_at({3: {"D"}}, (3,), "D-taskpure-deep")
        assert rule_waived_at({3: {"*"}}, (3,), "L-api-drift")
        assert not rule_waived_at({3: {"L"}}, (3,), "D-taskpure-deep")
        assert not rule_waived_at({4: {"D"}}, (3,), "D-taskpure-deep")


class TestShippedTreeIsDeepClean:
    @pytest.mark.slow
    def test_whole_program_lint_is_clean(self):
        repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        paths = [os.path.join(repo, name)
                 for name in ("src", "tests", "benchmarks")]
        paths = [p for p in paths if os.path.isdir(p)]
        refs = [p for p in [os.path.join(repo, "examples")]
                if os.path.isdir(p)]
        report = lint_project(paths, use_cache=False, reference_paths=refs)
        assert report.clean, "\n".join(repr(v) for v in report.violations)
        # Every linted file was really parsed (no stale cache involved).
        assert report.stats["parsed"] >= report.stats["files"]
