"""Tests for the extension selectors: flowlet switching and path-aware
spraying (paper Sections 7.1 and 9)."""

import collections


from repro.core import make_selector
from repro.core.spray import EXTENDED_ALGORITHMS, FlowletSelector
from repro.sim.rng import RngStream


class TestFlowlet:
    def make(self, gap=50e-6):
        return make_selector("flowlet", 16, rng=RngStream(1, "fl"))

    def test_bulk_traffic_degenerates_to_single_path(self):
        """The paper's critique: RDMA bulk transfers have no inter-packet
        gaps, so flowlet switching never switches."""
        selector = self.make()
        # Back-to-back packets 1.3 us apart (256 KiB at 200 Gbps pace).
        paths = {selector.next_path(now=i * 1.3e-6) for i in range(2000)}
        assert len(paths) == 1
        assert selector.flowlets == 1

    def test_gaps_open_new_flowlets(self):
        selector = self.make()
        first = selector.next_path(now=0.0)
        # A gap far above the threshold re-hashes.
        seen = {first}
        for i in range(1, 50):
            seen.add(selector.next_path(now=i * 1e-3))
        assert selector.flowlets > 25
        assert len(seen) > 4

    def test_sub_threshold_gaps_do_not_switch(self):
        selector = FlowletSelector(8, rng=RngStream(2, "fl"),
                                   gap_seconds=100e-6)
        a = selector.next_path(now=0.0)
        b = selector.next_path(now=99e-6)
        assert a == b
        c = selector.next_path(now=99e-6 + 101e-6)
        assert selector.flowlets == 2
        assert 0 <= c < 8

    def test_clockless_calls_stick(self):
        selector = self.make()
        paths = {selector.next_path() for _ in range(100)}
        assert len(paths) == 1

    def test_paths_in_range(self):
        selector = self.make()
        for i in range(200):
            assert 0 <= selector.next_path(now=i * 1e-3) < 16


class TestPathAware:
    def test_explores_until_feedback_arrives(self):
        selector = make_selector("path_aware", 64, rng=RngStream(3, "pa"))
        draws = {selector.next_path() for _ in range(300)}
        assert len(draws) > 20  # random exploration

    def test_reuses_clean_paths(self):
        selector = make_selector("path_aware", 64, rng=RngStream(4, "pa"))
        for path in (3, 9):
            selector.on_feedback(path, rtt=10e-6)
        draws = collections.Counter(selector.next_path() for _ in range(200))
        assert set(draws) == {3, 9}

    def test_evicts_congested_paths(self):
        selector = make_selector("path_aware", 64, rng=RngStream(5, "pa"))
        for path in (3, 9):
            selector.on_feedback(path, rtt=10e-6)
        selector.on_feedback(3, ecn=True)
        draws = set(selector.next_path() for _ in range(100))
        assert draws == {9}

    def test_cache_bounded(self):
        selector = make_selector("path_aware", 128, rng=RngStream(6, "pa"))
        for i in range(10_000):
            selector.on_feedback(i % 128, rtt=1e-6)
        assert len(selector.good_paths) <= selector.CACHE_LIMIT


class TestExtendedRegistry:
    def test_extended_algorithms_registered(self):
        assert "flowlet" in EXTENDED_ALGORITHMS
        assert "path_aware" in EXTENDED_ALGORITHMS
        for name in EXTENDED_ALGORITHMS:
            selector = make_selector(name, 8, rng=RngStream(7, name))
            path = selector.next_path(now=0.0)
            assert 0 <= path < 8

    def test_flowlet_in_packet_sim(self):
        """End to end: a flowlet flow completes on the packet simulator."""
        from repro.net import DualPlaneTopology, MessageFlow, PacketNetSim, ServerAddress, run_flows
        from repro.sim.units import MB

        topo = DualPlaneTopology(segments=2, servers_per_segment=2, rails=1,
                                 planes=2, aggs_per_plane=4)
        sim = PacketNetSim(topo, seed=8)
        flow = MessageFlow(sim, "fl", ServerAddress(0, 0), ServerAddress(1, 0),
                           0, message_bytes=4 * MB, algorithm="flowlet",
                           path_count=16, mtu=64 * 1024)
        results = run_flows(sim, [flow], timeout=1.0)
        assert flow.done
        assert results[0].bytes_acked == 4 * MB
