"""Unit and property tests for the interval-based RangeMap."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import AddressError, MemoryKind, PageFault, RangeMap


def test_basic_map_translate():
    rm = RangeMap()
    rm.map_range(0x1000, 0x100000, 0x2000, kind=MemoryKind.GPU_HBM)
    assert rm.translate(0x1000) == 0x100000
    assert rm.translate(0x2FFF) == 0x101FFF
    assert rm.lookup(0x1500).kind is MemoryKind.GPU_HBM
    assert rm.is_mapped(0x1000)
    assert not rm.is_mapped(0x3000)
    assert rm.mapped_bytes == 0x2000


def test_unmapped_translate_faults():
    rm = RangeMap()
    with pytest.raises(PageFault):
        rm.translate(0x42)


def test_overlap_rejected_without_overwrite():
    rm = RangeMap()
    rm.map_range(0x1000, 0xA000, 0x1000)
    with pytest.raises(AddressError):
        rm.map_range(0x1800, 0xB000, 0x1000)
    # Identical re-install is tolerated (idempotent driver behaviour).
    rm.map_range(0x1000, 0xA000, 0x1000)
    assert len(rm) == 1


def test_overwrite_replaces_covered_portion():
    rm = RangeMap()
    rm.map_range(0x0, 0xA0000, 0x4000)
    rm.map_range(0x1000, 0xF0000, 0x1000, overwrite=True)
    assert rm.translate(0x0800) == 0xA0800  # head of original survives
    assert rm.translate(0x1800) == 0xF0800  # new mapping
    assert rm.translate(0x2800) == 0xA2800  # tail of original survives
    assert len(rm) == 3


def test_unmap_middle_splits():
    rm = RangeMap()
    rm.map_range(0x0, 0xA0000, 0x3000)
    rm.unmap_range(0x1000, 0x1000)
    assert rm.translate(0x0FFF) == 0xA0FFF
    with pytest.raises(PageFault):
        rm.translate(0x1000)
    assert rm.translate(0x2000) == 0xA2000
    assert rm.mapped_bytes == 0x2000


def test_unmap_with_holes_requires_partial_ok():
    rm = RangeMap()
    rm.map_range(0x0, 0xA0000, 0x1000)
    rm.map_range(0x2000, 0xB0000, 0x1000)
    with pytest.raises(PageFault):
        rm.unmap_range(0x0, 0x3000)
    rm2 = RangeMap()
    rm2.map_range(0x0, 0xA0000, 0x1000)
    rm2.map_range(0x2000, 0xB0000, 0x1000)
    removed = rm2.unmap_range(0x0, 0x3000, partial_ok=True)
    assert removed == 0x2000
    assert len(rm2) == 0


def test_readonly_mapping_rejects_writes():
    rm = RangeMap()
    rm.map_range(0x0, 0xA0000, 0x1000, writable=False)
    assert rm.translate(0x10, write=False) == 0xA0010
    with pytest.raises(PageFault):
        rm.translate(0x10, write=True)
    with pytest.raises(PageFault):
        rm.translate_region(0x0, 0x10, write=True)


def test_translate_region_coalesces_adjacent_targets():
    rm = RangeMap()
    rm.map_range(0x0000, 0xA0000, 0x1000)
    rm.map_range(0x1000, 0xA1000, 0x1000)  # adjacent in target space
    rm.map_range(0x2000, 0xC0000, 0x1000)  # not adjacent
    chunks = rm.translate_region(0x0, 0x3000)
    assert chunks == [(0x0, 0xA0000, 0x2000), (0x2000, 0xC0000, 0x1000)]


def test_translate_region_faults_on_hole():
    rm = RangeMap()
    rm.map_range(0x0, 0xA0000, 0x1000)
    with pytest.raises(PageFault):
        rm.translate_region(0x800, 0x1000)


def test_terabyte_mapping_is_one_interval():
    rm = RangeMap()
    rm.map_range(0x0, 0x40000000, int(1.6e12))
    assert len(rm) == 1
    assert rm.translate(int(1.0e12)) == 0x40000000 + int(1.0e12)


def test_zero_length_rejected():
    rm = RangeMap()
    with pytest.raises(AddressError):
        rm.map_range(0x0, 0x0, 0)
    rm.map_range(0x0, 0xA0000, 0x1000)
    with pytest.raises(AddressError):
        rm.unmap_range(0x0, 0)
    with pytest.raises(AddressError):
        rm.translate_region(0x0, 0)


PAGE = 0x1000


@settings(max_examples=80, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["map", "unmap"]),
            st.integers(min_value=0, max_value=30),  # start page
            st.integers(min_value=1, max_value=8),  # page count
        ),
        min_size=1,
        max_size=40,
    )
)
def test_rangemap_matches_dict_model(ops):
    """RangeMap must agree with a naive per-page dict model under arbitrary
    overwrite-map/partial-unmap sequences."""
    rm = RangeMap()
    model = {}
    next_frame = 0x100000
    for op, start, count in ops:
        src = start * PAGE
        length = count * PAGE
        if op == "map":
            rm.map_range(src, next_frame, length, overwrite=True)
            for i in range(count):
                model[src + i * PAGE] = next_frame + i * PAGE
            next_frame += length + PAGE  # keep frames non-adjacent
        else:
            rm.unmap_range(src, length, partial_ok=True)
            for i in range(count):
                model.pop(src + i * PAGE, None)
    for page in range(0, 40 * PAGE, PAGE):
        if page in model:
            assert rm.translate(page + 7) == model[page] + 7
        else:
            assert not rm.is_mapped(page)
    assert rm.mapped_bytes == len(model) * PAGE
