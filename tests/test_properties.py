"""Cross-cutting property-based tests (hypothesis) on core invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import make_selector
from repro.net import (
    DualPlaneTopology,
    EcmpHasher,
    FluidSimulation,
    MessageFlow,
    PacketNetSim,
    ServerAddress,
    run_flows,
)
from repro.sim.rng import RngStream
from repro.sim.units import Gbps


@settings(max_examples=40, deadline=None)
@given(
    flows=st.lists(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=9),
                      st.floats(min_value=0.05, max_value=1.0)),
            min_size=1, max_size=4, unique_by=lambda t: t[0],
        ),
        min_size=1, max_size=8,
    ),
    caps=st.lists(st.floats(min_value=1e9, max_value=400e9),
                  min_size=10, max_size=10),
)
def test_max_min_never_oversubscribes_links(flows, caps):
    """For any weight matrix, the allocation respects every capacity and
    gives every flow a non-negative rate."""
    weight_rows = [dict(flow) for flow in flows]
    rates = FluidSimulation.max_min_rates(weight_rows, caps)
    assert all(rate >= 0 for rate in rates)
    for link in range(10):
        load = sum(rates[f] * row.get(link, 0.0)
                   for f, row in enumerate(weight_rows))
        assert load <= caps[link] * (1 + 1e-6) + 2.0


@settings(max_examples=40, deadline=None)
@given(
    count=st.integers(min_value=1, max_value=6),
    cap=st.floats(min_value=1e9, max_value=400e9),
)
def test_max_min_equal_flows_share_equally(count, cap):
    rows = [{0: 1.0} for _ in range(count)]
    rates = FluidSimulation.max_min_rates(rows, [cap])
    for rate in rates:
        assert rate == pytest.approx(cap / count, rel=1e-6)


@settings(max_examples=30, deadline=None)
@given(
    buckets=st.integers(min_value=2, max_value=240),
    entropy=st.integers(min_value=0, max_value=2**62),
)
def test_ecmp_spray_covers_buckets_uniformly_enough(buckets, entropy):
    """With draws >> buckets, every bucket receives traffic and no bucket
    takes more than a loose multiple of its fair share."""
    hasher = EcmpHasher(buckets)
    draws = buckets * 64
    counts = [0] * buckets
    for path_id in range(draws):
        counts[hasher.bucket(entropy, path_id)] += 1
    assert min(counts) > 0
    assert max(counts) < 64 * 3


@settings(max_examples=15, deadline=None)
@given(
    message=st.integers(min_value=64 * 1024, max_value=4 * 1024 * 1024),
    algorithm=st.sampled_from(["obs", "rr", "dwrr", "mprdma", "flowlet"]),
    paths=st.sampled_from([1, 4, 16, 128]),
    seed=st.integers(min_value=0, max_value=100),
)
def test_packet_sim_conserves_bytes(message, algorithm, paths, seed):
    """Whatever the algorithm/fan-out, a lossless fabric delivers exactly
    the message bytes — no duplication, no loss, flow completes."""
    topo = DualPlaneTopology(segments=2, servers_per_segment=2, rails=1,
                             planes=2, aggs_per_plane=4)
    sim = PacketNetSim(topo, seed=seed)
    flow = MessageFlow(sim, "p", ServerAddress(0, 0), ServerAddress(1, 1), 0,
                       message_bytes=message, algorithm=algorithm,
                       path_count=paths, mtu=64 * 1024)
    results = run_flows(sim, [flow], timeout=2.0)
    assert flow.done
    assert results[0].bytes_acked == message
    assert flow.bytes_unsent == 0
    assert sim.packets_dropped == 0
    # Goodput can never exceed the NIC's aggregate line rate.
    assert results[0].goodput <= Gbps(400) * 1.01


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=1000),
    paths=st.sampled_from([4, 32, 128]),
)
def test_spray_connection_total_draw_distribution(seed, paths):
    """Selectors never emit out-of-range paths even under heavy feedback
    churn, and oblivious selectors keep a bounded max/min imbalance."""
    import collections

    selector = make_selector("obs", paths, rng=RngStream(seed, "prop"))
    counts = collections.Counter()
    for i in range(paths * 50):
        path = selector.next_path()
        assert 0 <= path < paths
        counts[path] += 1
        selector.on_feedback(path, rtt=10e-6, ecn=(i % 11 == 0))
    assert max(counts.values()) <= 50 * 2.5
