"""simlint D-taskpure: runner task callables must be pure.

The rule audits every ``@task``-decorated function for ambient-state
capture — module-level mutables, ambient RNG, the process-default metrics
registry, global/nonlocal, mutable default arguments — because task
bodies execute inside pool workers where captured parent state silently
diverges between sequential and pooled runs.
"""

from repro.lint.rules import lint_source


def _rules(source, path="src/repro/runner/tasks.py"):
    return [v.rule for v in lint_source(source, path=path)]


def _taskpure(source):
    return [r for r in _rules(source) if r == "D-taskpure"]


class TestTaskPureDetection:
    def test_clean_task_passes(self):
        source = (
            "from repro.runner.spec import task\n"
            "@task\n"
            "def point(size, seed=17):\n"
            "    from repro.workloads.perftest import run_perftest\n"
            "    rows = run_perftest('bare_metal', sizes=(size,))\n"
            "    return {'size': size, 'seed': seed, 'n': len(rows)}\n"
        )
        assert _taskpure(source) == []

    def test_module_level_mutable_capture_is_flagged(self):
        source = (
            "from repro.runner.spec import task\n"
            "_CACHE = {}\n"
            "@task\n"
            "def point(size):\n"
            "    _CACHE[size] = 1\n"
            "    return {'n': len(_CACHE)}\n"
        )
        assert "D-taskpure" in _rules(source)

    def test_local_shadow_of_mutable_name_is_allowed(self):
        source = (
            "from repro.runner.spec import task\n"
            "_ROWS = []\n"
            "@task\n"
            "def point(size):\n"
            "    _ROWS = [size]\n"
            "    return {'n': len(_ROWS)}\n"
        )
        assert _taskpure(source) == []

    def test_immutable_module_constant_is_allowed(self):
        source = (
            "from repro.runner.spec import task\n"
            "SIZES = (1, 2, 4)\n"
            "SCALE = 3\n"
            "@task\n"
            "def point():\n"
            "    return {'n': len(SIZES) * SCALE}\n"
        )
        assert _taskpure(source) == []

    def test_global_statement_is_flagged(self):
        source = (
            "from repro.runner.spec import task\n"
            "TOTAL = 0\n"
            "@task\n"
            "def point(size):\n"
            "    global TOTAL\n"
            "    TOTAL += size\n"
            "    return {'total': TOTAL}\n"
        )
        assert "D-taskpure" in _rules(source)

    def test_default_registry_read_is_flagged(self):
        source = (
            "from repro.obs.metrics import get_registry\n"
            "from repro.runner.spec import task\n"
            "@task\n"
            "def point(size):\n"
            "    get_registry().counter('task.calls').inc()\n"
            "    return {'size': size}\n"
        )
        assert "D-taskpure" in _rules(source)

    def test_ambient_rng_is_flagged(self):
        source = (
            "import random\n"
            "from repro.runner.spec import task\n"
            "@task\n"
            "def point():\n"
            "    return {'x': random.random()}\n"
        )
        assert "D-taskpure" in _rules(source)

    def test_mutable_default_argument_is_flagged(self):
        source = (
            "from repro.runner.spec import task\n"
            "@task\n"
            "def point(sizes=[]):\n"
            "    return {'n': len(sizes)}\n"
        )
        assert "D-taskpure" in _rules(source)

    def test_decorator_attribute_form_is_recognized(self):
        source = (
            "import repro.runner.spec as runner\n"
            "_STATE = {}\n"
            "@runner.task\n"
            "def point():\n"
            "    return dict(_STATE)\n"
        )
        assert "D-taskpure" in _rules(source)

    def test_undecorated_function_is_not_audited(self):
        source = (
            "_STATE = {}\n"
            "def helper():\n"
            "    _STATE['x'] = 1\n"
            "    return dict(_STATE)\n"
        )
        assert _taskpure(source) == []


class TestTaskPureWaiver:
    def test_waiver_suppresses_the_rule(self):
        source = (
            "from repro.runner.spec import task\n"
            "_MEMO = {}\n"
            "@task\n"
            "def point(size):\n"
            "    _MEMO[size] = size  # simlint: ok D-taskpure\n"
            "    return {'size': size}\n"
        )
        assert _taskpure(source) == []

    def test_rule_is_listed(self):
        from repro.lint.rules import RULES

        assert "D-taskpure" in RULES


class TestShippedTasksAreClean:
    def test_runner_task_library_is_taskpure(self):
        import repro.runner.tasks as tasks_module

        with open(tasks_module.__file__, "r", encoding="utf-8") as handle:
            source = handle.read()
        violations = [
            v for v in lint_source(source, path=tasks_module.__file__)
            if v.rule == "D-taskpure"
        ]
        assert violations == []
