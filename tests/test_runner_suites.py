"""Suite builders and their post-merge consistency checks."""

from repro.runner import RunReport, TaskResult
from repro.runner.suites import (
    SUITES,
    build_determinism,
    build_figures,
    build_perf,
    check_determinism,
    check_perf,
)


def _report(rows):
    results = {}
    for key, value in rows:
        results[key] = TaskResult(key, value, "0" * 64, False, 0.0, {})
    return RunReport(results, workers=0, cache_stats=None, wall_seconds=0.0)


class TestBuilders:
    def test_registry_names(self):
        assert list(SUITES) == [
            "figures", "figures-smoke", "determinism", "hybrid-smoke",
            "health", "perf", "traces", "traces-smoke",
        ]
        for suite in SUITES.values():
            keys = [s.key for s in suite.build()]
            assert len(keys) == len(set(keys))
            # Membership is frozen per name: building twice gives the
            # same keys in the same order (cache addressability).
            assert keys == [s.key for s in suite.build()]

    def test_figures_full_supersets_smoke(self):
        full = {s.key for s in build_figures()}
        smoke = {s.key for s in build_figures(trim=True)}
        # Trim drops sweep points and the churn scenario, never whole
        # figure families, so every family is exercised in CI.
        assert {k.split("/")[0] for k in smoke} == \
            {k.split("/")[0] for k in full}
        assert "fleet/churn" in full and "fleet/churn" not in smoke
        assert len(smoke) < len(full)

    def test_figures_specs_use_registered_tasks(self):
        from repro.runner import registered_tasks

        import repro.runner.tasks  # noqa: F401 -- populate the registry

        registry = registered_tasks()
        for spec in build_figures():
            assert spec.fn in registry, spec.fn

    def test_determinism_suite_pairs_runs_per_cell(self):
        keys = [s.key for s in build_determinism()]
        cells = {k.rpartition("/")[0] for k in keys}
        for cell in cells:
            assert "%s/run0" % cell in keys and "%s/run1" % cell in keys

    def test_perf_suite_excludes_the_pool_driving_kernel(self):
        # Pool workers are daemonic: runner_fanout would need a nested
        # pool, so it must never appear as a pooled task itself.
        assert not any("runner_fanout" in s.key for s in build_perf())
        assert len(build_perf()) > 0


class TestDeterminismCheck:
    def _cell(self, prefix, digest, runs=(0, 1)):
        return [
            ("%s/run%d" % (prefix, run),
             {"metrics_digest": digest, "trace_digest": digest})
            for run in runs
        ]

    def test_agreeing_cells_pass(self):
        rows = (self._cell("determinism/fleet/seed17", "aa")
                + self._cell("determinism/fleet/seed23", "bb"))
        assert check_determinism(_report(rows)) == []

    def test_disagreeing_runs_are_flagged(self):
        rows = [
            ("determinism/probe/seed17/run0",
             {"metrics_digest": "aa", "trace_digest": "aa"}),
            ("determinism/probe/seed17/run1",
             {"metrics_digest": "aa", "trace_digest": "XX"}),
        ]
        problems = check_determinism(_report(rows))
        assert len(problems) == 1 and "disagree" in problems[0]

    def test_seed_insensitive_fleet_is_flagged(self):
        rows = (self._cell("determinism/fleet/seed17", "aa")
                + self._cell("determinism/fleet/seed23", "aa"))
        problems = check_determinism(_report(rows))
        assert len(problems) == 1 and "seed" in problems[0]


class TestPerfCheck:
    def test_stable_event_counts_pass(self):
        rows = [
            ("perf/k/repeat0", {"name": "k", "events": 10}),
            ("perf/k/repeat1", {"name": "k", "events": 10}),
        ]
        assert check_perf(_report(rows)) == []

    def test_drifting_event_counts_are_flagged(self):
        rows = [
            ("perf/k/repeat0", {"name": "k", "events": 10}),
            ("perf/k/repeat1", {"name": "k", "events": 11}),
        ]
        problems = check_perf(_report(rows))
        assert len(problems) == 1 and "not deterministic" in problems[0]


class TestCli:
    def test_run_subcommand_reaches_the_runner(self, capsys):
        from repro.__main__ import main

        assert main(["run", "--list"]) == 0
        out = capsys.readouterr().out
        assert "figures-smoke" in out and "determinism" in out

    def test_unknown_suite_is_an_argparse_error(self):
        import pytest

        from repro.runner.__main__ import main

        with pytest.raises(SystemExit):
            main(["no-such-suite"])
