"""Unit tests for topology, ECMP hashing, and the static load model."""

import pytest

from repro.core import make_selector
from repro.net import (
    DualPlaneTopology,
    EcmpHasher,
    ServerAddress,
    StaticLoadModel,
    flow_entropy,
    hash_combine,
    splitmix64,
)
from repro.sim.rng import RngStream
from repro.sim.units import GB


class TestEcmp:
    def test_splitmix_is_deterministic_and_mixing(self):
        assert splitmix64(1) == splitmix64(1)
        assert splitmix64(1) != splitmix64(2)
        assert hash_combine(1, 2) != hash_combine(2, 1)

    def test_bucket_stability(self):
        hasher = EcmpHasher(120)
        assert hasher.bucket(42, 3) == hasher.bucket(42, 3)
        assert 0 <= hasher.bucket(42, 3) < 120

    def test_single_path_always_same_bucket(self):
        hasher = EcmpHasher(120)
        buckets = {hasher.bucket(flow_entropy(1, 2), 0) for _ in range(10)}
        assert len(buckets) == 1

    def test_bucket_coverage_grows_with_paths(self):
        hasher = EcmpHasher(120)
        entropy = flow_entropy(5, 9)
        few = len(set(hasher.buckets_for_paths(entropy, 4)))
        many = len(set(hasher.buckets_for_paths(entropy, 128)))
        assert few <= 4
        assert many > 60  # 128 draws over 120 buckets covers most of them

    def test_invalid_bucket_count(self):
        with pytest.raises(ValueError):
            EcmpHasher(0)


class TestTopology:
    def topo(self):
        return DualPlaneTopology(
            segments=2, servers_per_segment=4, rails=4, planes=2, aggs_per_plane=8
        )

    def test_dimensions(self):
        topo = self.topo()
        assert topo.server_count == 8
        assert topo.path_diversity == 16
        assert topo.gpu_count() == 64
        assert len(list(topo.servers())) == 8

    def test_cross_segment_route_shape(self):
        topo = self.topo()
        src = ServerAddress(0, 1)
        dst = ServerAddress(1, 2)
        route = topo.route(src, dst, rail=2, path_id=0)
        kinds = [link.kind for link in route]
        assert kinds == ["host_up", "tor_up", "tor_down", "host_down"]
        # Rail-optimized: every hop stays on rail 2.
        assert all(link.key[2] == 2 for link in route if link.kind.startswith("host"))
        assert route[1].key[1] == 2  # tor_up rail field

    def test_same_segment_route_skips_agg(self):
        topo = self.topo()
        route = topo.route(ServerAddress(0, 0), ServerAddress(0, 3), rail=0)
        assert [link.kind for link in route] == ["host_up", "host_down"]

    def test_route_to_self_rejected(self):
        topo = self.topo()
        with pytest.raises(ValueError):
            topo.route(ServerAddress(0, 0), ServerAddress(0, 0), rail=0)

    def test_path_ids_explore_plane_and_agg(self):
        topo = self.topo()
        src, dst = ServerAddress(0, 0), ServerAddress(1, 0)
        choices = {
            (topo.route(src, dst, 0, path_id=p)[1].key[2],
             topo.route(src, dst, 0, path_id=p)[1].key[3])
            for p in range(128)
        }
        assert len(choices) > 12  # covers most of the 16 (plane, agg) pairs

    def test_tor_uplink_enumeration(self):
        topo = self.topo()
        assert len(topo.tor_uplinks()) == 2 * 4 * 2 * 8
        assert len(topo.tor_uplinks(segment=0, rail=1)) == 2 * 8

    def test_bad_dimensions_rejected(self):
        with pytest.raises(ValueError):
            DualPlaneTopology(segments=0)


class TestStaticLoadModel:
    def test_byte_conservation_per_flow(self):
        topo = DualPlaneTopology(segments=2, servers_per_segment=2, rails=1,
                                 planes=2, aggs_per_plane=4)
        model = StaticLoadModel(topo, seed=1)
        selector = make_selector("obs", 16, rng=RngStream(1, "t"))
        model.add_flow(ServerAddress(0, 0), ServerAddress(1, 0), 0, selector, 1 * GB)
        # Every byte crosses exactly 4 links (cross-segment route).
        assert model.loads.total_bytes == pytest.approx(4 * GB, rel=1e-9)

    def test_spray_lowers_imbalance_vs_single_path(self):
        """The Figure 12 ordering in miniature."""
        topo = DualPlaneTopology(segments=2, servers_per_segment=8, rails=1,
                                 planes=2, aggs_per_plane=8)
        duration = 0.1

        def run(algorithm, path_count, seed):
            model = StaticLoadModel(topo, seed=seed)
            for i in range(8):
                selector = make_selector(
                    algorithm, path_count, rng=RngStream(seed, "f", i)
                )
                model.add_flow(
                    ServerAddress(0, i), ServerAddress(1, (i + 1) % 8), 0,
                    selector, 5 * GB, connection_id=i,
                )
            return model.imbalance(duration)

        single = run("single", 1, seed=3)
        sprayed = run("obs", 128, seed=3)
        assert sprayed < single * 0.5

    def test_queue_proxy_zero_when_undersubscribed(self):
        topo = DualPlaneTopology(segments=2, servers_per_segment=2, rails=1,
                                 planes=2, aggs_per_plane=8)
        model = StaticLoadModel(topo, seed=2)
        selector = make_selector("obs", 128, rng=RngStream(2, "q"))
        # 1 GB over 1 second across 16 uplinks of 200 Gbps: far below rate.
        model.add_flow(ServerAddress(0, 0), ServerAddress(1, 0), 0, selector, 1 * GB)
        avg, peak = model.queue_depth_proxy(duration=1.0)
        assert avg == 0.0 and peak == 0.0

    def test_queue_proxy_positive_when_collided(self):
        topo = DualPlaneTopology(segments=2, servers_per_segment=8, rails=1,
                                 planes=2, aggs_per_plane=2)
        model = StaticLoadModel(topo, seed=4)
        # 8 single-path flows into 4 uplink ports over a tiny duration:
        # collisions are guaranteed and overload those ports.
        for i in range(8):
            selector = make_selector("single", 1, rng=RngStream(4, "s", i))
            model.add_flow(
                ServerAddress(0, i), ServerAddress(1, i), 0, selector,
                25 * GB, connection_id=i,
            )
        avg, peak = model.queue_depth_proxy(duration=1.0)
        assert peak > 0.0

    def test_rates_require_positive_duration(self):
        topo = DualPlaneTopology()
        model = StaticLoadModel(topo)
        with pytest.raises(ValueError):
            model.loads.rates_for([], 0.0)


class TestCoreEscape:
    def topo(self):
        return DualPlaneTopology(segments=2, servers_per_segment=4, rails=2,
                                 planes=2, aggs_per_plane=8)

    def test_escape_route_crosses_planes_via_core(self):
        topo = self.topo()
        src, dst = ServerAddress(0, 0), ServerAddress(1, 1)
        route = topo.escape_route(src, dst, rail=1, path_id=3)
        kinds = [link.kind for link in route]
        assert kinds == ["host_up", "tor_up", "core_up", "core_down",
                         "tor_down", "host_down"]
        up_plane = route[0].key[3]
        down_plane = route[-1].key[3]
        assert up_plane != down_plane  # the whole point of the escape

    def test_same_segment_escape_uses_other_plane_only(self):
        topo = self.topo()
        route = topo.escape_route(ServerAddress(0, 0), ServerAddress(0, 1), 0)
        assert [l.kind for l in route] == ["host_up", "host_down"]
        normal = topo.route(ServerAddress(0, 0), ServerAddress(0, 1), 0)
        assert route[0].key[3] != normal[0].key[3]

    def test_packet_delivered_over_escape_when_plane_dead(self):
        from repro.net import PacketNetSim

        topo = self.topo()
        sim = PacketNetSim(topo, seed=31)
        src, dst = ServerAddress(0, 0), ServerAddress(1, 0)
        primary = topo.route(src, dst, 0, path_id=5)
        # The destination side of the chosen plane dies (agg -> ToR); the
        # escape descends the *other* plane via the core and avoids it.
        sim.inject_loss(primary[2], 1.0)
        delivered = []
        sim.send_packet(topo.escape_route(src, dst, 0, path_id=5), 4096,
                        lambda lat, ecn: delivered.append(lat))
        sim.run()
        assert len(delivered) == 1
        # Six hops instead of four: the escape is longer but alive.
        assert delivered[0] > 0
