"""Trace schema: shape validation, DAG checks, JSONL round-trips."""

import json

import pytest

from repro.traces.schema import (
    COLLECTIVE_KINDS,
    COMPUTE,
    OP_KINDS,
    P2P_KINDS,
    SCHEMA_NAME,
    SCHEMA_VERSION,
    Trace,
    TraceError,
    TraceOp,
    collective_wire_bytes,
    load_trace,
    topological_order,
    validate_trace,
)


def tiny_trace():
    """compute -> send -> recv -> allreduce over 2 ranks."""
    trace = Trace("tiny", 2)
    trace.add(TraceOp("c0", COMPUTE, rank=0, seconds=0.5))
    trace.add(TraceOp("s0", "send", rank=0, peer=1, size_bytes=1024,
                      deps=["c0"]))
    trace.add(TraceOp("r0", "recv", rank=1, peer=0, size_bytes=1024,
                      deps=["s0"]))
    trace.add(TraceOp("ar", "allreduce", ranks=[0, 1], size_bytes=4096,
                      deps=["r0"]))
    return trace


class TestKinds:
    def test_kind_families_partition_op_kinds(self):
        assert OP_KINDS == (COMPUTE,) + COLLECTIVE_KINDS + P2P_KINDS
        assert len(set(OP_KINDS)) == len(OP_KINDS)

    def test_collective_wire_bytes(self):
        # Ring algorithms: allreduce moves 2(n-1)/n * S per rank, the
        # one-phase collectives (n-1)/n * S.
        assert collective_wire_bytes("allreduce", 1000, 4) == 1500
        for kind in ("allgather", "reducescatter", "alltoall"):
            assert collective_wire_bytes(kind, 1000, 4) == 750
        assert collective_wire_bytes("allreduce", 1000, 1) == 0


class TestRoundTrip:
    def test_json_round_trip_preserves_everything(self):
        trace = tiny_trace()
        again = Trace.from_json(trace.to_json())
        assert again.to_json() == trace.to_json()
        assert again.digest() == trace.digest()

    def test_jsonl_dump_and_load(self, tmp_path):
        trace = tiny_trace()
        path = str(tmp_path / "tiny.jsonl")
        trace.dump(path)
        with open(path) as fh:
            header = json.loads(fh.readline())
        assert header["schema"] == SCHEMA_NAME
        assert header["version"] == SCHEMA_VERSION
        loaded = load_trace(path)
        assert loaded.digest() == trace.digest()
        assert loaded.op_ids() == trace.op_ids()

    def test_json_extension_writes_a_document(self, tmp_path):
        trace = tiny_trace()
        path = str(tmp_path / "tiny.json")
        trace.dump(path)
        with open(path) as fh:
            document = json.load(fh)
        assert document["ops"][0]["id"] == "c0"
        assert load_trace(path).digest() == trace.digest()

    def test_digest_tracks_content(self):
        a, b = tiny_trace(), tiny_trace()
        assert a.digest() == b.digest()
        b.ops[-1].size_bytes += 1
        assert a.digest() != b.digest()

    def test_unknown_op_field_rejected(self):
        with pytest.raises(TraceError):
            TraceOp.from_dict({"id": "x", "kind": COMPUTE, "rank": 0,
                               "flux": 1})

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"schema": "not-a-trace", "version": 1, '
                        '"name": "x", "ranks": 1}\n')
        with pytest.raises(TraceError):
            load_trace(str(path))


class TestValidation:
    def test_valid_trace_has_no_problems(self):
        assert validate_trace(tiny_trace()) == []

    def _problems(self, mutate):
        trace = tiny_trace()
        mutate(trace)
        problems = validate_trace(trace)
        assert problems, "expected a validation problem"
        return problems

    def test_duplicate_id(self):
        self._problems(lambda t: t.add(TraceOp("c0", COMPUTE, rank=0)))

    def test_unknown_kind(self):
        trace = tiny_trace()
        trace.ops[0].kind = "teleport"
        assert validate_trace(trace)

    def test_rank_out_of_bounds(self):
        self._problems(lambda t: t.add(TraceOp("c9", COMPUTE, rank=7)))

    def test_collective_needs_two_distinct_ranks(self):
        self._problems(lambda t: t.add(
            TraceOp("ar2", "allreduce", ranks=[1, 1], size_bytes=8)))

    def test_collective_needs_positive_size(self):
        self._problems(lambda t: t.add(
            TraceOp("ar3", "allreduce", ranks=[0, 1], size_bytes=0)))

    def test_send_to_self_rejected(self):
        self._problems(lambda t: t.add(
            TraceOp("s9", "send", rank=1, peer=1, size_bytes=8)))

    def test_recv_needs_matching_send_dep(self):
        # A recv that only depends on a compute has no wire to wait on.
        self._problems(lambda t: t.add(
            TraceOp("r9", "recv", rank=0, peer=1, size_bytes=8,
                    deps=["c0"])))

    def test_unknown_and_self_deps(self):
        self._problems(lambda t: t.add(
            TraceOp("c9", COMPUTE, rank=0, deps=["ghost"])))
        self._problems(lambda t: t.add(
            TraceOp("c8", COMPUTE, rank=0, deps=["c8"])))

    def test_cycle_detected(self):
        trace = tiny_trace()
        trace.ops[0].deps = ["ar"]  # c0 -> ar -> r0 -> s0 -> c0
        assert any("cycle" in p for p in validate_trace(trace))


class TestTopologicalOrder:
    def test_respects_deps_with_file_order_tie_break(self):
        trace = Trace("order", 2)
        trace.add(TraceOp("b", COMPUTE, rank=0))
        trace.add(TraceOp("a", COMPUTE, rank=1))
        trace.add(TraceOp("join", COMPUTE, rank=0, deps=["a", "b"]))
        ordered = [op.id for op in topological_order(trace)]
        # Both roots are ready at once: file order (b before a) wins.
        assert ordered == ["b", "a", "join"]

    def test_cycle_yields_partial_order(self):
        trace = tiny_trace()
        trace.ops[0].deps = ["ar"]
        assert len(topological_order(trace)) < len(trace.ops)
