"""Unit tests for deterministic RNG streams."""

from repro.sim import RngStream, derive_seed


def test_same_identity_same_draws():
    a = RngStream(42, "net", "flow-0")
    b = RngStream(42, "net", "flow-0")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_names_diverge():
    a = RngStream(42, "flow-0")
    b = RngStream(42, "flow-1")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_derive_seed_stable_64bit():
    seed = derive_seed(7, "alpha", "beta")
    assert seed == derive_seed(7, "alpha", "beta")
    assert 0 <= seed < 2**64
    assert seed != derive_seed(7, "alpha", "gamma")
    assert seed != derive_seed(8, "alpha", "beta")


def test_child_streams_are_independent_of_parent_consumption():
    parent = RngStream(1, "root")
    child_before = parent.child("x")
    parent.random()
    parent.random()
    child_after = parent.child("x")
    assert [child_before.random() for _ in range(5)] == [
        child_after.random() for _ in range(5)
    ]


def test_permutation_has_no_fixed_points():
    rng = RngStream(3, "perm")
    for n in (2, 5, 30, 120):
        perm = rng.permutation(n)
        assert sorted(perm) == list(range(n))
        assert all(perm[i] != i for i in range(n))


def test_permutation_tiny_cases():
    rng = RngStream(3, "perm")
    assert rng.permutation(0) == []
    assert rng.permutation(1) == [0]


def test_randint_bounds():
    rng = RngStream(9, "ints")
    draws = [rng.randint(3, 5) for _ in range(100)]
    assert set(draws) <= {3, 4, 5}
    assert len(set(draws)) == 3
