"""Differential lock for the vectorized fluid engine.

The struct-of-arrays rewrite of :mod:`repro.net.fluid_sim` claims its
float semantics are *operation-for-operation* identical to the scalar
engine it replaced — same accumulation order, same per-step arithmetic,
same RNG draw order.  This module holds the pre-refactor scalar engine
(dict-based link weights, per-flow Python loops) as an executable
reference and drives both engines over randomized seeded topologies and
flow mixes, asserting:

* per-step max-min rates agree within 1e-9 (they are in fact
  bit-identical, which the digest check below locks),
* transferred bytes, finish times, and mean rates agree,
* both engines consume their RNG streams in the same order (checked
  implicitly: any divergence in selector draws or ECN coin flips cascades
  into visibly different rates within a step or two),
* a SHA-256 digest over the exact float bits of every step's rate vector
  matches between the two engines.
"""

import collections
import hashlib

import numpy as np
import pytest
from scipy import sparse

from repro.net import DualPlaneTopology, FluidSimulation, ServerAddress
from repro.net.ecmp import flow_entropy
from repro.core.spray import make_selector
from repro.sim.rng import RngStream

_FEEDBACK_SAMPLE_DRAWS = 192
_ANALYTIC = {"rr", "obs"}


class _ScalarFlow:
    """Pre-refactor flow: owns plain-scalar mutable state."""

    def __init__(self, flow_id, src, dst, rail, algorithm, path_count,
                 total_bytes, connection_id, start_time, on_seconds,
                 off_seconds, rng):
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.rail = rail
        self.algorithm = algorithm
        self.path_count = path_count
        self.total_bytes = total_bytes
        self.connection_id = connection_id
        self.start_time = start_time
        self.on_seconds = on_seconds
        self.off_seconds = off_seconds
        self.transferred = 0.0
        self.finish_time = None
        self.rate_history = []
        self.entropy = flow_entropy(src.node_id, dst.node_id, connection_id)
        self.selector = make_selector(algorithm, path_count, rng=rng)
        self._static_plan = None

    @property
    def done(self):
        return self.total_bytes is not None and self.transferred >= self.total_bytes

    def active(self, now):
        if now < self.start_time or self.done:
            return False
        if self.on_seconds is None:
            return True
        period = self.on_seconds + (self.off_seconds or 0.0)
        return (now - self.start_time) % period < self.on_seconds

    def mean_rate(self):
        rates = [r for r in self.rate_history if r is not None]
        return sum(rates) / len(rates) if rates else 0.0


class _ScalarFluidSim:
    """The pre-refactor scalar engine, verbatim semantics.

    Dict-of-weights rows, per-flow Python accumulation loops, per-flow
    state advancement — the implementation the vectorized engine must
    reproduce bit-for-bit.
    """

    def __init__(self, topology, dt=0.01, seed=0):
        self.topology = topology
        self.dt = dt
        self.seed = seed
        self.now = 0.0
        self.flows = []
        self.steps_run = 0
        self._link_index = {}
        self._link_caps = []
        self._rng = RngStream(seed, "fluid-sim")

    def add_flow(self, flow_id, src, dst, rail, algorithm="obs",
                 path_count=128, total_bytes=None, connection_id=0,
                 start_time=0.0, on_seconds=None, off_seconds=None):
        flow = _ScalarFlow(
            flow_id, src, dst, rail, algorithm, path_count, total_bytes,
            connection_id, start_time, on_seconds, off_seconds,
            rng=RngStream(self.seed, "fluid-flow", len(self.flows)),
        )
        self.flows.append(flow)
        return flow

    def _link_id(self, link):
        idx = self._link_index.get(link)
        if idx is None:
            idx = len(self._link_caps)
            self._link_index[link] = idx
            self._link_caps.append(self.topology.link_rate(link))
        return idx

    def _flow_paths(self, flow):
        if flow.algorithm == "single":
            return {flow.selector.next_path(now=self.now): 1.0}
        if flow.algorithm in _ANALYTIC:
            share = 1.0 / flow.path_count
            return {p: share for p in range(flow.path_count)}
        draws = collections.Counter(
            flow.selector.next_path(now=self.now)
            for _ in range(_FEEDBACK_SAMPLE_DRAWS)
        )
        return {p: n / _FEEDBACK_SAMPLE_DRAWS for p, n in draws.items()}

    def _flow_link_weights(self, flow, path_probs):
        weights = collections.defaultdict(float)
        routes = {}
        for path_id, prob in path_probs.items():
            route = self.topology.route(
                flow.src, flow.dst, flow.rail,
                path_id=path_id, connection_id=flow.connection_id,
            )
            routes[path_id] = route
            for link in route:
                weights[self._link_id(link)] += prob
        return weights, routes

    @staticmethod
    def max_min_rates(weight_rows, capacities):
        flow_count = len(weight_rows)
        if flow_count == 0:
            return np.zeros(0)
        rows, cols, vals = [], [], []
        for f, weights in enumerate(weight_rows):
            for link, weight in weights.items():
                rows.append(f)
                cols.append(link)
                vals.append(weight)
        matrix = sparse.csr_matrix(
            (vals, (rows, cols)), shape=(flow_count, len(capacities))
        )
        caps = np.asarray(capacities, dtype=float)
        rates = np.zeros(flow_count)
        active = np.ones(flow_count, dtype=bool)
        for _ in range(flow_count + 1):
            if not active.any():
                break
            demand = matrix.T @ active.astype(float)
            load = matrix.T @ rates
            headroom = caps - load
            constrained = demand > 1e-12
            if not constrained.any():
                break
            delta = np.min(headroom[constrained] / demand[constrained])
            delta = max(delta, 0.0)
            rates[active] += delta
            load = matrix.T @ rates
            saturated = (caps - load) <= caps * 1e-9 + 1.0
            if not saturated.any():
                break
            touching = (matrix[:, saturated].getnnz(axis=1) > 0) & active
            if not touching.any():
                break
            active &= ~touching
        return rates

    def step(self):
        active_flows = [f for f in self.flows if f.active(self.now)]
        weight_rows = []
        route_maps = []
        all_static = True
        for flow in active_flows:
            static = flow.algorithm in _ANALYTIC or flow.algorithm == "single"
            if static and flow._static_plan is not None:
                probs, weights, routes = flow._static_plan
            else:
                all_static = all_static and static
                probs = self._flow_paths(flow)
                weights, routes = self._flow_link_weights(flow, probs)
                if static:
                    flow._static_plan = (probs, weights, routes)
            weight_rows.append(weights)
            route_maps.append((probs, routes))
        rates = self.max_min_rates(weight_rows, self._link_caps)
        if len(self._link_caps):
            loads = np.zeros(len(self._link_caps))
            for f, weights in enumerate(weight_rows):
                for link, weight in weights.items():
                    loads[link] += rates[f] * weight
            caps = np.asarray(self._link_caps)
            utilization = np.divide(loads, caps, out=np.zeros_like(loads),
                                    where=caps > 0)
        else:
            utilization = np.zeros(0)
        for flow in self.flows:
            flow.rate_history.append(None)
        feed_back = not all_static
        for f, flow in enumerate(active_flows):
            rate = float(rates[f])
            flow.rate_history[-1] = rate
            flow.transferred += rate / 8.0 * self.dt
            if flow.done and flow.finish_time is None:
                flow.finish_time = self.now + self.dt
            if feed_back:
                self._feed_back(flow, route_maps[f], utilization)
        self.now += self.dt
        self.steps_run += 1
        return rates

    def _feed_back(self, flow, probs_routes, utilization):
        if flow.algorithm in _ANALYTIC or flow.algorithm == "single":
            return
        probs, routes = probs_routes
        base_rtt = 8e-6
        for path_id, route in routes.items():
            worst = max(
                utilization[self._link_index[link]] for link in route
            )
            mark_probability = min(1.0, max(0.0, (worst - 0.8) / 0.4))
            congested = self._rng.random() < mark_probability
            rtt = base_rtt * (1.0 + 8.0 * max(0.0, worst - 0.8))
            flow.selector.on_feedback(path_id, rtt=rtt, ecn=congested)


# -- randomized case generation -----------------------------------------

_ALGORITHMS = ["obs", "rr", "single", "dwrr", "best_rtt", "mprdma"]


def _random_case(case_seed):
    """Topology parameters plus flow specs from one seeded draw."""
    rng = RngStream(case_seed, "fluid-diff-case")
    topo_kwargs = dict(
        segments=rng.choice([2, 3]),
        servers_per_segment=rng.choice([4, 8]),
        rails=rng.choice([1, 2]),
        planes=rng.choice([1, 2]),
        aggs_per_plane=rng.choice([2, 4, 8]),
    )
    servers = [
        ServerAddress(seg, idx)
        for seg in range(topo_kwargs["segments"])
        for idx in range(topo_kwargs["servers_per_segment"])
    ]
    dt = rng.choice([0.005, 0.01])
    flows = []
    for i in range(rng.randint(3, 6)):
        src, dst = rng.sample(servers, 2)
        algorithm = rng.choice(_ALGORITHMS)
        path_count = 1 if algorithm == "single" else rng.choice([4, 8, 16])
        spec = dict(
            flow_id="f%d" % i,
            src=src,
            dst=dst,
            rail=rng.randint(0, topo_kwargs["rails"] - 1),
            algorithm=algorithm,
            path_count=path_count,
            total_bytes=rng.choice([None, 10 ** rng.randint(6, 8)]),
            connection_id=rng.randint(0, 3),
            start_time=rng.choice([0.0, 2 * dt, 5 * dt]),
        )
        if rng.random() < 0.3:
            spec["on_seconds"] = 3 * dt
            spec["off_seconds"] = 2 * dt
        flows.append(spec)
    return topo_kwargs, dt, flows, rng.randint(0, 99)


def _rates_digest(step_rates):
    """SHA-256 over the exact float bits of every step's rate vector."""
    payload = ";".join(
        ",".join(value.hex() for value in map(float, rates))
        for rates in step_rates
    )
    return hashlib.sha256(payload.encode("ascii")).hexdigest()


class TestDifferential:
    @pytest.mark.parametrize("case_seed", range(6))
    def test_vectorized_matches_scalar_reference(self, case_seed):
        topo_kwargs, dt, flow_specs, sim_seed = _random_case(case_seed)
        vec = FluidSimulation(
            DualPlaneTopology(**topo_kwargs), dt=dt, seed=sim_seed,
            record_history=True,
        )
        ref = _ScalarFluidSim(
            DualPlaneTopology(**topo_kwargs), dt=dt, seed=sim_seed,
        )
        for spec in flow_specs:
            vec.add_flow(**spec)
            ref.add_flow(**spec)
        vec_steps, ref_steps = [], []
        for step in range(25):
            vec_rates = vec.step()
            ref_rates = ref.step()
            assert len(vec_rates) == len(ref_rates), "step %d" % step
            np.testing.assert_allclose(
                vec_rates, ref_rates, rtol=1e-9, atol=0.0,
                err_msg="step %d diverged" % step,
            )
            vec_steps.append(np.asarray(vec_rates))
            ref_steps.append(np.asarray(ref_rates))
        # The rewrite preserves float semantics exactly, not just to
        # tolerance: the digests over raw float bits must match.
        assert _rates_digest(vec_steps) == _rates_digest(ref_steps)
        for vf, rf in zip(vec.flows, ref.flows):
            assert vf.transferred == pytest.approx(rf.transferred, rel=1e-9)
            if rf.finish_time is None:
                assert vf.finish_time is None
            else:
                assert vf.finish_time == pytest.approx(rf.finish_time)
            assert vf.mean_rate() == pytest.approx(rf.mean_rate(), rel=1e-9)
            assert vf.rate_history == rf.rate_history

    def test_run_requires_duration_before_stepping(self):
        # The guard must fire before the loop: steps_run stays 0.
        sim = FluidSimulation(
            DualPlaneTopology(segments=2, servers_per_segment=4, rails=1,
                              planes=1, aggs_per_plane=2),
            dt=0.01, seed=0,
        )
        sim.add_flow("f0", ServerAddress(0, 0), ServerAddress(1, 0), 0,
                     algorithm="obs", path_count=8)
        with pytest.raises(ValueError):
            sim.run()
        assert sim.steps_run == 0
