"""Full-stack integration tests: the whole Stellar host, end to end."""

import pytest

from repro import calibration
from repro.core import StellarHost
from repro.legacy import LegacyHost
from repro.pcie import LutCapacityError
from repro.rnic import connect_qps
from repro.sim.units import GiB, MiB


class TestDenseDeployment:
    """The paper's inference-cluster scenario: >100 instances per server
    (Section 3.1 problem 3).  Stellar hosts them all with GDR; the legacy
    stack hits the switch-LUT wall at 8 GDR VFs per RNIC."""

    def test_stellar_hosts_128_gdr_capable_tenants(self):
        host = StellarHost.build(host_memory_bytes=512 * GiB,
                                 gpu_hbm_bytes=4 * GiB)
        records = []
        for i in range(128):
            records.append(host.launch_container(
                "dense-%d" % i, 1 * GiB, rnic_index=i % 4,
            ))
        # Every tenant can register GPU memory for GDR — no LUT entries
        # were consumed beyond the 4 physical functions'.
        for i, record in enumerate(records[::16]):
            vdev = record.container.vstellar_device
            rnic_index = host.rnics.index(vdev.parent)
            gpu = host.rail_gpus(rnic_index)[0]
            mr = vdev.reg_mr_gpu(gpu, offset=i * MiB, length=1 * MiB)
            result, delivery = vdev.dma_access(mr, mr.va_base, 4096, emit=True)
            assert delivery.destination is gpu
            assert not delivery.visited("RC")
        for switch in host.fabric.switches:
            assert switch.lut_capacity - switch.lut_free == 1

    def test_legacy_stack_cannot(self):
        host = LegacyHost.build(max_vfs_per_rnic=40, lut_capacity=8)
        manager = host.sriov_managers[0]
        vfs = manager.set_num_vfs(32)
        enabled = 0
        with pytest.raises(LutCapacityError):
            for vf in vfs:
                manager.enable_gdr(vf)
                enabled += 1
        assert enabled == 8  # 32 BDFs / 4 switches on the paper's server


class TestCrossTenantDataPath:
    @pytest.fixture(scope="class")
    def host(self):
        return StellarHost.build(host_memory_bytes=64 * GiB,
                                 gpu_hbm_bytes=8 * GiB)

    def test_gdr_write_between_tenants_gpus(self, host):
        """Tenant A writes from its GPU buffer into tenant B's GPU buffer
        through the eMTT datapath — the serverless AI pattern."""
        a = host.launch_container("gdr-a", 1 * GiB, rnic_index=0).container
        b = host.launch_container("gdr-b", 1 * GiB, rnic_index=1).container
        dev_a, dev_b = a.vstellar_device, b.vstellar_device
        gpu_a = host.rail_gpus(0)[0]
        gpu_b = host.rail_gpus(1)[0]
        mr_a = dev_a.reg_mr_gpu(gpu_a, offset=0, length=8 * MiB)
        mr_b = dev_b.reg_mr_gpu(gpu_b, offset=0, length=8 * MiB)
        qp_a = dev_a.create_qp(dev_a.default_pd)
        qp_b = dev_b.create_qp(dev_b.default_pd)
        connect_qps(qp_a, qp_b, nic_a=dev_a, nic_b=dev_b)
        latency = dev_a.rdma_write(qp_a, "gdr", mr_a, mr_a.va_base,
                                   4 * MiB, mr_b.rkey, mr_b.va_base)
        assert qp_a.send_cq.poll()[0].ok
        assert dev_b.bytes_received == 4 * MiB
        # GDR rides the full-rate path: 4 MiB at ~400G plus base overhead.
        assert latency < 200e-6

    def test_pvdma_then_host_rdma_roundtrip(self, host):
        """PVDMA prepares the buffers; untranslated host DMA then resolves
        through the per-tenant IOMMU domain (PASID-selected)."""
        a = host.launch_container("rt-a", 2 * GiB, rnic_index=2).container
        b = host.launch_container("rt-b", 2 * GiB, rnic_index=3).container
        buf_a = a.alloc_buffer(16 * MiB)
        buf_b = b.alloc_buffer(16 * MiB)
        pin_cost = host.dma_prepare(a, buf_a) + host.dma_prepare(b, buf_b)
        assert pin_cost > 0
        # Repeat preparation is free (map-cache hits).
        assert host.dma_prepare(a, buf_a) == 0.0
        dev_a, dev_b = a.vstellar_device, b.vstellar_device
        mr_a = dev_a.reg_mr_host(buf_a)
        mr_b = dev_b.reg_mr_host(buf_b)
        qp_a = dev_a.create_qp(dev_a.default_pd)
        qp_b = dev_b.create_qp(dev_b.default_pd)
        connect_qps(qp_a, qp_b, nic_a=dev_a, nic_b=dev_b)
        dev_a.rdma_write(qp_a, "w", mr_a, buf_a.start, 1 * MiB,
                         mr_b.rkey, buf_b.start)
        assert qp_a.send_cq.poll()[0].ok
        # Physically emit one receive-side TLP and check it resolves into
        # B's guest RAM through the RC + IOMMU.
        result, delivery = dev_b.dma_access(mr_b, buf_b.start, 4096, emit=True)
        assert delivery.destination is host.fabric.host_memory
        expected_hpa = b.gva_to_hpa_chunks(buf_b.start, 1)[0][1]
        assert delivery.translated_address == expected_hpa

    def test_container_teardown_releases_resources(self, host):
        before = len(host.rnics[0].vdevices)
        record = host.launch_container("temp", 1 * GiB, rnic_index=0)
        container = record.container
        host.rnics[0].destroy_vdevice(container.vstellar_device)
        container.shutdown()
        assert len(host.rnics[0].vdevices) == before
        assert not host.hypervisor.iommu.has_domain(container.domain_name)
        assert container.name not in host.hypervisor.containers


class TestScaleHeadline:
    def test_64k_vdevice_accounting(self):
        """We cannot afford to instantiate 64k devices in a unit test, but
        the limit must be enforced exactly at the calibrated constant."""
        host = StellarHost.build(host_memory_bytes=16 * GiB,
                                 gpu_hbm_bytes=2 * GiB)
        rnic = host.rnics[0]
        assert rnic.max_vdevices == calibration.STELLAR_MAX_VDEVICES == 65536
        # Doorbell space: a 32 MiB BAR holds 8192 x 4 KiB doorbells; the
        # production RNIC sizes its BAR for 64k (we verify the arithmetic).
        doorbells_per_bar = rnic.function.bars[0].length // 4096
        assert doorbells_per_bar >= 8192
