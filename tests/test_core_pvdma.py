"""Unit tests for PVDMA: on-demand pinning, the Map Cache, and the
Figure 5 doorbell hazard plus its virtio-shm fix."""

import pytest

from repro import calibration
from repro.core import PvdmaEngine, PvdmaError, run_doorbell_hazard_scenario
from repro.memory import AddressSpace, MemoryKind, MemoryRegion
from repro.sim.units import GiB, MiB
from repro.virt import Hypervisor, MemoryMode, RunDContainer

BLOCK = calibration.PVDMA_BLOCK_BYTES


def make_setup(memory=4 * GiB, mode=MemoryMode.PVDMA):
    hv = Hypervisor()
    container = RunDContainer("c0", memory, hv, memory_mode=mode)
    container.boot()
    return hv, container, PvdmaEngine(hv)


class TestOnDemandPinning:
    def test_first_dma_pins_block(self):
        hv, c, pvdma = make_setup()
        cost = pvdma.dma_prepare(c, 0x0, 4096)
        assert cost > 0
        assert hv.iommu.is_mapped(c.domain_name, 0x0)
        domain = hv.iommu.domain(c.domain_name)
        assert domain.pins.range_pinned(c.hpa_base, BLOCK)

    def test_repeat_dma_hits_map_cache_for_free(self):
        hv, c, pvdma = make_setup()
        pvdma.dma_prepare(c, 0x0, 4096)
        cost = pvdma.dma_prepare(c, 0x100, 4096)
        assert cost == 0.0
        stats = pvdma.stats(c)
        assert stats.hits == 1 and stats.misses == 1

    def test_block_granularity_is_2mib(self):
        hv, c, pvdma = make_setup()
        pvdma.dma_prepare(c, 0x0, 1)  # one byte pins a whole 2 MiB block
        assert pvdma.dma_prepare(c, BLOCK - 1, 1) == 0.0  # same block
        assert pvdma.dma_prepare(c, BLOCK, 1) > 0.0  # next block

    def test_spanning_request_pins_all_blocks(self):
        hv, c, pvdma = make_setup()
        pvdma.dma_prepare(c, BLOCK - 0x1000, 0x2000)  # straddles boundary
        assert hv.iommu.is_mapped(c.domain_name, 0)
        assert hv.iommu.is_mapped(c.domain_name, BLOCK)
        assert len(pvdma.cached_blocks(c)) == 2

    def test_pin_cost_proportional_to_new_blocks(self):
        hv, c, pvdma = make_setup()
        one = pvdma.dma_prepare(c, 0x0, BLOCK)
        four = pvdma.dma_prepare(c, 4 * BLOCK, 4 * BLOCK)
        assert four == pytest.approx(4 * one, rel=0.01)

    def test_on_demand_total_far_below_full_pin(self):
        """The Figure 6 economics: an app touching 1 GiB of a 1.6 TB
        container pays ~1/1600th of the full-pin cost."""
        from repro.memory import full_pin_seconds

        hv, c, pvdma = make_setup(memory=int(1.6e12))
        cost = pvdma.dma_prepare(c, 0x0, 1 * GiB)
        assert cost < full_pin_seconds(int(1.6e12)) / 1000

    def test_release_unmaps_when_last_reference_drops(self):
        hv, c, pvdma = make_setup()
        pvdma.dma_prepare(c, 0x0, 4096)
        pvdma.dma_prepare(c, 0x2000, 4096)  # second ref on same block
        pvdma.dma_release(c, 0x0, 4096)
        assert hv.iommu.is_mapped(c.domain_name, 0x0)  # still referenced
        pvdma.dma_release(c, 0x2000, 4096)
        assert not hv.iommu.is_mapped(c.domain_name, 0x0)

    def test_release_unprepared_rejected(self):
        hv, c, pvdma = make_setup()
        with pytest.raises(PvdmaError):
            pvdma.dma_release(c, 0x0, 4096)

    def test_full_pin_container_rejected(self):
        hv, c, pvdma = make_setup(mode=MemoryMode.FULL_PIN)
        with pytest.raises(PvdmaError):
            pvdma.dma_prepare(c, 0x0, 4096)

    def test_bad_lengths_rejected(self):
        hv, c, pvdma = make_setup()
        with pytest.raises(PvdmaError):
            pvdma.dma_prepare(c, 0x0, 0)
        with pytest.raises(PvdmaError):
            PvdmaEngine(hv, block_size=3 * MiB)


class TestDoorbellHazard:
    def doorbell_region(self):
        return MemoryRegion(
            0xF000_0000, calibration.DOORBELL_PAGE_BYTES,
            AddressSpace.HPA, MemoryKind.DEVICE_MMIO,
        )

    def test_gpa_mapped_doorbell_corrupts(self):
        """Figure 5a-e: with the vDB direct-mapped into guest RAM, the
        GPU's DMA to the recycled page lands on the RNIC doorbell."""
        hv, c, pvdma = make_setup()
        outcome = run_doorbell_hazard_scenario(
            hv, c, pvdma, self.doorbell_region(), use_shm_fix=False
        )
        assert outcome.corrupted
        assert outcome.dma_kind is MemoryKind.DEVICE_MMIO
        assert outcome.dma_hpa == 0xF000_0000
        assert outcome.dma_hpa != outcome.expected_hpa

    def test_shm_doorbell_fix_prevents_corruption(self):
        """Figure 5f: with the vDB in virtio shm I/O space, the PVDMA block
        holds only RAM and the recycled page translates correctly."""
        hv, c, pvdma = make_setup()
        outcome = run_doorbell_hazard_scenario(
            hv, c, pvdma, self.doorbell_region(), use_shm_fix=True
        )
        assert not outcome.corrupted
        assert outcome.dma_kind is MemoryKind.HOST_DRAM
        assert outcome.dma_hpa == outcome.expected_hpa
