"""Unit tests for placement policies — pure, on stub hosts."""

import pytest

from repro.cluster import FleetScheduler, JobSpec, PlacementPolicy
from repro.net.topology import ServerAddress
from repro.sim.units import GiB


class StubHost:
    """The slice of FleetHost the scheduler reads: a name, an address,
    and a [gpus, dram, sfs, lut] free vector."""

    def __init__(self, segment, index, gpus=4, dram=32 * GiB, sfs=8, lut=4):
        self.name = "h%d-%d" % (segment, index)
        self.address = ServerAddress(segment, index)
        self._free = [gpus, dram, sfs, lut]

    def free_vector(self):
        return list(self._free)


def make_hosts(segments=2, per_segment=2, **kwargs):
    return [
        StubHost(segment, index, **kwargs)
        for segment in range(segments)
        for index in range(per_segment)
    ]


def spec(containers=2, gpus=1, memory=1 * GiB, lut=0, name="job"):
    return JobSpec(name, "t", containers=containers, gpus_per_container=gpus,
                   memory_bytes=memory, lut_entries_per_container=lut)


class TestPlacement:
    def test_first_fit_fills_hosts_in_address_order(self):
        hosts = make_hosts()
        sched = FleetScheduler(hosts, PlacementPolicy.FIRST_FIT)
        ring = sched.place(spec(containers=6, gpus=1))
        # 4 GPUs on h0-0, then 2 on h0-1.
        assert [h.name for h in ring] == ["h0-0"] * 4 + ["h0-1"] * 2

    def test_pack_prefers_the_most_loaded_fitting_host(self):
        hosts = make_hosts()
        hosts[1]._free[0] = 1  # h0-1 nearly full: pack targets it first
        sched = FleetScheduler(hosts, PlacementPolicy.PACK)
        ring = sched.place(spec(containers=2, gpus=1))
        assert ring[0].name == "h0-1"

    def test_spread_places_one_container_per_host_per_lap(self):
        hosts = make_hosts()
        sched = FleetScheduler(hosts, PlacementPolicy.SPREAD)
        ring = sched.place(spec(containers=4, gpus=1))
        assert len({h.name for h in ring}) == 4

    def test_spread_ties_interleave_segments(self):
        # Equal free vectors: the index-then-segment tie-break alternates
        # segments, so consecutive ring edges cross the agg planes.
        hosts = make_hosts()
        sched = FleetScheduler(hosts, PlacementPolicy.SPREAD)
        ring = sched.place(spec(containers=2, gpus=1))
        assert {h.address.segment for h in ring} == {0, 1}

    def test_dual_plane_keeps_the_ring_in_one_segment(self):
        hosts = make_hosts()
        sched = FleetScheduler(hosts, PlacementPolicy.DUAL_PLANE)
        ring = sched.place(spec(containers=4, gpus=2))
        assert len({h.address.segment for h in ring}) == 1

    def test_dual_plane_starts_in_the_freest_segment(self):
        hosts = make_hosts()
        for host in hosts:
            if host.address.segment == 0:
                host._free[0] = 1  # segment 0 nearly full
        sched = FleetScheduler(hosts, PlacementPolicy.DUAL_PLANE)
        ring = sched.place(spec(containers=2, gpus=2))
        assert all(h.address.segment == 1 for h in ring)

    def test_unplaceable_job_returns_none(self):
        sched = FleetScheduler(make_hosts(), PlacementPolicy.FIRST_FIT)
        assert sched.place(spec(containers=1, gpus=5)) is None
        assert sched.place(spec(containers=17, gpus=1)) is None

    def test_lut_demand_constrains_placement(self):
        hosts = make_hosts(lut=0)
        sched = FleetScheduler(hosts, PlacementPolicy.FIRST_FIT)
        assert sched.place(spec(containers=1, gpus=1, lut=1)) is None
        assert sched.place(spec(containers=1, gpus=1, lut=0)) is not None

    def test_place_is_pure(self):
        hosts = make_hosts()
        sched = FleetScheduler(hosts, PlacementPolicy.SPREAD)
        before = {h.name: h.free_vector() for h in hosts}
        assert sched.place(spec(containers=4, gpus=1)) is not None
        assert {h.name: h.free_vector() for h in hosts} == before


class TestHostTotals:
    def test_totals_aggregate_shared_hosts(self):
        hosts = make_hosts()
        sched = FleetScheduler(hosts, PlacementPolicy.FIRST_FIT)
        job = spec(containers=3, gpus=1, memory=2 * GiB)
        ring = sched.place(job)
        totals = sched.host_totals(job, ring)
        assert sum(t["gpus"] for t in totals.values()) == 3
        assert sum(t["sfs"] for t in totals.values()) == 3
        assert totals["h0-0"]["dram_bytes"] == 3 * 2 * GiB


class TestQueueAndSnapshot:
    def test_needs_at_least_one_host(self):
        with pytest.raises(ValueError):
            FleetScheduler([])

    def test_snapshot_reports_queue_depth(self):
        sched = FleetScheduler(make_hosts(), PlacementPolicy.DUAL_PLANE)
        sched.enqueue(object())
        snap = sched.snapshot()
        assert snap["queue_depth"] == 1
        assert snap["policy"] == "dual_plane"
        assert snap["hosts"] == 4
