"""Churn edge cases: container stop/start cycles must leak nothing.

Fleet churn (repro.cluster) starts and stops RunD containers all day on
the same hosts; these tests pin down the lifecycle corners that make
that safe: stopping mid-PVDMA leaves no pinned blocks or Map-Cache
state, names are reusable after a stop, double start/stop are rejected,
and an abnormal exit releases exactly the same resources as a graceful
one.
"""

import pytest

from repro.core import StellarHost
from repro.sim.units import GiB, MiB
from repro.virt import ContainerState, HypervisorError, MemoryMode


def make_host():
    return StellarHost.build(
        host_memory_bytes=64 * GiB, gpus=4, rnics=2, gpu_hbm_bytes=1 * GiB
    )


class TestStopDuringPinning:
    def test_stop_after_partial_dma_prepare_leaves_no_pvdma_state(self):
        host = make_host()
        record = host.launch_container("churn-a", 4 * GiB)
        container = record.container
        buf = container.alloc_buffer(64 * MiB)
        # Pin only part of the working set: churn can kill a container at
        # any point of its on-demand pinning ramp.
        cost = host.dma_prepare(container, buf)
        assert cost > 0
        assert host.pvdma.cached_blocks(container)
        host.stop_container(container)
        assert container.state is ContainerState.STOPPED
        assert host.pvdma.cached_blocks(container) == {}
        assert container.name not in host.pvdma.snapshot()["containers"]
        assert not host.hypervisor.iommu.has_domain(container.domain_name)

    def test_forget_container_reports_blocks_it_unmapped(self):
        host = make_host()
        container = host.launch_container("churn-b", 4 * GiB).container
        buf = container.alloc_buffer(8 * MiB)
        host.dma_prepare(container, buf)
        blocks = len(host.pvdma.cached_blocks(container))
        assert blocks > 0
        assert host.pvdma.forget_container(container) == blocks
        # Idempotent: a second forget finds nothing.
        assert host.pvdma.forget_container(container) == 0


class TestNameReuse:
    def test_name_is_reusable_after_stop_with_fresh_map_cache(self):
        host = make_host()
        first = host.launch_container("churn-reuse", 2 * GiB).container
        buf = first.alloc_buffer(4 * MiB)
        host.dma_prepare(first, buf)
        first_misses = host.pvdma.stats(first).misses
        assert first_misses > 0
        host.stop_container(first)

        second = host.launch_container("churn-reuse", 2 * GiB).container
        assert second is not first
        # No inherited registrations: the new container's first DMA
        # misses again instead of hitting the old container's blocks
        # (the fleet-churn variant of the Figure 5 hazard).
        buf2 = second.alloc_buffer(4 * MiB)
        host.dma_prepare(second, buf2)
        stats = host.pvdma.stats(second)
        assert stats.misses > 0
        assert stats.hits == 0


class TestDoubleTransitions:
    def test_double_start_same_name_rejected_while_running(self):
        host = make_host()
        host.launch_container("churn-dup", 2 * GiB)
        with pytest.raises(HypervisorError):
            host.launch_container("churn-dup", 2 * GiB)

    def test_double_boot_rejected(self):
        host = make_host()
        container = host.launch_container("churn-boot", 2 * GiB).container
        with pytest.raises(HypervisorError):
            container.boot()

    def test_double_stop_rejected(self):
        host = make_host()
        container = host.launch_container("churn-stop", 2 * GiB).container
        host.stop_container(container)
        with pytest.raises(HypervisorError):
            host.stop_container(container)


class TestAbnormalExit:
    def test_abnormal_stop_releases_sf_vdevice_and_domain(self):
        host = make_host()
        rnic = host.rnics[0]
        manager = host.sf_managers[0]
        sfs_before = manager.num_sfs
        vdevs_before = len(rnic.vdevices)

        container = host.launch_container(
            "churn-crash", 2 * GiB, rnic_index=0,
            memory_mode=MemoryMode.PVDMA,
        ).container
        buf = container.alloc_buffer(4 * MiB)
        host.dma_prepare(container, buf)
        assert manager.num_sfs == sfs_before + 1
        assert len(rnic.vdevices) == vdevs_before + 1

        host.stop_container(container, abnormal=True)
        assert container.state is ContainerState.STOPPED
        assert manager.num_sfs == sfs_before
        assert len(rnic.vdevices) == vdevs_before
        assert container.vstellar_device is None
        assert container.virtio_net_sf is None
        assert host.pvdma.cached_blocks(container) == {}
        assert not host.hypervisor.iommu.has_domain(container.domain_name)

    def test_abnormal_and_graceful_release_identically(self):
        host = make_host()
        outcomes = []
        for name, abnormal in (("churn-g", False), ("churn-x", True)):
            container = host.launch_container(name, 2 * GiB).container
            buf = container.alloc_buffer(4 * MiB)
            host.dma_prepare(container, buf)
            host.stop_container(container, abnormal=abnormal)
            outcomes.append((
                container.state,
                host.pvdma.cached_blocks(container),
                host.hypervisor.iommu.has_domain(container.domain_name),
            ))
        assert outcomes[0] == outcomes[1]
