"""The six Section 3.1 problems must reproduce on the legacy stack, and
Stellar's design must avoid each one."""

import pytest

from repro import calibration
from repro.core import StellarHost
from repro.legacy import (
    LegacyHost,
    problem_1_vf_inflexibility,
    problem_2_vfio_full_pin,
    problem_3_lut_capacity,
    problem_4_conflicting_fabric_settings,
    problem_5a_rule_order_interference,
    problem_5b_zero_mac_vxlan,
    problem_6_single_path_imbalance,
)
from repro.sim.units import GiB


class TestProblemsReproduce:
    def test_problem_1(self):
        evidence = problem_1_vf_inflexibility()
        assert evidence.triggered, evidence

    def test_problem_2(self):
        evidence = problem_2_vfio_full_pin(memory_bytes=int(1.6e12))
        assert evidence.triggered, evidence
        assert "390" in evidence.detail or "startup" in evidence.detail

    def test_problem_3(self):
        evidence = problem_3_lut_capacity()
        assert evidence.triggered, evidence
        assert "8 of 12" in evidence.detail

    def test_problem_4(self):
        evidence = problem_4_conflicting_fabric_settings()
        assert evidence.triggered, evidence

    def test_problem_5a(self):
        evidence = problem_5a_rule_order_interference()
        assert evidence.triggered, evidence

    def test_problem_5b(self):
        evidence = problem_5b_zero_mac_vxlan()
        assert evidence.triggered, evidence

    def test_problem_6(self):
        evidence = problem_6_single_path_imbalance()
        assert evidence.triggered, evidence


class TestStellarAvoidsThem:
    @pytest.fixture(scope="class")
    def host(self):
        return StellarHost.build(host_memory_bytes=64 * GiB,
                                 gpu_hbm_bytes=4 * GiB)

    def test_avoids_1_dynamic_devices(self, host):
        """vStellar devices come and go dynamically — no reset semantics."""
        rnic = host.rnics[0]
        a = host.launch_container("dyn-a", 1 * GiB)
        before = len(rnic.vdevices)
        b = host.launch_container("dyn-b", 1 * GiB)  # grow without reset
        assert len(rnic.vdevices) == before + 1
        rnic.destroy_vdevice(b.container.vstellar_device)  # shrink one
        assert len(rnic.vdevices) == before
        c = host.launch_container("dyn-c", 1 * GiB)  # grow again
        assert len(rnic.vdevices) == before + 1

    def test_avoids_2_no_upfront_pin(self, host):
        record = host.launch_container("quick", 8 * GiB)
        assert record.total_seconds < 20
        assert not record.container.fully_pinned

    def test_avoids_3_no_new_bdfs(self, host):
        """100+ virtual devices fit without a single extra LUT entry."""
        rnic = host.rnics[1]
        switch = host.fabric.switch_of(rnic.function.bdf)
        free_before = switch.lut_free
        records = [
            host.launch_container("dense-%d" % i, 1 * GiB, rnic_index=1)
            for i in range(12)
        ]
        assert switch.lut_free == free_before
        assert len(rnic.vdevices) >= 12
        for record in records:
            rnic.destroy_vdevice(record.container.vstellar_device)

    def test_avoids_5_rdma_separate_from_tcp(self, host, tenant_buffers=None):
        """RDMA rides virtio-vStellar; TCP rides virtio-net/SF — there is
        no shared steering pipeline to interfere through."""
        record = host.launch_container("sep", 1 * GiB)
        vdev = record.container.vstellar_device
        assert not hasattr(vdev, "vswitch")
        assert record.container.virtio_net_sf is not None

    def test_avoids_6_headline_speedups_are_calibrated(self):
        assert calibration.SPRAY_PATH_COUNT == 128
        assert calibration.SPRAY_RTO_SECONDS == pytest.approx(250e-6)


class TestLegacyHostShape:
    def test_build_matches_server_model(self):
        host = LegacyHost.build()
        assert len(host.rnics) == calibration.SERVER_RNICS
        assert len(host.gpus) == calibration.SERVER_GPUS

    def test_vf_exhaustion_raises(self):
        host = LegacyHost.build()
        host.sriov_managers[0].set_num_vfs(1)
        host.launch_container_with_vf("a", 1 * GiB)
        with pytest.raises(RuntimeError):
            host.launch_container_with_vf("b", 1 * GiB)
