"""Bundled trace library, the traces suite, and data-file cache inputs."""

import os

import pytest

from repro.runner import RunReport, TaskResult
from repro.runner.spec import TaskError, TaskSpec
from repro.runner.suites import build_traces, check_traces
from repro.traces.library import (
    BUILDERS,
    BUNDLED,
    bundled_dir,
    bundled_path,
    load_bundled,
    smallest_bundled,
    write_bundled,
)
from repro.traces.schema import TraceError, validate_trace


class TestBundledLibrary:
    def test_bundled_traces_are_valid(self):
        for name in BUNDLED:
            trace = load_bundled(name)
            assert validate_trace(trace) == []
            assert trace.name == name

    def test_checked_in_files_match_their_builders(self, tmp_path):
        # The library is generated, not hand-edited: rebuilding from the
        # seeded builders must reproduce the checked-in bytes exactly.
        written = write_bundled(str(tmp_path))
        assert sorted(written) == sorted(
            os.path.join(str(tmp_path), "%s.jsonl" % name)
            for name in BUNDLED
        )
        for name in BUNDLED:
            fresh = os.path.join(str(tmp_path), "%s.jsonl" % name)
            with open(fresh, "rb") as fh:
                rebuilt = fh.read()
            with open(bundled_path(name), "rb") as fh:
                checked_in = fh.read()
            assert rebuilt == checked_in, name

    def test_builders_cover_the_issue_scenarios(self):
        assert set(BUILDERS) == {
            "moe_training", "rag_pipeline", "checkpoint_burst",
        }
        moe = BUILDERS["moe_training"]()
        skews = [op.meta["skew"] for op in moe.ops
                 if op.kind == "alltoall"]
        assert skews and all(len(s) == moe.ranks for s in skews)
        # Uneven expert routing: the skew weights genuinely differ.
        assert any(len(set(s)) > 1 for s in skews)

    def test_smallest_bundled_is_smallest(self):
        smallest = smallest_bundled()
        sizes = {name: len(load_bundled(name)) for name in BUNDLED}
        assert sizes[smallest] == min(sizes.values())

    def test_unknown_bundle_name_raises(self):
        with pytest.raises(TraceError):
            bundled_path("imaginary")
        assert bundled_dir() == os.path.dirname(bundled_path(BUNDLED[0]))


def _report(rows):
    results = {}
    for key, value in rows:
        results[key] = TaskResult(key, value, "0" * 64, False, 0.0, {})
    return RunReport(results, workers=0, cache_stats=None, wall_seconds=0.0)


class TestTracesSuite:
    def test_suite_shape(self):
        full = build_traces()
        smoke = build_traces(trim=True)
        full_keys = [s.key for s in full]
        assert "traces/roundtrip/smoke" in full_keys
        assert len(smoke) < len(full)
        # Every replay cell declares its trace file as a data input.
        for spec in full:
            if "/fluid/" in spec.key or "/packet/" in spec.key:
                assert spec.data_files and \
                    os.path.isfile(spec.data_files[0])

    def test_check_flags_disagreeing_repeats(self):
        row = {"ops": 2, "kind_counts": {"compute": 2}, "run": 0}
        other = dict(row, ops=3, kind_counts={"compute": 3}, run=1)
        ok = _report([("traces/x/fluid/run0", row),
                      ("traces/x/fluid/run1", dict(row, run=1))])
        assert check_traces(ok) == []
        bad = _report([("traces/x/fluid/run0", row),
                       ("traces/x/fluid/run1", other)])
        assert any("disagree" in p for p in check_traces(bad))

    def test_check_flags_empty_roundtrip(self):
        report = _report([
            ("traces/roundtrip/smoke", {"collective_sequence": []}),
        ])
        assert any("no collectives" in p for p in check_traces(report))


class TestDataFileDigests:
    def test_digest_tracks_data_file_content(self, tmp_path):
        path = tmp_path / "input.jsonl"
        path.write_text("one\n")
        spec = TaskSpec("k", "repro.runner.tasks:trace_replay",
                        data_files=[str(path)])
        before = spec.digest()
        path.write_text("two\n")
        assert spec.digest() != before

    def test_digest_unchanged_without_data_files(self):
        # Backward compatibility: specs with no data files must keep
        # their pre-data_files digest (existing caches stay valid).
        spec = TaskSpec("k", "repro.runner.tasks:trace_replay")
        assert "data_files" not in spec.spec_payload()
        assert spec.digest() == TaskSpec(
            "k", "repro.runner.tasks:trace_replay", data_files=[]
        ).digest()

    def test_missing_data_file_is_a_task_error(self, tmp_path):
        spec = TaskSpec("k", "repro.runner.tasks:trace_replay",
                        data_files=[str(tmp_path / "gone.jsonl")])
        with pytest.raises(TaskError):
            spec.digest()
