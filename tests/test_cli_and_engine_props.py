"""CLI smoke test plus property tests for the event engine and verbs
byte conservation."""

import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import MemoryKind
from repro.rnic import BaseRnic, connect_qps
from repro.sim import EventScheduler


@pytest.mark.slow
def test_cli_tour_spray():
    result = subprocess.run(
        [sys.executable, "-m", "repro", "spray"],
        capture_output=True, text=True, timeout=120,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert "uplink imbalance vs path count" in result.stdout
    assert "128" in result.stdout


@pytest.mark.slow
def test_cli_rejects_unknown_tour():
    result = subprocess.run(
        [sys.executable, "-m", "repro", "warp"],
        capture_output=True, text=True, timeout=60,
    )
    assert result.returncode != 0


@settings(max_examples=50, deadline=None)
@given(
    delays=st.lists(st.floats(min_value=0.0, max_value=100.0),
                    min_size=1, max_size=50)
)
def test_engine_executes_in_nondecreasing_time_order(delays):
    """Whatever the schedule, callbacks observe a monotone clock and every
    event fires exactly once."""
    sched = EventScheduler()
    fired = []
    for delay in delays:
        sched.schedule(delay, lambda: fired.append(sched.now))
    sched.run()
    assert len(fired) == len(delays)
    assert fired == sorted(fired)
    assert fired == sorted(delays)


@settings(max_examples=50, deadline=None)
@given(
    delays=st.lists(st.floats(min_value=0.0, max_value=10.0),
                    min_size=2, max_size=30),
    cancel_index=st.integers(min_value=0, max_value=29),
)
def test_engine_cancellation_is_exact(delays, cancel_index):
    sched = EventScheduler()
    fired = []
    events = [
        sched.schedule(delay, lambda i=i: fired.append(i))
        for i, delay in enumerate(delays)
    ]
    victim = cancel_index % len(events)
    events[victim].cancel()
    sched.run()
    assert victim not in fired
    assert len(fired) == len(delays) - 1


@settings(max_examples=25, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["write", "read"]),
            st.integers(min_value=1, max_value=1 << 20),
        ),
        min_size=1, max_size=20,
    )
)
def test_verbs_byte_conservation(ops):
    """Across any mix of successful reads and writes, the two NICs' byte
    counters mirror each other exactly."""
    a, b = BaseRnic(name="pa"), BaseRnic(name="pb")
    pd_a, pd_b = a.alloc_pd("t"), b.alloc_pd("t")
    mr_a = a.reg_mr(pd_a, 0x0, [(0x0, 0xA00000, 1 << 20)],
                    MemoryKind.HOST_DRAM, True)
    mr_b = b.reg_mr(pd_b, 0x0, [(0x0, 0xB00000, 1 << 20)],
                    MemoryKind.HOST_DRAM, True)
    qp_a, qp_b = a.create_qp(pd_a), b.create_qp(pd_b)
    connect_qps(qp_a, qp_b, nic_a=a, nic_b=b)
    written = read = 0
    for index, (op, size) in enumerate(ops):
        if op == "write":
            a.rdma_write(qp_a, index, mr_a, 0x0, size, mr_b.rkey, 0x0)
            written += size
        else:
            a.rdma_read(qp_a, index, mr_a, 0x0, size, mr_b.rkey, 0x0)
            read += size
    assert a.bytes_sent == b.bytes_received == written
    assert a.bytes_received == b.bytes_sent == read
    assert len(qp_a.send_cq.poll(len(ops))) == len(ops)
