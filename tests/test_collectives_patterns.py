"""Unit tests for traffic patterns: permutation, incast, burst schedules."""

import pytest

from repro.collectives import (
    BurstSchedule,
    incast_flows_packet,
    permutation_flows_packet,
    permutation_pairs,
)
from repro.net import DualPlaneTopology, PacketNetSim, ServerAddress, run_flows
from repro.sim.units import MB


def topo(**kwargs):
    defaults = dict(segments=2, servers_per_segment=4, rails=2, planes=2,
                    aggs_per_plane=4)
    defaults.update(kwargs)
    return DualPlaneTopology(**defaults)


class TestPermutationPairs:
    def test_every_server_sends_and_receives_once(self):
        servers = list(topo().servers())
        pairs = permutation_pairs(servers, seed=5)
        sources = [src for src, _ in pairs]
        destinations = [dst for _, dst in pairs]
        assert sorted(s.as_tuple() for s in sources) == \
            sorted(s.as_tuple() for s in servers)
        assert sorted(d.as_tuple() for d in destinations) == \
            sorted(s.as_tuple() for s in servers)

    def test_no_self_loops(self):
        pairs = permutation_pairs(list(topo().servers()), seed=6)
        assert all(src != dst for src, dst in pairs)

    def test_deterministic_under_seed(self):
        servers = list(topo().servers())
        a = permutation_pairs(servers, seed=7)
        b = permutation_pairs(servers, seed=7)
        assert a == b


class TestPermutationFlows:
    def test_one_flow_per_server_rail(self):
        t = topo()
        sim = PacketNetSim(t, seed=1)
        flows = permutation_flows_packet(
            sim, list(t.servers()), rails=t.rails, message_bytes=1 * MB,
            algorithm="obs", path_count=8, seed=1,
        )
        assert len(flows) == t.server_count * t.rails
        # Connection ids are unique (distinct ECMP entropy per flow).
        ids = {flow.connection_id for flow in flows}
        assert len(ids) == len(flows)
        results = run_flows(sim, flows, timeout=1.0)
        assert all(flow.done for flow in flows)
        assert sum(r.bytes_acked for r in results) == len(flows) * 1 * MB


class TestIncast:
    def test_incast_converges_on_one_host_port(self):
        t = topo()
        sim = PacketNetSim(t, seed=2)
        destination = ServerAddress(1, 0)
        senders = [ServerAddress(0, i) for i in range(4)]
        flows = incast_flows_packet(
            sim, senders, destination, rail=0, message_bytes=4 * MB,
            algorithm="obs", path_count=16,
        )
        run_flows(sim, flows, timeout=1.0)
        assert all(flow.done for flow in flows)
        # The receiver's host_down ports are the incast bottleneck: they
        # carried everything and built the deepest queues.
        down_ports = [
            port for port in sim.ports()
            if port.ref.kind == "host_down"
            and port.ref.key[:2] == destination.as_tuple()
        ]
        assert max(p.queue_max for p in down_ports) >= max(
            (p.queue_max for p in sim.ports()
             if p.ref.kind == "host_up"), default=0.0,
        )

    def test_incast_rejects_self_send(self):
        t = topo()
        sim = PacketNetSim(t, seed=3)
        with pytest.raises(ValueError):
            incast_flows_packet(
                sim, [ServerAddress(1, 0)], ServerAddress(1, 0), 0,
                message_bytes=1 * MB, algorithm="obs", path_count=4,
            )


class TestBurstSchedule:
    def test_duty_cycle_and_phases(self):
        schedule = BurstSchedule(on_seconds=5.0, off_seconds=5.0)
        assert schedule.period == 10.0
        assert schedule.duty_cycle() == 0.5
        assert schedule.active(0.0)
        assert schedule.active(4.999)
        assert not schedule.active(5.0)
        assert not schedule.active(9.999)
        assert schedule.active(10.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            BurstSchedule(on_seconds=0)
        with pytest.raises(ValueError):
            BurstSchedule(on_seconds=1, off_seconds=-1)

    def test_always_on_when_off_zero(self):
        schedule = BurstSchedule(on_seconds=2.0, off_seconds=0.0)
        assert all(schedule.active(t / 10) for t in range(100))
