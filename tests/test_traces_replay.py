"""TraceReplayer: dependency honoring, fidelities, telemetry surface."""

import pytest

from repro.net import ServerAddress
from repro.obs import FlightRecorder, MetricsRegistry
from repro.traces.builders import build_checkpoint_trace, build_moe_trace
from repro.traces.replay import (
    TraceReplayer,
    default_topology,
    rank_server,
    replay_trace,
)
from repro.traces.schema import (
    COLLECTIVE_KINDS,
    COMPUTE,
    Trace,
    TraceError,
    TraceOp,
)


def chain_trace():
    """Two ranks: parallel computes, a join allreduce, a P2P handoff."""
    trace = Trace("chain", 2)
    trace.add(TraceOp("c0", COMPUTE, rank=0, seconds=0.002))
    trace.add(TraceOp("c1", COMPUTE, rank=1, seconds=0.001))
    trace.add(TraceOp("ar", "allreduce", ranks=[0, 1], size_bytes=1 << 20,
                      deps=["c0", "c1"]))
    trace.add(TraceOp("s", "send", rank=0, peer=1, size_bytes=1 << 16,
                      deps=["ar"]))
    trace.add(TraceOp("r", "recv", rank=1, peer=0, size_bytes=1 << 16,
                      deps=["s"]))
    return trace


class TestTopologyMapping:
    def test_rank_server_round_robins_segments(self):
        topology = default_topology(8)
        assert topology.segments == 2
        assert topology.servers_per_segment == 4
        assert rank_server(0, topology) == ServerAddress(0, 0)
        assert rank_server(1, topology) == ServerAddress(1, 0)
        assert rank_server(5, topology) == ServerAddress(1, 2)

    def test_single_rank_gets_one_segment(self):
        assert default_topology(1).segments == 1


class TestReplaySemantics:
    def test_invalid_trace_rejected_at_construction(self):
        trace = chain_trace()
        trace.ops[0].deps = ["r"]  # cycle
        with pytest.raises(TraceError):
            TraceReplayer(trace)

    def test_dependencies_gate_start_times(self):
        result = replay_trace(chain_trace(), boot_hosts=False)
        log = {entry["id"]: entry for entry in result.op_log}
        trace = chain_trace()
        for op in trace.ops:
            for dep in op.deps:
                assert log[op.id]["start"] >= log[dep]["end"]
        # recv is a sync point: zero duration once the send lands.
        assert log["r"]["start"] == log["r"]["end"]

    def test_independent_roots_overlap(self):
        # c0 and c1 sit on different ranks with no edge between them:
        # the replayer must run them concurrently, not serialize.
        result = replay_trace(chain_trace(), boot_hosts=False)
        log = {entry["id"]: entry for entry in result.op_log}
        assert log["c0"]["start"] == log["c1"]["start"]
        assert result.makespan < 0.002 + 0.001 + 1.0

    def test_double_run_is_deterministic(self):
        rows = [replay_trace(chain_trace(), boot_hosts=False).to_row()
                for _ in range(2)]
        assert rows[0] == rows[1]

    def test_recorded_fidelity_uses_embedded_seconds(self):
        trace = Trace("recorded", 2)
        trace.add(TraceOp("c", COMPUTE, rank=0, seconds=0.25))
        trace.add(TraceOp("ar", "allreduce", ranks=[0, 1],
                          size_bytes=1 << 20, seconds=0.75, deps=["c"]))
        result = replay_trace(trace, fidelity="recorded", boot_hosts=False)
        assert result.makespan == pytest.approx(1.0, abs=1e-9)

    def test_packet_fidelity_replays_and_reproduces(self):
        trace = build_checkpoint_trace(trainers=2, shard_bytes=1 << 18)
        rows = [replay_trace(trace, fidelity="packet",
                             boot_hosts=False).to_row() for _ in range(2)]
        assert rows[0] == rows[1]
        assert rows[0]["ops"] == len(trace)

    def test_host_bringup_charges_setup_time(self):
        trace = chain_trace()
        booted = replay_trace(trace)
        cold = replay_trace(trace, boot_hosts=False)
        assert booted.setup_seconds > 0.0
        assert cold.setup_seconds == 0.0
        # Boot shifts the timeline, never reshapes it.
        assert booted.makespan == pytest.approx(cold.makespan, abs=1e-9)

    def test_op_sequence_filter(self):
        result = replay_trace(chain_trace(), boot_hosts=False)
        assert result.op_sequence(kinds=COLLECTIVE_KINDS) == ["ar"]
        assert set(result.op_sequence()) == set(chain_trace().op_ids())


class TestTelemetry:
    def test_metrics_provider_and_flight_events(self):
        registry = MetricsRegistry("test")
        flight = FlightRecorder()
        replayer = TraceReplayer(chain_trace(), registry=registry,
                                 flight=flight, boot_hosts=False)
        replayer.run()
        snapshot = registry.snapshot(prefix="traces.")
        assert snapshot["traces.replay.ops_replayed"] == 5
        assert snapshot["traces.replay.trace"] == "chain"
        kinds = [event["kind"] for event in flight.events()]
        assert kinds[0] == "replay-start"
        assert kinds[-1] == "replay-done"
        # Only network ops flight-record; computes stay silent.
        assert kinds.count("op-complete") == 3

    def test_bundled_moe_trace_replays(self):
        trace = build_moe_trace(iterations=1)
        result = replay_trace(trace, boot_hosts=False)
        assert result.kind_counts["alltoall"] == 1
        assert result.kind_counts["allreduce"] == 1
        assert result.bytes_moved > 0
        row = result.to_row()
        assert row["ops"] == len(trace)
