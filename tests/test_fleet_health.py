"""End-to-end fleet health: flight recording through churn, SLO breach
attribution, the health suite, and pooled-vs-sequential byte identity.

The acceptance scenario: the 16-host churn run with its mid-run uplink
failure, recorded by an attached FlightRecorder, must yield an
IncidentReport naming at least one impacted job with a populated impact
magnitude and recovery time.
"""

import json

import pytest

from repro.obs import FlightRecorder
from repro.workloads.fleet_bench import (
    CHURN_FAILURE_AT,
    CHURN_FAILURE_SECONDS,
    run_churn,
    run_fleet_smoke,
)


@pytest.fixture(scope="module")
def churn_with_flight():
    flight = FlightRecorder()
    fleet, result = run_churn(flight=flight)
    return fleet, result, flight


@pytest.fixture(scope="module")
def smoke_with_flight():
    flight = FlightRecorder()
    fleet, result = run_fleet_smoke(flight=flight)
    return fleet, result, flight


class TestFlightDuringChurn:
    def test_fleet_events_recorded(self, churn_with_flight):
        fleet, result, flight = churn_with_flight
        kinds = {event["kind"] for event in flight.events()}
        assert {"job-admit", "job-complete", "link-fail", "link-heal",
                "congestion-epoch"} <= kinds
        assert flight.by_kind("job-complete"), "no completions recorded"

    def test_link_failure_event_matches_scenario(self, churn_with_flight):
        _, _, flight = churn_with_flight
        fails = flight.by_kind("link-fail")
        assert len(fails) == 1
        assert fails[0]["t"] == pytest.approx(CHURN_FAILURE_AT)
        assert fails[0]["severity"] == "error"
        assert fails[0]["payload"]["duration"] == pytest.approx(
            CHURN_FAILURE_SECONDS)
        heals = flight.by_kind("link-heal")
        assert heals[0]["t"] == pytest.approx(
            CHURN_FAILURE_AT + CHURN_FAILURE_SECONDS)

    def test_container_churn_recorded_from_hypervisor_hook(
            self, churn_with_flight):
        _, _, flight = churn_with_flight
        registers = flight.by_kind("container-register")
        forgets = flight.by_kind("container-forget")
        assert registers and forgets
        assert all(event["layer"] == "virt" for event in registers)

    def test_attaching_the_recorder_is_passive(self, churn_with_flight):
        fleet, result, _ = churn_with_flight
        _, bare_result = run_churn()
        assert result.rows() == bare_result.rows()


class TestIncidentReport:
    def test_failure_yields_attributed_incident(self, churn_with_flight):
        fleet, _, _ = churn_with_flight
        document = fleet.health_report()
        incidents = [
            incident for incident in document["incidents"]
            if incident["fault"]["kind"] == "link-fail"
        ]
        assert len(incidents) == 1
        incident = incidents[0]
        assert incident["fault"]["t"] == pytest.approx(CHURN_FAILURE_AT)
        assert incident["fault"]["duration"] == pytest.approx(
            CHURN_FAILURE_SECONDS)
        assert incident["congestion_epochs"] > 0
        jobs = [
            entry for entry in incident["affected"]
            if entry["entity"].startswith("job:")
        ]
        assert jobs, "no impacted jobs attributed to the link failure"
        for entry in jobs:
            assert entry["impact"] > 0.0
            assert entry["metrics"]
        recovered = [
            entry for entry in jobs if entry["recovery_seconds"] is not None
        ]
        assert recovered, "no job recorded a recovery time"
        for entry in recovered:
            assert 0.0 < entry["recovery_seconds"] < fleet.engine.now

    def test_health_document_is_json_plain(self, churn_with_flight):
        fleet, _, flight = churn_with_flight
        document = fleet.health_report()
        encoded = json.dumps(document, sort_keys=True)
        decoded = json.loads(encoded)
        assert decoded["flight"]["digest"] == flight.digest()
        assert decoded["fleet"]["jobs_completed"] > 0
        assert len(decoded["jobs"]) == decoded["fleet"]["jobs_submitted"]

    def test_slo_board_tracks_jobs_and_tenants(self, churn_with_flight):
        fleet, result, _ = churn_with_flight
        entities = fleet.slo.entities()
        jobs = [name for name in entities if name.startswith("job:")]
        tenants = [name for name in entities if name.startswith("tenant:")]
        assert len(jobs) == result.counters["jobs_submitted"]
        assert set(tenants) == {"tenant:svc", "tenant:train", "tenant:legacy"}


class TestSmokeHealth:
    def test_smoke_health_report_shape(self, smoke_with_flight):
        fleet, _, _ = smoke_with_flight
        document = fleet.health_report()
        for field in ("generator", "fleet", "jobs", "slo", "incidents",
                      "flight"):
            assert field in document
        # The smoke fleet injects a short uplink failure too.
        assert any(
            incident["fault"]["kind"] == "link-fail"
            for incident in document["incidents"]
        )
        assert flightless_equal(document)

    def test_abort_recorded_as_error(self, smoke_with_flight):
        _, _, flight = smoke_with_flight
        aborts = flight.by_kind("job-abort")
        assert [event["entity"] for event in aborts] == ["job:smoke-abort"]
        assert aborts[0]["severity"] == "error"

    def test_admission_queue_event_for_queued_job(self, smoke_with_flight):
        _, _, flight = smoke_with_flight
        queued = flight.by_kind("admission-queue")
        assert any(
            event["entity"] == "job:smoke-abort" for event in queued)


def flightless_equal(document):
    """Double-run oracle: the same seed rebuilds the same document."""
    flight = FlightRecorder()
    fleet, _ = run_fleet_smoke(flight=flight)
    again = fleet.health_report()
    return json.dumps(again, sort_keys=True) == json.dumps(
        document, sort_keys=True)


class TestHealthSuite:
    def test_pooled_matches_sequential_byte_for_byte(self):
        from repro.runner import run_tasks
        from repro.runner.suites import SUITES

        suite = SUITES["health"]
        specs = suite.build()
        sequential = run_tasks(specs, workers=0)
        pooled = run_tasks(specs, workers=2)
        seq_rows = json.dumps(sequential.rows(), sort_keys=True)
        pool_rows = json.dumps(pooled.rows(), sort_keys=True)
        assert seq_rows == pool_rows
        assert suite.check(sequential) == []
        assert suite.check(pooled) == []

    def test_check_flags_missing_fields(self):
        from repro.runner import RunReport, TaskResult
        from repro.runner.suites import check_health

        results = {
            "health/smoke/seed17": TaskResult(
                "health/smoke/seed17", {"fleet": {}}, "0" * 64, False,
                0.0, {}),
        }
        report = RunReport(results, workers=0, cache_stats=None,
                           wall_seconds=0.0)
        problems = check_health(report)
        assert any("missing" in problem for problem in problems)

    def test_check_validates_merged_incident_shape(self):
        from repro.runner import RunReport, TaskResult
        from repro.runner.suites import check_health

        value = {
            "fleet": {}, "jobs": [], "slo": {}, "flight": {},
            "incidents": [{
                "fault": {"kind": "link-fail"},  # missing t/entity
                "affected": [{"entity": "job:x"}],  # missing impact
            }],
        }
        results = {
            "health/smoke/seed17": TaskResult(
                "health/smoke/seed17", value, "0" * 64, False, 0.0, {}),
        }
        report = RunReport(results, workers=0, cache_stats=None,
                           wall_seconds=0.0)
        problems = check_health(report)
        assert any("fault missing" in problem for problem in problems)
        assert any("impact/recovery" in problem for problem in problems)
