"""Smoke tests: the shipped examples must run clean end to end.

Only the fast examples run here (the full set is exercised manually /
by `make examples`); each must exit 0 and print its headline tables.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name, timeout=120):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


@pytest.mark.slow
def test_quickstart_example():
    output = run_example("quickstart.py")
    assert "Container launch" in output
    assert "GDR TLP: AT=TRANSLATED" in output
    assert "Quickstart completed." in output


@pytest.mark.slow
def test_legacy_pitfalls_example():
    output = run_example("legacy_pitfalls.py")
    assert "Legacy framework: operational problems" in output
    # All staged problems report triggered.
    assert output.count("True") >= 7
    assert "zero resets" in output


def test_examples_directory_complete():
    """The deliverable set: quickstart plus five scenario scripts."""
    names = {path.name for path in EXAMPLES.glob("*.py")}
    assert "quickstart.py" in names
    assert len(names) >= 3
