"""Unit tests for the fluid simulator and AllReduce tasks on top of it."""

import pytest

from repro.collectives import RingAllReduceTask, ring_wire_bytes
from repro.net import DualPlaneTopology, FluidSimulation, ServerAddress
from repro.sim.units import GB, Gbps


def topo(**kwargs):
    defaults = dict(segments=2, servers_per_segment=8, rails=2, planes=2,
                    aggs_per_plane=8)
    defaults.update(kwargs)
    return DualPlaneTopology(**defaults)


class TestMaxMin:
    def test_single_flow_gets_bottleneck_rate(self):
        rates = FluidSimulation.max_min_rates(
            [{0: 1.0}], [Gbps(200)]
        )
        assert rates[0] == pytest.approx(Gbps(200), rel=1e-6)

    def test_two_flows_share_fairly(self):
        rates = FluidSimulation.max_min_rates(
            [{0: 1.0}, {0: 1.0}], [Gbps(200)]
        )
        assert rates[0] == pytest.approx(rates[1])
        assert rates[0] == pytest.approx(Gbps(100), rel=1e-6)

    def test_max_min_protects_unconstrained_flow(self):
        # Flow A uses links 0+1, flow B only link 1; link 0 is the narrow one.
        rates = FluidSimulation.max_min_rates(
            [{0: 1.0, 1: 1.0}, {1: 1.0}], [Gbps(50), Gbps(200)]
        )
        assert rates[0] == pytest.approx(Gbps(50), rel=1e-6)
        assert rates[1] == pytest.approx(Gbps(150), rel=1e-6)

    def test_split_flow_uses_both_planes(self):
        # One flow split 50/50 across two 200G links: 400G total.
        rates = FluidSimulation.max_min_rates(
            [{0: 0.5, 1: 0.5}], [Gbps(200), Gbps(200)]
        )
        assert rates[0] == pytest.approx(Gbps(400), rel=1e-6)

    def test_empty(self):
        assert len(FluidSimulation.max_min_rates([], [])) == 0


class TestFluidFlows:
    def test_sprayed_flow_reaches_dual_port_rate(self):
        sim = FluidSimulation(topo(), dt=0.01, seed=1)
        flow = sim.add_flow("f0", ServerAddress(0, 0), ServerAddress(1, 0), 0,
                            algorithm="obs", path_count=128, total_bytes=None)
        sim.run(duration=0.05)
        # Both planes usable: should exceed a single 200G port clearly.
        assert flow.mean_rate() > Gbps(300)

    def test_single_path_flow_capped_at_one_port(self):
        sim = FluidSimulation(topo(), dt=0.01, seed=1)
        flow = sim.add_flow("f0", ServerAddress(0, 0), ServerAddress(1, 0), 0,
                            algorithm="single", path_count=1, total_bytes=None)
        sim.run(duration=0.05)
        assert flow.mean_rate() == pytest.approx(Gbps(200), rel=1e-3)

    def test_bounded_flow_finishes(self):
        sim = FluidSimulation(topo(), dt=0.01, seed=1)
        flow = sim.add_flow("f0", ServerAddress(0, 0), ServerAddress(1, 0), 0,
                            algorithm="obs", path_count=128,
                            total_bytes=int(0.4 * GB))
        sim.run(until_done=True, max_steps=500)
        assert flow.done
        assert flow.finish_time is not None
        # 0.4 GB at ~47 GB/s is ~9 ms; allow generous slack.
        assert flow.finish_time < 0.1

    def test_on_off_flow_is_idle_in_off_phase(self):
        # rate_history is opt-in (record_history); mean_rate() alone
        # runs off the bounded accumulators.
        sim = FluidSimulation(topo(), dt=0.5, seed=1, record_history=True)
        flow = sim.add_flow("f0", ServerAddress(0, 0), ServerAddress(1, 0), 0,
                            algorithm="obs", path_count=128, total_bytes=None,
                            on_seconds=1.0, off_seconds=1.0)
        sim.run(duration=4.0)
        rates = flow.rate_history
        assert rates[0] is not None  # 0.0-0.5: on
        assert rates[2] is None      # 1.0-1.5: off
        assert rates[4] is not None  # 2.0-2.5: on again

    def test_colliding_single_path_flows_share_uplink(self):
        """Force two single-path flows through one uplink: each gets half."""
        t = topo(aggs_per_plane=1, planes=1)
        sim = FluidSimulation(t, dt=0.01, seed=2)
        a = sim.add_flow("a", ServerAddress(0, 0), ServerAddress(1, 0), 0,
                         algorithm="single", path_count=1)
        b = sim.add_flow("b", ServerAddress(0, 1), ServerAddress(1, 1), 0,
                         algorithm="single", path_count=1)
        sim.run(duration=0.05)
        assert a.mean_rate() == pytest.approx(Gbps(100), rel=1e-3)
        assert b.mean_rate() == pytest.approx(Gbps(100), rel=1e-3)


class TestRingAllReduce:
    def test_wire_bytes_formula(self):
        assert ring_wire_bytes(100, 2) == pytest.approx(100.0)
        assert ring_wire_bytes(100, 100) == pytest.approx(198.0)
        with pytest.raises(ValueError):
            ring_wire_bytes(100, 1)

    def test_unloaded_ring_reaches_full_bus_bandwidth(self):
        """The Figure 10a ceiling: an uncontended ring hits ~50 GB/s."""
        t = topo(servers_per_segment=4, rails=4, aggs_per_plane=8)
        sim = FluidSimulation(t, dt=0.01, seed=3)
        task = RingAllReduceTask(
            "ar", list(t.servers()), data_bytes=int(1 * GB),
            algorithm="obs", path_count=128, rails=4,
        )
        task.launch(sim, continuous=True)
        sim.run(duration=0.05)
        assert task.bus_bandwidth_gb() == pytest.approx(50.0, rel=0.05)

    def test_task_needs_two_servers(self):
        with pytest.raises(ValueError):
            RingAllReduceTask("x", [ServerAddress(0, 0)], data_bytes=1)

    def test_metrics_require_launch(self):
        task = RingAllReduceTask(
            "x", [ServerAddress(0, 0), ServerAddress(0, 1)], data_bytes=1
        )
        with pytest.raises(ValueError):
            task.bus_bandwidth_bytes()

    def test_bounded_allreduce_completes(self):
        t = topo(servers_per_segment=2, rails=1, aggs_per_plane=4)
        sim = FluidSimulation(t, dt=0.005, seed=4)
        task = RingAllReduceTask(
            "ar", list(t.servers()), data_bytes=int(0.2 * GB),
            algorithm="obs", path_count=64, rails=1,
        )
        task.launch(sim)
        sim.run(until_done=True, max_steps=2000)
        assert task.completion_time() is not None
