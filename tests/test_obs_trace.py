"""Tracer unit tests: span ordering, Chrome schema, no-op path."""

import json

import pytest

from repro.obs import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    load_chrome_trace,
    write_chrome_trace,
)
from repro.obs.trace import callback_name
from repro.sim import EventScheduler


def traced_scheduler():
    tracer = Tracer("test")
    sched = EventScheduler(tracer=tracer)
    return sched, tracer


class TestDeterministicOrdering:
    def test_callback_events_follow_execution_order(self):
        """Two identical runs produce identical event streams (names + ts)."""

        def run_once():
            sched, tracer = traced_scheduler()

            def tick():
                pass

            def tock():
                pass

            for delay in (3e-6, 1e-6, 2e-6, 1e-6):  # includes a tie at 1us
                sched.schedule(delay, tick)
                sched.schedule(delay, tock)
            sched.run()
            return [(e.name, e.ts) for e in tracer.events]

        first, second = run_once(), run_once()
        assert first == second
        # Within the tie at t=1us, insertion order (tick before tock) holds.
        names = [name.rsplit(".", 1)[-1]
                 for name, ts in first if ts == pytest.approx(1.0)]
        assert names == ["tick", "tock", "tick", "tock"]

    def test_timestamps_monotonic_on_scheduler_track(self):
        sched, tracer = traced_scheduler()
        for delay in (5e-6, 1e-6, 3e-6):
            sched.schedule(delay, lambda: None)
        sched.run()
        ts = [e.ts for e in tracer.events if e.cat == "callback"]
        assert ts == sorted(ts)
        assert len(ts) == 3


class TestSpans:
    def test_complete_span(self):
        tracer = Tracer()
        tracer.complete("send", 1e-6, 4e-6, track="rnic")
        (event,) = tracer.events
        assert event.ph == "X"
        assert event.ts == pytest.approx(1.0)
        assert event.dur == pytest.approx(3.0)

    def test_complete_rejects_negative_duration(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            tracer.complete("bad", 2e-6, 1e-6)

    def test_begin_end_nesting(self):
        tracer = Tracer()
        tracer.begin("outer", 0.0)
        tracer.begin("inner", 1e-6)
        tracer.end(2e-6)  # closes inner
        tracer.end(3e-6)  # closes outer
        phs = [(e.name, e.ph) for e in tracer.events]
        assert phs == [("outer", "B"), ("inner", "B"), ("inner", "E"), ("outer", "E")]

    def test_end_without_begin_raises(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            tracer.end(0.0)

    def test_async_span_ids_match(self):
        tracer = Tracer()
        tracer.async_begin("flow", id=7, ts=0.0, track="flows")
        tracer.async_end("flow", id=7, ts=1e-3, track="flows")
        begin, end = tracer.events
        assert (begin.ph, end.ph) == ("b", "e")
        assert begin.id == end.id == "7"

    def test_tracks_get_stable_tids(self):
        tracer = Tracer()
        assert tracer.track("a") == 1
        assert tracer.track("b") == 2
        assert tracer.track("a") == 1


class TestSelfProfile:
    def test_record_callback_aggregates_wall_time(self):
        tracer = Tracer()
        tracer.record_callback(1e-6, "tick", 0.5)
        tracer.record_callback(2e-6, "tick", 0.25)
        tracer.record_callback(3e-6, "tock", 0.125)
        profile = tracer.self_profile()
        assert profile["tick"] == (2, 0.75)
        assert profile["tock"] == (1, 0.125)

    def test_queue_depth_emits_counter(self):
        tracer = Tracer()
        tracer.record_callback(1e-6, "tick", 0.0, queue_depth=5)
        counter = [e for e in tracer.events if e.ph == "C"]
        assert len(counter) == 1
        assert counter[0].args == {"events": 5}


class TestChromeExport:
    def test_schema_round_trip(self, tmp_path):
        sched, tracer = traced_scheduler()
        for delay in (1e-6, 2e-6):
            sched.schedule(delay, lambda: None)
        sched.run()
        tracer.async_begin("flow", id=1, ts=0.0, track="flows")
        tracer.async_end("flow", id=1, ts=5e-6, track="flows")

        path = tmp_path / "out.json"
        count = write_chrome_trace(tracer, path)
        assert count == len(tracer)

        # Plain json round-trip: the on-disk document is valid JSON with
        # the trace-event container shape.
        document = json.loads(path.read_text())
        assert isinstance(document["traceEvents"], list)
        assert document["displayTimeUnit"] == "ms"

        # The validating loader agrees and checks per-track monotonicity.
        loaded = load_chrome_trace(path)
        events = loaded["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        names = {e["args"]["name"] for e in meta if e["name"] == "thread_name"}
        assert "scheduler" in names
        assert "flows" in names
        assert any(e["name"] == "process_name" for e in meta)
        for event in events:
            assert {"name", "ph", "ts", "pid", "tid"} <= set(event)

    def test_loader_rejects_non_trace_document(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"nope": 1}))
        with pytest.raises(ValueError):
            load_chrome_trace(path)

    def test_loader_rejects_regressing_timestamps(self, tmp_path):
        path = tmp_path / "regress.json"
        path.write_text(json.dumps({"traceEvents": [
            {"name": "a", "ph": "i", "ts": 5.0, "pid": 1, "tid": 1},
            {"name": "b", "ph": "i", "ts": 2.0, "pid": 1, "tid": 1},
        ]}))
        with pytest.raises(ValueError):
            load_chrome_trace(path)

    def test_clear_resets(self):
        tracer = Tracer()
        tracer.instant("x", 0.0)
        tracer.record_callback(0.0, "f", 0.0)
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.self_profile() == {}


class TestDisabledTracing:
    def test_null_tracer_is_inert(self):
        null = NullTracer()
        null.complete("x", 0.0, 1.0)
        null.instant("x", 0.0)
        null.begin("x", 0.0)
        null.end(0.0)
        null.async_begin("x", 1, 0.0)
        null.async_end("x", 1, 0.0)
        null.counter("x", 0.0, {"v": 1})
        null.record_callback(0.0, "f", 0.0)
        assert len(null) == 0
        assert null.self_profile() == {}
        assert null.to_chrome() == {"traceEvents": [], "displayTimeUnit": "ms"}

    def test_scheduler_normalizes_disabled_tracer_to_none(self):
        sched = EventScheduler(tracer=NULL_TRACER)
        assert sched.tracer is None
        sched = EventScheduler()
        assert sched.set_tracer(NullTracer()) is None
        assert sched.tracer is None

    def test_untraced_scheduler_records_nothing(self):
        sched = EventScheduler()
        sched.schedule(1e-6, lambda: None)
        assert sched.run() == 1
        assert sched.tracer is None

    def test_attach_detach(self):
        sched = EventScheduler()
        tracer = Tracer()
        assert sched.set_tracer(tracer) is tracer
        sched.schedule(1e-6, lambda: None)
        sched.run()
        assert len(tracer) == 1
        sched.set_tracer(None)
        sched.schedule(1e-6, lambda: None)
        sched.run()
        assert len(tracer) == 1  # no new events after detach


class TestCallbackName:
    def test_function_qualname(self):
        def my_callback():
            pass

        assert callback_name(my_callback).endswith("my_callback")

    def test_lambda_labeled_by_module(self):
        name = callback_name(lambda: None)
        assert "<lambda>" in name

    def test_callable_object_uses_type_name(self):
        class Ticker:
            def __call__(self):
                pass

        assert callback_name(Ticker()) == "Ticker"
