"""Differential lock for the packet-sim hot path.

The struct-of-arrays rewrite of :mod:`repro.net.packet_sim` (lazy RTO
ladder, batched window pumps, numpy hop-0 bursts) and the getrandbits
spray draw claim their float semantics and RNG draw order are
*operation-for-operation* identical to the per-packet-event engine they
replaced.  This module holds the pre-refactor flow driver — one RTO
Event scheduled and (almost always) cancelled per packet, scalar pumps,
scalar hop 0 — as an executable reference and drives both over
randomized seeded topologies and flow mixes, asserting that flow
results, CC state, fabric counters, and per-port float accumulators
(busy chains, queue-sample sums) match exactly.

``events_executed`` is deliberately *not* compared: the ladder replaces
per-packet timer events with a handful of ticks, so event counts differ
by design while every simulation-visible outcome is bit-identical.
"""

import random  # simlint: ok D-random  (reference oracle for the draw-equivalence tests)

import pytest

from repro import calibration
from repro.core.spray import ObliviousSpraySelector, SprayConnection
from repro.net import DualPlaneTopology, ServerAddress
from repro.net.packet_sim import (  # simlint: ok L-private
    BURST_MIN_PACKETS,
    MessageFlow,
    PacketNetSim,
    _drop_ignored,
)
from repro.rnic.cc import WindowCC
from repro.sim.rng import RngStream
from repro.sim.units import usec

from functools import partial


class _RefFlow:
    """Pre-refactor message flow: one scheduled RTO Event per packet.

    Uses the same SprayConnection/WindowCC/topology/port machinery as
    MessageFlow (those are unchanged), but drives transmission exactly
    the way the scalar engine did: per-packet can_send/on_send pumps,
    per-packet ``scheduler.schedule`` timers cancelled on ACK, and
    every packet through the scalar ``send_packet`` hop path.
    """

    def __init__(self, sim, flow_id, src, dst, rail, message_bytes,
                 algorithm, path_count, mtu, connection_id, cc,
                 recovery):
        self.sim = sim
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.rail = rail
        self.message_bytes = message_bytes
        self.mtu = mtu
        self.connection_id = connection_id
        self.conn = SprayConnection(
            flow_id, algorithm=algorithm, path_count=path_count,
            rng=RngStream(sim.rng.seed, "flow", flow_id), cc=cc,
            rto=calibration.SPRAY_RTO_SECONDS,
        )
        self.bytes_unsent = message_bytes
        self.bytes_acked = 0
        self.finish_time = None
        self.rto_count = 0
        self._next_seq = 0
        self._outstanding = {}
        self._routes = {}
        self.recovery = recovery
        sim.scheduler.schedule_at(0.0, self._pump)

    def _pump(self):
        conn = self.conn
        now = self.sim.scheduler.now
        while self.bytes_unsent > 0 and conn.cc.can_send(self.mtu):
            size = self.mtu if self.mtu < self.bytes_unsent else self.bytes_unsent
            self.bytes_unsent -= size
            seq = self._next_seq
            self._next_seq += 1
            conn.cc.on_send(size)
            self._transmit(seq, size, conn.selector.next_path(now=now))

    def _transmit(self, seq, size, path):
        route = self._routes.get(path)
        if route is None:
            route = self.sim.topology.route(
                self.src, self.dst, self.rail,
                path_id=path, connection_id=self.connection_id,
            )
            self._routes[path] = route
        scheduler = self.sim.scheduler
        sent_at = scheduler.now
        rto_event = scheduler.schedule(
            self.conn.rto, partial(self._on_rto, seq, size, path)
        )
        self._outstanding[seq] = (rto_event, size, path)
        self.sim.send_packet(
            route, size,
            on_delivered=partial(self._on_delivered, seq, size, path, sent_at),
            on_dropped=_drop_ignored,
        )

    def _on_delivered(self, seq, size, path, sent_at, latency, ecn):
        self.sim.scheduler.schedule_call(
            2.0e-6, partial(self._on_ack, seq, size, path, sent_at, ecn)
        )

    def _on_ack(self, seq, size, path, sent_at, ecn):
        outstanding = self._outstanding
        if self.recovery == "go_back_n":
            if seq not in outstanding:
                return
            if seq != min(outstanding):
                return
        entry = outstanding.pop(seq, None)
        if entry is None:
            return
        entry[0].cancel()
        now = self.sim.scheduler.now
        rtt = now - sent_at
        self.bytes_acked += size
        self.conn.on_ack(path, size, ecn=ecn, rtt=rtt, now=now)
        if self.bytes_acked >= self.message_bytes and self.finish_time is None:
            self.finish_time = now
            return
        self._pump()

    def _on_rto(self, seq, size, path):
        if seq not in self._outstanding:
            return
        self.rto_count += 1
        self.conn.on_loss(path)
        if self.recovery == "go_back_n":
            tail = sorted(s for s in self._outstanding if s >= seq)
            resend = []
            for s in tail:
                event, sz, p = self._outstanding.pop(s)
                event.cancel()
                resend.append((s, sz, p))
            self.conn.cc.on_rto()
            for s, sz, p in resend:
                self.conn.cc.on_send(sz)
                self._transmit(s, sz, self.conn.next_path(now=self.sim.now))
            return
        del self._outstanding[seq]
        self.conn.cc.on_rto(size)
        retry_path = self.conn.retransmit_path(path)
        self.conn.cc.on_send(size)
        self._transmit(seq, size, retry_path)


# -- randomized case generation -----------------------------------------


def _random_case(case_seed):
    rng = RngStream(case_seed, "packet-diff-case")
    topo_kwargs = dict(
        segments=2,
        servers_per_segment=rng.choice([4, 8]),
        rails=rng.choice([1, 2]),
        planes=rng.choice([1, 2]),
        aggs_per_plane=rng.choice([2, 4]),
    )
    servers = [
        ServerAddress(seg, idx)
        for seg in range(topo_kwargs["segments"])
        for idx in range(topo_kwargs["servers_per_segment"])
    ]
    flows = []
    for i in range(rng.randint(3, 5)):
        src, dst = rng.sample(servers, 2)
        algorithm = rng.choice(["obs", "obs", "rr"])
        flows.append(dict(
            flow_id="f%d" % i,
            src=src,
            dst=dst,
            rail=rng.randint(0, topo_kwargs["rails"] - 1),
            message_bytes=rng.choice([1, 2, 4]) * 1024 * 1024,
            algorithm=algorithm,
            path_count=rng.choice([4, 16, 32]),
            mtu=rng.choice([16, 32, 64]) * 1024,
            connection_id=i,
            recovery=rng.choice(["selective", "selective", "go_back_n"]),
            init_window=rng.choice([256, 512, 1024]) * 1024,
        ))
    loss = rng.choice([0.0, 0.0, 0.05, 0.2])
    return topo_kwargs, flows, loss, rng.randint(0, 99)


def _make_cc(spec):
    return WindowCC(
        init_window=spec["init_window"], additive_bytes=64 * 1024,
        target_rtt=usec(150),
    )


def _flow_kwargs(spec):
    return {k: v for k, v in spec.items() if k != "init_window"}


def _port_state(sim):
    return sorted(
        (repr(p.ref), p.busy_until, p.queue_samples, p.queue_sample_sum,
         p.queue_max, p.ecn_marks, p.drops_random, p.drops_overflow)
        for p in sim.ports()
    )


class TestPacketDifferential:
    @pytest.mark.parametrize("case_seed", range(5))
    def test_hot_path_matches_scalar_reference(self, case_seed):
        topo_kwargs, flow_specs, loss, sim_seed = _random_case(case_seed)
        fast_sim = PacketNetSim(DualPlaneTopology(**topo_kwargs), seed=sim_seed)
        ref_sim = PacketNetSim(DualPlaneTopology(**topo_kwargs), seed=sim_seed)
        fast_flows = [
            MessageFlow(fast_sim, cc=_make_cc(spec), **_flow_kwargs(spec))
            for spec in flow_specs
        ]
        ref_flows = [
            _RefFlow(ref_sim, cc=_make_cc(spec), **_flow_kwargs(spec))
            for spec in flow_specs
        ]
        if loss > 0.0:
            # Loss on a *second* hop: first hops stay drop-free, which is
            # the burst path's correctness precondition (it checks; a
            # lossy first hop just disables bursting).
            spec = flow_specs[0]
            for sim in (fast_sim, ref_sim):
                route = sim.topology.route(
                    spec["src"], spec["dst"], spec["rail"],
                    path_id=0, connection_id=spec["connection_id"],
                )
                sim.inject_loss(route[1], loss)
        fast_sim.run(until=0.02)
        ref_sim.run(until=0.02)
        assert fast_sim.packets_sent == ref_sim.packets_sent
        assert fast_sim.packets_delivered == ref_sim.packets_delivered
        assert fast_sim.packets_dropped == ref_sim.packets_dropped
        for fast, ref in zip(fast_flows, ref_flows):
            assert fast.bytes_acked == ref.bytes_acked, fast.flow_id
            assert fast.bytes_unsent == ref.bytes_unsent, fast.flow_id
            assert fast.finish_time == ref.finish_time, fast.flow_id
            assert fast.rto_count == ref.rto_count, fast.flow_id
            assert fast.conn.retransmissions == ref.conn.retransmissions
            # Exact float equality: the CC window integrates every ACK's
            # arithmetic, so a single reordered op would show up here.
            assert fast.conn.cc.window == ref.conn.cc.window, fast.flow_id
            assert fast.conn.cc.in_flight == ref.conn.cc.in_flight
        # Per-port accumulators are float += chains over every packet;
        # bit-equality locks the numpy cumsum rewrite of hop 0.
        assert _port_state(fast_sim) == _port_state(ref_sim)

    def test_loss_free_case_actually_bursts(self):
        # Guard against the burst path silently never engaging: a
        # loss-free flow whose window spans >= BURST_MIN_PACKETS packets
        # must route its opening burst through send_burst.
        topo = DualPlaneTopology(segments=2, servers_per_segment=4,
                                 rails=1, planes=1, aggs_per_plane=2)
        sim = PacketNetSim(topo, seed=3)
        calls = []
        original = sim.send_burst

        def counting(rows):
            calls.append(len(rows))
            return original(rows)

        sim.send_burst = counting
        mtu = 32 * 1024
        MessageFlow(
            sim, "burst", ServerAddress(0, 0), ServerAddress(1, 0), 0,
            message_bytes=4 * 1024 * 1024, algorithm="obs", path_count=8,
            mtu=mtu, connection_id=0,
            cc=WindowCC(init_window=BURST_MIN_PACKETS * mtu,
                        additive_bytes=64 * 1024, target_rtt=usec(150)),
        )
        sim.run(until=0.005)
        assert calls and calls[0] >= BURST_MIN_PACKETS


class TestSprayDrawEquivalence:
    """The getrandbits fast path must reproduce randint draw-for-draw."""

    @pytest.mark.parametrize("path_count", [1, 2, 5, 7, 64, 100, 128])
    def test_matches_randint_sequence(self, path_count):
        stream = RngStream(42, "spray-equiv", path_count)
        selector = ObliviousSpraySelector(path_count, rng=stream)
        reference = random.Random(stream.seed)  # simlint: ok D-random
        draws = [selector.next_path() for _ in range(500)]
        expected = [reference.randint(0, path_count - 1) for _ in range(500)]
        assert draws == expected
        # Both consumed the same number of underlying draws: the next
        # value still agrees after 500 draws.
        assert selector.next_path() == reference.randint(0, path_count - 1)

    def test_plain_random_fallback(self):
        # rngs without a getrandbits binding keep the randint path.
        class _RandintOnly:
            def __init__(self):
                self._r = random.Random(7)  # simlint: ok D-random
                self.randint = self._r.randint

        selector = ObliviousSpraySelector(16, rng=_RandintOnly())
        reference = random.Random(7)  # simlint: ok D-random
        assert [selector.next_path() for _ in range(100)] == [
            reference.randint(0, 15) for _ in range(100)
        ]
