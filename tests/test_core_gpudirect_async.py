"""GPUDirect Async: the GPU rings the vStellar doorbell via the IOMMU.

The virtio-shm fix (Figure 5f) removes the doorbell from guest-physical
space, which would break GPUDirect Async; Section 5's remedy registers
the doorbell's I/O memory in the GPU's IOMMU page table on demand.
"""

import pytest

from repro.core import StellarHost, VStellarError
from repro.memory import PageFault
from repro.pcie import AddressType, Tlp
from repro.sim.units import GiB


@pytest.fixture(scope="module")
def setup():
    host = StellarHost.build(host_memory_bytes=32 * GiB, gpu_hbm_bytes=4 * GiB)
    record = host.launch_container("gda", 2 * GiB)
    vdev = record.container.vstellar_device
    gpu = host.rail_gpus(0)[0]
    return host, vdev, gpu


def test_gpu_cannot_reach_shm_doorbell_by_default(setup):
    host, vdev, gpu = setup
    # Nothing maps the doorbell into the container's IOMMU domain yet;
    # the GPU's DMA would fault at the IOMMU (or lack a domain binding).
    da_guess = (1 << 46) + vdev.pasid * 4096
    from repro.pcie.device import PcieError

    with pytest.raises((PageFault, PcieError)):
        host.fabric.route(Tlp.mem_write(da_guess, 8, gpu.bdf,
                                        at=AddressType.UNTRANSLATED))


def test_enable_gpudirect_async_routes_gpu_dma_to_doorbell(setup):
    host, vdev, gpu = setup
    da = vdev.enable_gpudirect_async(host.hypervisor, gpu)
    delivery = host.fabric.route(
        Tlp.mem_write(da, 8, gpu.bdf, at=AddressType.UNTRANSLATED)
    )
    # The write lands on the RNIC function (the doorbell lives in its BAR)
    # after IOMMU translation at the root complex.
    assert delivery.destination is vdev.parent.function
    assert delivery.visited("RC")
    assert delivery.translated_address == vdev.doorbell_region.start


def test_gda_requires_shm_doorbell(setup):
    host, vdev, gpu = setup
    # Build a GPA-doorbell device directly (needs hypervisor + vdb_gpa).
    container = host.launch_container("gda-tmp", 1 * GiB).container
    legacy_vdev, _ = host.rnics[2].create_vdevice(
        container, use_shm_doorbell=False, vdb_gpa=0x40000000,
        hypervisor=host.hypervisor,
    )
    with pytest.raises(VStellarError):
        legacy_vdev.enable_gpudirect_async(host.hypervisor, gpu)


def test_doorbell_das_are_per_device(setup):
    host, vdev, gpu = setup
    other = host.launch_container("gda-2", 1 * GiB).container.vstellar_device
    da_a = vdev.enable_gpudirect_async(host.hypervisor, gpu)
    da_b = other.enable_gpudirect_async(host.hypervisor, gpu)
    assert da_a != da_b
