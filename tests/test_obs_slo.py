"""SLO reducer, breach state machine, and incident-attribution tests.

The reducers are deterministic functions of (sim time, value) streams,
so two identically-fed trackers must emit byte-identical breach events —
that invariant is what lets the fleet determinism harness digest the
flight log.
"""

import json

import pytest

from repro.obs import FlightRecorder
from repro.obs.slo import (
    SLO_LATENCY_MULTIPLE,
    Ewma,
    SimWindow,
    SloBoard,
    SloPolicy,
    SloTracker,
    build_health_document,
    build_incidents,
    default_job_policy,
    merge_incident_reports,
)


class TestReducers:
    def test_ewma_converges_and_zscores(self):
        ewma = Ewma(alpha=0.5)
        for value in (10.0, 10.0, 10.0, 10.0):
            ewma.update(value)
        assert ewma.mean == pytest.approx(10.0)
        assert ewma.zscore(10.0) == pytest.approx(0.0, abs=1e-6)
        # A far outlier scores high once variance is non-degenerate.
        ewma.update(14.0)
        assert ewma.zscore(20.0) > 2.0

    def test_ewma_alpha_validated(self):
        with pytest.raises(ValueError):
            Ewma(alpha=0.0)

    def test_window_prunes_prefix_and_quantiles(self):
        window = SimWindow(window=10.0)
        for i in range(20):
            window.add(float(i), float(i))
        assert len(window) == 11
        assert window.values() == [float(i) for i in range(9, 20)]
        assert window.quantile(0.99) == 19.0
        assert window.quantile(0.0) == 9.0
        assert window.mean() == pytest.approx(14.0)

    def test_deterministic_across_two_seeded_runs(self):
        from repro.sim.rng import RngStream

        def run():
            rng = RngStream(23, "slo-test")
            tracker = SloTracker(
                "job:x", SloPolicy(latency_p99_ceiling=1.5))
            emitted = []
            for i in range(200):
                value = 1.0 + rng.random()
                emitted.extend(tracker.observe(i * 0.1, "latency", value))
            return json.dumps(emitted, sort_keys=True)

        assert run() == run()


class TestPolicy:
    def test_default_job_policy_anchors_on_isolated_baseline(self):
        policy = default_job_policy(2.0)
        assert policy.goodput_floor == pytest.approx(0.3)
        assert policy.latency_p99_ceiling == pytest.approx(2.5)
        assert policy.admission_wait_budget == 30.0

    def test_degenerate_baseline_keeps_wait_budget_only(self):
        policy = default_job_policy(None)
        assert policy.goodput_floor is None
        assert policy.admission_wait_budget == 30.0

    def test_unknown_metric_rejected(self):
        with pytest.raises(KeyError):
            SloPolicy().limit("temperature")


class TestTracker:
    def test_breach_then_recover_emits_paired_events(self):
        flight = FlightRecorder()
        tracker = SloTracker(
            "job:a", SloPolicy(retx_rate_ceiling=0.1), flight=flight,
            alpha=1.0)  # alpha=1: the EWMA is the raw value
        assert tracker.observe(0.0, "retx_rate", 0.01) == []
        events = tracker.observe(1.0, "retx_rate", 0.5)
        assert [e["kind"] for e in events] == ["slo-breach"]
        assert tracker.breached("retx_rate")
        # Still breaching: no duplicate event.
        assert tracker.observe(2.0, "retx_rate", 0.4) == []
        events = tracker.observe(5.0, "retx_rate", 0.0)
        assert [e["kind"] for e in events] == ["slo-recover"]
        assert events[0]["payload"]["breach_seconds"] == pytest.approx(4.0)
        assert not tracker.breached()
        assert [e["kind"] for e in flight.events()] == [
            "slo-breach", "slo-recover"]

    def test_goodput_floor_is_breach_when_below(self):
        tracker = SloTracker(
            "job:b", SloPolicy(goodput_floor=1.0), alpha=1.0)
        assert tracker.observe(0.0, "goodput", 2.0) == []
        events = tracker.observe(1.0, "goodput", 0.5)
        assert events and events[0]["payload"]["ratio"] == pytest.approx(2.0)

    def test_snapshot_reports_peaks_and_counts(self):
        tracker = SloTracker(
            "job:c", SloPolicy(latency_p99_ceiling=1.0), alpha=1.0)
        tracker.observe(0.0, "latency", 3.0)
        snap = tracker.snapshot()
        assert snap["breached"]
        state = snap["metrics"]["latency"]
        assert state["breaches"] == 1
        assert state["peak_ratio"] == pytest.approx(3.0)

    def test_unlimited_metric_never_breaches(self):
        tracker = SloTracker("job:d", SloPolicy())
        assert tracker.observe(0.0, "latency", 99.0) == []
        assert not tracker.breached()


class TestBoard:
    def test_requires_policy_on_first_touch(self):
        board = SloBoard()
        with pytest.raises(KeyError):
            board.tracker("job:x")
        board.tracker("job:x", SloPolicy(latency_p99_ceiling=1.0))
        assert "job:x" in board
        assert board.entities() == ["job:x"]

    def test_breached_entities_in_registration_order(self):
        board = SloBoard()
        for name in ("job:b", "job:a"):
            board.tracker(name, SloPolicy(latency_p99_ceiling=1.0))
        board.observe(0.0, "job:a", "latency", 5.0)
        board.observe(0.0, "job:b", "latency", 5.0)
        assert board.breached_entities() == ["job:b", "job:a"]
        assert board.snapshot()["breached"] == 2


def _fault_log():
    """A hand-built flight log: fault at t=10, heal at t=20, one victim
    breaching inside the window and recovering, one breach far outside."""
    flight = FlightRecorder()
    flight.record(10.0, "cluster", "link-fail", entity="link-0", duration=10.0)
    flight.record(11.0, "cluster", "congestion-epoch", running=3)
    flight.record(12.0, "slo", "slo-breach", entity="job:victim",
                  severity="warn", metric="latency", ratio=1.8)
    flight.record(18.0, "slo", "slo-recover", entity="job:victim",
                  metric="latency", breach_seconds=6.0)
    flight.record(20.0, "cluster", "link-heal", entity="link-0")
    flight.record(90.0, "slo", "slo-breach", entity="job:later",
                  severity="warn", metric="goodput", ratio=1.2)
    return flight


class TestIncidents:
    def test_attribution_window_and_recovery(self):
        incidents = build_incidents(_fault_log().events(), grace=5.0)
        assert len(incidents) == 1
        incident = incidents[0]
        assert incident["fault"]["kind"] == "link-fail"
        assert incident["fault"]["healed_t"] == 20.0
        assert incident["fault"]["duration"] == pytest.approx(10.0)
        assert incident["window"] == {"start": 10.0, "end": 25.0}
        assert incident["congestion_epochs"] == 1
        affected = incident["affected"]
        assert [entry["entity"] for entry in affected] == ["job:victim"]
        assert affected[0]["impact"] == pytest.approx(1.8)
        assert affected[0]["metrics"] == ["latency"]
        assert affected[0]["recovery_seconds"] == pytest.approx(8.0)

    def test_job_completion_clears_impact(self):
        flight = FlightRecorder()
        flight.record(0.0, "net", "path-down", entity="p", severity="error")
        flight.record(1.0, "slo", "slo-breach", entity="job:x",
                      metric="goodput", ratio=1.5)
        flight.record(4.0, "cluster", "job-complete", entity="job:x")
        incidents = build_incidents(flight.events())
        entry = incidents[0]["affected"][0]
        assert entry["recovery_seconds"] == pytest.approx(4.0)

    def test_unhealed_fault_window_runs_to_log_end(self):
        flight = FlightRecorder()
        flight.record(5.0, "cluster", "link-fail", entity="l")
        flight.record(50.0, "slo", "slo-breach", entity="job:x",
                      metric="latency", ratio=1.1)
        incidents = build_incidents(flight.events(), grace=2.0)
        assert incidents[0]["fault"]["healed_t"] is None
        assert incidents[0]["window"]["end"] == 52.0
        assert incidents[0]["affected"][0]["recovery_seconds"] is None

    def test_empty_log_is_no_incidents(self):
        assert build_incidents([]) == []

    def test_merge_annotates_sources_in_order(self):
        incidents = build_incidents(_fault_log().events())
        merged = merge_incident_reports([
            ("run/a", incidents), ("run/b", []), ("run/c", incidents),
        ])
        assert [entry["source"] for entry in merged] == ["run/a", "run/c"]
        # Merging never mutates the inputs.
        assert "source" not in incidents[0]


class TestHealthDocument:
    def test_document_shape(self):
        flight = _fault_log()
        board = SloBoard(flight=flight)
        board.tracker(
            "tenant:t", SloPolicy(latency_p99_ceiling=SLO_LATENCY_MULTIPLE))
        document = build_health_document(
            {"jobs_completed": 2}, [{"job": "a"}],
            board=board, flight=flight)
        assert document["generator"] == "repro.obs.slo"
        assert document["fleet"]["jobs_completed"] == 2
        assert document["jobs"] == [{"job": "a"}]
        assert document["slo"]["entities"] == 1
        assert len(document["incidents"]) == 1
        assert document["flight"]["digest"] == flight.digest()
        assert document["flight"]["recorded"] == flight.recorded
        json.dumps(document)  # must be JSON-plain end to end

    def test_document_without_instrumentation(self):
        document = build_health_document({}, [])
        assert document["slo"] == {}
        assert document["incidents"] == []
        assert document["flight"] == {}
