"""Double-run determinism regression: the seeded full-stack probe must
reproduce itself byte-for-byte (flattened metrics) and event-for-event
(trace digest).  Every figure in EXPERIMENTS.md rests on this."""

import json

import pytest

from repro.obs.determinism import (
    canonical_trace_events,
    check_determinism,
    probe_fingerprint,
    snapshot_digest,
    trace_digest,
)
from repro.obs.trace import Tracer


class TestDigests:
    def test_snapshot_digest_is_stable_across_key_order(self):
        a = {"x": 1, "y": 2.5}
        b = {"y": 2.5, "x": 1}
        assert snapshot_digest(a) == snapshot_digest(b)

    def test_snapshot_digest_sees_value_changes(self):
        assert snapshot_digest({"x": 1}) != snapshot_digest({"x": 2})

    def test_trace_digest_strips_wall_clock(self):
        first, second = Tracer("t"), Tracer("t")
        first.record_callback(1e-6, "cb", wall_seconds=0.001)
        second.record_callback(1e-6, "cb", wall_seconds=0.999)
        assert trace_digest(first) == trace_digest(second)

    def test_trace_digest_sees_sim_time_changes(self):
        first, second = Tracer("t"), Tracer("t")
        first.instant("x", 1e-6)
        second.instant("x", 2e-6)
        assert trace_digest(first) != trace_digest(second)

    def test_canonical_events_keep_non_wall_args(self):
        tracer = Tracer("t")
        tracer.instant("x", 1e-6, args={"bytes": 64})
        events = canonical_trace_events(tracer)
        payload = [e for e in events if e.get("name") == "x"]
        assert payload and payload[0]["args"] == {"bytes": 64}

    def test_canonical_events_are_json_serializable(self):
        tracer = Tracer("t")
        tracer.complete("span", 0.0, 1e-6)
        json.dumps(canonical_trace_events(tracer))


class TestDoubleRunProbe:
    @pytest.fixture(scope="class")
    def report(self):
        return check_determinism(seed=17, runs=2)

    def test_metrics_snapshots_identical(self, report):
        assert report.metric_mismatches == []
        first, second = report.fingerprints
        assert first.metrics == second.metrics
        # Byte-identical, not merely equal:
        assert (json.dumps(first.metrics, sort_keys=True, default=repr)
                == json.dumps(second.metrics, sort_keys=True, default=repr))
        assert first.metrics_digest == second.metrics_digest

    def test_trace_digests_identical(self, report):
        first, second = report.fingerprints
        assert first.trace_digest == second.trace_digest
        assert first.trace_events == second.trace_events > 0
        assert report.trace_match

    def test_report_is_ok(self, report):
        assert report.ok
        assert report.describe().startswith("deterministic")

    def test_different_seed_changes_the_fingerprint(self, report):
        other = probe_fingerprint(seed=18)
        assert other.metrics_digest != report.fingerprints[0].metrics_digest

    def test_mismatch_reporting_names_the_metric(self):
        fp_a = probe_fingerprint(seed=17)
        fp_b = probe_fingerprint(seed=18)
        # Hand-build a report the way check_determinism would if a seed
        # leaked: the diff must name concrete metric keys.
        from repro.obs.determinism import DeterminismReport

        mismatches = [
            (key, [fp_a.metrics.get(key), fp_b.metrics.get(key)])
            for key in fp_a.metrics
            if fp_a.metrics.get(key) != fp_b.metrics.get(key)
        ][:5]
        report = DeterminismReport([fp_a, fp_b], mismatches,
                                   fp_a.trace_digest == fp_b.trace_digest)
        assert not report.ok
        assert "differs across runs" in report.describe() or \
            "trace digests differ" in report.describe()

    def test_rejects_single_run(self):
        with pytest.raises(ValueError):
            check_determinism(runs=1)


class TestFleetDeterminism:
    @pytest.fixture(scope="class")
    def smoke_report(self):
        from repro.obs.determinism import check_fleet_determinism

        return check_fleet_determinism(seeds=(17, 23), runs=2,
                                       scenario="smoke")

    def test_each_seed_reproduces(self, smoke_report):
        for seed, report in smoke_report.reports.items():
            assert report.ok, "seed %d: %s" % (seed, report.describe())
            first, second = report.fingerprints
            assert first.metrics == second.metrics
            assert first.trace_digest == second.trace_digest

    def test_distinct_seeds_produce_distinct_traces(self, smoke_report):
        assert smoke_report.cross_seed_distinct
        assert smoke_report.ok

    def test_churn_scenario_double_run_is_digest_equal(self):
        from repro.obs.determinism import check_fleet_determinism

        report = check_fleet_determinism(seeds=(17,), runs=2,
                                         scenario="churn")
        assert report.ok, report.describe()
        inner = report.reports[17]
        assert inner.trace_match
        assert inner.metric_mismatches == []
        assert inner.fingerprints[0].trace_events > 0

    def test_rejects_single_fleet_run(self):
        from repro.obs.determinism import check_fleet_determinism

        with pytest.raises(ValueError):
            check_fleet_determinism(runs=1)
