"""Unit and property tests for the LRU translation cache."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import TranslationCache


def test_hit_and_miss_counting():
    cache = TranslationCache(2)
    hit, _ = cache.lookup("a")
    assert not hit
    cache.insert("a", 1)
    hit, value = cache.lookup("a")
    assert hit and value == 1
    assert cache.hits == 1 and cache.misses == 1
    assert cache.hit_rate == pytest.approx(0.5)
    assert cache.miss_rate == pytest.approx(0.5)


def test_lru_eviction_order():
    cache = TranslationCache(2)
    cache.insert("a", 1)
    cache.insert("b", 2)
    cache.lookup("a")  # refresh a; b is now LRU
    cache.insert("c", 3)
    assert "a" in cache
    assert "b" not in cache
    assert "c" in cache
    assert cache.evictions == 1


def test_reinsert_does_not_evict():
    cache = TranslationCache(2)
    cache.insert("a", 1)
    cache.insert("b", 2)
    cache.insert("a", 10)  # update, not a new entry
    assert cache.evictions == 0
    assert cache.peek("a") == 10


def test_invalidate():
    cache = TranslationCache(4)
    cache.insert("a", 1)
    cache.insert("b", 2)
    cache.invalidate("a")
    cache.invalidate("missing")  # no-op
    assert "a" not in cache and "b" in cache
    assert cache.invalidations == 1


def test_invalidate_where_and_clear():
    cache = TranslationCache(8)
    for i in range(6):
        cache.insert(("dom", i), i)
    removed = cache.invalidate_where(lambda key: key[1] % 2 == 0)
    assert removed == 3
    assert len(cache) == 3
    cache.clear()
    assert len(cache) == 0


def test_reset_counters_keeps_contents():
    cache = TranslationCache(2)
    cache.insert("a", 1)
    cache.lookup("a")
    cache.lookup("zz")
    cache.reset_counters()
    assert cache.hits == cache.misses == 0
    assert "a" in cache


def test_zero_capacity_rejected():
    with pytest.raises(ValueError):
        TranslationCache(0)


@settings(max_examples=60, deadline=None)
@given(
    capacity=st.integers(min_value=1, max_value=16),
    keys=st.lists(st.integers(min_value=0, max_value=40), min_size=1, max_size=200),
)
def test_cache_never_exceeds_capacity_and_counts_balance(capacity, keys):
    cache = TranslationCache(capacity)
    for key in keys:
        hit, _ = cache.lookup(key)
        if not hit:
            cache.insert(key, key)
        assert len(cache) <= capacity
    assert cache.hits + cache.misses == len(keys)


@settings(max_examples=30, deadline=None)
@given(capacity=st.integers(min_value=1, max_value=8))
def test_cyclic_access_beyond_capacity_always_misses(capacity):
    """LRU's pathology: a cyclic scan one entry wider than the cache never
    hits — this is exactly the Figure 8 round-robin worst case."""
    cache = TranslationCache(capacity)
    working_set = capacity + 1
    for _ in range(5):  # several full cycles
        for key in range(working_set):
            hit, _ = cache.lookup(key)
            if not hit:
                cache.insert(key, key)
    assert cache.hits == 0
