"""simlint rule tests: each rule fires on a seeded bad snippet and stays
quiet on the idiomatic equivalent — plus the gate that the shipped tree
itself lints clean."""

import os
import subprocess
import sys
import textwrap

import pytest

from repro.lint import (
    RULES,
    layer_violation,
    lint_paths,
    lint_source,
    module_name_for,
    parse_waivers,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def rules_fired(source, path="src/repro/net/snippet.py"):
    return {v.rule for v in lint_source(textwrap.dedent(source), path=path)}


class TestDRandom:
    def test_import_random_fires(self):
        assert "D-random" in rules_fired("import random\n")

    def test_from_random_fires(self):
        assert "D-random" in rules_fired("from random import choice\n")

    def test_secrets_fires(self):
        assert "D-random" in rules_fired("import secrets\n")

    def test_numpy_random_attribute_fires(self):
        assert "D-random" in rules_fired(
            "def f(np, xs):\n    np.random.shuffle(xs)\n"
        )

    def test_rng_module_is_exempt(self):
        assert rules_fired(
            "import random\nr = random.Random(7)\n",
            path="src/repro/sim/rng.py",
        ) == set()

    def test_seeded_stream_is_clean(self):
        assert "D-random" not in rules_fired(
            "def f(self):\n    return self.rng.random()\n"
        )


class TestDNpRandom:
    def test_import_numpy_random_fires(self):
        assert "D-nprandom" in rules_fired("import numpy.random\n")

    def test_from_numpy_import_random_fires(self):
        assert "D-nprandom" in rules_fired("from numpy import random\n")

    def test_from_numpy_random_import_name_fires(self):
        assert "D-nprandom" in rules_fired(
            "from numpy.random import default_rng\n"
        )

    def test_aliased_import_fires(self):
        assert "D-nprandom" in rules_fired(
            "from numpy import random as npr\n"
        )

    def test_plain_numpy_import_is_clean(self):
        assert "D-nprandom" not in rules_fired(
            "import numpy as np\nfrom numpy import float64\n"
        )

    def test_rng_module_is_exempt(self):
        assert "D-nprandom" not in rules_fired(
            "from numpy.random import Generator\n",
            path="src/repro/sim/rng.py",
        )


class TestDWallclock:
    def test_time_time_fires(self):
        assert "D-wallclock" in rules_fired(
            "import time\n\ndef f():\n    return time.time()\n"
        )

    def test_perf_counter_import_fires(self):
        assert "D-wallclock" in rules_fired("from time import perf_counter\n")

    def test_datetime_now_fires(self):
        assert "D-wallclock" in rules_fired(
            "import datetime\n\ndef f():\n    return datetime.datetime.now()\n"
        )

    def test_obs_package_is_exempt(self):
        assert rules_fired(
            "import time\n\ndef f():\n    return time.perf_counter()\n",
            path="src/repro/obs/profiler.py",
        ) == set()

    def test_perf_package_is_exempt(self):
        # The benchmark harness's whole job is wall-clock timing.
        assert rules_fired(
            "from time import perf_counter\n\ndef t():\n"
            "    return perf_counter()\n",
            path="src/repro/perf/harness.py",
        ) == set()

    def test_exemption_does_not_leak_to_other_layers(self):
        # repro.perf being sanctioned must not loosen the rule anywhere
        # else: the same snippet still fires across the domain layers.
        snippet = "import time\n\ndef f():\n    return time.perf_counter()\n"
        for path in (
            "src/repro/net/snippet.py",
            "src/repro/cluster/snippet.py",
            "src/repro/sim/snippet.py",
            "src/repro/workloads/snippet.py",
        ):
            assert "D-wallclock" in rules_fired(snippet, path=path), path

    def test_perflike_module_name_elsewhere_not_exempt(self):
        # Only the repro.perf package is sanctioned, not any module that
        # happens to be named perf.
        assert "D-wallclock" in rules_fired(
            "import time\n\ndef f():\n    return time.time()\n",
            path="src/repro/net/perf.py",
        )

    def test_scheduler_now_is_clean(self):
        assert "D-wallclock" not in rules_fired(
            "def f(scheduler):\n    return scheduler.now\n"
        )

    def test_time_sleep_is_clean(self):
        # Only clock *reads* are flagged, not the module import itself.
        assert "D-wallclock" not in rules_fired("import time\n")


class TestDSetIter:
    def test_for_over_set_literal_fires(self):
        assert "D-set-iter" in rules_fired(
            "for x in {1, 2, 3}:\n    print(x)\n"
        )

    def test_for_over_set_call_fires(self):
        assert "D-set-iter" in rules_fired(
            "def f(xs):\n    for x in set(xs):\n        yield x\n"
        )

    def test_comprehension_over_set_fires(self):
        assert "D-set-iter" in rules_fired(
            "def f(xs):\n    return [x for x in frozenset(xs)]\n"
        )

    def test_list_of_set_fires(self):
        assert "D-set-iter" in rules_fired("def f(xs):\n    return list(set(xs))\n")

    def test_sorted_set_is_clean(self):
        assert "D-set-iter" not in rules_fired(
            "def f(xs):\n    for x in sorted(set(xs)):\n        yield x\n"
        )

    def test_membership_is_clean(self):
        assert "D-set-iter" not in rules_fired(
            "def f(xs, y):\n    return y in set(xs)\n"
        )


class TestDIdKey:
    def test_key_id_fires(self):
        assert "D-id-key" in rules_fired("def f(xs):\n    return sorted(xs, key=id)\n")

    def test_lambda_id_fires(self):
        assert "D-id-key" in rules_fired(
            "def f(xs):\n    xs.sort(key=lambda e: id(e))\n"
        )

    def test_attribute_key_is_clean(self):
        assert "D-id-key" not in rules_fired(
            "def f(xs):\n    return sorted(xs, key=lambda e: e.name)\n"
        )


class TestLLayer:
    def test_sim_importing_domain_fires(self):
        assert "L-layer" in rules_fired(
            "from repro.core import StellarHost\n",
            path="src/repro/sim/helper.py",
        )

    def test_memory_importing_virt_fires(self):
        assert "L-layer" in rules_fired(
            "import repro.virt\n", path="src/repro/memory/helper.py",
        )

    def test_anything_importing_legacy_fires(self):
        assert "L-layer" in rules_fired(
            "from repro.legacy import LegacyHost\n",
            path="src/repro/net/helper.py",
        )

    def test_domain_importing_sim_is_clean(self):
        assert rules_fired(
            "from repro.sim import EventScheduler\n",
            path="src/repro/net/helper.py",
        ) == set()

    def test_tests_are_outside_the_dag(self):
        assert rules_fired(
            "from repro.legacy import LegacyHost\nfrom repro.core import X\n",
            path="tests/test_helper.py",
        ) == set()

    def test_layer_violation_helper(self):
        assert layer_violation("repro.sim.engine", "repro.core") is not None
        assert layer_violation("repro.obs.trace", "repro.net.topology") is not None
        assert layer_violation("repro.pcie.switch", "repro.training") is not None
        assert layer_violation("repro.net.topology", "repro.legacy") is not None
        assert layer_violation("repro.legacy.issues", "repro.legacy.framework") is None
        assert layer_violation("repro.net.topology", "repro.sim") is None
        assert layer_violation(None, "repro.legacy") is None

    def test_obs_plane_cannot_import_the_probe(self):
        # Events flow into flight/slo via hooks; importing the probe
        # (which drives domain workloads) would invert that direction.
        assert layer_violation("repro.obs.flight", "repro.obs.probe") is not None
        assert layer_violation("repro.obs.slo", "repro.obs.probe") is not None
        assert layer_violation("repro.obs.probe", "repro.obs.flight") is None
        assert layer_violation("repro.obs.export", "repro.obs.probe") is None
        assert "L-layer" in rules_fired(
            "from repro.obs.probe import run_probe\n",
            path="src/repro/obs/slo.py",
        )
        assert "L-layer" not in rules_fired(
            "from repro.obs.flight import FlightRecorder\n",
            path="src/repro/obs/slo.py",
        )


class TestLPrivate:
    def test_foreign_private_access_fires(self):
        assert "L-private" in rules_fired(
            "def f(sim):\n    return sim._ports\n"
        )

    def test_private_import_fires(self):
        assert "L-private" in rules_fired(
            "from repro.net.packet_sim import _hop\n"
        )

    def test_self_access_is_clean(self):
        assert "L-private" not in rules_fired(
            "class C:\n    def f(self):\n        return self._ports\n"
        )

    def test_module_local_private_is_clean(self):
        # The module assigns _plan itself, so sibling access is
        # intra-module coupling, not cross-module reaching.
        assert "L-private" not in rules_fired(
            "class Flow:\n"
            "    def __init__(self):\n"
            "        self._plan = None\n"
            "class Sim:\n"
            "    def touch(self, flow):\n"
            "        return flow._plan\n"
        )


class TestASnapshotPair:
    def test_register_without_snapshot_fires(self):
        assert "A-snapshot-pair" in rules_fired(
            "class C:\n"
            "    def register_metrics(self, registry):\n"
            "        registry.add_provider('c', dict)\n"
        )

    def test_register_with_snapshot_is_clean(self):
        assert "A-snapshot-pair" not in rules_fired(
            "class C:\n"
            "    def register_metrics(self, registry):\n"
            "        registry.add_provider('c', self.snapshot)\n"
            "    def snapshot(self):\n"
            "        return {'x': 1}\n"
        )


class TestASnapshotPlain:
    def test_returning_internal_object_fires(self):
        assert "A-snapshot-plain" in rules_fired(
            "class C:\n"
            "    def snapshot(self):\n"
            "        return self._entries\n"
        )

    def test_set_value_fires(self):
        assert "A-snapshot-plain" in rules_fired(
            "class C:\n"
            "    def snapshot(self):\n"
            "        return {'members': {1, 2}}\n"
        )

    def test_missing_return_fires(self):
        assert "A-snapshot-plain" in rules_fired(
            "class C:\n"
            "    def snapshot(self):\n"
            "        pass\n"
        )

    def test_dict_literal_is_clean(self):
        assert "A-snapshot-plain" not in rules_fired(
            "class C:\n"
            "    def snapshot(self):\n"
            "        return {'x': self.x, 'items': [1, 2]}\n"
        )

    def test_super_extension_is_clean(self):
        assert "A-snapshot-plain" not in rules_fired(
            "class C(B):\n"
            "    def snapshot(self):\n"
            "        snap = super().snapshot()\n"
            "        snap['extra'] = 1\n"
            "        return snap\n"
        )

    def test_module_level_snapshot_function_ignored(self):
        assert "A-snapshot-plain" not in rules_fired(
            "def snapshot(thing):\n    return thing\n"
        )


class TestAFlightPlain:
    def test_set_payload_fires(self):
        assert "A-flight-plain" in rules_fired(
            "def f(self, t):\n"
            "    self.flight.record(t, 'net', 'k', paths={1, 2})\n"
        )

    def test_lambda_payload_fires(self):
        assert "A-flight-plain" in rules_fired(
            "def f(flight, t):\n"
            "    flight.record(t, 'net', 'k', fn=lambda: 1)\n"
        )

    def test_generator_payload_fires(self):
        assert "A-flight-plain" in rules_fired(
            "def f(recorder, t, xs):\n"
            "    recorder.record(t, 'net', 'k', seqs=(x for x in xs))\n"
        )

    def test_plain_payload_is_clean(self):
        assert "A-flight-plain" not in rules_fired(
            "def f(self, t, seq):\n"
            "    self.sim.flight.record(t, 'net', 'retransmit',\n"
            "                           entity='flow', seq=seq,\n"
            "                           paths=[1, 2], info={'a': 1})\n"
        )

    def test_non_flight_record_calls_ignored(self):
        # A metrics recorder with a set argument is not this rule's
        # business (other rules may still apply to it).
        assert "A-flight-plain" not in rules_fired(
            "def f(registry):\n"
            "    registry.record('name', {1, 2})\n"
        )

    def test_positional_payload_checked_too(self):
        assert "A-flight-plain" in rules_fired(
            "def f(flight, t):\n"
            "    flight.record(t, 'net', 'k', {1, 2})\n"
        )

    def test_rule_is_listed(self):
        assert "A-flight-plain" in RULES


class TestWaivers:
    def test_exact_rule_waiver(self):
        assert rules_fired(
            "import random  # simlint: ok D-random\n"
        ) == set()

    def test_family_waiver(self):
        assert rules_fired(
            "import random  # simlint: ok D\n"
        ) == set()

    def test_bare_waiver_waives_all(self):
        assert rules_fired(
            "import random  # simlint: ok\n"
        ) == set()

    def test_waiver_is_rule_specific(self):
        fired = rules_fired(
            "from random import choice  # simlint: ok D-wallclock\n"
        )
        assert "D-random" in fired

    def test_waiver_in_string_does_not_count(self):
        fired = rules_fired(
            'MESSAGE = "# simlint: ok D-random"\nimport random\n'
        )
        assert "D-random" in fired

    def test_multiline_statement_end_line_waiver(self):
        source = (
            "from random import (\n"
            "    choice,\n"
            ")  # simlint: ok D-random\n"
        )
        assert rules_fired(source) == set()

    def test_parse_waivers_shape(self):
        waivers = parse_waivers("x = 1  # simlint: ok D-random L-layer\n")
        assert waivers == {1: {"D-random", "L-layer"}}


class TestModuleNames:
    def test_src_layout(self):
        assert module_name_for("src/repro/sim/engine.py") == "repro.sim.engine"

    def test_package_init(self):
        assert module_name_for("src/repro/obs/__init__.py") == "repro.obs"

    def test_outside_package(self):
        assert module_name_for("tests/test_sim_engine.py") is None


class TestHarness:
    def test_every_rule_has_description(self):
        assert set(RULES) == {
            "D-random", "D-nprandom", "D-wallclock", "D-set-iter",
            "D-id-key", "D-taskpure", "D-taskpure-deep", "D-sim-pure",
            "L-layer", "L-private", "L-api-drift", "A-snapshot-pair",
            "A-snapshot-plain", "A-flight-plain",
        }
        assert all(RULES.values())

    def test_violation_locations_are_reported(self):
        violations = lint_source(
            "x = 1\nimport random\n", path="src/repro/net/snippet.py",
        )
        assert [(v.rule, v.line) for v in violations] == [("D-random", 2)]

    def test_syntax_error_propagates(self):
        with pytest.raises(SyntaxError):
            lint_source("def broken(:\n")


class TestShippedTreeIsClean:
    def test_src_tests_benchmarks_lint_clean(self):
        paths = [os.path.join(REPO_ROOT, name)
                 for name in ("src", "tests", "benchmarks")]
        paths = [p for p in paths if os.path.isdir(p)]
        assert paths, "repo layout changed; update this test"
        violations = lint_paths(paths)
        assert violations == [], "\n".join(repr(v) for v in violations)

    @pytest.mark.slow
    def test_cli_exit_status(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import random\n")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + os.pathsep + \
            env.get("PYTHONPATH", "")
        ok = subprocess.run(
            [sys.executable, "-m", "repro.lint", str(clean)],
            env=env, capture_output=True, text=True, timeout=120,
        )
        assert ok.returncode == 0, ok.stdout + ok.stderr
        bad = subprocess.run(
            [sys.executable, "-m", "repro.lint", str(dirty)],
            env=env, capture_output=True, text=True, timeout=120,
        )
        assert bad.returncode == 1
        assert "D-random" in bad.stdout


class TestClusterLayer:
    def test_domain_importing_cluster_fires(self):
        assert "L-layer" in rules_fired(
            "from repro.cluster import FleetHost\n",
            path="src/repro/net/helper.py",
        )
        assert "L-layer" in rules_fired(
            "import repro.cluster.fleet\n",
            path="src/repro/training/helper.py",
        )

    def test_infra_importing_cluster_fires(self):
        assert "L-layer" in rules_fired(
            "from repro.cluster import FleetSimulation\n",
            path="src/repro/obs/helper.py",
        )

    def test_workloads_importing_cluster_is_clean(self):
        assert rules_fired(
            "from repro.cluster import FleetSimulation\n",
            path="src/repro/workloads/helper.py",
        ) == set()

    def test_cluster_may_import_domains_but_not_legacy(self):
        assert rules_fired(
            "from repro.net import DualPlaneTopology\n"
            "from repro.core import StellarHost\n"
            "from repro.training import TrainingSimulation\n",
            path="src/repro/cluster/helper.py",
        ) == set()
        assert "L-layer" in rules_fired(
            "from repro.legacy import LegacyHost\n",
            path="src/repro/cluster/helper.py",
        )

    def test_layer_violation_helper_covers_cluster(self):
        assert layer_violation("repro.net.topology", "repro.cluster") is not None
        assert layer_violation("repro.workloads.fleet_bench",
                               "repro.cluster") is None
        assert layer_violation("repro.cluster.fleet", "repro.training") is None

    def test_fidelity_module_sits_inside_the_cluster_layer(self):
        # The hybrid-fidelity controller is cluster-internal policy: the
        # fleet may import it, but the packet/fluid engines it promotes
        # between must never reach back up into it.
        assert layer_violation("repro.cluster.fleet",
                               "repro.cluster.fidelity") is None
        assert layer_violation("repro.net.packet_sim",
                               "repro.cluster.fidelity") is not None
        assert layer_violation("repro.net.fluid_sim",
                               "repro.cluster.fidelity") is not None
        assert "L-layer" in rules_fired(
            "from repro.cluster.fidelity import FidelityController\n",
            path="src/repro/net/packet_sim.py",
        )
        assert rules_fired(
            "from repro.cluster.fidelity import FidelityController\n",
            path="src/repro/cluster/fleet.py",
        ) == set()
