"""Incremental lint cache + ``python -m repro.lint`` CLI contract tests.

The acceptance bar for the cache: a warm run over an unchanged tree
re-parses *zero* files (``stats["parsed"] == 0``), and touching one file
re-parses exactly that file.  The cache is keyed on per-file source
digests plus the lint package's own source closure, so rule edits can
never replay stale results."""

import json
import os
import subprocess
import sys

import pytest

from repro.lint import DEFAULT_CACHE_PATH, lint_project
from repro.lint.engine import LINT_CACHE_SCHEMA
from repro.runner.fingerprint import file_digest, source_digest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _write_tree(root):
    files = {
        "alpha.py": "def alpha():\n    return 1\n",
        "beta.py": "def beta():\n    return 2\n",
        "gamma.py": "import random\n",  # one deliberate violation
    }
    for name, source in files.items():
        (root / name).write_text(source)
    return sorted(files)


class TestIncrementalCache:
    def test_warm_run_reparses_nothing(self, tmp_path):
        tree = tmp_path / "tree"
        tree.mkdir()
        names = _write_tree(tree)
        cache = str(tmp_path / "cache.json")

        cold = lint_project([str(tree)], cache_path=cache)
        assert cold.stats["parsed"] == len(names)
        assert cold.stats["cache_hits"] == 0
        assert [v.rule for v in cold.violations] == ["D-random"]

        warm = lint_project([str(tree)], cache_path=cache)
        assert warm.stats["parsed"] == 0
        assert warm.stats["cache_hits"] == len(names)
        # Replayed violations are identical to the cold run's.
        assert [repr(v) for v in warm.violations] == \
            [repr(v) for v in cold.violations]
        # The deep stats still come from a freshly resolved graph.
        assert warm.stats["functions"] == cold.stats["functions"]

    def test_touching_one_file_reparses_only_it(self, tmp_path):
        tree = tmp_path / "tree"
        tree.mkdir()
        names = _write_tree(tree)
        cache = str(tmp_path / "cache.json")
        lint_project([str(tree)], cache_path=cache)

        (tree / "beta.py").write_text("def beta():\n    return 3\n")
        touched = lint_project([str(tree)], cache_path=cache)
        assert touched.stats["parsed"] == 1
        assert touched.stats["cache_hits"] == len(names) - 1

    def test_corrupt_cache_degrades_to_a_cold_run(self, tmp_path):
        tree = tmp_path / "tree"
        tree.mkdir()
        names = _write_tree(tree)
        cache = tmp_path / "cache.json"
        cache.write_text("{not json")
        report = lint_project([str(tree)], cache_path=str(cache))
        assert report.stats["parsed"] == len(names)
        # And the bad cache was replaced by a valid one.
        payload = json.loads(cache.read_text())
        assert payload["schema"] == LINT_CACHE_SCHEMA
        assert sorted(
            os.path.basename(p) for p in payload["files"]
        ) == names

    def test_foreign_schema_cache_is_ignored(self, tmp_path):
        tree = tmp_path / "tree"
        tree.mkdir()
        names = _write_tree(tree)
        cache = tmp_path / "cache.json"
        cache.write_text(json.dumps({
            "schema": "something-else", "lint_digest": "x", "files": {},
        }))
        report = lint_project([str(tree)], cache_path=str(cache))
        assert report.stats["parsed"] == len(names)

    def test_no_cache_mode_writes_nothing(self, tmp_path):
        tree = tmp_path / "tree"
        tree.mkdir()
        _write_tree(tree)
        cache = tmp_path / "cache.json"
        report = lint_project(
            [str(tree)], cache_path=str(cache), use_cache=False,
        )
        assert report.stats["cache_hits"] == 0
        assert not cache.exists()

    def test_reference_paths_are_cached_too(self, tmp_path):
        tree = tmp_path / "tree"
        tree.mkdir()
        names = _write_tree(tree)
        refs = tmp_path / "refs"
        refs.mkdir()
        (refs / "demo.py").write_text("import random\nprint(alpha)\n")
        cache = str(tmp_path / "cache.json")

        cold = lint_project(
            [str(tree)], cache_path=cache, reference_paths=[str(refs)],
        )
        # The reference file is parsed but not linted: gamma.py's
        # D-random is the only finding, not demo.py's.
        assert cold.stats["parsed"] == len(names) + 1
        assert {v.path for v in cold.violations} == \
            {os.path.join(str(tree), "gamma.py")}

        warm = lint_project(
            [str(tree)], cache_path=cache, reference_paths=[str(refs)],
        )
        assert warm.stats["parsed"] == 0
        assert warm.stats["cache_hits"] == len(names) + 1


class TestFingerprintHelpers:
    def test_source_digest_is_sha256_of_bytes(self):
        import hashlib
        data = b"def f():\n    return 1\n"
        assert source_digest(data) == hashlib.sha256(data).hexdigest()

    def test_file_digest_memoizes(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text("x = 1\n")
        memo = {}
        first = file_digest(str(path), memo=memo)
        path.write_text("x = 2\n")
        assert file_digest(str(path), memo=memo) == first  # memo hit
        assert file_digest(str(path)) != first  # fresh read sees the edit


@pytest.mark.slow
class TestCli:
    def _run(self, args, cwd):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + os.pathsep + \
            env.get("PYTHONPATH", "")
        return subprocess.run(
            [sys.executable, "-m", "repro.lint"] + args,
            env=env, cwd=cwd, capture_output=True, text=True, timeout=120,
        )

    def test_list_rules_json(self, tmp_path):
        result = self._run(["--list-rules", "--format=json"], str(tmp_path))
        assert result.returncode == 0, result.stderr
        payload = json.loads(result.stdout)
        assert "D-taskpure-deep" in payload["rules"]
        assert "L-api-drift" in payload["rules"]

    def test_list_rules_text_has_counts(self, tmp_path):
        result = self._run(["--list-rules"], str(tmp_path))
        assert result.returncode == 0
        assert "D-sim-pure" in result.stdout
        assert result.stdout.rstrip().endswith("rules")

    def test_sarif_output_and_exit_code(self, tmp_path):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import random\n")
        result = self._run(
            [str(dirty), "--format=sarif", "--no-cache"], str(tmp_path),
        )
        assert result.returncode == 1
        doc = json.loads(result.stdout)
        assert doc["version"] == "2.1.0"
        assert doc["runs"][0]["results"][0]["ruleId"] == "D-random"

    def test_output_file_and_clean_exit(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("_x = 1\n")
        out = tmp_path / "report.sarif"
        result = self._run(
            [str(clean), "--format=sarif", "--output", str(out),
             "--no-cache"],
            str(tmp_path),
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert json.loads(out.read_text())["runs"][0]["results"] == []

    def test_missing_path_is_a_usage_error(self, tmp_path):
        result = self._run(["no/such/dir"], str(tmp_path))
        assert result.returncode == 2
        assert "no such path" in result.stderr

    def test_default_cache_location_is_cwd_relative(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("_x = 1\n")
        result = self._run([str(target)], str(tmp_path))
        assert result.returncode == 0
        assert (tmp_path / DEFAULT_CACHE_PATH).exists()

    def test_refresh_rebuilds_the_cache(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("_x = 1\n")
        self._run([str(target)], str(tmp_path))
        result = self._run([str(target), "--refresh"], str(tmp_path))
        assert result.returncode == 0
        assert "1 parsed, 0 cached" in result.stdout
