"""Unit tests for the discrete-event scheduler."""

import pytest

from repro.sim import EventScheduler, SimProcessError


def test_events_run_in_time_order():
    sched = EventScheduler()
    seen = []
    sched.schedule(3.0, lambda: seen.append("c"))
    sched.schedule(1.0, lambda: seen.append("a"))
    sched.schedule(2.0, lambda: seen.append("b"))
    sched.run()
    assert seen == ["a", "b", "c"]
    assert sched.now == 3.0


def test_ties_break_by_insertion_order():
    sched = EventScheduler()
    seen = []
    for label in "abcd":
        sched.schedule(1.0, lambda l=label: seen.append(l))
    sched.run()
    assert seen == ["a", "b", "c", "d"]


def test_schedule_during_run_is_processed():
    sched = EventScheduler()
    seen = []

    def first():
        seen.append("first")
        sched.schedule(0.5, lambda: seen.append("second"))

    sched.schedule(1.0, first)
    sched.run()
    assert seen == ["first", "second"]
    assert sched.now == pytest.approx(1.5)


def test_run_until_stops_clock_at_deadline():
    sched = EventScheduler()
    seen = []
    sched.schedule(1.0, lambda: seen.append(1))
    sched.schedule(5.0, lambda: seen.append(5))
    executed = sched.run(until=2.0)
    assert executed == 1
    assert seen == [1]
    assert sched.now == 2.0
    # The remaining event still fires on a later run.
    sched.run()
    assert seen == [1, 5]


def test_run_until_advances_clock_when_queue_empty():
    sched = EventScheduler()
    sched.run(until=7.5)
    assert sched.now == 7.5


def test_cancelled_events_are_skipped():
    sched = EventScheduler()
    seen = []
    keep = sched.schedule(1.0, lambda: seen.append("keep"))
    drop = sched.schedule(1.0, lambda: seen.append("drop"))
    drop.cancel()
    sched.run()
    assert seen == ["keep"]
    assert not keep.cancelled


def test_negative_delay_rejected():
    sched = EventScheduler()
    with pytest.raises(SimProcessError):
        sched.schedule(-0.1, lambda: None)


def test_schedule_at_past_rejected():
    sched = EventScheduler(start_time=10.0)
    with pytest.raises(SimProcessError):
        sched.schedule_at(9.0, lambda: None)


def test_max_events_budget():
    sched = EventScheduler()
    for _ in range(10):
        sched.schedule(1.0, lambda: None)
    assert sched.run(max_events=4) == 4
    assert sched.pending() == 6


def test_peek_time_skips_cancelled():
    sched = EventScheduler()
    event = sched.schedule(1.0, lambda: None)
    sched.schedule(2.0, lambda: None)
    event.cancel()
    assert sched.peek_time() == 2.0
