"""Unit tests for the discrete-event scheduler."""

import pytest

from repro.sim import EventScheduler, SimProcessError


def test_events_run_in_time_order():
    sched = EventScheduler()
    seen = []
    sched.schedule(3.0, lambda: seen.append("c"))
    sched.schedule(1.0, lambda: seen.append("a"))
    sched.schedule(2.0, lambda: seen.append("b"))
    sched.run()
    assert seen == ["a", "b", "c"]
    assert sched.now == 3.0


def test_ties_break_by_insertion_order():
    sched = EventScheduler()
    seen = []
    for label in "abcd":
        sched.schedule(1.0, lambda l=label: seen.append(l))
    sched.run()
    assert seen == ["a", "b", "c", "d"]


def test_schedule_during_run_is_processed():
    sched = EventScheduler()
    seen = []

    def first():
        seen.append("first")
        sched.schedule(0.5, lambda: seen.append("second"))

    sched.schedule(1.0, first)
    sched.run()
    assert seen == ["first", "second"]
    assert sched.now == pytest.approx(1.5)


def test_run_until_stops_clock_at_deadline():
    sched = EventScheduler()
    seen = []
    sched.schedule(1.0, lambda: seen.append(1))
    sched.schedule(5.0, lambda: seen.append(5))
    executed = sched.run(until=2.0)
    assert executed == 1
    assert seen == [1]
    assert sched.now == 2.0
    # The remaining event still fires on a later run.
    sched.run()
    assert seen == [1, 5]


def test_run_until_advances_clock_when_queue_empty():
    sched = EventScheduler()
    sched.run(until=7.5)
    assert sched.now == 7.5


def test_cancelled_events_are_skipped():
    sched = EventScheduler()
    seen = []
    keep = sched.schedule(1.0, lambda: seen.append("keep"))
    drop = sched.schedule(1.0, lambda: seen.append("drop"))
    drop.cancel()
    sched.run()
    assert seen == ["keep"]
    assert not keep.cancelled


def test_negative_delay_rejected():
    sched = EventScheduler()
    with pytest.raises(SimProcessError):
        sched.schedule(-0.1, lambda: None)


def test_schedule_at_past_rejected():
    sched = EventScheduler(start_time=10.0)
    with pytest.raises(SimProcessError):
        sched.schedule_at(9.0, lambda: None)


def test_max_events_budget():
    sched = EventScheduler()
    for _ in range(10):
        sched.schedule(1.0, lambda: None)
    assert sched.run(max_events=4) == 4
    assert sched.pending() == 6


def test_peek_time_skips_cancelled():
    sched = EventScheduler()
    event = sched.schedule(1.0, lambda: None)
    sched.schedule(2.0, lambda: None)
    event.cancel()
    assert sched.peek_time() == 2.0


# -- edge cases the SimSanitizer leans on -----------------------------------


def test_cancel_after_peek_lazy_pop_still_skips():
    """peek_time() lazily pops cancelled *heads*; cancelling an event that
    peek has already looked past must still prevent execution."""
    sched = EventScheduler()
    seen = []
    first = sched.schedule(1.0, lambda: seen.append("first"))
    sched.schedule(2.0, lambda: seen.append("second"))
    assert sched.peek_time() == 1.0  # head inspected while live
    first.cancel()
    assert sched.peek_time() == 2.0  # lazy pop discards it now
    assert sched.pending() == 1
    sched.run()
    assert seen == ["second"]


def test_cancel_head_then_peek_reports_empty():
    sched = EventScheduler()
    only = sched.schedule(1.0, lambda: None)
    only.cancel()
    assert sched.peek_time() is None
    assert sched.pending() == 0
    assert sched.run() == 0
    assert sched.now == 0.0  # nothing executed, clock untouched


def test_run_until_advances_clock_when_queue_outlives_until():
    """The clock lands exactly on ``until`` even though live events remain
    queued beyond it — and those events are not lost."""
    sched = EventScheduler()
    seen = []
    sched.schedule(10.0, lambda: seen.append(10))
    assert sched.run(until=4.0) == 0
    assert sched.now == 4.0
    assert sched.pending() == 1
    assert sched.run(until=10.0) == 1  # boundary event executes (not >)
    assert seen == [10]
    assert sched.now == 10.0


def test_run_until_with_only_cancelled_events_advances_clock():
    sched = EventScheduler()
    event = sched.schedule(1.0, lambda: None)
    event.cancel()
    assert sched.run(until=3.0) == 0
    assert sched.now == 3.0
    assert sched.pending() == 0


def test_max_events_does_not_count_cancelled_events():
    """Cancelled events are skipped inside step(); only live executions
    consume the max_events budget."""
    sched = EventScheduler()
    seen = []
    events = [
        sched.schedule(float(i), lambda i=i: seen.append(i))
        for i in range(1, 6)
    ]
    events[1].cancel()
    events[2].cancel()
    assert sched.run(max_events=2) == 2
    assert seen == [1, 4]  # 2 and 3 skipped for free
    assert sched.pending() == 1


def test_max_events_with_all_cancelled_returns_zero():
    sched = EventScheduler()
    for event in [sched.schedule(1.0, lambda: None) for _ in range(3)]:
        event.cancel()
    assert sched.run(max_events=2) == 0
    assert sched.pending() == 0


def test_max_events_and_until_compose():
    sched = EventScheduler()
    seen = []
    for i in range(1, 5):
        sched.schedule(float(i), lambda i=i: seen.append(i))
    assert sched.run(until=3.5, max_events=2) == 2
    assert seen == [1, 2]
    # max_events returned first, so the clock reflects the last event,
    # not the deadline.
    assert sched.now == 2.0


def test_live_events_excludes_cancelled_and_orders_by_execution():
    sched = EventScheduler()
    late = sched.schedule(3.0, lambda: None)
    dead = sched.schedule(1.0, lambda: None)
    early = sched.schedule(2.0, lambda: None)
    dead.cancel()
    live = sched.live_events()
    assert live == [early, late]
    assert [event.time for event in live] == [2.0, 3.0]


def test_schedule_at_now_is_allowed():
    sched = EventScheduler(start_time=5.0)
    seen = []
    sched.schedule_at(5.0, lambda: seen.append("now"))
    sched.run()
    assert seen == ["now"]
    assert sched.now == 5.0


# -- batched same-timestamp dispatch ------------------------------------
#
# run()'s untraced fast path drains every entry sharing the head
# timestamp in an inner loop that skips the per-event limit compare and
# clock store.  These tests pin the semantics that collapse must not
# change: ordering, budget accounting, mid-batch cancellation, and
# same-time scheduling from inside the batch.


def test_same_timestamp_batch_preserves_seq_order():
    sched = EventScheduler()
    seen = []
    for label in "abc":
        sched.schedule(1.0, lambda l=label: seen.append(l))
    sched.schedule(2.0, lambda: seen.append("late"))
    for label in "de":
        sched.schedule(1.0, lambda l=label: seen.append(l))
    sched.run()
    assert seen == ["a", "b", "c", "d", "e", "late"]


def test_schedule_same_time_from_inside_batch_runs_in_batch():
    sched = EventScheduler()
    seen = []

    def head():
        seen.append("head")
        # Zero-delay: lands at the batch's own timestamp with a larger
        # seq, so the drain loop must pick it up after the peers.
        sched.schedule(0.0, lambda: seen.append("tail"))

    sched.schedule(1.0, head)
    sched.schedule(1.0, lambda: seen.append("peer"))
    sched.run()
    assert seen == ["head", "peer", "tail"]
    assert sched.now == 1.0


def test_cancel_later_batch_member_from_inside_batch():
    # The first event of the timestamp cancels a peer scheduled after it;
    # the drain loop must skip the cancelled heap entry with exact dead
    # accounting instead of executing it.
    sched = EventScheduler()
    seen = []
    victim = None

    def killer():
        seen.append("killer")
        victim.cancel()

    sched.schedule(1.0, killer)
    victim = sched.schedule(1.0, lambda: seen.append("dead"))
    sched.schedule(1.0, lambda: seen.append("survivor"))
    sched.run()
    assert seen == ["killer", "survivor"]
    assert sched.pending() == 0
    assert sched.events_executed == 2


def test_max_events_budget_stops_mid_batch():
    sched = EventScheduler()
    seen = []
    for label in "abcd":
        sched.schedule(1.0, lambda l=label: seen.append(l))
    executed = sched.run(max_events=2)
    assert executed == 2
    assert seen == ["a", "b"]
    assert sched.pending() == 2
    # Resume drains the rest of the timestamp.
    executed = sched.run(max_events=10)
    assert executed == 2
    assert seen == ["a", "b", "c", "d"]


def test_batch_mixes_events_and_bare_callbacks():
    sched = EventScheduler()
    seen = []
    sched.schedule(1.0, lambda: seen.append("event-1"))
    sched.schedule_call(1.0, lambda: seen.append("bare-1"))
    sched.schedule(1.0, lambda: seen.append("event-2"))
    sched.schedule_call(1.0, lambda: seen.append("bare-2"))
    sched.run()
    assert seen == ["event-1", "bare-1", "event-2", "bare-2"]
    assert sched.events_executed == 4


def test_batch_at_exactly_until_still_runs_whole_timestamp():
    sched = EventScheduler()
    seen = []
    for label in "ab":
        sched.schedule(1.0, lambda l=label: seen.append(l))
    sched.schedule(1.5, lambda: seen.append("beyond"))
    sched.run(until=1.0)
    assert seen == ["a", "b"]
    assert sched.now == 1.0
    assert sched.pending() == 1
