"""Record -> replay round trips: fidelity, determinism, non-perturbation."""

from repro.obs import FlightRecorder, MetricsRegistry
from repro.obs.determinism import snapshot_digest
from repro.traces.record import TraceRecorder, record_training
from repro.traces.replay import TraceReplayer, replay_trace
from repro.traces.schema import COLLECTIVE_KINDS, validate_trace
from repro.workloads.fleet_bench import run_fleet_smoke


def record_smoke(seed=17):
    recorder = TraceRecorder()
    _, result = run_fleet_smoke(seed=seed, trace_recorder=recorder)
    return recorder, result


class TestRecorderHook:
    def test_recorder_captures_every_fleet_job(self):
        recorder, result = record_smoke()
        recorded = set(recorder.job_names())
        iterated = {row["job"] for row in result.rows() if row["iters"] > 0}
        assert iterated <= recorded
        for trace in recorder.traces():
            assert validate_trace(trace) == []
            assert len(trace) > 0

    def test_dp_jobs_record_allreduce_ops(self):
        recorder, _ = record_smoke()
        kinds = {op.kind
                 for trace in recorder.traces() for op in trace.ops}
        assert "compute" in kinds
        assert "allreduce" in kinds

    def test_attachment_does_not_perturb_the_run(self):
        # The recorder is a passive observer: a recorded run must produce
        # byte-identical fleet rows to a bare one.
        _, bare = run_fleet_smoke(seed=17)
        _, observed = run_fleet_smoke(seed=17,
                                      trace_recorder=TraceRecorder())
        assert bare.rows() == observed.rows()


class TestRoundTripDeterminism:
    def test_record_then_replay_twice_bit_identical(self):
        recorder, _ = record_smoke()
        job = recorder.job_names()[0]
        fingerprints = []
        for _ in range(2):
            registry = MetricsRegistry("rt")
            flight = FlightRecorder()
            replayer = TraceReplayer(recorder.trace(job),
                                     fidelity="recorded",
                                     registry=registry, flight=flight)
            result = replayer.run()
            fingerprints.append((
                recorder.trace(job).digest(),
                flight.digest(),
                snapshot_digest(registry.snapshot()),
                result.to_row(),
            ))
        assert fingerprints[0] == fingerprints[1]

    def test_record_is_stable_across_runs(self):
        # Same seed, fresh fleet: the recorded traces themselves must be
        # bit-identical (record -> replay reproducibility starts here).
        first, _ = record_smoke(seed=17)
        second, _ = record_smoke(seed=17)
        assert first.job_names() == second.job_names()
        for job in first.job_names():
            assert first.trace(job).digest() == second.trace(job).digest()

    def test_replay_reproduces_recorded_collective_sequence(self):
        recorder, _ = record_smoke()
        job = recorder.job_names()[0]
        trace = recorder.trace(job)
        recorded_sequence = [op.id for op in trace.ops
                             if op.kind in COLLECTIVE_KINDS]
        assert recorded_sequence, "smoke job recorded no collectives"
        replay = replay_trace(trace, fidelity="recorded")
        assert replay.op_sequence(kinds=COLLECTIVE_KINDS) == \
            recorded_sequence


class TestRecordTraining:
    def test_single_trainer_trace(self):
        from repro.training.models import ParallelStrategy

        trace = record_training("Llama-13B", ParallelStrategy(tp=4, pp=1,
                                                              dp=4),
                                iterations=2, blocks=2)
        assert validate_trace(trace) == []
        assert trace.ranks == 4
        assert trace.meta["model"] == "Llama-13B"
        kinds = [op.kind for op in trace.ops]
        assert kinds.count("allreduce") == 2  # one DP allreduce per block
        row = replay_trace(trace, fidelity="recorded",
                           boot_hosts=False).to_row()
        again = replay_trace(trace, fidelity="recorded",
                             boot_hosts=False).to_row()
        assert row == again
