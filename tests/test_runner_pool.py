"""Pool execution: the pooled == sequential acceptance invariant.

PR 2 established determinism digests and PR 4 kept them stable through
the perf work; the runner must not be the layer that breaks them.  The
tests here run the same spec batches inline and across worker processes
and require byte-identical merged rows, plus per-task telemetry
isolation so pooled tasks never interleave counters.
"""

import pytest

from repro.obs.metrics import MetricsRegistry, get_registry, set_registry
from repro.runner import (
    ResultCache,
    TaskSpec,
    canonical_json,
    default_workers,
    run_tasks,
)
from repro.runner.suites import build_figures

FIXTURES = "tests.runner_task_fixtures"


def _rows_json(report):
    return [(key, canonical_json(value)) for key, value in report.rows()]


class TestMergeSemantics:
    def test_results_merge_in_spec_order_not_completion_order(self):
        specs = [
            TaskSpec("p%02d" % i, "%s:add_point" % FIXTURES, {"x": i})
            for i in range(8)
        ]
        report = run_tasks(specs, workers=2)
        assert list(report.results) == ["p%02d" % i for i in range(8)]
        assert [v["x"] for v in report.values()] == list(range(8))

    def test_duplicate_keys_rejected(self):
        specs = [
            TaskSpec("same", "%s:add_point" % FIXTURES, {"x": 1}),
            TaskSpec("same", "%s:add_point" % FIXTURES, {"x": 2}),
        ]
        with pytest.raises(ValueError):
            run_tasks(specs, workers=0)

    def test_default_workers_is_bounded(self):
        assert 1 <= default_workers() <= 4


class TestPooledEqualsSequential:
    def test_fixture_batch_is_byte_identical(self):
        specs = [
            TaskSpec("p%d" % i, "%s:add_point" % FIXTURES,
                     {"x": i, "y": 2 * i}, seed=i)
            for i in range(6)
        ]
        pooled = run_tasks(specs, workers=2)
        sequential = run_tasks(specs, workers=0)
        assert _rows_json(pooled) == _rows_json(sequential)

    def test_figure_sweep_subset_is_byte_identical(self):
        # The PR acceptance test: real figure specs (Fig 6 + Fig 13 from
        # the trimmed suite) through worker processes vs inline — merged
        # rows and content digests must agree exactly.
        specs = [
            spec for spec in build_figures(trim=True)
            if spec.key.startswith(("fig6/", "fig13/"))
        ]
        assert len(specs) >= 5
        pooled = run_tasks(specs, workers=2)
        sequential = run_tasks(specs, workers=0)
        assert _rows_json(pooled) == _rows_json(sequential)
        assert [pooled[s.key].digest for s in specs] == \
            [sequential[s.key].digest for s in specs]

    def test_pooled_run_with_cache_stays_identical(self, tmp_path):
        specs = [
            TaskSpec("p%d" % i, "%s:add_point" % FIXTURES, {"x": i})
            for i in range(4)
        ]
        sequential = run_tasks(specs, workers=0)
        cache = ResultCache(str(tmp_path))
        cold = run_tasks(specs, workers=2, cache=cache)
        warm = run_tasks(specs, workers=2, cache=ResultCache(str(tmp_path)))
        assert warm.hits == len(specs)
        assert _rows_json(cold) == _rows_json(sequential)
        assert _rows_json(warm) == _rows_json(sequential)


class TestTelemetryIsolation:
    def _counting_specs(self, n):
        return [
            TaskSpec("c%d" % i, "%s:counting_task" % FIXTURES, {"bumps": 1})
            for i in range(n)
        ]

    @pytest.mark.parametrize("workers", [0, 2])
    def test_each_task_sees_a_fresh_registry(self, workers):
        # Four tasks each bump the same counter once.  Shared ambient
        # state would make later tasks on a reused worker report 2, 3,
        # 4...; isolation means every task reports exactly 1.
        report = run_tasks(self._counting_specs(4), workers=workers)
        assert [v["counted"] for v in report.values()] == [1, 1, 1, 1]
        for result in report.results.values():
            assert result.telemetry["runner_test.calls"] == 1

    def test_parent_registry_is_never_touched(self):
        previous = set_registry(MetricsRegistry("pool-test-parent"))
        try:
            run_tasks(self._counting_specs(3), workers=0)
            assert get_registry().snapshot() == {}
        finally:
            set_registry(previous)

    def test_merged_telemetry_sums_across_tasks(self):
        specs = [
            TaskSpec("c%d" % i, "%s:counting_task" % FIXTURES,
                     {"bumps": i + 1})
            for i in range(3)
        ]
        report = run_tasks(specs, workers=2)
        assert report.merged_telemetry()["runner_test.calls"] == 1 + 2 + 3

    def test_cache_hits_carry_no_telemetry(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        run_tasks(self._counting_specs(2), workers=0, cache=cache)
        warm = run_tasks(self._counting_specs(2), workers=0, cache=cache)
        assert warm.hits == 2
        assert warm.merged_telemetry() == {}


class TestFailureModes:
    def test_non_json_result_raises_taskerror(self):
        from repro.runner import TaskError

        spec = TaskSpec("bad", "%s:not_json" % FIXTURES, {"x": 1})
        with pytest.raises(TaskError):
            run_tasks([spec], workers=0)

    def test_report_provenance_fields(self):
        spec = TaskSpec("p", "%s:add_point" % FIXTURES, {"x": 1})
        report = run_tasks([spec], workers=0)
        result = report["p"]
        assert result.cached is False
        assert result.seconds >= 0.0
        assert len(result.digest) == 64
        as_json = report.to_json()
        assert as_json["tasks"][0]["key"] == "p"
        assert as_json["cache"] is None
