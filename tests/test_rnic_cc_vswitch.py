"""Unit tests for congestion control and the vSwitch steering model."""

import pytest

from repro.rnic import (
    FlowRule,
    KernelRoutingTable,
    PerPathCC,
    SteeringError,
    TrafficClass,
    VSwitch,
    WindowCC,
    encapsulate,
)
from repro.sim.units import usec


class TestWindowCC:
    def test_additive_increase_on_clean_acks(self):
        cc = WindowCC(init_window=64 * 1024)
        cc.on_send(8 * 1024)
        before = cc.window
        cc.on_ack(8 * 1024)
        assert cc.window > before
        assert cc.in_flight == 0

    def test_ecn_multiplicative_decrease(self):
        cc = WindowCC(init_window=64 * 1024, ecn_backoff=0.8)
        cc.on_send(1024)
        cc.on_ack(1024, ecn=True)
        assert cc.window == pytest.approx(64 * 1024 * 0.8)
        assert cc.ecn_marks == 1

    def test_rtt_inflation_backs_off(self):
        cc = WindowCC(init_window=64 * 1024, target_rtt=usec(30), rtt_backoff=0.9)
        cc.on_send(1024)
        cc.on_ack(1024, rtt=usec(100))
        assert cc.window == pytest.approx(64 * 1024 * 0.9)

    def test_window_respects_bounds(self):
        cc = WindowCC(init_window=8 * 1024, min_window=4 * 1024, max_window=16 * 1024)
        for _ in range(100):
            cc.on_send(1024)
            cc.on_ack(1024, ecn=True)
        assert cc.window == 4 * 1024
        for _ in range(1000):
            cc.on_send(1024)
            cc.on_ack(1024)
        assert cc.window == 16 * 1024

    def test_rto_halves_window_and_clears_flight(self):
        cc = WindowCC(init_window=64 * 1024)
        cc.on_send(32 * 1024)
        cc.on_rto()
        assert cc.window == pytest.approx(32 * 1024)
        assert cc.in_flight == 0
        assert cc.rtos == 1

    def test_can_send_gates_on_window(self):
        cc = WindowCC(init_window=10_000)
        assert cc.can_send(10_000)
        cc.on_send(9_000)
        assert cc.can_send(1_000)
        assert not cc.can_send(1_001)


class TestPerPathCC:
    def test_aggregate_window_matches_shared_start(self):
        shared = WindowCC(init_window=64 * 1024)
        per_path = PerPathCC(path_count=4, init_window=64 * 1024)
        assert per_path.window == pytest.approx(shared.window)

    def test_paths_are_independent(self):
        cc = PerPathCC(path_count=4, init_window=64 * 1024)
        cc.on_send(1024, path_id=0)
        cc.on_ack(1024, path_id=0, ecn=True)
        assert cc[0].window < cc[1].window

    def test_path_id_wraps(self):
        cc = PerPathCC(path_count=4)
        assert cc[5] is cc[1]

    def test_invalid_path_count(self):
        with pytest.raises(ValueError):
            PerPathCC(path_count=0)


class TestVSwitch:
    def rdma_header(self):
        return {"proto": "rdma", "dst_qp": 0x100}

    def test_lookup_cost_grows_with_position(self):
        """Problem 5a: TCP rules ahead of RDMA rules slow RDMA lookups."""
        sw = VSwitch()
        for i in range(100):
            sw.install(
                FlowRule(TrafficClass.TCP, {"proto": "tcp", "dport": i}, "to-vf")
            )
        sw.install(FlowRule(TrafficClass.RDMA, self.rdma_header(), "to-vstellar"))
        behind_tcp = sw.lookup(self.rdma_header())

        sw2 = VSwitch()
        sw2.install(FlowRule(TrafficClass.RDMA, self.rdma_header(), "to-vstellar"))
        for i in range(100):
            sw2.install(
                FlowRule(TrafficClass.TCP, {"proto": "tcp", "dport": i}, "to-vf")
            )
        ahead_of_tcp = sw2.lookup(self.rdma_header())
        assert behind_tcp.latency > ahead_of_tcp.latency
        assert behind_tcp.position == 100 and ahead_of_tcp.position == 0

    def test_miss_raises(self):
        sw = VSwitch()
        with pytest.raises(SteeringError):
            sw.lookup({"proto": "unknown"})
        assert sw.miss_count == 1

    def test_capacity_enforced(self):
        sw = VSwitch(capacity=1)
        sw.install(FlowRule(TrafficClass.TCP, {"x": 1}, "a"))
        with pytest.raises(SteeringError):
            sw.install(FlowRule(TrafficClass.TCP, {"x": 2}, "b"))

    def test_remove_class(self):
        sw = VSwitch()
        sw.install(FlowRule(TrafficClass.TCP, {"x": 1}, "a"))
        sw.install(FlowRule(TrafficClass.RDMA, {"y": 1}, "b"))
        assert sw.remove_class(TrafficClass.TCP) == 1
        assert sw.position_of_class(TrafficClass.RDMA) == 0
        assert sw.position_of_class(TrafficClass.TCP) is None

    def test_hit_count_tracked(self):
        sw = VSwitch()
        rule = sw.install(FlowRule(TrafficClass.RDMA, self.rdma_header(), "x"))
        sw.lookup(self.rdma_header())
        sw.lookup(self.rdma_header())
        assert rule.hit_count == 2


class TestVxlanEncap:
    def test_remote_destination_gets_gateway_mac(self):
        rt = KernelRoutingTable()
        rt.add_remote("10.0.1.5", "aa:bb:cc:dd:ee:01")
        header = encapsulate(rt, 42, "10.0.0.1", "10.0.1.5", "de:ad:be:ef:00:01")
        assert header.dst_mac == "aa:bb:cc:dd:ee:01"
        assert not header.macs_zeroed

    def test_local_destination_zeroes_macs(self):
        """Problem 5b reproduced: same-host destination -> zero MACs, which
        a ToR switch will discard as corrupt."""
        rt = KernelRoutingTable()
        rt.add_local("10.0.0.2")
        header = encapsulate(rt, 42, "10.0.0.1", "10.0.0.2", "de:ad:be:ef:00:01")
        assert header.macs_zeroed

    def test_unroutable_destination(self):
        rt = KernelRoutingTable()
        with pytest.raises(SteeringError):
            encapsulate(rt, 42, "10.0.0.1", "10.9.9.9", "de:ad:be:ef:00:01")
