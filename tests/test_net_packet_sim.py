"""Unit tests for the packet-level discrete-event network simulator."""

import pytest

from repro.net import (
    DualPlaneTopology,
    FailureScenario,
    MessageFlow,
    PacketNetSim,
    ServerAddress,
    effective_loss_rate,
    pick_victim_uplink,
    run_flows,
)
from repro.sim.units import Gbps, MB


def small_topo(**kwargs):
    defaults = dict(segments=2, servers_per_segment=4, rails=1, planes=2,
                    aggs_per_plane=4)
    defaults.update(kwargs)
    return DualPlaneTopology(**defaults)


class TestPacketForwarding:
    def test_single_packet_delivery_latency(self):
        topo = small_topo()
        sim = PacketNetSim(topo, seed=1)
        route = topo.route(ServerAddress(0, 0), ServerAddress(1, 0), 0)
        outcomes = []
        sim.send_packet(route, 4096, lambda lat, ecn: outcomes.append((lat, ecn)))
        sim.run()
        assert len(outcomes) == 1
        latency, ecn = outcomes[0]
        # 4 hops of prop + serialization at 200 Gbps each.
        expected = 4 * (1e-6 + 4096 * 8 / Gbps(200))
        assert latency == pytest.approx(expected, rel=0.01)
        assert not ecn

    def test_queueing_builds_on_shared_port(self):
        topo = small_topo()
        sim = PacketNetSim(topo, seed=1)
        route = topo.route(ServerAddress(0, 0), ServerAddress(1, 0), 0)
        latencies = []
        for _ in range(50):
            sim.send_packet(route, 64 * 1024, lambda lat, ecn: latencies.append(lat))
        sim.run()
        assert len(latencies) == 50
        assert latencies[-1] > latencies[0] * 5  # later packets queue behind
        port = sim.port(route[0])
        assert port.queue_max > 0
        assert port.queue_avg > 0

    def test_ecn_marked_when_threshold_crossed(self):
        topo = small_topo()
        sim = PacketNetSim(topo, seed=1, ecn_threshold=32 * 1024)
        route = topo.route(ServerAddress(0, 0), ServerAddress(1, 0), 0)
        marks = []
        for _ in range(40):
            sim.send_packet(route, 16 * 1024, lambda lat, ecn: marks.append(ecn))
        sim.run()
        assert any(marks)
        assert not marks[0]

    def test_tail_drop_on_overflow(self):
        topo = small_topo()
        sim = PacketNetSim(topo, seed=1, max_queue=128 * 1024)
        route = topo.route(ServerAddress(0, 0), ServerAddress(1, 0), 0)
        delivered, dropped = [], []
        for _ in range(100):
            sim.send_packet(
                route, 64 * 1024,
                lambda lat, ecn: delivered.append(1),
                lambda link: dropped.append(link),
            )
        sim.run()
        assert dropped
        assert len(delivered) + len(dropped) == 100

    def test_injected_loss_drops_packets(self):
        topo = small_topo()
        sim = PacketNetSim(topo, seed=7)
        route = topo.route(ServerAddress(0, 0), ServerAddress(1, 0), 0)
        sim.inject_loss(route[1], 1.0)
        dropped = []
        sim.send_packet(route, 4096, lambda lat, ecn: None,
                        lambda link: dropped.append(link))
        sim.run()
        assert dropped == [route[1]]
        with pytest.raises(ValueError):
            sim.inject_loss(route[0], 1.5)


class TestMessageFlows:
    def test_message_completes_and_reports_goodput(self):
        topo = small_topo()
        sim = PacketNetSim(topo, seed=2)
        flow = MessageFlow(
            sim, "f0", ServerAddress(0, 0), ServerAddress(1, 0), 0,
            message_bytes=4 * MB, algorithm="obs", path_count=8, mtu=64 * 1024,
        )
        results = run_flows(sim, [flow], timeout=1.0)
        assert flow.done
        assert results[0].bytes_acked == 4 * MB
        assert 0 < results[0].goodput <= Gbps(200) * 1.01

    def test_spray_uses_many_uplinks_single_path_one(self):
        topo = small_topo()

        def uplinks_touched(algorithm, paths, seed):
            sim = PacketNetSim(topo, seed=seed)
            MessageFlow(
                sim, "f0", ServerAddress(0, 1), ServerAddress(1, 2), 0,
                message_bytes=8 * MB, algorithm=algorithm, path_count=paths,
                mtu=64 * 1024,
            )
            sim.run(until=1.0)
            return sum(
                1 for port in sim.ports()
                if port.ref.kind == "tor_up" and port.packets_tx == 0
                and port.queue_samples
            ), sum(
                1 for port in sim.ports() if port.ref.kind == "tor_up"
            )

        _, sprayed = uplinks_touched("obs", 128, seed=3)
        _, single = uplinks_touched("single", 1, seed=3)
        assert sprayed > single

    def test_loss_recovery_via_rto_respray(self):
        """A lossy link slows a flow but the RTO re-spray completes it."""
        topo = small_topo()
        sim = PacketNetSim(topo, seed=4)
        flow = MessageFlow(
            sim, "f0", ServerAddress(0, 0), ServerAddress(1, 3), 0,
            message_bytes=2 * MB, algorithm="obs", path_count=16, mtu=32 * 1024,
        )
        # Injure one uplink the flow will sometimes cross.
        victim = pick_victim_uplink(topo)
        FailureScenario(sim).random_drop(victim, 0.5)
        results = run_flows(sim, [flow], timeout=2.0)
        assert flow.done
        assert results[0].bytes_acked == 2 * MB

    def test_single_path_through_dead_link_relies_on_respray(self):
        """Even 'single path' retransmits elsewhere after RTO — but only
        multi-path gets to keep its window; verify both complete with
        spray strictly faster under 100% loss on one uplink."""
        topo = small_topo(aggs_per_plane=2)
        outcomes = {}
        for name, paths in (("single", 1), ("obs", 16)):
            sim = PacketNetSim(topo, seed=11)
            flow = MessageFlow(
                sim, name, ServerAddress(0, 0), ServerAddress(1, 1), 0,
                message_bytes=1 * MB, algorithm=name, path_count=paths,
                mtu=32 * 1024, connection_id=5,
            )
            route = topo.route(ServerAddress(0, 0), ServerAddress(1, 1), 0,
                               path_id=0, connection_id=5)
            FailureScenario(sim).random_drop(route[1], 0.3)
            run_flows(sim, [flow], timeout=3.0)
            outcomes[name] = flow.result()
        assert outcomes["single"].bytes_acked == 1 * MB
        assert outcomes["obs"].bytes_acked == 1 * MB
        assert outcomes["obs"].completion_time < outcomes["single"].completion_time

    def test_effective_loss_rate_math(self):
        assert effective_loss_rate(0.03, 128) == pytest.approx(0.03 / 128)
        assert effective_loss_rate(0.03, 1) == pytest.approx(0.03)
        with pytest.raises(ValueError):
            effective_loss_rate(0.03, 0)


class TestQueueStats:
    def test_permutation_queue_depth_spray_vs_single(self):
        """Figure 9 in miniature: queue depth collapses with 128 paths."""
        # Non-oversubscribed like the paper's fabric: 8 uplinks per plane
        # match 8 servers' worth of per-plane traffic.
        topo = small_topo(servers_per_segment=8, aggs_per_plane=8)

        from repro.rnic.cc import WindowCC

        def run(algorithm, paths, seed=5):
            sim = PacketNetSim(topo, seed=seed)
            flows = []
            for i in range(8):
                flows.append(MessageFlow(
                    sim, "f%d" % i,
                    ServerAddress(0, i), ServerAddress(1, (i + 3) % 8), 0,
                    message_bytes=64 * MB, algorithm=algorithm,
                    path_count=paths, mtu=64 * 1024, connection_id=i,
                    cc=WindowCC(init_window=2 * 1024 * 1024),
                ))
            results = run_flows(sim, flows, timeout=2.0)
            assert all(flow.done for flow in flows)
            avg, peak = sim.tor_queue_stats()
            goodput = sum(r.goodput for r in results) / len(results)
            return peak, goodput

        single_max, single_goodput = run("single", 1)
        spray_max, spray_goodput = run("obs", 128)
        assert spray_max < single_max * 0.5
        assert spray_goodput > single_goodput
