"""Fast-path behaviour of the tuple-heap EventScheduler.

The PR 4 scheduler keeps (time, seq, payload) tuples on the heap, counts
cancelled entries incrementally, compacts lazily when dead entries
dominate, and fuses the run loop.  These tests pin the observable
contract of all of that: execution order is unchanged, ``pending()`` is
exact under heavy cancellation, the heap cannot grow unbounded with
cancelled RTO-style timers, and instance-level ``step`` shadowing
(SimSanitizer) still sees every event.
"""

import pytest

from repro.sim.engine import Event, EventScheduler, SimProcessError


class TestCancellationHeavy:
    def test_pending_is_exact_under_mass_cancellation(self):
        sched = EventScheduler()
        events = [sched.schedule(i * 1e-6, lambda: None) for i in range(1000)]
        assert sched.pending() == 1000
        for event in events[::2]:
            event.cancel()
        assert sched.pending() == 500

    def test_cancel_is_idempotent_in_the_accounting(self):
        sched = EventScheduler()
        events = [sched.schedule(1.0, lambda: None) for _ in range(10)]
        events[0].cancel()
        events[0].cancel()
        events[0].cancel()
        assert sched.pending() == 9

    def test_heap_compacts_when_dead_entries_dominate(self):
        # RTO-timer pattern: thousands of timers scheduled far in the
        # future, almost all cancelled long before their deadline.  The
        # seed scheduler kept every carcass until its timestamp; the
        # compacting heap must stay bounded by the live set.
        sched = EventScheduler()
        events = [sched.schedule(10.0, lambda: None) for _ in range(4000)]
        for event in events[:-10]:
            event.cancel()
        assert sched.pending() == 10
        assert sched.snapshot()["queue_len"] < 4000
        assert sched.snapshot()["queue_len"] >= 10

    def test_traced_scheduler_never_compacts(self):
        # Queue-depth samples are digest-bearing: with a tracer attached
        # the heap must keep its historical shape (cancelled entries are
        # only dropped when they surface at the heap head).
        class _Tracer:
            enabled = True

            def record_callback(self, ts, name, wall, queue_depth=None):
                pass

        sched = EventScheduler(tracer=_Tracer())
        events = [sched.schedule(10.0, lambda: None) for _ in range(4000)]
        for event in events[:-10]:
            event.cancel()
        assert sched.snapshot()["queue_len"] == 4000
        assert sched.pending() == 10

    def test_cancellation_heavy_workload_executes_survivors_in_order(self):
        sched = EventScheduler()
        fired = []
        events = []
        for i in range(2000):
            events.append(
                sched.schedule(i * 1e-6, lambda i=i: fired.append(i))
            )
        for i, event in enumerate(events):
            if i % 17 != 0:
                event.cancel()
        sched.run()
        assert fired == [i for i in range(2000) if i % 17 == 0]
        assert sched.pending() == 0

    def test_cancel_after_execution_does_not_corrupt_counts(self):
        sched = EventScheduler()
        event = sched.schedule(0.0, lambda: None)
        survivor = sched.schedule(1.0, lambda: None)
        sched.run(until=0.5)
        event.cancel()  # already executed: must be a no-op
        assert sched.pending() == 1
        survivor.cancel()
        assert sched.pending() == 0

    def test_compaction_from_inside_a_callback(self):
        # A callback that cancels enough timers to trigger compaction
        # while the fused run loop holds a local heap reference.
        sched = EventScheduler()
        timers = [sched.schedule(5.0, lambda: None) for _ in range(500)]
        fired = []

        def cancel_all():
            for timer in timers:
                timer.cancel()
            fired.append("cancelled")

        sched.schedule(0.1, cancel_all)
        sched.schedule(0.2, lambda: fired.append("after"))
        sched.run()
        assert fired == ["cancelled", "after"]
        assert sched.pending() == 0


class TestLargeWorkloads:
    def test_million_event_chain(self):
        # One self-rescheduling chain executing a million events: the
        # run loop must hold time monotonicity and exact accounting at
        # packet-kernel scale.
        sched = EventScheduler()
        target = 1_000_000
        state = {"count": 0}

        def tick():
            state["count"] += 1
            if state["count"] < target:
                sched.schedule_call(1e-6, tick)

        sched.schedule_call(0.0, tick)
        executed = sched.run()
        assert executed == target
        assert state["count"] == target
        assert sched.events_executed == target
        assert sched.pending() == 0
        assert sched.now == pytest.approx((target - 1) * 1e-6, rel=1e-6)

    def test_max_events_budget_on_large_run(self):
        sched = EventScheduler()

        def tick():
            sched.schedule_call(1e-6, tick)

        sched.schedule_call(0.0, tick)
        assert sched.run(max_events=50_000) == 50_000
        assert sched.events_executed == 50_000


class TestScheduleCall:
    def test_schedule_call_interleaves_with_schedule(self):
        sched = EventScheduler()
        order = []
        sched.schedule(2e-6, lambda: order.append("event"))
        sched.schedule_call(1e-6, lambda: order.append("bare-early"))
        sched.schedule_call(3e-6, lambda: order.append("bare-late"))
        sched.run()
        assert order == ["bare-early", "event", "bare-late"]

    def test_schedule_call_ties_break_by_insertion(self):
        sched = EventScheduler()
        order = []
        sched.schedule_call(1e-6, lambda: order.append(0))
        sched.schedule(1e-6, lambda: order.append(1))
        sched.schedule_call(1e-6, lambda: order.append(2))
        sched.run()
        assert order == [0, 1, 2]

    def test_schedule_call_rejects_negative_delay(self):
        sched = EventScheduler()
        with pytest.raises(SimProcessError):
            sched.schedule_call(-1.0, lambda: None)

    def test_live_events_wraps_bare_callbacks(self):
        sched = EventScheduler()
        sched.schedule_call(2e-6, lambda: None)
        handle = sched.schedule(1e-6, lambda: None)
        live = sched.live_events()
        assert len(live) == 2
        assert all(isinstance(event, Event) for event in live)
        assert live[0] is handle  # sorted by (time, seq)
        assert live[1].time == pytest.approx(2e-6)

    def test_pending_counts_bare_callbacks(self):
        sched = EventScheduler()
        sched.schedule_call(1e-6, lambda: None)
        sched.schedule_call(2e-6, lambda: None)
        assert sched.pending() == 2
        sched.run()
        assert sched.pending() == 0


class TestRunStepEquivalence:
    @staticmethod
    def _workload(sched, log):
        events = []

        def spawn(i):
            log.append((sched.now, i))
            if i < 50:
                sched.schedule(1e-6 * (i % 3 + 1), lambda: spawn(i + 1))

        for i in range(5):
            events.append(sched.schedule(i * 1e-6, lambda i=i: spawn(i * 100)))
        events[3].cancel()
        sched.schedule_call(2.5e-6, lambda: log.append((sched.now, "bare")))

    def test_fused_run_matches_manual_stepping(self):
        fused_log = []
        fused = EventScheduler()
        self._workload(fused, fused_log)
        fused.run()

        stepped_log = []
        stepped = EventScheduler()
        self._workload(stepped, stepped_log)
        while stepped.step():
            pass

        assert fused_log == stepped_log
        assert fused.now == stepped.now
        assert fused.events_executed == stepped.events_executed

    def test_step_shadow_intercepts_every_event(self):
        # SimSanitizer instance-shadows step(); run() must detect the
        # shadow and route every event through it.
        sched = EventScheduler()
        seen = []
        original_step = sched.step

        def shadow():
            seen.append(sched.peek_time())
            return original_step()

        sched.step = shadow
        fired = []
        for i in range(5):
            sched.schedule(i * 1e-6, lambda i=i: fired.append(i))
        executed = sched.run()
        assert executed == 5
        assert fired == [0, 1, 2, 3, 4]
        assert len(seen) == 5

    def test_step_shadow_respects_until_and_budget(self):
        sched = EventScheduler()
        calls = []
        original_step = sched.step

        def shadow():
            calls.append(sched.now)
            return original_step()

        sched.step = shadow
        for i in range(10):
            sched.schedule(i * 1.0, lambda: None)
        assert sched.run(until=4.5) == 5
        assert sched.now == 4.5
        assert sched.run(max_events=2) == 2
        assert len(calls) == 7


class TestPeekTime:
    def test_peek_skips_cancelled_heads_and_fixes_accounting(self):
        sched = EventScheduler()
        doomed = [sched.schedule(1e-6, lambda: None) for _ in range(5)]
        sched.schedule(2e-6, lambda: None)
        for event in doomed:
            event.cancel()
        assert sched.peek_time() == pytest.approx(2e-6)
        assert sched.pending() == 1
        assert sched.snapshot()["queue_len"] == 1
