"""Why pinning exists: page swap under device DMA mappings (problem 2).

"When the host OS swaps out HPA memory pages, the GPA-to-HPA mapping
changes, causing the RNIC driver inside the RunD container to behave
unpredictably and crash.  The workaround is to ... pin these memory
regions."  These tests demonstrate the crash mechanism and both cures
(full pin and PVDMA's per-block pin).
"""


from repro.core import PvdmaEngine
from repro.sim.units import GiB
from repro.virt import Hypervisor, MemoryMode, RunDContainer


def make(mode=MemoryMode.PVDMA):
    hv = Hypervisor()
    c = RunDContainer("swap", 4 * GiB, hv, memory_mode=mode)
    c.boot()
    return hv, c


def test_unpinned_dma_mapping_goes_stale_on_swap():
    """The crash: device DMA and guest view diverge after a swap."""
    hv, c = make()
    pvdma = PvdmaEngine(hv)
    pvdma.dma_prepare(c, 0x0, 4096)
    # Simulate the pin being absent (pre-Stellar, pre-pinning world).
    hv.iommu.domain(c.domain_name).pins.unpin(c.hpa_base, 4096)
    assert hv.swap_out(c, 0x0)
    assert not hv.device_dma_is_consistent(c, 0x0)


def test_pvdma_pin_blocks_the_swap():
    """PVDMA's on-demand pin protects exactly the blocks devices use."""
    hv, c = make()
    pvdma = PvdmaEngine(hv)
    pvdma.dma_prepare(c, 0x0, 4096)
    assert not hv.swap_out(c, 0x0)           # pinned: refused
    assert hv.device_dma_is_consistent(c, 0x0)
    # An untouched region is still swappable — that is PVDMA's economy.
    far = 1 << 30
    assert hv.swap_out(c, far)


def test_full_pin_blocks_all_swaps():
    hv, c = make(mode=MemoryMode.FULL_PIN)
    assert not hv.swap_out(c, 0x0)
    assert not hv.swap_out(c, 1 << 30)


def test_swap_moves_the_guest_backing():
    hv, c = make()
    before = hv.mmu.translate(c.name, 0x0)
    assert hv.swap_out(c, 0x0)
    after = hv.mmu.translate(c.name, 0x0)
    assert after != before
