"""Unit tests for address spaces, regions, and the physical memory map."""

import pytest

from repro.memory import (
    AddressError,
    AddressSpace,
    MemoryKind,
    MemoryRegion,
    MisalignedAddressError,
    PhysicalMemoryMap,
    align_down,
    align_up,
    page_count,
    page_span,
)
from repro.memory.address import check_alignment


def test_alignment_helpers():
    assert align_down(0x1234, 0x1000) == 0x1000
    assert align_up(0x1234, 0x1000) == 0x2000
    assert align_up(0x2000, 0x1000) == 0x2000
    check_alignment(0x2000, 0x1000)
    with pytest.raises(MisalignedAddressError):
        check_alignment(0x2001, 0x1000)


def test_page_span_covers_partial_pages():
    pages = list(page_span(0x1800, 0x1000, 0x1000))
    assert pages == [0x1000, 0x2000]
    assert page_count(0x1800, 0x1000, 0x1000) == 2
    assert page_count(0x1000, 0, 0x1000) == 0


def test_region_basics():
    region = MemoryRegion(0x1000, 0x2000, AddressSpace.HPA, MemoryKind.HOST_DRAM)
    assert region.end == 0x3000
    assert region.contains(0x1000)
    assert region.contains(0x2FFF)
    assert not region.contains(0x3000)
    assert region.contains(0x2000, length=0x1000)
    assert not region.contains(0x2000, length=0x1001)
    assert region.offset_of(0x1800) == 0x800


def test_region_rejects_bad_shape():
    with pytest.raises(AddressError):
        MemoryRegion(-1, 10, AddressSpace.GVA)
    with pytest.raises(AddressError):
        MemoryRegion(0, 0, AddressSpace.GVA)


def test_region_overlap_and_subregion():
    a = MemoryRegion(0x0, 0x100, AddressSpace.GPA)
    b = MemoryRegion(0x80, 0x100, AddressSpace.GPA)
    c = MemoryRegion(0x100, 0x10, AddressSpace.GPA)
    assert a.overlaps(b) and b.overlaps(a)
    assert not a.overlaps(c)
    sub = a.subregion(0x10, 0x20)
    assert sub.start == 0x10 and sub.length == 0x20
    with pytest.raises(AddressError):
        a.subregion(0xF0, 0x20)


def test_region_offset_of_outside_raises():
    region = MemoryRegion(0x1000, 0x100, AddressSpace.HVA)
    with pytest.raises(AddressError):
        region.offset_of(0x2000)


def test_physical_map_allocates_disjoint_aligned_regions():
    hpa = PhysicalMemoryMap(AddressSpace.HPA, 1 << 30)
    first = hpa.allocate(0x1000, MemoryKind.HOST_DRAM, alignment=0x1000)
    second = hpa.allocate(0x2000, MemoryKind.GPU_HBM, alignment=0x10000)
    assert not first.overlaps(second)
    assert second.start % 0x10000 == 0
    assert hpa.region_at(first.start) is first
    assert hpa.region_at(second.start + 0x1FFF) is second
    assert hpa.region_at(1 << 29) is None


def test_physical_map_free_and_reuse():
    hpa = PhysicalMemoryMap(AddressSpace.HPA, 1 << 20)
    region = hpa.allocate(0x1000, MemoryKind.HOST_DRAM)
    hpa.free(region)
    again = hpa.allocate(0x800, MemoryKind.HOST_DRAM)
    assert again.start == region.start  # recycled the hole
    with pytest.raises(AddressError):
        hpa.free(region)  # double free


def test_physical_map_exhaustion():
    hpa = PhysicalMemoryMap(AddressSpace.HPA, 0x1000)
    hpa.allocate(0x800, MemoryKind.HOST_DRAM)
    with pytest.raises(AddressError):
        hpa.allocate(0x1000, MemoryKind.HOST_DRAM)


def test_physical_map_reserve_rejects_overlap():
    hpa = PhysicalMemoryMap(AddressSpace.HPA, 1 << 20)
    hpa.reserve(0x10000, 0x1000, MemoryKind.DEVICE_MMIO)
    with pytest.raises(AddressError):
        hpa.reserve(0x10800, 0x1000, MemoryKind.DEVICE_MMIO)
