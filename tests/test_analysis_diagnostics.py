"""Unit tests for the diagnostics/report surfaces."""

from repro.analysis import (
    fabric_report,
    format_decimal_bytes,
    network_report,
    pvdma_report,
    render_report,
    rnic_report,
)
from repro.core import StellarHost
from repro.net import DualPlaneTopology, MessageFlow, PacketNetSim, ServerAddress, run_flows
from repro.sim.units import GiB, MB, MiB


def test_rnic_and_fabric_reports():
    host = StellarHost.build(host_memory_bytes=32 * GiB, gpu_hbm_bytes=4 * GiB)
    record = host.launch_container("diag", 1 * GiB)
    vdev = record.container.vstellar_device
    buf = record.container.alloc_buffer(1 * MiB)
    host.dma_prepare(record.container, buf)
    vdev.reg_mr_host(buf)

    report = rnic_report(vdev)
    assert report["name"] == vdev.name
    assert report["mtt_entries"] == 1
    assert report["doorbell_rings"] == 0

    parent = rnic_report(vdev.parent)
    assert parent["vdevices"] == 1

    fab = fabric_report(host.fabric)
    assert len(fab["switches"]) == 4
    assert all(sw["lut_used"] == 1 for sw in fab["switches"])

    pv = pvdma_report(host.pvdma, [record.container])
    assert pv["containers"][0]["misses"] >= 1
    assert pv["containers"][0]["pinned_bytes"] > 0


def test_network_report_lists_hot_ports():
    topo = DualPlaneTopology(segments=2, servers_per_segment=2, rails=1,
                             planes=2, aggs_per_plane=4)
    sim = PacketNetSim(topo, seed=3)
    flow = MessageFlow(sim, "f", ServerAddress(0, 0), ServerAddress(1, 0), 0,
                       message_bytes=4 * MB, algorithm="obs", path_count=8,
                       mtu=64 * 1024)
    run_flows(sim, [flow], timeout=1.0)
    report = network_report(sim, top_n=3)
    assert report["packets_delivered"] > 0
    assert report["packets_dropped"] == 0
    assert 1 <= len(report["hot_ports"]) <= 3


def test_render_report_flattens_nested_structures():
    table = render_report("demo", {"a": 1, "b": {"c": [2, 3]}})
    text = table.render()
    assert "a" in text and "b.c[0]" in text and "b.c[1]" in text


def test_format_decimal_bytes():
    assert format_decimal_bytes(16 * 10**9) == "16GB"
    assert format_decimal_bytes(int(1.6e12)) == "1.6TB"
    assert format_decimal_bytes(500) == "500B"
