"""Unit tests for the PCIe substrate: BDFs, switch LUT, routing, ATC."""

import pytest

from repro import calibration
from repro.memory import Iommu, MemoryKind
from repro.pcie import (
    AddressType,
    Bdf,
    DeviceAtc,
    LutCapacityError,
    PcieError,
    PcieFabric,
    Tlp,
    build_ai_server_fabric,
)


class TestBdf:
    def test_parse_format_roundtrip(self):
        bdf = Bdf.parse("3a:00.1")
        assert str(bdf) == "3a:00.1"
        assert bdf == Bdf(0x3A, 0, 1)
        assert hash(bdf) == hash(Bdf(0x3A, 0, 1))

    def test_validation(self):
        with pytest.raises(ValueError):
            Bdf(300, 0, 0)
        with pytest.raises(ValueError):
            Bdf(0, 40, 0)
        with pytest.raises(ValueError):
            Bdf(0, 0, 9)
        with pytest.raises(ValueError):
            Bdf.parse("not-a-bdf")

    def test_ordering(self):
        assert Bdf(1, 0, 0) < Bdf(2, 0, 0) < Bdf(2, 0, 1)


def build_small_fabric():
    fabric = PcieFabric(host_memory_bytes=1 << 30)
    switch = fabric.add_switch(lut_capacity=4)
    rnic = fabric.add_endpoint(switch, "rnic0")
    gpu = fabric.add_gpu(switch, "gpu0", hbm_bytes=1 << 30)
    return fabric, switch, rnic, gpu


class TestRouting:
    def test_translated_tlp_routes_p2p_bypassing_rc(self):
        fabric, switch, rnic, gpu = build_small_fabric()
        switch.register_lut(rnic.bdf)
        tlp = Tlp.mem_write(
            gpu.hbm_address(0x1000), 4096, rnic.bdf, at=AddressType.TRANSLATED
        )
        delivery = fabric.route(tlp)
        assert delivery.destination is gpu
        assert not delivery.visited("RC")
        assert delivery.visited(switch.name)
        assert gpu.bytes_received == 4096

    def test_translated_p2p_requires_lut_registration(self):
        fabric, switch, rnic, gpu = build_small_fabric()
        tlp = Tlp.mem_write(
            gpu.hbm_address(0), 64, rnic.bdf, at=AddressType.TRANSLATED
        )
        with pytest.raises(PcieError):
            fabric.route(tlp)

    def test_untranslated_tlp_climbs_to_rc_for_iommu(self):
        fabric, switch, rnic, gpu = build_small_fabric()
        buffer = fabric.allocate_host_buffer(4096)
        fabric.iommu.create_domain("vm0")
        fabric.iommu.map("vm0", 0x0, buffer.start, 4096, kind=MemoryKind.HOST_DRAM)
        fabric.root_complex.bind_domain(rnic.bdf, "vm0")
        tlp = Tlp.mem_write(0x0, 4096, rnic.bdf, at=AddressType.UNTRANSLATED)
        delivery = fabric.route(tlp)
        assert delivery.destination is fabric.host_memory
        assert delivery.visited("RC")
        assert delivery.translated_address == buffer.start

    def test_untranslated_gdr_reflects_through_rc(self):
        """The HyV/MasQ GDR path: GPU-bound DMA without eMTT goes up to the
        RC, translates, and is reflected back down (Figure 14's 141 Gbps)."""
        fabric, switch, rnic, gpu = build_small_fabric()
        fabric.iommu.create_domain("vm0")
        fabric.iommu.map(
            "vm0", 0x0, gpu.hbm_address(0x0), 8192, kind=MemoryKind.GPU_HBM
        )
        fabric.root_complex.bind_domain(rnic.bdf, "vm0")
        tlp = Tlp.mem_write(0x1000, 4096, rnic.bdf, at=AddressType.UNTRANSLATED)
        delivery = fabric.route(tlp)
        assert delivery.destination is gpu
        assert delivery.visited("RC")
        assert fabric.root_complex.p2p_reflected_tlps == 1
        assert fabric.root_complex.p2p_reflected_bytes == 4096

    def test_unbound_requester_rejected_at_rc(self):
        fabric, switch, rnic, gpu = build_small_fabric()
        tlp = Tlp.mem_write(0x0, 64, rnic.bdf)
        with pytest.raises(PcieError):
            fabric.route(tlp)

    def test_p2p_latency_below_rc_path(self):
        fabric, switch, rnic, gpu = build_small_fabric()
        switch.register_lut(rnic.bdf)
        fabric.iommu.create_domain("vm0")
        fabric.iommu.map(
            "vm0", 0x0, gpu.hbm_address(0x0), 4096, kind=MemoryKind.GPU_HBM
        )
        fabric.root_complex.bind_domain(rnic.bdf, "vm0")
        p2p = fabric.route(
            Tlp.mem_write(gpu.hbm_address(0), 64, rnic.bdf, at=AddressType.TRANSLATED)
        )
        rc = fabric.route(Tlp.mem_write(0x0, 64, rnic.bdf))
        assert p2p.latency < rc.latency


class TestSwitchLut:
    def test_lut_capacity_enforced(self):
        fabric, switch, rnic, gpu = build_small_fabric()
        for i in range(switch.lut_capacity):
            switch.register_lut(Bdf(0x40, 0, i))
        assert switch.lut_free == 0
        with pytest.raises(LutCapacityError):
            switch.register_lut(rnic.bdf)
        switch.unregister_lut(Bdf(0x40, 0, 0))
        switch.register_lut(rnic.bdf)  # now fits

    def test_lut_register_idempotent(self):
        fabric, switch, rnic, gpu = build_small_fabric()
        switch.register_lut(rnic.bdf)
        switch.register_lut(rnic.bdf)
        assert switch.lut_free == switch.lut_capacity - 1


class TestAiServerFabric:
    def test_paper_server_shape(self):
        fabric, rnics, gpus = build_ai_server_fabric()
        assert len(rnics) == calibration.SERVER_RNICS
        assert len(gpus) == calibration.SERVER_GPUS
        assert len(fabric.switches) == calibration.SERVER_PCIE_SWITCHES
        # Rail alignment: RNIC i shares its switch with GPUs 2i, 2i+1.
        for i, rnic in enumerate(rnics):
            switch = fabric.switch_of(rnic.bdf)
            assert gpus[2 * i].port is switch
            assert gpus[2 * i + 1].port is switch

    def test_bdfs_unique(self):
        fabric, rnics, gpus = build_ai_server_fabric()
        bdfs = [f.bdf for f in rnics + gpus]
        assert len(set(bdfs)) == len(bdfs)

    def test_bad_shape_rejected(self):
        with pytest.raises(PcieError):
            build_ai_server_fabric(gpus=7, rnics=4, pcie_switches=4)


class TestDeviceAtc:
    def make_atc(self, capacity=4):
        iommu = Iommu()
        iommu.create_domain("vm0")
        iommu.map("vm0", 0x0, 0x100000, 64 * 4096, kind=MemoryKind.GPU_HBM)
        return iommu, DeviceAtc(iommu, "vm0", capacity_pages=capacity)

    def test_miss_then_hit(self):
        iommu, atc = self.make_atc()
        miss = atc.translate(0x10)
        hit = atc.translate(0x20)
        assert not miss.atc_hit and hit.atc_hit
        assert miss.hpa == 0x100010 and hit.hpa == 0x100020
        assert hit.latency < miss.latency
        assert hit.kind is MemoryKind.GPU_HBM

    def test_capacity_thrash(self):
        iommu, atc = self.make_atc(capacity=4)
        # Cyclic scan over 8 pages with a 4-page ATC: steady state is 0% hits.
        for _ in range(3):
            for page in range(8):
                atc.translate(page * 4096)
        atc.reset_counters()
        for page in range(8):
            atc.translate(page * 4096)
        assert atc.cache.hits == 0

    def test_invalidate_range(self):
        iommu, atc = self.make_atc()
        atc.translate(0x0)
        atc.translate(0x1000)
        atc.invalidate_range(0x0, 4096)
        assert 0x0 not in atc.cache
        assert 0x1000 in atc.cache
