"""Unit tests for the Memory Translation Table."""

import pytest

from repro.memory import MemoryKind
from repro.rnic import Mtt, MttError


def test_register_and_lookup():
    mtt = Mtt()
    key = mtt.register(
        0x1000,
        [(0x1000, 0xA0000, 0x2000), (0x3000, 0xC0000, 0x1000)],
        MemoryKind.GPU_HBM,
        translated=True,
    )
    chunks, entry = mtt.lookup(key, 0x1800, 0x100)
    assert chunks == [(0x1800, 0xA0800, 0x100)]
    assert entry.kind is MemoryKind.GPU_HBM
    assert entry.translated
    # A range straddling the discontiguous frame boundary splits.
    chunks, _ = mtt.lookup(key, 0x2F00, 0x200)
    assert chunks == [(0x2F00, 0xA1F00, 0x100), (0x3000, 0xC0000, 0x100)]


def test_out_of_bounds_access_rejected():
    mtt = Mtt()
    key = mtt.register(0x0, [(0x0, 0xA0000, 0x1000)], MemoryKind.HOST_DRAM, False)
    with pytest.raises(MttError):
        mtt.lookup(key, 0x800, 0x1000)
    with pytest.raises(MttError):
        mtt.lookup(key, 0x1000, 1)


def test_unknown_key_rejected():
    mtt = Mtt()
    with pytest.raises(MttError):
        mtt.lookup(999, 0x0)
    with pytest.raises(MttError):
        mtt.deregister(999)


def test_deregister_frees_key():
    mtt = Mtt()
    key = mtt.register(0x0, [(0x0, 0xA0000, 0x1000)], MemoryKind.HOST_DRAM, False)
    mtt.deregister(key)
    assert len(mtt) == 0
    with pytest.raises(MttError):
        mtt.lookup(key, 0x0)


def test_noncontiguous_va_chunks_rejected():
    mtt = Mtt()
    with pytest.raises(MttError):
        mtt.register(
            0x0,
            [(0x0, 0xA0000, 0x1000), (0x2000, 0xB0000, 0x1000)],  # VA hole
            MemoryKind.HOST_DRAM,
            False,
        )


def test_empty_chunks_rejected():
    mtt = Mtt()
    with pytest.raises(MttError):
        mtt.register(0x0, [], MemoryKind.HOST_DRAM, False)


def test_capacity_enforced():
    mtt = Mtt(capacity=2)
    mtt.register(0x0, [(0x0, 0xA0000, 0x1000)], MemoryKind.HOST_DRAM, False)
    mtt.register(0x0, [(0x0, 0xB0000, 0x1000)], MemoryKind.HOST_DRAM, False)
    with pytest.raises(MttError):
        mtt.register(0x0, [(0x0, 0xC0000, 0x1000)], MemoryKind.HOST_DRAM, False)


def test_keys_are_unique_even_after_deregister():
    mtt = Mtt()
    k1 = mtt.register(0x0, [(0x0, 0xA0000, 0x1000)], MemoryKind.HOST_DRAM, False)
    mtt.deregister(k1)
    k2 = mtt.register(0x0, [(0x0, 0xB0000, 0x1000)], MemoryKind.HOST_DRAM, False)
    assert k2 != k1
