"""FlightRecorder unit tests: ring semantics, export, and the Perfetto
merge (sampler counter tracks + flight instant tracks in one document)."""

import json

import pytest

from repro.obs import FlightRecorder, write_perfetto_trace
from repro.obs.export import load_chrome_trace, perfetto_document
from repro.obs.metrics import MetricsRegistry
from repro.obs.sampler import TimeSeriesSampler


class TestRing:
    def test_records_in_order(self):
        flight = FlightRecorder()
        for i in range(5):
            flight.record(float(i), "net", "kind-%d" % i, seq=i)
        events = flight.events()
        assert [e["kind"] for e in events] == ["kind-%d" % i for i in range(5)]
        assert [e["t"] for e in events] == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert flight.recorded == 5
        assert flight.dropped == 0

    def test_capacity_evicts_oldest_first(self):
        flight = FlightRecorder(capacity=4)
        for i in range(6):
            flight.record(float(i), "net", "k", seq=i)
        assert len(flight) == 4
        assert flight.dropped == 2
        assert flight.recorded == 6
        assert [e["payload"]["seq"] for e in flight.events()] == [2, 3, 4, 5]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_disabled_recorder_is_a_noop(self):
        flight = FlightRecorder(enabled=False)
        assert flight.record(1.0, "net", "retransmit") is None
        assert flight.recorded == 0
        assert len(flight) == 0
        assert flight.events() == []

    def test_unknown_severity_rejected(self):
        flight = FlightRecorder()
        with pytest.raises(ValueError):
            flight.record(0.0, "net", "k", severity="fatal")

    def test_by_kind_and_severity_counts(self):
        flight = FlightRecorder()
        flight.record(0.0, "net", "retransmit", severity="warn")
        flight.record(1.0, "net", "path-down", severity="error")
        flight.record(2.0, "net", "retransmit", severity="warn")
        assert len(flight.by_kind("retransmit")) == 2
        counts = flight.severity_counts()
        assert counts["warn"] == 2 and counts["error"] == 1
        assert counts["info"] == 0

    def test_payload_omitted_when_empty(self):
        flight = FlightRecorder()
        flight.record(0.0, "net", "bare")
        assert "payload" not in flight.events()[0]


class TestExport:
    def test_dump_jsonl_round_trips(self, tmp_path):
        flight = FlightRecorder()
        flight.record(0.5, "net", "retransmit", entity="flow-0", seq=7)
        flight.record(1.5, "cluster", "job-admit", entity="job:a")
        path = tmp_path / "flight.jsonl"
        assert flight.dump_jsonl(str(path)) == 2
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines[0]["kind"] == "retransmit"
        assert lines[0]["payload"] == {"seq": 7}
        assert lines[1]["entity"] == "job:a"

    def test_digest_tracks_content(self):
        a, b = FlightRecorder(), FlightRecorder()
        for flight in (a, b):
            flight.record(0.0, "net", "k", seq=1)
        assert a.digest() == b.digest()
        b.record(1.0, "net", "k", seq=2)
        assert a.digest() != b.digest()

    def test_snapshot_and_registry(self):
        flight = FlightRecorder(capacity=8)
        flight.record(0.0, "net", "k", severity="warn")
        snap = flight.snapshot()
        assert snap["recorded"] == 1
        assert snap["buffered"] == 1
        assert snap["capacity"] == 8
        assert snap["severity.warn"] == 1
        registry = MetricsRegistry("flight-test")
        flight.register_metrics(registry)
        assert registry.snapshot()["flight.recorded"] == 1


class TestPerfettoMerge:
    def _sampler(self):
        sampler = TimeSeriesSampler(None, None)
        sampler.samples = [
            (0.0, {"net.queue": 1}),
            (0.001, {"net.queue": 3}),
        ]
        return sampler

    def test_merged_trace_validates_and_has_all_tracks(self, tmp_path):
        flight = FlightRecorder()
        flight.record(0.002, "net", "retransmit", severity="warn", seq=1)
        flight.record(0.001, "cluster", "job-admit", entity="job:a")
        path = tmp_path / "trace.json"
        count = write_perfetto_trace(
            str(path), sampler=self._sampler(), flight=flight)
        document = load_chrome_trace(str(path))  # validates monotonicity
        events = document["traceEvents"]
        assert count == len(events)
        tracks = {
            e["args"]["name"] for e in events if e.get("ph") == "M"
        }
        assert {"sampled counters", "flight recorder",
                "flight severity"} <= tracks
        counters = [e for e in events if e.get("cat") == "counter"]
        assert any(e["name"] == "net.queue" for e in counters)
        assert any(e["name"] == "flight.severity" for e in counters)
        instants = [e for e in events if e.get("ph") == "i"]
        # Stable-sorted by t: the admit (t=0.001) precedes the retransmit.
        assert [e["name"] for e in instants] == ["job-admit", "retransmit"]
        assert instants[1]["args"]["severity"] == "warn"
        assert instants[1]["args"]["seq"] == 1

    def test_severity_counter_is_cumulative(self):
        flight = FlightRecorder()
        flight.record(0.0, "net", "a", severity="warn")
        flight.record(1.0, "net", "b", severity="warn")
        document = perfetto_document(flight=flight)
        series = [
            e["args"] for e in document["traceEvents"]
            if e.get("name") == "flight.severity"
        ]
        assert series == [{"warn": 1}, {"warn": 2}]

    def test_empty_inputs_produce_empty_document(self):
        document = perfetto_document(flight=FlightRecorder())
        assert document["traceEvents"] == []
