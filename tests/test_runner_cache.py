"""Result cache: hit/miss/refresh semantics and disk-fault tolerance.

The robustness contract under test: the cache may *lose* results (any
disk problem degrades to a recompute) but must never *invent* them — a
corrupt, truncated, or mislabeled entry is a miss, not a wrong answer.
"""

import json
import os

from repro.runner import ResultCache, TaskSpec, run_tasks

FIXTURES = "tests.runner_task_fixtures"


def _spec(key, x):
    return TaskSpec(key, "%s:add_point" % FIXTURES, {"x": x}, seed=7)


class TestLoadStore:
    def test_store_then_load_round_trips(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        spec = _spec("p", 1)
        digest = spec.digest()
        cache.store(digest, {"sum": 1}, spec=spec)
        hit, value = cache.load(digest)
        assert hit and value == {"sum": 1}
        assert cache.stats.snapshot() == {
            "hits": 1, "misses": 0, "stores": 1, "evictions": 0,
        }

    def test_absent_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        hit, value = cache.load("ab" + "0" * 62)
        assert not hit and value is None
        assert cache.stats.misses == 1

    def test_entries_are_sharded_by_digest_prefix(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        digest = "cd" + "1" * 62
        assert cache.path_for(digest) == os.path.join(
            str(tmp_path), "cd", digest + ".json")

    def test_store_leaves_no_temp_files(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        spec = _spec("p", 2)
        cache.store(spec.digest(), {"sum": 2}, spec=spec)
        leftovers = [
            name for _, _, files in os.walk(str(tmp_path))
            for name in files if ".tmp." in name
        ]
        assert leftovers == []

    def test_unwritable_root_degrades_to_no_cache(self, tmp_path):
        blocker = tmp_path / "cache_root"
        blocker.write_text("a file where the cache dir should be")
        cache = ResultCache(str(blocker))
        spec = _spec("p", 3)
        cache.store(spec.digest(), {"sum": 3}, spec=spec)  # must not raise
        assert cache.stats.stores == 0
        hit, _ = cache.load(spec.digest())
        assert not hit


class TestCorruptionTolerance:
    def _stored(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        spec = _spec("p", 4)
        digest = spec.digest()
        cache.store(digest, {"sum": 4}, spec=spec)
        return cache, spec, digest

    def test_truncated_entry_is_a_miss_and_evicted(self, tmp_path):
        cache, spec, digest = self._stored(tmp_path)
        path = cache.path_for(digest)
        with open(path, "r+") as handle:
            handle.truncate(10)
        hit, _ = cache.load(digest)
        assert not hit
        assert not os.path.exists(path)
        assert cache.stats.evictions == 1
        # The batch-level consequence: the task recomputes and re-stores.
        report = run_tasks([spec], workers=0, cache=cache)
        assert report.computed == 1
        assert report["p"].value["sum"] == 4
        assert cache.load(digest)[0]

    def test_schema_mismatch_is_a_miss(self, tmp_path):
        cache, _, digest = self._stored(tmp_path)
        path = cache.path_for(digest)
        doc = json.load(open(path))
        doc["schema"] = 999
        json.dump(doc, open(path, "w"))
        assert cache.load(digest) == (False, None)
        assert not os.path.exists(path)

    def test_digest_mismatch_is_a_miss(self, tmp_path):
        # An entry renamed (or copied) to the wrong address must not
        # serve: content-addressing means the digest *is* the identity.
        cache, _, digest = self._stored(tmp_path)
        wrong = "ee" + "2" * 62
        os.makedirs(os.path.dirname(cache.path_for(wrong)), exist_ok=True)
        os.rename(cache.path_for(digest), cache.path_for(wrong))
        assert cache.load(wrong) == (False, None)


class TestRunnerIntegration:
    def test_hit_miss_refresh_cycle(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        specs = [_spec("p%d" % i, i) for i in range(3)]

        cold = run_tasks(specs, workers=0, cache=cache)
        assert (cold.computed, cold.hits) == (3, 0)

        warm = run_tasks(specs, workers=0, cache=ResultCache(str(tmp_path)))
        assert (warm.computed, warm.hits) == (0, 3)
        assert [r.cached for r in warm.results.values()] == [True] * 3
        assert warm.rows() == cold.rows()

        refreshed = run_tasks(specs, workers=0,
                              cache=ResultCache(str(tmp_path)), refresh=True)
        assert (refreshed.computed, refreshed.hits) == (3, 0)
        assert refreshed.rows() == cold.rows()

    def test_cached_value_is_byte_identical_to_computed(self, tmp_path):
        # echo_tuple returns a tuple; normalization must make the cached
        # read-back indistinguishable from the original compute.
        from repro.runner import canonical_json

        spec = TaskSpec("t", "%s:echo_tuple" % FIXTURES, {"x": 1})
        cache = ResultCache(str(tmp_path))
        first = run_tasks([spec], workers=0, cache=cache)
        second = run_tasks([spec], workers=0, cache=cache)
        assert second["t"].cached
        assert canonical_json(first["t"].value) == \
            canonical_json(second["t"].value)
        assert first["t"].value == {"pair": [1, 2]}

    def test_no_cache_never_touches_disk(self, tmp_path, monkeypatch):
        from repro.runner import CACHE_DIR_ENV

        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "default"))
        report = run_tasks([_spec("p", 1)], workers=0, cache=None)
        assert report.cache_stats is None
        assert not (tmp_path / "default").exists()
