"""Unit tests for page tables, plus hypothesis properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import (
    AddressError,
    AddressSpace,
    MemoryKind,
    PageFault,
    PageTable,
)

PAGE = 4096


def make_table():
    return PageTable(PAGE, AddressSpace.GVA, AddressSpace.GPA)


def test_map_and_translate_within_page():
    table = make_table()
    table.map_page(0x1000, 0x8000)
    assert table.translate(0x1000) == 0x8000
    assert table.translate(0x1FFF) == 0x8FFF


def test_unmapped_translation_faults():
    table = make_table()
    with pytest.raises(PageFault):
        table.translate(0x5000)


def test_readonly_page_rejects_write():
    table = make_table()
    table.map_page(0x1000, 0x8000, writable=False)
    assert table.translate(0x1000, write=False) == 0x8000
    with pytest.raises(PageFault):
        table.translate(0x1000, write=True)


def test_remap_requires_overwrite():
    table = make_table()
    table.map_page(0x1000, 0x8000)
    with pytest.raises(AddressError):
        table.map_page(0x1000, 0x9000)
    table.map_page(0x1000, 0x9000, overwrite=True)
    assert table.translate(0x1000) == 0x9000
    # Re-mapping to the same target without overwrite is tolerated.
    table.map_page(0x1000, 0x9000)


def test_misaligned_map_rejected():
    table = make_table()
    with pytest.raises(AddressError):
        table.map_page(0x1001, 0x8000)
    with pytest.raises(AddressError):
        table.map_page(0x1000, 0x8001)


def test_map_range_and_unmap_range():
    table = make_table()
    table.map_range(0x10000, 0x40000, 3 * PAGE)
    assert len(table) == 3
    assert table.translate(0x10000 + 2 * PAGE + 5) == 0x40000 + 2 * PAGE + 5
    table.unmap_range(0x10000, 3 * PAGE)
    assert len(table) == 0
    with pytest.raises(PageFault):
        table.unmap_page(0x10000)


def test_entry_carries_kind():
    table = make_table()
    table.map_page(0x1000, 0x8000, kind=MemoryKind.GPU_HBM)
    assert table.entry(0x1800).kind is MemoryKind.GPU_HBM
    assert table.entry(0x2000) is None


def test_translate_region_coalesces_contiguous_frames():
    table = make_table()
    table.map_range(0x0, 0x100000, 4 * PAGE)  # contiguous target frames
    chunks = table.translate_region(0x0, 4 * PAGE)
    assert chunks == [(0x0, 0x100000, 4 * PAGE)]


def test_translate_region_splits_discontiguous_frames():
    table = make_table()
    table.map_page(0x0000, 0x100000)
    table.map_page(0x1000, 0x300000)  # gap in target space
    chunks = table.translate_region(0x800, 0x1000)
    assert chunks == [(0x800, 0x100800, 0x800), (0x1000, 0x300000, 0x800)]


def test_translate_region_rejects_nonpositive_length():
    table = make_table()
    with pytest.raises(AddressError):
        table.translate_region(0, 0)


def test_page_size_must_be_power_of_two():
    with pytest.raises(AddressError):
        PageTable(3000)


@settings(max_examples=50, deadline=None)
@given(
    pages=st.dictionaries(
        st.integers(min_value=0, max_value=1000),
        st.integers(min_value=2000, max_value=4000),
        min_size=1,
        max_size=40,
    ),
    offset=st.integers(min_value=0, max_value=PAGE - 1),
)
def test_translation_preserves_offset_property(pages, offset):
    """For any mapping and any in-page offset, translate(src+off) ==
    frame+off — translation never mixes pages."""
    table = PageTable(PAGE)
    for src_page, dst_page in pages.items():
        table.map_page(src_page * PAGE, dst_page * PAGE, overwrite=True)
    for src_page, dst_page in pages.items():
        assert table.translate(src_page * PAGE + offset) == dst_page * PAGE + offset


@settings(max_examples=50, deadline=None)
@given(
    start_page=st.integers(min_value=0, max_value=64),
    num_pages=st.integers(min_value=1, max_value=32),
    sub_start=st.integers(min_value=0, max_value=10_000),
    sub_len=st.integers(min_value=1, max_value=10_000),
)
def test_translate_region_chunks_cover_exact_bytes(
    start_page, num_pages, sub_start, sub_len
):
    """Chunks returned by translate_region tile the request exactly."""
    table = PageTable(PAGE)
    table.map_range(start_page * PAGE, 0x100000 + start_page * PAGE, num_pages * PAGE)
    total = num_pages * PAGE
    sub_start = sub_start % total
    sub_len = 1 + sub_len % (total - sub_start) if total - sub_start > 1 else 1
    chunks = table.translate_region(start_page * PAGE + sub_start, sub_len)
    assert sum(length for _, _, length in chunks) == sub_len
    cursor = start_page * PAGE + sub_start
    for src, _, length in chunks:
        assert src == cursor
        cursor += length
