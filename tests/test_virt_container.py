"""Unit tests for the hypervisor and RunD container lifecycle."""

import pytest

from repro import calibration
from repro.memory import PageFault
from repro.sim.units import GiB
from repro.virt import (
    ContainerState,
    Hypervisor,
    HypervisorError,
    MemoryMode,
    RunDContainer,
)


def make_container(memory=4 * GiB, mode=MemoryMode.PVDMA, name="c0"):
    hv = Hypervisor()
    container = RunDContainer(name, memory, hv, memory_mode=mode)
    return hv, container


class TestLifecycle:
    def test_boot_transitions_state_and_records_time(self):
        hv, c = make_container()
        cost = c.boot()
        assert c.state is ContainerState.RUNNING
        assert c.boot_seconds == cost > 0
        assert hv.iommu.has_domain(c.domain_name)

    def test_double_boot_rejected(self):
        hv, c = make_container()
        c.boot()
        with pytest.raises(HypervisorError):
            c.boot()

    def test_shutdown_releases_domains(self):
        hv, c = make_container()
        c.boot()
        c.shutdown()
        assert c.state is ContainerState.STOPPED
        assert not hv.iommu.has_domain(c.domain_name)
        assert c.name not in hv.containers

    def test_duplicate_name_rejected(self):
        hv, c = make_container()
        with pytest.raises(HypervisorError):
            RunDContainer("c0", 1 * GiB, hv)

    def test_alloc_before_boot_rejected(self):
        hv, c = make_container()
        with pytest.raises(HypervisorError):
            c.alloc_buffer(4096)


class TestBootTiming:
    def test_full_pin_matches_paper_scale(self):
        """1.6 TB FULL_PIN boots in ~390+ s; PVDMA boots under 20 s (Fig 6)."""
        hv, full = make_container(int(1.6e12), MemoryMode.FULL_PIN, "full")
        hv2, pvdma = make_container(int(1.6e12), MemoryMode.PVDMA, "pvdma")
        t_full = full.boot()
        t_pvdma = pvdma.boot()
        assert t_full > 350
        assert t_pvdma < 20
        assert t_full / t_pvdma >= calibration.STARTUP_SPEEDUP_MIN

    def test_pvdma_boot_grows_slowly_with_memory(self):
        hv_a, small = make_container(160 * 10**9, MemoryMode.PVDMA, "s")
        hv_b, big = make_container(int(1.6e12), MemoryMode.PVDMA, "b")
        delta = big.boot() - small.boot()
        assert 5 < delta < 15  # the paper's "slight increase (11 seconds)"

    def test_full_pin_sets_flag_and_maps_domain(self):
        hv, c = make_container(1 * GiB, MemoryMode.FULL_PIN)
        c.boot()
        assert c.fully_pinned
        assert hv.iommu.is_mapped(c.domain_name, 0)
        # GPA->HPA identity offset holds.
        assert hv.iommu.translate(c.domain_name, 0x1234) == c.hpa_base + 0x1234


class TestGuestAddressSpace:
    def test_alloc_buffer_translates_end_to_end(self):
        hv, c = make_container()
        c.boot()
        buf = c.alloc_buffer(64 * 1024)
        chunks = c.gva_to_hpa_chunks(buf.start, buf.length)
        assert sum(length for _, _, length in chunks) == buf.length
        # Contiguous GPA backing + contiguous HPA region -> one chunk.
        assert len(chunks) == 1
        assert chunks[0][1] == c.hpa_base  # first allocation starts at GPA 0

    def test_out_of_guest_ram(self):
        hv, c = make_container(memory=1 << 21)
        c.boot()
        with pytest.raises(HypervisorError):
            c.alloc_buffer(1 << 22)

    def test_mmio_windows_sit_above_ram(self):
        hv, c = make_container(memory=4 * GiB)
        c.boot()
        gpa = c.allocate_mmio_window(4096)
        assert gpa >= c.memory_bytes
        second = c.allocate_mmio_window(4096)
        assert second > gpa

    def test_alloc_gpa_at_places_exactly(self):
        hv, c = make_container()
        c.boot()
        region = c.alloc_gpa_at(0x200000, 4096)
        chunks = c.gva_to_gpa_chunks(region.start, 4096)
        assert chunks[0][1] == 0x200000

    def test_unmapped_gva_faults(self):
        hv, c = make_container()
        c.boot()
        with pytest.raises(PageFault):
            c.gva_to_gpa_chunks(0xDEAD0000, 64)
