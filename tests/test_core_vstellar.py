"""Unit tests for eMTT registration, vStellar devices, and StellarHost."""

import pytest

from repro import calibration
from repro.core import (
    StellarHost,
    VStellarError,
)
from repro.memory import MemoryKind
from repro.pcie import AddressType
from repro.rnic import connect_qps
from repro.sim.units import GiB, MiB


@pytest.fixture(scope="module")
def host():
    return StellarHost.build(host_memory_bytes=64 * GiB, gpu_hbm_bytes=4 * GiB)


@pytest.fixture()
def tenant(host):
    name = "tenant-%d" % len(host.launches)
    record = host.launch_container(name, memory_bytes=2 * GiB)
    yield record
    record.container.vstellar_device.parent.destroy_vdevice(
        record.container.vstellar_device
    )
    record.container.shutdown()


class TestLaunch:
    def test_launch_is_seconds_not_minutes(self, host, tenant):
        assert tenant.total_seconds < 20
        assert tenant.device_seconds == pytest.approx(
            calibration.VSTELLAR_DEVICE_CREATE_SECONDS + 50e-3
        )

    def test_container_gets_both_virtio_devices(self, host, tenant):
        types = {d.device_type.value for d in tenant.container.virtio_devices}
        assert types == {"virtio-net", "virtio-vstellar"}

    def test_vdev_shares_parent_bdf_no_lut_pressure(self, host, tenant):
        vdev = tenant.container.vstellar_device
        assert vdev.function.bdf == vdev.parent.function.bdf
        switch = host.fabric.switch_of(vdev.parent.function.bdf)
        # Only the parent's single LUT entry exists regardless of vdevices.
        assert switch.lut_free == switch.lut_capacity - 1

    def test_doorbells_are_standalone_per_device(self, host):
        a = host.launch_container("iso-a", 1 * GiB)
        b = host.launch_container("iso-b", 1 * GiB)
        vdb_a = a.container.vstellar_device.doorbell_region
        vdb_b = b.container.vstellar_device.doorbell_region
        assert not vdb_a.overlaps(vdb_b)

    def test_vdevice_limit_enforced(self, host):
        rnic = host.rnics[3]
        rnic.max_vdevices = len(rnic.vdevices)  # artificially cap
        record = host.launch_container("overflow", 1 * GiB, rnic_index=0)
        with pytest.raises(VStellarError):
            rnic.create_vdevice(record.container)
        rnic.max_vdevices = calibration.STELLAR_MAX_VDEVICES

    def test_shm_doorbell_region_present(self, host, tenant):
        vdev = tenant.container.vstellar_device
        assert "vdb" in vdev.virtio.shm_regions
        assert vdev.virtio.shm_regions["vdb"].backing is vdev.doorbell_region


class TestControlAndDataPath:
    def test_control_path_goes_through_virtio(self, host, tenant):
        vdev = tenant.container.vstellar_device
        before = vdev.virtio.control_round_trips
        resp = vdev.virtio.control("create_qp")
        assert resp.ok and "qpn" in resp.result
        assert vdev.virtio.control_round_trips == before + 1

    def test_unknown_control_op_rejected(self, host, tenant):
        vdev = tenant.container.vstellar_device
        resp = vdev.virtio.control("format_disk")
        assert not resp.ok

    def test_data_path_rdma_write_between_tenants(self, host):
        a = host.launch_container("dp-a", 1 * GiB).container
        b = host.launch_container("dp-b", 1 * GiB).container
        buf_a = a.alloc_buffer(1 * MiB)
        buf_b = b.alloc_buffer(1 * MiB)
        dev_a, dev_b = a.vstellar_device, b.vstellar_device
        mr_a = dev_a.reg_mr_host(buf_a)
        mr_b = dev_b.reg_mr_host(buf_b)
        qp_a = dev_a.create_qp(dev_a.default_pd)
        qp_b = dev_b.create_qp(dev_b.default_pd)
        connect_qps(qp_a, qp_b, nic_a=dev_a, nic_b=dev_b)
        rings_before = dev_a.doorbell_rings
        latency = dev_a.rdma_write(qp_a, "w", mr_a, buf_a.start, 64 * 1024,
                                   mr_b.rkey, buf_b.start)
        assert latency > 0
        assert dev_a.doorbell_rings == rings_before + 1
        assert qp_a.send_cq.poll()[0].ok
        assert dev_b.bytes_received == 64 * 1024
        assert dev_a.parent.vdev_bytes_sent >= 64 * 1024

    def test_host_mr_keeps_gpa_untranslated(self, host, tenant):
        """Figure 7: host-memory eMTT entries hold the GPA so the IOMMU
        still guards the final hop; only GPU entries are pre-translated."""
        container = tenant.container
        vdev = container.vstellar_device
        buf = container.alloc_buffer(64 * 1024)
        mr = vdev.reg_mr_host(buf)
        entry = vdev.mtt.entry(mr.mtt_key)
        assert not entry.translated
        assert entry.kind is MemoryKind.HOST_DRAM
        chunks, _ = vdev.mtt.lookup(mr.mtt_key, buf.start, 16)
        expected = container.gva_to_gpa_chunks(buf.start, 16)
        assert chunks == expected


class TestEmttGdrRouting:
    def test_gpu_mr_emits_translated_tlp_bypassing_rc(self, host, tenant):
        """Figure 7 step 1-2: GDR writes ride switch P2P, no RC visit."""
        vdev = tenant.container.vstellar_device
        gpu = host.rail_gpus(0)[0]
        mr = vdev.reg_mr_gpu(gpu, offset=0, length=1 * MiB)
        result, delivery = vdev.dma_access(mr, mr.va_base, 4096, emit=True)
        assert result.at is AddressType.TRANSLATED
        assert result.kind is MemoryKind.GPU_HBM
        assert delivery.destination is gpu
        assert not delivery.visited("RC")

    def test_host_mr_emits_untranslated_via_rc(self, host, tenant):
        """Figure 7 (host side): host-memory writes go untranslated to the
        RC for IOMMU translation."""
        container = tenant.container
        vdev = container.vstellar_device
        buf = container.alloc_buffer(64 * 1024)
        # PVDMA must have pinned/mapped the buffer before device DMA.
        host.dma_prepare(container, buf)
        mr = vdev.reg_mr_host(buf)
        result, delivery = vdev.dma_access(mr, buf.start, 4096, emit=True)
        assert result.at is AddressType.UNTRANSLATED
        assert delivery.visited("RC")
        assert delivery.destination is host.fabric.host_memory

    def test_pasid_selects_container_domain(self, host):
        """Two containers on one RNIC resolve through their own IOMMU
        domains despite sharing the BDF."""
        a = host.launch_container("pasid-a", 1 * GiB).container
        b = host.launch_container("pasid-b", 1 * GiB).container
        buf_a = a.alloc_buffer(64 * 1024)
        buf_b = b.alloc_buffer(64 * 1024)
        host.dma_prepare(a, buf_a)
        host.dma_prepare(b, buf_b)
        mr_a = a.vstellar_device.reg_mr_host(buf_a)
        mr_b = b.vstellar_device.reg_mr_host(buf_b)
        # Emitting untranslated DMA from each vdev must translate under the
        # right domain: resulting HPAs differ even for equal GPAs.
        res_a, del_a = a.vstellar_device.dma_access(mr_a, buf_a.start, 64, emit=True)
        res_b, del_b = b.vstellar_device.dma_access(mr_b, buf_b.start, 64, emit=True)
        assert del_a.translated_address != del_b.translated_address


class TestPdIsolation:
    def test_cross_tenant_pd_enforced_end_to_end(self, host):
        """Section 9: a tenant cannot write into another tenant's MR."""
        a = host.launch_container("sec-a", 1 * GiB).container
        b = host.launch_container("sec-b", 1 * GiB).container
        victim_buf = b.alloc_buffer(64 * 1024)
        victim_pd = b.vstellar_device.alloc_pd("victim")
        victim_mr = b.vstellar_device.reg_mr_host(victim_buf, pd=victim_pd)
        attacker_buf = a.alloc_buffer(64 * 1024)
        mr_a = a.vstellar_device.reg_mr_host(attacker_buf)
        qp_a = a.vstellar_device.create_qp(a.vstellar_device.default_pd)
        qp_b = b.vstellar_device.create_qp(b.vstellar_device.default_pd)
        connect_qps(qp_a, qp_b, nic_a=a.vstellar_device, nic_b=b.vstellar_device)
        a.vstellar_device.rdma_write(
            qp_a, "attack", mr_a, attacker_buf.start, 64, victim_mr.rkey,
            victim_buf.start,
        )
        wc = qp_a.send_cq.poll()[0]
        assert not wc.ok
        assert b.vstellar_device.bytes_received == 0
