"""Unit tests for statistics helpers and table rendering."""

import pytest

from repro.analysis import (
    Table,
    coefficient_of_variation,
    format_bytes_axis,
    geometric_mean,
    max_min_delta,
    mean,
    percentile,
    relative_gain,
)


class TestStats:
    def test_mean(self):
        assert mean([1, 2, 3]) == 2
        with pytest.raises(ValueError):
            mean([])

    def test_percentile_interpolates(self):
        values = [0, 10, 20, 30, 40]
        assert percentile(values, 0) == 0
        assert percentile(values, 100) == 40
        assert percentile(values, 50) == 20
        assert percentile(values, 62.5) == 25
        assert percentile([7], 99) == 7

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1], 101)

    def test_max_min_delta(self):
        assert max_min_delta([10, 30, 20], 200) == pytest.approx(0.1)
        with pytest.raises(ValueError):
            max_min_delta([], 1)
        with pytest.raises(ValueError):
            max_min_delta([1], 0)

    def test_cv(self):
        assert coefficient_of_variation([5, 5, 5]) == 0
        assert coefficient_of_variation([0, 0]) == 0
        assert coefficient_of_variation([1, 3]) == pytest.approx(0.5)

    def test_geometric_mean(self):
        assert geometric_mean([1, 100]) == pytest.approx(10.0)
        with pytest.raises(ValueError):
            geometric_mean([1, 0])
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_relative_gain(self):
        assert relative_gain(106, 100) == pytest.approx(0.06)
        with pytest.raises(ValueError):
            relative_gain(1, 0)


class TestTable:
    def test_render_aligns_columns(self):
        table = Table("demo", ["name", "value"])
        table.add_row("alpha", 1.5)
        table.add_row("b", 123456.0)
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "== demo =="
        assert "alpha" in text and "1.500" in text
        assert "1.235e+05" in text  # scientific for large magnitudes

    def test_row_arity_checked(self):
        table = Table("demo", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_empty_table_renders(self):
        table = Table("empty", ["a"])
        assert "empty" in table.render()


class TestAxisFormat:
    @pytest.mark.parametrize(
        "size,text",
        [
            (2, "2B"),
            (1024, "1KB"),
            (8 * 1024 * 1024, "8MB"),
            (1536, "1.5KB"),
            (1 << 30, "1GB"),
        ],
    )
    def test_labels(self, size, text):
        assert format_bytes_axis(size) == text
