"""Unit tests for the TCP datapath model (Section 4 + problem 4)."""

import pytest

from repro import calibration
from repro.memory.iommu import Iommu, IommuMode
from repro.virt.tcp_path import (
    TCP_BASELINE_RATE,
    TcpDatapath,
    compare_tcp_datapaths,
    tcp_throughput,
)


def test_virtio_sf_pays_five_percent():
    """Section 4: virtio/SF/VxLAN costs ~5% vs vfio/VF/VxLAN."""
    vf = tcp_throughput(TcpDatapath.VFIO_VF)
    sf = tcp_throughput(TcpDatapath.VIRTIO_SF)
    assert 1 - sf / vf == pytest.approx(calibration.VIRTIO_TCP_PENALTY,
                                        abs=1e-9)


def test_nopt_iommu_taxes_host_tcp():
    """Problem 4: IOMMU=nopt drags kernel TCP through IOVA translation."""
    pt = tcp_throughput(TcpDatapath.VFIO_VF, iommu=Iommu(mode=IommuMode.PT))
    nopt = tcp_throughput(TcpDatapath.VFIO_VF,
                          iommu=Iommu(mode=IommuMode.NOPT))
    assert pt == TCP_BASELINE_RATE
    assert nopt < pt
    # The tax is real but not catastrophic (cold IOTLB, one walk per page).
    assert nopt > 0.5 * pt


def test_warm_iotlb_reduces_the_tax():
    iommu = Iommu(mode=IommuMode.NOPT)
    cold = tcp_throughput(TcpDatapath.VFIO_VF, iommu=iommu,
                          bytes_in_flight=16 * 1024 * 1024)
    warm = tcp_throughput(TcpDatapath.VFIO_VF, iommu=iommu,
                          bytes_in_flight=16 * 1024 * 1024)
    assert warm > cold  # second pass hits the IOTLB


def test_compare_table_has_both_paths():
    results = compare_tcp_datapaths()
    assert set(results) == {"vfio/VF/VxLAN", "virtio/SF/VxLAN"}
    assert results["vfio/VF/VxLAN"] > results["virtio/SF/VxLAN"]


def test_control_traffic_framing():
    """The paper's acceptance argument: a 5% TCP penalty on control
    traffic is negligible for end-to-end job time.  With TCP at <1% of
    job bytes, the weighted slowdown is under 0.05%."""
    tcp_share = 0.01
    weighted = tcp_share * calibration.VIRTIO_TCP_PENALTY
    assert weighted <= 0.0005
