"""Hybrid-fidelity engine tests: controller semantics, fleet wiring,
byte conservation, and digest stability.

The controller's window arithmetic is pure sim-time (no RNG, no wall
clock), so its promote/extend/demote decisions are unit-testable with
bare floats; the integration tests then pin the behaviours the fleet
builds on top: packet windows opening around injected faults, the
cross-fidelity byte ledger conserving exactly, parity with fluid-only
pricing when no trigger ever fires, and double-run digest identity for
hybrid runs (the acceptance oracle for deterministic window boundaries).
"""

import pytest

from repro.cluster.fidelity import (
    DEFAULT_ADMISSION_BURST_DEPTH,
    DEFAULT_HYSTERESIS_SECONDS,
    DEFAULT_WINDOW_SECONDS,
    TRIGGER_KINDS,
    Fidelity,
    FidelityController,
)
from repro.obs.determinism import check_fleet_determinism, trace_digest
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.sim import SimSanitizer
from repro.sim.sanitizer import SanitizerError
from repro.workloads.fleet_bench import build_churn_fleet, run_fleet_smoke


class TestControllerStateMachine:
    def test_defaults_and_catalogue(self):
        ctl = FidelityController(mode=Fidelity.HYBRID)
        assert ctl.window_seconds == DEFAULT_WINDOW_SECONDS
        assert ctl.hysteresis_seconds == DEFAULT_HYSTERESIS_SECONDS
        assert ctl.admission_burst_depth == DEFAULT_ADMISSION_BURST_DEPTH
        # Every trigger the fleet can report is in the catalogue.
        assert set(TRIGGER_KINDS) == {
            "link-fail", "link-heal", "loss-inject", "admission-burst",
            "cc-collapse",
        }

    def test_fluid_mode_counts_but_never_promotes(self):
        ctl = FidelityController(mode="fluid")
        for kind in TRIGGER_KINDS:
            assert ctl.on_trigger(1.0, kind) is None
        assert ctl.triggers == len(TRIGGER_KINDS)
        assert ctl.promotions == 0
        assert not ctl.active(1.0)
        assert ctl.release_time() is None

    def test_packet_mode_is_always_promoted(self):
        ctl = FidelityController(mode="packet")
        assert ctl.active(0.0)
        assert ctl.active(1e9)
        assert ctl.on_trigger(5.0, "link-fail") is None

    def test_promote_opens_a_bounded_window(self):
        ctl = FidelityController(mode="hybrid", window_seconds=4.0,
                                 hysteresis_seconds=2.0)
        assert ctl.on_trigger(10.0, "link-fail") == "promote"
        assert ctl.window_open()
        assert ctl.release_time() == 16.0  # 10 + 4 + 2
        assert ctl.active(10.0)
        assert ctl.active(15.999)  # hysteresis tail is still promoted
        assert not ctl.active(16.0)

    def test_overlapping_triggers_coalesce_into_one_window(self):
        ctl = FidelityController(mode="hybrid", window_seconds=4.0,
                                 hysteresis_seconds=2.0)
        assert ctl.on_trigger(10.0, "link-fail") == "promote"
        assert ctl.on_trigger(12.0, "loss-inject") == "extend"
        assert ctl.on_trigger(12.5, "cc-collapse") == "extend"
        assert ctl.promotions == 1
        assert ctl.extensions == 2
        assert ctl.release_time() == 18.5  # max end, not a stack of windows
        # An early trigger inside the window never shortens it.
        assert ctl.on_trigger(12.6, "link-heal") == "extend"
        assert ctl.release_time() == 18.6

    def test_demotion_respects_hysteresis(self):
        ctl = FidelityController(mode="hybrid", window_seconds=4.0,
                                 hysteresis_seconds=2.0)
        ctl.on_trigger(10.0, "link-fail")
        # A stale callback (window was extended past it) stands down.
        assert not ctl.note_demotion(15.0)
        assert ctl.window_open()
        assert ctl.note_demotion(16.0)
        assert not ctl.window_open()
        assert ctl.demotions == 1
        assert ctl.windows == [(10.0, 14.0, 16.0)]

    def test_trigger_exactly_at_release_boundary_starts_a_new_window(self):
        # The boundary belongs to the demotion: release_time() is the
        # first instant the window is closed, so a trigger landing there
        # must open a fresh window even when the demotion callback is
        # still queued behind it.
        ctl = FidelityController(mode="hybrid", window_seconds=4.0,
                                 hysteresis_seconds=2.0)
        ctl.on_trigger(10.0, "link-fail")
        assert ctl.on_trigger(16.0, "link-heal") == "promote"
        assert ctl.promotions == 2
        assert ctl.windows == [(10.0, 14.0, 16.0)]  # closed by the trigger
        assert ctl.release_time() == 22.0
        # The stale demotion callback queued at 16.0 now stands down.
        assert not ctl.note_demotion(16.0)

    def test_coerce_accepts_strings_enums_and_controllers(self):
        assert FidelityController.coerce("hybrid").mode is Fidelity.HYBRID
        assert FidelityController.coerce(Fidelity.PACKET).mode is Fidelity.PACKET
        tuned = FidelityController(mode="hybrid", window_seconds=1.0)
        assert FidelityController.coerce(tuned) is tuned

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            FidelityController(mode="hybrid", window_seconds=0.0)
        with pytest.raises(ValueError):
            FidelityController(mode="hybrid", hysteresis_seconds=-1.0)
        with pytest.raises(ValueError):
            FidelityController.coerce("quantum")


@pytest.fixture(scope="module")
def hybrid_smoke():
    registry = MetricsRegistry("fidelity-smoke-test")
    fleet, result = run_fleet_smoke(registry=registry, fidelity="hybrid")
    return fleet, result, registry


class TestHybridFleet:
    def test_fault_promotes_a_packet_window(self, hybrid_smoke):
        fleet, result, registry = hybrid_smoke
        ctl = fleet.fidelity
        assert ctl.promotions >= 1
        assert ctl.trigger_counts.get("link-fail", 0) >= 1
        # The run drains, so every window must have closed again.
        assert not ctl.window_open()
        assert ctl.demotions == len(ctl.windows)
        assert fleet.fidelity_pricing_events > 0

    def test_byte_ledger_conserves_fleet_wide_and_per_job(self, hybrid_smoke):
        fleet, result, registry = hybrid_smoke
        assert fleet.dp_bytes_packet > 0  # the window priced real blocks
        assert fleet.dp_bytes_fluid > 0
        assert (fleet.dp_bytes_fluid + fleet.dp_bytes_packet
                == fleet.dp_bytes_total)
        for job in fleet.jobs:
            assert (job.dp_bytes_fluid + job.dp_bytes_packet
                    == job.dp_bytes_total), job.spec.name

    def test_job_ending_mid_window_is_accounted_exactly(self, hybrid_smoke):
        fleet, result, registry = hybrid_smoke
        start, end, closed_at = fleet.fidelity.windows[0]
        mid_window = [
            job for job in fleet.jobs
            if job.end_time is not None and start <= job.end_time < closed_at
        ]
        # The smoke scenario is tuned so at least one job terminates
        # inside the promoted window; its ledger must still balance and
        # its last blocks must have been packet-priced.
        assert mid_window
        for job in mid_window:
            assert job.dp_bytes_packet > 0
            assert (job.dp_bytes_fluid + job.dp_bytes_packet
                    == job.dp_bytes_total)

    def test_sanitizer_passes_cross_fidelity_conservation(self, hybrid_smoke):
        fleet, result, registry = hybrid_smoke
        SimSanitizer(fleet.engine, registry).check_conservation(drained=True)

    def test_sanitizer_catches_a_cooked_ledger(self, hybrid_smoke):
        fleet, result, registry = hybrid_smoke
        snapshot = registry.snapshot()
        key = next(k for k in snapshot if k.endswith("dp_bytes_fluid"))
        snapshot[key] += 1
        with pytest.raises(SanitizerError, match="double-counted or dropped"):
            SimSanitizer(fleet.engine, registry).check_conservation(
                snapshot=snapshot, drained=True
            )


class TestHybridParityAndDeterminism:
    def test_hybrid_equals_fluid_when_no_trigger_fires(self):
        # Same seed, failure injection off: the controller never
        # promotes, so hybrid pricing must be the fluid pricing —
        # trace-digest-identical, not merely close.
        outcomes = {}
        for fidelity in ("fluid", "hybrid"):
            tracer = Tracer("parity")  # same name: it enters the digest
            fleet = build_churn_fleet(tracer=tracer, failure=False,
                                      fidelity=fidelity)
            fleet.run()
            assert fleet.fidelity.promotions == 0
            outcomes[fidelity] = (
                trace_digest(tracer),
                [(job.spec.name, job.end_time, job.iterations_done,
                  job.dp_bytes_total) for job in fleet.jobs],
                fleet.dp_bytes_packet,
            )
        assert outcomes["fluid"][0] == outcomes["hybrid"][0]
        assert outcomes["fluid"][1] == outcomes["hybrid"][1]
        assert outcomes["hybrid"][2] == 0

    def test_hybrid_churn_is_double_run_digest_stable(self):
        report = check_fleet_determinism(seeds=(17, 23), runs=2,
                                         scenario="hybrid")
        assert report.ok, report.describe()
