"""Unit tests for StellarHost assembly and its PVDMA front door."""

import pytest

from repro import calibration
from repro.core import StellarHost
from repro.sim.units import GiB, MiB
from repro.virt import MemoryMode


class TestBuild:
    def test_default_shape_matches_paper_server(self):
        host = StellarHost.build(host_memory_bytes=32 * GiB,
                                 gpu_hbm_bytes=2 * GiB)
        assert len(host.rnics) == calibration.SERVER_RNICS
        assert len(host.gpus) == calibration.SERVER_GPUS
        assert len(host.sf_managers) == len(host.rnics)
        # Each RNIC function is LUT-registered once for eMTT P2P.
        for rnic in host.rnics:
            switch = host.fabric.switch_of(rnic.function.bdf)
            assert switch.lut_contains(rnic.function.bdf)

    def test_custom_shape(self):
        host = StellarHost.build(host_memory_bytes=16 * GiB, gpus=4, rnics=2,
                                 gpu_hbm_bytes=1 * GiB)
        assert len(host.rnics) == 2
        assert len(host.gpus) == 4
        assert host.rail_gpus(0) == host.gpus[:2]
        assert host.rail_gpus(1) == host.gpus[2:]

    def test_rail_gpus_share_switch_with_rnic(self):
        host = StellarHost.build(host_memory_bytes=32 * GiB,
                                 gpu_hbm_bytes=2 * GiB)
        for index, rnic in enumerate(host.rnics):
            switch = host.fabric.switch_of(rnic.function.bdf)
            for gpu in host.rail_gpus(index):
                assert gpu.port is switch


class TestLaunchRecords:
    def test_launches_are_recorded_with_breakdown(self):
        host = StellarHost.build(host_memory_bytes=32 * GiB,
                                 gpu_hbm_bytes=2 * GiB)
        record = host.launch_container("rec", 2 * GiB)
        assert host.launches[-1] is record
        assert record.total_seconds == pytest.approx(
            record.boot_seconds + record.device_seconds
        )
        assert record.container.virtio_net_sf.assigned_to == "rec"

    def test_full_pin_mode_still_available(self):
        """Operators can opt back into full pinning (e.g. for latency-
        critical pods that must never take a first-touch stall)."""
        host = StellarHost.build(host_memory_bytes=64 * GiB,
                                 gpu_hbm_bytes=2 * GiB)
        record = host.launch_container("pinned", 8 * GiB,
                                       memory_mode=MemoryMode.FULL_PIN)
        assert record.container.fully_pinned
        assert record.boot_seconds > 1.9  # 8 GiB at the paper's pin rate


class TestDmaPrepare:
    def test_cost_scales_with_fresh_blocks_only(self):
        host = StellarHost.build(host_memory_bytes=32 * GiB,
                                 gpu_hbm_bytes=2 * GiB)
        container = host.launch_container("pv", 4 * GiB).container
        small = container.alloc_buffer(2 * MiB, alignment=2 * MiB)
        big = container.alloc_buffer(8 * MiB, alignment=2 * MiB)
        cost_small = host.dma_prepare(container, small)
        cost_big = host.dma_prepare(container, big)
        assert cost_big == pytest.approx(4 * cost_small, rel=0.05)
        assert host.dma_prepare(container, small) == 0.0
        stats = host.pvdma.stats(container)
        assert stats.misses == 5  # 1 + 4 fresh 2 MiB blocks
