"""Unit tests for SR-IOV, scalable functions, VFIO, and virtio."""

import pytest

from repro import calibration
from repro.pcie import LutCapacityError, PcieFabric
from repro.sim.units import GiB
from repro.virt import (
    Hypervisor,
    MemoryMode,
    RunDContainer,
    ScalableFunctionManager,
    SfError,
    ShmRegion,
    SriovError,
    SriovManager,
    VfioDriver,
    VirtioDevice,
    VirtioDeviceType,
    VirtioError,
    VirtioQueue,
)


def make_fabric(lut_capacity=8):
    fabric = PcieFabric(host_memory_bytes=8 * GiB)
    switch = fabric.add_switch(lut_capacity=lut_capacity)
    return fabric, switch


class TestSriov:
    def test_enable_vfs_allocates_memory_overhead(self):
        fabric, switch = make_fabric()
        mgr = SriovManager("rnic0", fabric, switch, max_vfs=8)
        vfs = mgr.set_num_vfs(4)
        assert len(vfs) == 4
        assert mgr.memory_overhead_bytes == 4 * calibration.VF_MEMORY_BYTES
        assert len({vf.bdf for vf in vfs}) == 4

    def test_nonzero_to_nonzero_requires_reset(self):
        """Paper problem 1: 2 VFs -> 3 VFs is impossible without a reset."""
        fabric, switch = make_fabric()
        mgr = SriovManager("rnic0", fabric, switch)
        mgr.set_num_vfs(2)
        with pytest.raises(SriovError):
            mgr.set_num_vfs(3)
        mgr.reset()
        assert mgr.num_vfs == 0
        assert mgr.resets == 1
        mgr.set_num_vfs(3)
        assert mgr.num_vfs == 3

    def test_set_zero_is_reset(self):
        fabric, switch = make_fabric()
        mgr = SriovManager("rnic0", fabric, switch)
        mgr.set_num_vfs(2)
        mgr.set_num_vfs(0)
        assert mgr.num_vfs == 0 and mgr.resets == 1

    def test_max_vfs_enforced(self):
        fabric, switch = make_fabric()
        mgr = SriovManager("rnic0", fabric, switch, max_vfs=2)
        with pytest.raises(SriovError):
            mgr.set_num_vfs(3)

    def test_gdr_limited_by_switch_lut(self):
        """Paper problem 3: the LUT caps GDR-capable VFs per switch."""
        fabric, switch = make_fabric(lut_capacity=2)
        mgr = SriovManager("rnic0", fabric, switch, max_vfs=8)
        vfs = mgr.set_num_vfs(4)
        mgr.enable_gdr(vfs[0])
        mgr.enable_gdr(vfs[1])
        with pytest.raises(LutCapacityError):
            mgr.enable_gdr(vfs[2])
        assert sum(vf.gdr_enabled for vf in vfs) == 2

    def test_enable_gdr_foreign_vf_rejected(self):
        fabric, switch = make_fabric()
        mgr_a = SriovManager("rnic0", fabric, switch)
        mgr_b = SriovManager("rnic1", fabric, switch)
        vfs = mgr_a.set_num_vfs(1)
        with pytest.raises(SriovError):
            mgr_b.enable_gdr(vfs[0])


class TestScalableFunctions:
    def test_dynamic_create_destroy(self):
        from repro.pcie import Bdf

        mgr = ScalableFunctionManager("rnic0", Bdf(1, 0, 0), max_sfs=3)
        a = mgr.create()
        b = mgr.create()
        assert a.bdf == b.bdf  # SFs share the parent BDF: no LUT pressure
        mgr.destroy(a)
        c = mgr.create()
        mgr.create()
        with pytest.raises(SfError):
            mgr.create()
        with pytest.raises(SfError):
            mgr.destroy(a)  # already destroyed

    def test_sf_memory_footprint_tiny_vs_vf(self):
        from repro.pcie import Bdf

        mgr = ScalableFunctionManager("rnic0", Bdf(1, 0, 0))
        sf = mgr.create()
        assert sf.memory_bytes * 100 < calibration.VF_MEMORY_BYTES


class TestVfio:
    def test_attach_pins_all_memory(self):
        fabric, switch = make_fabric()
        hv = Hypervisor(fabric=fabric)
        container = RunDContainer("c0", 2 * GiB, hv, memory_mode=MemoryMode.FULL_PIN)
        container.boot()
        container.fully_pinned = False  # device arrives after boot
        mgr = SriovManager("rnic0", fabric, switch)
        vf = mgr.set_num_vfs(1)[0]
        vfio = VfioDriver(hv)
        attachment = vfio.attach(container, vf)
        assert attachment.pin_seconds > 0
        assert container.fully_pinned
        # BARs are direct-mapped into the guest.
        assert len(hv.mmu.direct_maps("c0")) == len(vf.bars)

    def test_double_attach_rejected(self):
        fabric, switch = make_fabric()
        hv = Hypervisor(fabric=fabric)
        c0 = RunDContainer("c0", 1 * GiB, hv)
        c1 = RunDContainer("c1", 1 * GiB, hv)
        c0.boot()
        c1.boot()
        mgr = SriovManager("rnic0", fabric, switch)
        vf = mgr.set_num_vfs(1)[0]
        vfio = VfioDriver(hv)
        vfio.attach(c0, vf)
        from repro.virt import VfioError

        with pytest.raises(VfioError):
            vfio.attach(c1, vf)


class TestVirtio:
    def test_queue_fifo_and_overflow(self):
        q = VirtioQueue(size=2)
        q.push("a")
        q.push("b")
        with pytest.raises(VirtioError):
            q.push("c")
        assert q.pop() == "a"
        assert q.pop() == "b"
        assert q.pop() is None
        assert q.dropped == 1

    def test_queue_size_power_of_two(self):
        with pytest.raises(VirtioError):
            VirtioQueue(size=100)

    def test_control_path_round_trip(self):
        seen = []

        def backend(request):
            seen.append(request.op)
            return {"qpn": 0x100}

        dev = VirtioDevice(VirtioDeviceType.VSTELLAR, backend=backend)
        resp = dev.control("create_qp", pd=1)
        assert resp.ok and resp.result["qpn"] == 0x100
        assert resp.latency > 0
        assert seen == ["create_qp"]
        assert dev.control_round_trips == 1

    def test_control_backend_errors_surface(self):
        def backend(request):
            raise PermissionError("policy: tenant quota exceeded")

        dev = VirtioDevice(VirtioDeviceType.VSTELLAR, backend=backend)
        resp = dev.control("create_qp")
        assert not resp.ok
        assert "quota" in resp.error

    def test_control_without_backend_rejected(self):
        dev = VirtioDevice(VirtioDeviceType.NET)
        with pytest.raises(VirtioError):
            dev.control("anything")

    def test_shm_regions_unique_names(self):
        dev = VirtioDevice(VirtioDeviceType.VSTELLAR)
        dev.add_shm_region(ShmRegion("doorbell", 4096))
        with pytest.raises(VirtioError):
            dev.add_shm_region(ShmRegion("doorbell", 4096))
