"""Unit tests for the metrics registry and its instruments."""

import pytest

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    flatten,
    get_registry,
    set_registry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("x")
        assert c.value() == 0
        c.inc()
        c.inc(41)
        assert c.value() == 42

    def test_rejects_decrease(self):
        c = Counter("x")
        with pytest.raises(MetricError):
            c.inc(-1)


class TestGauge:
    def test_set_and_read(self):
        g = Gauge("depth")
        g.set(7.5)
        assert g.value() == 7.5

    def test_function_backed(self):
        backing = {"v": 3}
        g = Gauge("depth", fn=lambda: backing["v"])
        assert g.value() == 3
        backing["v"] = 9
        assert g.value() == 9

    def test_set_clears_function(self):
        g = Gauge("depth", fn=lambda: 1)
        g.set(2)
        assert g.value() == 2


class TestHistogramBucketEdges:
    """``value <= bound`` semantics: an observation exactly on an edge
    lands in that edge's bucket, not the next one."""

    def test_edge_values_land_in_their_bucket(self):
        h = Histogram("lat", bounds=(10.0, 20.0, 50.0))
        h.observe(10.0)   # == first bound -> first bucket
        h.observe(10.1)   # just above -> second bucket
        h.observe(20.0)   # == second bound -> second bucket
        h.observe(50.0)   # == last bound -> third bucket
        h.observe(50.001)  # above all bounds -> overflow
        assert h.counts == [1, 2, 1, 1]

    def test_snapshot_le_keys(self):
        h = Histogram("lat", bounds=(10.0, 20.0))
        for v in (5, 15, 25):
            h.observe(v)
        snap = h.snapshot()
        assert snap["le_10"] == 1
        assert snap["le_20"] == 1
        assert snap["le_inf"] == 1
        assert snap["count"] == 3
        assert snap["sum"] == 45.0
        assert snap["mean"] == 15.0

    def test_quantiles_are_bucket_resolution(self):
        h = Histogram("lat", bounds=(10.0, 20.0, 50.0))
        for _ in range(98):
            h.observe(5.0)
        h.observe(15.0)
        h.observe(45.0)
        assert h.quantile(0.5) == 10.0
        assert h.quantile(0.99) == 20.0
        assert h.quantile(1.0) == 50.0

    def test_empty_histogram(self):
        h = Histogram("lat", bounds=(10.0,))
        assert h.mean == 0.0
        assert h.quantile(0.5) == 0.0

    def test_invalid_bounds_rejected(self):
        with pytest.raises(MetricError):
            Histogram("lat", bounds=())
        with pytest.raises(MetricError):
            Histogram("lat", bounds=(20.0, 10.0))
        with pytest.raises(MetricError):
            Histogram("lat", bounds=(10.0, 10.0))

    def test_quantile_out_of_range(self):
        h = Histogram("lat", bounds=(10.0,))
        with pytest.raises(MetricError):
            h.quantile(1.5)


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        a = reg.counter("rnic.r0.bytes_sent")
        b = reg.counter("rnic.r0.bytes_sent")
        assert a is b

    def test_type_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(MetricError):
            reg.gauge("x")
        with pytest.raises(MetricError):
            reg.histogram("x")

    def test_snapshot_is_flat_and_sorted(self):
        reg = MetricsRegistry()
        reg.counter("b.count").inc(2)
        reg.gauge("a.depth").set(1)
        snap = reg.snapshot()
        assert list(snap) == sorted(snap)
        assert snap == {"a.depth": 1, "b.count": 2}

    def test_histogram_expands_in_snapshot(self):
        reg = MetricsRegistry()
        reg.histogram("net.lat", bounds=(10.0,)).observe(5)
        snap = reg.snapshot()
        assert snap["net.lat.count"] == 1
        assert snap["net.lat.le_10"] == 1
        assert snap["net.lat.le_inf"] == 0

    def test_provider_replacement(self):
        reg = MetricsRegistry()
        reg.add_provider("net.sim", lambda: {"packets": 1})
        reg.add_provider("net.sim", lambda: {"packets": 2})
        assert reg.snapshot() == {"net.sim.packets": 2}

    def test_provider_prefix_filter(self):
        reg = MetricsRegistry()
        reg.add_provider("net.sim", lambda: {"packets": 1})
        reg.counter("rnic.r0.ops").inc()
        assert reg.snapshot(prefix="net.") == {"net.sim.packets": 1}

    def test_empty_provider_prefix_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(MetricError):
            reg.add_provider("", dict)

    def test_families(self):
        reg = MetricsRegistry()
        reg.counter("rnic.r0.ops")
        reg.add_provider("net.sim", lambda: {"packets": 0})
        assert reg.families() == ["net", "rnic"]

    def test_clear(self):
        reg = MetricsRegistry()
        reg.counter("x")
        reg.add_provider("y", dict)
        reg.clear()
        assert reg.snapshot() == {}

    def test_default_registry_swap(self):
        fresh = MetricsRegistry("test")
        previous = set_registry(fresh)
        try:
            assert get_registry() is fresh
        finally:
            set_registry(previous)


class TestFlatten:
    def test_nested_dicts_and_lists(self):
        report = {"a": {"b": 1, "rows": [{"c": 2}, 3]}}
        assert flatten(report, prefix="p") == {
            "p.a.b": 1,
            "p.a.rows[0].c": 2,
            "p.a.rows[1]": 3,
        }

    def test_no_prefix(self):
        assert flatten({"a": 1}) == {"a": 1}
