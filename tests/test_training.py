"""Unit tests for the training model: volumes, placement, iteration time."""

import pytest

from repro.training import (
    Framework,
    LLAMA_2B,
    LLAMA_33B,
    ParallelStrategy,
    Placement,
    TABLE1_ROWS,
    TRANSPORTS,
    TrainingSimulation,
    comm_volumes,
    compute_flops,
    cross_segment_edges,
    iteration_breakdown,
    place_job,
    ring_factor,
)
from repro.net import DualPlaneTopology


class TestCommVolumes:
    def test_ring_factor(self):
        assert ring_factor(1) == 0.0
        assert ring_factor(2) == 1.0
        assert ring_factor(100) == pytest.approx(1.98)

    def test_tp_zero_when_tp_one(self):
        strategy = ParallelStrategy(tp=1, pp=1, dp=16)
        volumes = comm_volumes(LLAMA_2B, strategy, Framework.DEEPSPEED_ZERO1)
        assert volumes.tp == 0.0
        assert volumes.pp == 0.0
        assert volumes.dp > 0.0

    def test_dp_volume_shrinks_with_model_parallel_sharding(self):
        base = ParallelStrategy(tp=1, pp=1, dp=64)
        sharded = ParallelStrategy(tp=4, pp=2, dp=64)
        v_base = comm_volumes(LLAMA_33B, base, Framework.MEGATRON)
        v_sharded = comm_volumes(LLAMA_33B, sharded, Framework.MEGATRON)
        assert v_sharded.dp == pytest.approx(v_base.dp / 8)

    def test_zero3_moves_more_than_zero1(self):
        strategy = ParallelStrategy(tp=1, pp=1, dp=64)
        z1 = comm_volumes(LLAMA_2B, strategy, Framework.DEEPSPEED_ZERO1)
        z3 = comm_volumes(LLAMA_2B, strategy, Framework.DEEPSPEED_ZERO3)
        assert z3.dp > z1.dp * 0.7  # 3 half-ring passes at 2B vs 1 ring at 4B

    def test_ep_volume_appears_with_expert_parallel(self):
        dense = ParallelStrategy(tp=1, pp=1, dp=8, ep=1, grad_accum=4)
        moe = ParallelStrategy(tp=1, pp=1, dp=8, ep=8, grad_accum=4)
        assert comm_volumes(LLAMA_2B, dense, Framework.MEGATRON).ep == 0.0
        assert comm_volumes(LLAMA_2B, moe, Framework.MEGATRON).ep > 0.0

    def test_compute_flops_per_gpu(self):
        strategy = ParallelStrategy(tp=2, pp=2, dp=2, global_batch=8)
        flops = compute_flops(LLAMA_2B, strategy)
        tokens = 8 * LLAMA_2B.seq_len
        assert flops == pytest.approx(6 * LLAMA_2B.parameters * tokens / 8)

    def test_invalid_strategy(self):
        with pytest.raises(ValueError):
            ParallelStrategy(tp=0, pp=1, dp=1)


class TestIterationBreakdown:
    def test_table1_rows_land_in_papers_band(self):
        """'the communication-to-computation ratio ranges from 10% to 32%'
        — every modeled row must land in a compatible band."""
        for row in TABLE1_ROWS:
            b = iteration_breakdown(row.model, row.strategy, row.framework)
            assert 0.08 <= b.comm_ratio <= 0.40, (row, b)
            # Dimensions the paper marks N/A must be zero.
            if row.tp_ratio is None:
                assert b.tp == 0.0
            if row.pp_ratio is None:
                assert b.pp == 0.0

    def test_ratios_sum_to_one(self):
        row = TABLE1_ROWS[0]
        b = iteration_breakdown(row.model, row.strategy, row.framework)
        total = sum(b.ratio(d) for d in ("tp", "dp", "pp", "ep"))
        total += b.compute / b.total
        assert total == pytest.approx(1.0)

    def test_slower_dp_bandwidth_slows_iteration(self):
        row = TABLE1_ROWS[0]
        fast = iteration_breakdown(row.model, row.strategy, row.framework,
                                   dp_bandwidth=25e9)
        slow = iteration_breakdown(row.model, row.strategy, row.framework,
                                   dp_bandwidth=5e9)
        assert slow.total > fast.total
        assert slow.compute == fast.compute

    def test_overhead_factor_scales_total(self):
        row = TABLE1_ROWS[0]
        base = iteration_breakdown(row.model, row.strategy, row.framework)
        taxed = iteration_breakdown(row.model, row.strategy, row.framework,
                                    overhead_factor=0.1)
        assert taxed.total == pytest.approx(base.total * 1.1)
        assert taxed.speed == pytest.approx(base.speed / 1.1)


class TestPlacement:
    def topo(self):
        return DualPlaneTopology(segments=2, servers_per_segment=16, rails=4,
                                 aggs_per_plane=8)

    def test_reranked_minimizes_cross_segment_edges(self):
        topo = self.topo()
        reranked = place_job(128, topo, Placement.RERANKED)
        random = place_job(256, topo, Placement.RANDOM, seed=3)
        assert cross_segment_edges(reranked) == 2  # just the two seams
        assert cross_segment_edges(random) > 4

    def test_placement_draws_from_both_segments(self):
        topo = self.topo()
        servers = place_job(128, topo, Placement.RERANKED)
        segments = {s.segment for s in servers}
        assert segments == {0, 1}
        assert len(servers) == 16

    def test_too_large_job_rejected(self):
        topo = self.topo()
        with pytest.raises(ValueError):
            place_job(16 * 8 * 4, topo, Placement.RERANKED)
        with pytest.raises(ValueError):
            place_job(8, topo, Placement.RERANKED)  # single server


class TestNetworkCoupledTraining:
    @pytest.fixture(scope="class")
    def sim(self):
        topo = DualPlaneTopology(segments=2, servers_per_segment=16, rails=4,
                                 aggs_per_plane=16)
        return TrainingSimulation(topology=topo, seed=2)

    def test_random_placement_punishes_static_paths(self, sim):
        """The Figure 16b mechanism: random ranking + static QPs congest."""
        cx7 = sim.measure_dp_bandwidth(256, Placement.RANDOM, TRANSPORTS["cx7"])
        stellar = sim.measure_dp_bandwidth(
            256, Placement.RANDOM, TRANSPORTS["stellar"]
        )
        assert stellar > cx7 * 1.2

    def test_reranked_placement_equalizes(self, sim):
        cx7 = sim.measure_dp_bandwidth(256, Placement.RERANKED, TRANSPORTS["cx7"])
        stellar = sim.measure_dp_bandwidth(
            256, Placement.RERANKED, TRANSPORTS["stellar"]
        )
        assert stellar == pytest.approx(cx7, rel=0.05)

    def test_end_to_end_train_speed_gain(self, sim):
        strategy = ParallelStrategy(tp=2, pp=2, dp=64, grad_accum=16,
                                    global_batch=1024)
        slow = sim.train(LLAMA_33B, strategy, placement=Placement.RANDOM,
                         transport="cx7")
        fast = sim.train(LLAMA_33B, strategy, placement=Placement.RANDOM,
                         transport="stellar")
        assert fast.speed > slow.speed

    def test_secure_container_overhead_negligible(self, sim):
        """Figure 15: secure vs regular containers nearly identical."""
        strategy = ParallelStrategy(tp=2, pp=2, dp=64, grad_accum=16,
                                    global_batch=1024)
        regular = sim.train(LLAMA_33B, strategy, placement=Placement.RANDOM,
                            transport="stellar", secure_container=False)
        secure = sim.train(LLAMA_33B, strategy, placement=Placement.RANDOM,
                           transport="stellar", secure_container=True)
        gap = (regular.speed - secure.speed) / regular.speed
        assert 0 <= gap < 0.01
