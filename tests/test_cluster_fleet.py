"""End-to-end FleetSimulation tests.

Three scenarios:

* the CI smoke fleet (two hosts, three jobs, one abort, one failure),
* a purpose-built failure-locality fleet proving a dead uplink degrades
  only the job whose sprayed paths cross it,
* the canonical 16-host / 3-tenant churn scenario, asserting the
  paper-level effects (Figure 6 cold-start growth with pinned GB,
  bounded ATC with multi-tenant miss growth, nonzero queue waits).
"""

import pytest

from repro.cluster import FleetSimulation, JobSpec, JobState, PlacementPolicy
from repro.net.topology import DualPlaneTopology
from repro.obs.metrics import MetricsRegistry
from repro.sim import SimSanitizer
from repro.sim.units import GiB, MiB
from repro.workloads.fleet_bench import (
    CHURN_FAILURE_AT,
    CHURN_FAILURE_SECONDS,
    churn_tenants,
    run_churn,
    run_fleet_smoke,
)


@pytest.fixture(scope="module")
def smoke():
    registry = MetricsRegistry("fleet-smoke-test")
    fleet, result = run_fleet_smoke(registry=registry)
    return fleet, result, registry


@pytest.fixture(scope="module")
def churn():
    registry = MetricsRegistry("fleet-churn-test")
    fleet, result = run_churn(registry=registry)
    return fleet, result, registry


def job_named(result, name):
    return next(job for job in result.jobs if job.spec.name == name)


class TestSmokeScenario:
    def test_every_job_reaches_a_terminal_state(self, smoke):
        fleet, result, registry = smoke
        counters = result.counters
        assert counters["jobs_submitted"] == 3
        assert counters["jobs_completed"] == 2
        assert counters["jobs_failed"] == 1
        assert counters["jobs_queued"] == 0
        assert counters["jobs_running"] == 0

    def test_abort_job_queued_then_failed(self, smoke):
        fleet, result, registry = smoke
        abort = job_named(result, "smoke-abort")
        assert abort.state is JobState.FAILED
        assert abort.wait_seconds > 0  # queued behind the full hosts
        assert abort.iterations_done < abort.spec.iterations

    def test_hosts_fully_drained_after_run(self, smoke):
        fleet, result, registry = smoke
        for host in fleet.scheduler.hosts:
            assert host.gpus_reserved == 0
            assert host.dram_reserved == 0
            assert len(host.host.hypervisor.containers) == 0

    def test_full_pin_starts_slower_than_pvdma(self, smoke):
        fleet, result, registry = smoke
        pinned = job_named(result, "smoke-pinned")
        pvdma = job_named(result, "smoke-pvdma")
        assert pinned.startup_seconds > pvdma.startup_seconds

    def test_link_failure_was_injected_and_healed(self, smoke):
        fleet, result, registry = smoke
        assert result.counters["link_failures"] == 1
        assert result.counters["links_down"] == 0

    def test_registry_snapshot_passes_conservation(self, smoke):
        fleet, result, registry = smoke
        SimSanitizer(fleet.engine, registry).check_conservation(drained=True)


class TestFailureLocality:
    @pytest.fixture(scope="class")
    def outcome(self):
        topology = DualPlaneTopology(
            segments=2, servers_per_segment=1, rails=1, planes=2,
            aggs_per_plane=2,
        )
        fleet = FleetSimulation(
            topology, policy=PlacementPolicy.SPREAD, seed=7,
            host_config=dict(gpus=2, rnics=1, dram_bytes=8 * GiB,
                             gpu_hbm_bytes=1 * GiB, atc_capacity=128),
            sample_pages=32,
        )
        # The victim: a 4-QP legacy transport spanning both segments, so
        # a quarter of its sprayed paths can die with one uplink.
        fleet.submit(JobSpec(
            "affected", "a", containers=2, gpus_per_container=1,
            memory_bytes=1 * GiB, working_set_bytes=4 * MiB,
            iterations=120, transport="cx7",
        ), at=0.0)
        # The bystander: a single-host job; no fabric traffic at all.
        fleet.submit(JobSpec(
            "solo", "b", containers=1, gpus_per_container=1,
            memory_bytes=1 * GiB, working_set_bytes=4 * MiB,
            iterations=120, transport="stellar",
        ), at=0.0)
        fleet.inject_link_failure(at=10.0, duration=6.0)
        registry = MetricsRegistry("failure-locality")
        fleet.register_metrics(registry)
        with SimSanitizer(fleet.engine, registry):
            result = fleet.run()
        return fleet, result

    def test_both_jobs_complete(self, outcome):
        fleet, result = outcome
        assert result.counters["jobs_completed"] == 2

    def test_victim_is_penalized_only_during_the_window(self, outcome):
        fleet, result = outcome
        affected = job_named(result, "affected")
        during = [entry for entry in affected.iteration_log
                  if 10.0 <= entry[0] < 16.0]
        outside = [entry for entry in affected.iteration_log
                   if not 10.0 <= entry[0] < 16.0]
        assert during and outside
        assert all(entry[3] < 1.0 for entry in during)
        assert all(entry[3] == 1.0 for entry in outside)

    def test_victim_iterations_slow_down_then_recover(self, outcome):
        fleet, result = outcome
        affected = job_named(result, "affected")
        degraded = [entry[2] for entry in affected.iteration_log
                    if entry[3] < 1.0]
        healthy = [entry[2] for entry in affected.iteration_log
                   if entry[3] == 1.0]
        assert min(degraded) > max(healthy)
        # Entries after the heal exist and run at the healthy rate again.
        post = [entry for entry in affected.iteration_log if entry[0] >= 16.0]
        assert post and all(entry[3] == 1.0 for entry in post)

    def test_bystander_never_notices(self, outcome):
        fleet, result = outcome
        solo = job_named(result, "solo")
        assert all(entry[3] == 1.0 for entry in solo.iteration_log)
        assert all(s == pytest.approx(1.0) for s in solo.slowdown_samples)


class TestChurnScenario:
    def test_all_jobs_accounted(self, churn):
        fleet, result, registry = churn
        counters = result.counters
        assert counters["jobs_submitted"] > 0
        assert (counters["jobs_completed"] + counters["jobs_failed"]
                == counters["jobs_submitted"])
        assert counters["jobs_queued"] == 0
        SimSanitizer(fleet.engine, registry).check_conservation(drained=True)

    def test_contention_produces_queue_waits(self, churn):
        fleet, result, registry = churn
        waits = [job.wait_seconds for job in result.jobs
                 if job.wait_seconds is not None]
        assert max(waits) > 0

    def test_cold_start_grows_with_pinned_memory(self, churn):
        fleet, result, registry = churn
        by_pinned_gb = {}
        pvdma_startups = []
        for job in result.jobs:
            if job.startup_seconds is None:
                continue
            if job.spec.memory_mode.value == "full_pin":
                by_pinned_gb.setdefault(
                    job.spec.memory_bytes, []).append(job.startup_seconds)
            else:
                pvdma_startups.append(job.startup_seconds)
        assert len(by_pinned_gb) >= 2  # both legacy sizes showed up
        sizes = sorted(by_pinned_gb)
        means = [sum(by_pinned_gb[s]) / len(by_pinned_gb[s]) for s in sizes]
        assert means == sorted(means)  # monotone in pinned bytes
        assert means[-1] > means[0] * 1.5
        # PVDMA start-up is decoupled from container memory.
        assert max(pvdma_startups) < min(by_pinned_gb[sizes[-1]])

    def test_failure_degrades_some_jobs_but_not_all(self, churn):
        fleet, result, registry = churn
        window_end = CHURN_FAILURE_AT + CHURN_FAILURE_SECONDS
        degraded, unaffected = [], []
        for job in result.jobs:
            penalties = [entry[3] for entry in job.iteration_log]
            if penalties and min(penalties) < 1.0:
                degraded.append(job)
            elif penalties:
                unaffected.append(job)
        assert degraded and unaffected
        for job in degraded:
            bad = [entry[0] for entry in job.iteration_log if entry[3] < 1.0]
            assert all(CHURN_FAILURE_AT <= t < window_end for t in bad)

    def test_atc_stays_bounded_on_every_host(self, churn):
        fleet, result, registry = churn
        for host in fleet.scheduler.hosts:
            snap = host.snapshot()
            assert snap["atc"]["size"] <= snap["atc"]["capacity"]
            assert snap["lut_used"] <= snap["lut_capacity"]

    def test_multi_tenant_atc_misses_exceed_single_tenant(self, churn):
        fleet, result, registry = churn

        def miss_rate(run_fleet):
            hits = misses = 0
            for host in run_fleet.scheduler.hosts:
                snap = host.atc.snapshot()
                hits += snap["hits"]
                misses += snap["misses"]
            return misses / max(1, hits + misses)

        solo_fleet, _ = run_churn(tenants=[churn_tenants()[0]], failure=False)
        assert miss_rate(fleet) > miss_rate(solo_fleet)

    def test_slowdown_tail_reflects_contention(self, churn):
        fleet, result, registry = churn
        assert result.p99_slowdown() > 1.0


class TestFleet1024:
    """Paper-scale (1024-host) variant behind the fleet_1024_churn kernel."""

    def test_topology_is_paper_scale(self):
        from repro.workloads.fleet_bench import fleet1024_topology

        topology = fleet1024_topology()
        assert len(list(topology.servers())) == 1024
        assert topology.planes == 2

    def test_tenants_cover_the_three_bands(self):
        from repro.workloads.fleet_bench import fleet1024_tenants

        tenants = fleet1024_tenants()
        assert [t.name for t in tenants] == ["pretrain", "mid", "svc"]

    def test_build_does_not_run(self):
        from repro.workloads.fleet_bench import build_fleet1024

        fleet = build_fleet1024(seed=5)
        assert fleet.engine.events_executed == 0

    def test_smoke_run_is_deterministic(self):
        from repro.workloads.fleet_bench import run_fleet1024_smoke

        fleet_a, result_a = run_fleet1024_smoke()
        fleet_b, result_b = run_fleet1024_smoke()
        assert fleet_a.engine.events_executed == fleet_b.engine.events_executed
        completed_a = result_a.by_state(JobState.COMPLETED)
        completed_b = result_b.by_state(JobState.COMPLETED)
        assert len(completed_a) >= 1
        assert [j.spec.name for j in completed_a] == [
            j.spec.name for j in completed_b
        ]
        assert result_a.total_goodput() == result_b.total_goodput()
