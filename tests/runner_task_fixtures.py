"""Worker-importable task callables for the repro.runner tests.

These live in their own module (not a test file) so pool workers can
resolve them by dotted path under any start method.  They are
``@task``-decorated like the shipped library, so both the per-file
``D-taskpure`` audit and the whole-program ``D-taskpure-deep`` taint
analysis cover them.  The telemetry one deliberately touches the
process-default registry to *prove* the runner isolates it per task —
exactly what the purity rules forbid — so it waives them inline at the
impure line, with the waiver naming both the shallow and the deep rule.
"""

from repro.runner.spec import task


@task
def add_point(x, y=0, seed=None):
    return {"x": x, "y": y, "seed": seed, "sum": x + y}


@task
def echo_tuple(x):
    # Tuples are JSON-plain only after normalization (they become lists);
    # returning one checks the compute path normalizes before caching.
    return {"pair": (x, x + 1)}


@task
def counting_task(bumps, seed=None):
    """Bump a counter on the process-default registry ``bumps`` times.

    Under the runner each execution must see a fresh private registry:
    every task reports ``counted == bumps`` no matter how many siblings
    ran in the same worker process before it.  Reading the
    process-default registry is the whole point of this negative
    fixture, so the purity rules are waived at the impure line.
    """
    from repro.obs.metrics import get_registry

    counter = get_registry().counter(  # simlint: ok D-taskpure D-taskpure-deep
        "runner_test.calls"
    )
    for _ in range(bumps):
        counter.inc()
    return {"bumps": bumps, "counted": counter.value()}


@task
def not_json(x):
    return {"value": object()}
