"""Worker-importable task callables for the repro.runner tests.

These live in their own module (not a test file) so pool workers can
resolve them by dotted path under any start method.  They are plain
functions, not ``@task``-decorated library tasks: the telemetry one
deliberately touches the process-default registry to *prove* the runner
isolates it per task, which is exactly what ``D-taskpure`` forbids in
the shipped task library.
"""


def add_point(x, y=0, seed=None):
    return {"x": x, "y": y, "seed": seed, "sum": x + y}


def echo_tuple(x):
    # Tuples are JSON-plain only after normalization (they become lists);
    # returning one checks the compute path normalizes before caching.
    return {"pair": (x, x + 1)}


def counting_task(bumps, seed=None):
    """Bump a counter on the process-default registry ``bumps`` times.

    Under the runner each execution must see a fresh private registry:
    every task reports ``counted == bumps`` no matter how many siblings
    ran in the same worker process before it.
    """
    from repro.obs.metrics import get_registry

    counter = get_registry().counter("runner_test.calls")
    for _ in range(bumps):
        counter.inc()
    return {"bumps": bumps, "counted": counter.value()}


def not_json(x):
    return {"value": object()}
