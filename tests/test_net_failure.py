"""Unit tests for failure injection: drops, flaps, and BGP reroute."""

import pytest

from repro.net import (
    DualPlaneTopology,
    FailureScenario,
    MessageFlow,
    PacketNetSim,
    ServerAddress,
    bgp_reroute,
    pick_victim_uplink,
    run_flows,
)
from repro.sim.units import MB


def make_sim(**topo_kwargs):
    defaults = dict(segments=2, servers_per_segment=2, rails=1, planes=2,
                    aggs_per_plane=4)
    defaults.update(topo_kwargs)
    topo = DualPlaneTopology(**defaults)
    return topo, PacketNetSim(topo, seed=21)


class TestFailureScenario:
    def test_fail_and_heal(self):
        topo, sim = make_sim()
        link = pick_victim_uplink(topo)
        scenario = FailureScenario(sim)
        scenario.fail_link(link)
        assert sim.port(link).drop_prob == 1.0
        scenario.heal_link(link)
        assert sim.port(link).drop_prob == 0.0
        assert scenario.injected == [(link, 1.0)]

    def test_flap_schedules_down_then_up(self):
        topo, sim = make_sim()
        link = pick_victim_uplink(topo)
        FailureScenario(sim).flap(link, down_at=0.001, up_at=0.002)
        sim.run(until=0.0015)
        assert sim.port(link).drop_prob == 1.0
        sim.run(until=0.003)
        assert sim.port(link).drop_prob == 0.0

    def test_flap_validation(self):
        topo, sim = make_sim()
        with pytest.raises(ValueError):
            FailureScenario(sim).flap(pick_victim_uplink(topo), 0.002, 0.001)

    def test_flow_survives_a_flap(self):
        """A mid-transfer optical flap: the 250 us RTO re-sprays around the
        dead link until it heals; the message still completes."""
        topo, sim = make_sim()
        flow = MessageFlow(
            sim, "f", ServerAddress(0, 0), ServerAddress(1, 0), 0,
            message_bytes=8 * MB, algorithm="obs", path_count=8,
            mtu=64 * 1024,
        )
        link = pick_victim_uplink(topo)
        FailureScenario(sim).flap(link, down_at=0.0002, up_at=0.004)
        results = run_flows(sim, [flow], timeout=2.0)
        assert flow.done
        assert results[0].bytes_acked == 8 * MB

    def test_bgp_reroute_heals_after_detection(self):
        topo, sim = make_sim()
        link = pick_victim_uplink(topo)
        bgp_reroute(topo, sim, link, detect_seconds=0.01)
        assert sim.port(link).drop_prob == 1.0
        sim.run(until=0.02)
        assert sim.port(link).drop_prob == 0.0

    def test_complete_failure_single_path_vs_spray(self):
        """Total link death: the sprayed flow finishes (127 healthy paths);
        the single-path flow limps on pure RTO retransmissions."""
        topo, sim_spray = make_sim(aggs_per_plane=8)
        spray = MessageFlow(
            sim_spray, "s", ServerAddress(0, 0), ServerAddress(1, 1), 0,
            message_bytes=4 * MB, algorithm="obs", path_count=128,
            mtu=64 * 1024, connection_id=3,
        )
        FailureScenario(sim_spray).fail_link(
            topo.route(ServerAddress(0, 0), ServerAddress(1, 1), 0,
                       path_id=0, connection_id=3)[1]
        )
        run_flows(sim_spray, [spray], timeout=1.0)
        assert spray.done

        topo2, sim_single = make_sim(aggs_per_plane=8)
        single = MessageFlow(
            sim_single, "p", ServerAddress(0, 0), ServerAddress(1, 1), 0,
            message_bytes=4 * MB, algorithm="single", path_count=1,
            mtu=64 * 1024, connection_id=3, recovery="go_back_n",
        )
        pinned = single.conn.selector.pinned_path
        FailureScenario(sim_single).fail_link(
            topo2.route(ServerAddress(0, 0), ServerAddress(1, 1), 0,
                        path_id=pinned, connection_id=3)[1]
        )
        run_flows(sim_single, [single], timeout=0.02)
        # Retransmissions re-spray even for "single" (path set of 1 makes
        # retransmit_path return the same path), so nothing completes
        # until the link heals — bytes stay at zero.
        assert not single.done
        assert single.bytes_acked == 0
        assert single.rto_count > 0
