"""Unit tests for size/time/bandwidth helpers."""

import pytest

from repro.sim import units


def test_si_and_iec_constants():
    assert units.GB == 10**9
    assert units.GiB == 2**30
    assert units.MiB == 2**20


def test_gbps():
    assert units.Gbps(200) == 200e9


def test_transfer_time_roundtrip():
    rate = units.Gbps(400)
    t = units.transfer_time(units.MiB, rate)
    assert units.bits_per_sec(units.MiB, t) == pytest.approx(rate)


def test_transfer_time_rejects_bad_rate():
    with pytest.raises(ValueError):
        units.transfer_time(100, 0)
    with pytest.raises(ValueError):
        units.transfer_time(-1, units.Gbps(1))


@pytest.mark.parametrize(
    "text,expected",
    [
        ("8MB", 8 * units.MB),
        ("2 MiB", 2 * units.MiB),
        ("1.5GiB", int(1.5 * units.GiB)),
        ("512", 512),
        ("0.5 kb", 500),
        (4096, 4096),
    ],
)
def test_parse_size(text, expected):
    assert units.parse_size(text) == expected


@pytest.mark.parametrize("bad", ["", "MB", "12 parsecs", "--3MB"])
def test_parse_size_rejects_garbage(bad):
    with pytest.raises(ValueError):
        units.parse_size(bad)


def test_format_bytes():
    assert units.format_bytes(512) == "512B"
    assert units.format_bytes(2 * units.MiB) == "2.0MiB"
    assert units.format_bytes(3 * units.TiB) == "3.0TiB"


def test_format_rate():
    assert units.format_rate(units.Gbps(393)) == "393.0Gbps"
    assert units.format_rate(1500) == "1.5Kbps"


def test_format_time():
    assert units.format_time(2.5) == "2.50s"
    assert units.format_time(250e-6) == "250.0us"
    assert units.format_time(3e-3) == "3.0ms"
    assert units.format_time(40e-9) == "40ns"
    assert units.format_time(-250e-6) == "-250.0us"


def test_usec():
    assert units.usec(250) == pytest.approx(250e-6)
