"""repro.perf harness tests: timing plumbing, BENCH_perf.json round
trips, baseline selection, and the machine-normalized regression gate.

Kernel *timings* are machine-dependent and never asserted; what is
asserted is the contract around them — determinism of event counts,
schema shape, and gate arithmetic.
"""

import json

import pytest

from repro.perf import harness
from repro.perf.harness import (
    KERNELS,
    KernelSpec,
    check_regression,
    find_baseline,
    load_bench,
    machine_score,
    run_suite,
    time_kernel,
    write_bench,
)


def _entry(label, mode, score, eps_by_kernel):
    return {
        "label": label,
        "mode": mode,
        "machine_score": score,
        "kernels": {
            name: {"wall_seconds": 1.0, "events": int(eps),
                   "events_per_sec": eps, "repeats": 1, "meta": {}}
            for name, eps in eps_by_kernel.items()
        },
    }


class TestMachineScore:
    def test_score_is_positive_and_plausible(self):
        score = machine_score()
        # A frozen 2M-iteration LCG loop: anything from an embedded core
        # to a fast desktop lands within these rails.
        assert 1e5 < score < 1e9


class TestTimeKernel:
    def test_best_of_n_and_stable_events(self):
        calls = []

        def fake_kernel(smoke=False):
            calls.append(smoke)
            return {"events": 123, "meta": {"k": 1}}

        spec = KernelSpec("fake", fake_kernel, 3, "test kernel")
        result = time_kernel(spec, smoke=True)
        assert calls == [True, True, True]
        assert result.events == 123
        assert result.repeats == 3
        assert result.meta == {"k": 1}
        assert result.wall_seconds >= 0.0

    def test_nondeterministic_kernel_is_rejected(self):
        counter = {"n": 0}

        def flaky_kernel(smoke=False):
            counter["n"] += 1
            return {"events": counter["n"], "meta": {}}

        spec = KernelSpec("flaky", flaky_kernel, 2, "drifting event count")
        with pytest.raises(AssertionError):
            time_kernel(spec)

    def test_events_per_sec_handles_zero_wall(self):
        from repro.perf.harness import KernelResult

        assert KernelResult("x", 0.0, 10, {}, 1).events_per_sec == 0.0


class TestSuite:
    def test_unknown_kernel_name_raises(self):
        with pytest.raises(KeyError):
            run_suite(smoke=True, names=["no_such_kernel"])

    def test_smoke_suite_runs_one_real_kernel(self):
        report = run_suite(smoke=True, names=["scheduler_churn"])
        assert report.mode == "smoke"
        assert report.machine_score > 0
        result = report.results["scheduler_churn"]
        assert result.events > 0
        assert result.events_per_sec > 0
        entry = report.to_entry("test-label")
        assert entry["label"] == "test-label"
        assert entry["mode"] == "smoke"
        assert "scheduler_churn" in entry["kernels"]

    def test_kernel_registry_matches_issue_suite(self):
        assert set(KERNELS) == {
            "scheduler_churn", "scheduler_cancel", "packet_fig9",
            "packet_fig11", "flight_overhead", "fluid_allreduce_512",
            "fleet_churn", "fleet_1024_churn", "fleet_1024_hybrid",
            "runner_fanout", "trace_replay",
        }

    def test_flight_overhead_kernel_modes_do_identical_work(self):
        # The overhead gate's correctness half: attaching a recorder to
        # the lossy fig11 ring must not change the scheduler's work.
        out = KERNELS["flight_overhead"].fn(smoke=True)
        meta = out["meta"]
        assert meta["disabled_events"] == meta["enabled_events"]
        assert out["events"] == 2 * meta["disabled_events"]
        assert meta["flight_recorded"] > 0
        assert meta["flight_dropped"] == 0
        # Deterministic: a second run does the same work.
        again = KERNELS["flight_overhead"].fn(smoke=True)
        assert again["events"] == out["events"]
        assert again["meta"]["flight_recorded"] == meta["flight_recorded"]

    def test_runner_fanout_modes_agree_on_events(self, monkeypatch):
        # The fan-out kernel must do bit-identical work inline and pooled
        # (the PR 2/PR 4 invariant); only the wall clock may differ.
        monkeypatch.setenv("REPRO_RUNNER_MODE", "sequential")
        sequential = KERNELS["runner_fanout"].fn(smoke=True)
        monkeypatch.setenv("REPRO_RUNNER_MODE", "pooled")
        monkeypatch.setenv("REPRO_RUNNER_WORKERS", "2")
        pooled = KERNELS["runner_fanout"].fn(smoke=True)
        assert sequential["events"] == pooled["events"]
        assert sequential["meta"]["packets"] == pooled["meta"]["packets"]
        assert sequential["meta"]["rtos"] == pooled["meta"]["rtos"]
        assert sequential["meta"]["mode"] == "sequential"
        assert pooled["meta"]["mode"] == "pooled"


class TestBenchFile:
    def test_missing_file_is_empty_history(self, tmp_path):
        data = load_bench(str(tmp_path / "nope.json"))
        assert data == {"schema": harness.SCHEMA, "history": []}

    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "BENCH_perf.json")
        data = load_bench(path)
        data["history"].append(_entry("a", "full", 1e7, {"k": 100.0}))
        write_bench(path, data)
        again = load_bench(path)
        assert again["history"][0]["label"] == "a"
        # File is plain JSON, newline-terminated.
        text = open(path).read()
        assert text.endswith("\n")
        json.loads(text)

    def test_find_baseline_prefers_newest_matching_mode(self, tmp_path):
        data = {"schema": 1, "history": [
            _entry("old-full", "full", 1e7, {"k": 100.0}),
            _entry("smoke", "smoke", 1e7, {"k": 10.0}),
            _entry("new-full", "full", 1e7, {"k": 200.0}),
        ]}
        assert find_baseline(data, "full")["label"] == "new-full"
        assert find_baseline(data, "smoke")["label"] == "smoke"
        assert find_baseline(data, "full", label="old-full")["label"] == "old-full"
        assert find_baseline(data, "full", label="absent") is None
        assert find_baseline({"history": []}, "full") is None


class TestRegressionGate:
    def test_same_speed_passes(self):
        base = _entry("base", "full", 1e7, {"k": 100.0})
        cur = _entry("cur", "full", 1e7, {"k": 100.0})
        findings = check_regression(cur, base)
        assert findings == [("k", 1.0, False)]

    def test_machine_normalization_absorbs_slow_runner(self):
        # Same simulator speed on a half-speed machine: raw events/sec
        # halves, but so does the machine score — no regression.
        base = _entry("base", "full", 1e7, {"k": 100.0})
        cur = _entry("cur", "full", 0.5e7, {"k": 50.0})
        [(kernel, ratio, regressed)] = check_regression(cur, base)
        assert kernel == "k"
        assert ratio == pytest.approx(1.0)
        assert not regressed

    def test_true_regression_fires_past_threshold(self):
        base = _entry("base", "full", 1e7, {"k": 100.0})
        cur = _entry("cur", "full", 1e7, {"k": 60.0})  # 40% slower
        [(_, ratio, regressed)] = check_regression(cur, base, threshold=0.30)
        assert ratio == pytest.approx(0.6)
        assert regressed

    def test_within_threshold_slowdown_passes(self):
        base = _entry("base", "full", 1e7, {"k": 100.0})
        cur = _entry("cur", "full", 1e7, {"k": 80.0})  # 20% slower
        [(_, ratio, regressed)] = check_regression(cur, base, threshold=0.30)
        assert ratio == pytest.approx(0.8)
        assert not regressed

    def test_kernels_missing_on_either_side_are_skipped(self):
        base = _entry("base", "full", 1e7, {"k": 100.0})
        cur = _entry("cur", "full", 1e7, {"k": 100.0, "new_kernel": 5.0})
        findings = check_regression(cur, base)
        assert [f[0] for f in findings] == ["k"]

    def test_acceptance_speedup_is_recorded_in_shipped_bench(self):
        # The shipped BENCH_perf.json must contain the pre-optimisation
        # baseline and a post-optimisation entry showing >= 2x normalized
        # speedup on the Fig. 11 packet kernel and the fleet churn
        # scenario (the PR 4 acceptance gate).
        data = load_bench("BENCH_perf.json")
        pre = find_baseline(data, "full", label="pr4-pre-optimisation")
        post = find_baseline(data, "full", label="pr4-post-optimisation")
        if pre is None or post is None:
            pytest.skip("bench history not recorded in this checkout")
        for kernel in ("packet_fig11", "fleet_churn"):
            ratios = dict(
                (k, r) for k, r, _ in check_regression(post, pre)
            )
            assert ratios[kernel] >= 2.0, (
                "%s speedup %.2fx below the 2x acceptance gate"
                % (kernel, ratios[kernel])
            )

    def test_runner_fanout_speedup_is_recorded_in_shipped_bench(self):
        # PR 5 acceptance gate: pooled warm-cache execution of the fan-out
        # kernel at 4 workers must be >= 2x the sequential baseline, with
        # both entries recorded in the shipped bench history and doing
        # identical work (same summed event count).
        data = load_bench("BENCH_perf.json")
        pre = find_baseline(data, "full", label="pr5-runner-fanout-pre")
        post = find_baseline(data, "full", label="pr5-runner-fanout-post")
        if pre is None or post is None:
            pytest.skip("bench history not recorded in this checkout")
        assert pre["kernels"]["runner_fanout"]["meta"]["mode"] == "sequential"
        assert post["kernels"]["runner_fanout"]["meta"]["mode"] == "pooled"
        assert post["kernels"]["runner_fanout"]["meta"]["workers"] == 4
        assert (pre["kernels"]["runner_fanout"]["events"]
                == post["kernels"]["runner_fanout"]["events"])
        ratios = dict((k, r) for k, r, _ in check_regression(post, pre))
        assert ratios["runner_fanout"] >= 2.0, (
            "runner_fanout speedup %.2fx below the 2x acceptance gate"
            % ratios["runner_fanout"]
        )

    def test_flight_overhead_gate_is_recorded_in_shipped_bench(self):
        # PR 6 acceptance gate: the flight-recorder hooks may cost the
        # disabled path at most 5%.  'pr6-flight-pre' predates the hooks;
        # 'pr6-flight-post' carries them with flight=None on the fig11
        # kernel, so the normalized packet_fig11 ratio bounds the
        # disabled-path overhead.
        data = load_bench("BENCH_perf.json")
        pre = find_baseline(data, "full", label="pr6-flight-pre")
        post = find_baseline(data, "full", label="pr6-flight-post")
        if pre is None or post is None:
            pytest.skip("bench history not recorded in this checkout")
        ratios = dict((k, r) for k, r, _ in check_regression(post, pre))
        assert ratios["packet_fig11"] >= 0.95, (
            "disabled-path flight overhead %.1f%% exceeds the 5%% budget"
            % (100.0 * (1.0 - ratios["packet_fig11"]))
        )
        overhead = post["kernels"]["flight_overhead"]
        assert (overhead["meta"]["disabled_events"]
                == overhead["meta"]["enabled_events"])
        # Same-entry sanity: the off+on kernel's throughput tracks the
        # plain fig11 kernel's (no per-packet recording cost).
        fig11 = post["kernels"]["packet_fig11"]
        assert overhead["events_per_sec"] >= 0.9 * fig11["events_per_sec"]
