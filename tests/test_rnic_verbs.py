"""Unit tests for verbs resources and the functional RDMA datapath."""

import pytest

from repro.memory import MemoryKind
from repro.rnic import (
    BaseRnic,
    QpState,
    VerbsError,
    WcStatus,
    connect_qps,
)


def make_pair():
    """Two connected NICs with registered 1 MiB host buffers each."""
    a, b = BaseRnic(name="a"), BaseRnic(name="b")
    pd_a, pd_b = a.alloc_pd("tenant"), b.alloc_pd("tenant")
    mr_a = a.reg_mr(pd_a, 0x0, [(0x0, 0xA00000, 1 << 20)], MemoryKind.HOST_DRAM, True)
    mr_b = b.reg_mr(pd_b, 0x0, [(0x0, 0xB00000, 1 << 20)], MemoryKind.HOST_DRAM, True)
    qp_a = a.create_qp(pd_a)
    qp_b = b.create_qp(pd_b)
    connect_qps(qp_a, qp_b, nic_a=a, nic_b=b)
    return a, b, qp_a, qp_b, mr_a, mr_b


class TestQpStateMachine:
    def test_legal_path(self):
        nic = BaseRnic()
        qp = nic.create_qp(nic.alloc_pd("t"))
        assert qp.state is QpState.RESET
        qp.modify(QpState.INIT)
        qp.modify(QpState.RTR, remote_qpn=0x200)
        qp.modify(QpState.RTS)
        assert qp.connected

    def test_illegal_transition(self):
        nic = BaseRnic()
        qp = nic.create_qp(nic.alloc_pd("t"))
        with pytest.raises(VerbsError):
            qp.modify(QpState.RTS)  # RESET -> RTS is illegal

    def test_rtr_requires_remote(self):
        nic = BaseRnic()
        qp = nic.create_qp(nic.alloc_pd("t"))
        qp.modify(QpState.INIT)
        with pytest.raises(VerbsError):
            qp.modify(QpState.RTR)

    def test_reset_clears_connection(self):
        _, _, qp_a, _, _, _ = make_pair()
        qp_a.modify(QpState.RESET)
        assert qp_a.remote_qpn is None
        assert not qp_a.connected

    def test_error_then_reset_recovers(self):
        nic = BaseRnic()
        qp = nic.create_qp(nic.alloc_pd("t"))
        qp.modify(QpState.ERROR)
        qp.modify(QpState.RESET)
        qp.modify(QpState.INIT)


class TestRdmaWrite:
    def test_successful_write_moves_bytes_and_completes(self):
        a, b, qp_a, qp_b, mr_a, mr_b = make_pair()
        latency = a.rdma_write(qp_a, "wr1", mr_a, 0x100, 4096, mr_b.rkey, 0x200)
        assert latency > 0
        wcs = qp_a.send_cq.poll()
        assert len(wcs) == 1 and wcs[0].ok and wcs[0].byte_len == 4096
        assert a.bytes_sent == 4096
        assert b.bytes_received == 4096
        assert qp_b.bytes_received == 4096

    def test_pd_mismatch_is_local_protection_error(self):
        a, b, qp_a, qp_b, mr_a, mr_b = make_pair()
        other_pd = a.alloc_pd("other-tenant")
        foreign_mr = a.reg_mr(
            other_pd, 0x0, [(0x0, 0xF00000, 4096)], MemoryKind.HOST_DRAM, True
        )
        a.rdma_write(qp_a, "wr1", foreign_mr, 0x0, 64, mr_b.rkey, 0x0)
        wc = qp_a.send_cq.poll()[0]
        assert wc.status is WcStatus.LOCAL_PROTECTION_ERROR
        assert b.bytes_received == 0

    def test_remote_pd_mismatch_is_remote_access_error(self):
        """Section 9 isolation: a QP cannot touch an MR in another tenant's
        protection domain on the remote side."""
        a, b, qp_a, qp_b, mr_a, mr_b = make_pair()
        victim_pd = b.alloc_pd("victim-tenant")
        victim_mr = b.reg_mr(
            victim_pd, 0x0, [(0x0, 0xE00000, 4096)], MemoryKind.HOST_DRAM, True
        )
        a.rdma_write(qp_a, "wr1", mr_a, 0x0, 64, victim_mr.rkey, 0x0)
        wc = qp_a.send_cq.poll()[0]
        assert wc.status is WcStatus.REMOTE_ACCESS_ERROR
        assert b.bytes_received == 0

    def test_bad_rkey_is_remote_access_error(self):
        a, b, qp_a, qp_b, mr_a, mr_b = make_pair()
        a.rdma_write(qp_a, "wr1", mr_a, 0x0, 64, 0xDEAD, 0x0)
        wc = qp_a.send_cq.poll()[0]
        assert wc.status is WcStatus.REMOTE_ACCESS_ERROR

    def test_out_of_bounds_remote_write_rejected(self):
        a, b, qp_a, qp_b, mr_a, mr_b = make_pair()
        a.rdma_write(qp_a, "wr1", mr_a, 0x0, 4096, mr_b.rkey, (1 << 20) - 100)
        wc = qp_a.send_cq.poll()[0]
        assert wc.status is WcStatus.REMOTE_ACCESS_ERROR

    def test_deregistered_remote_mr_rejected(self):
        a, b, qp_a, qp_b, mr_a, mr_b = make_pair()
        b.dereg_mr(mr_b)
        a.rdma_write(qp_a, "wr1", mr_a, 0x0, 64, mr_b.rkey, 0x0)
        wc = qp_a.send_cq.poll()[0]
        assert wc.status is WcStatus.REMOTE_ACCESS_ERROR

    def test_write_on_disconnected_qp_rejected(self):
        a = BaseRnic()
        pd = a.alloc_pd("t")
        mr = a.reg_mr(pd, 0x0, [(0x0, 0xA00000, 4096)], MemoryKind.HOST_DRAM, True)
        qp = a.create_qp(pd)
        with pytest.raises(VerbsError):
            a.rdma_write(qp, "wr1", mr, 0x0, 64, 0x1, 0x0)

    def test_larger_messages_take_longer(self):
        a, b, qp_a, qp_b, mr_a, mr_b = make_pair()
        small = a.rdma_write(qp_a, "s", mr_a, 0x0, 64, mr_b.rkey, 0x0)
        big = a.rdma_write(qp_a, "b", mr_a, 0x0, 1 << 20, mr_b.rkey, 0x0)
        assert big > small


class TestCqAndMr:
    def test_cq_overflow(self):
        nic = BaseRnic()
        cq = nic.create_cq(depth=1)
        pd = nic.alloc_pd("t")
        from repro.rnic import Opcode, WorkCompletion

        cq.push(WorkCompletion(1, WcStatus.SUCCESS, Opcode.RDMA_WRITE, 0))
        with pytest.raises(VerbsError):
            cq.push(WorkCompletion(2, WcStatus.SUCCESS, Opcode.RDMA_WRITE, 0))
        assert cq.overflows == 1

    def test_cq_poll_batches_fifo(self):
        nic = BaseRnic()
        cq = nic.create_cq()
        from repro.rnic import Opcode, WorkCompletion

        for i in range(5):
            cq.push(WorkCompletion(i, WcStatus.SUCCESS, Opcode.RDMA_WRITE, 0))
        first = cq.poll(3)
        assert [wc.wr_id for wc in first] == [0, 1, 2]
        assert len(cq) == 2

    def test_double_dereg_rejected(self):
        nic = BaseRnic()
        pd = nic.alloc_pd("t")
        mr = nic.reg_mr(pd, 0x0, [(0x0, 0xA00000, 4096)], MemoryKind.HOST_DRAM, True)
        nic.dereg_mr(mr)
        with pytest.raises(VerbsError):
            nic.dereg_mr(mr)
