"""Unit tests for the workload harnesses (perftest, GDR sweeps, startup)."""

import pytest

from repro import calibration
from repro.rnic import BaseRnic
from repro.workloads import (
    AtcMissExperiment,
    PROFILES,
    default_gdr_sizes,
    default_message_sizes,
    emtt_sweep,
    gdr_datapath_curve,
    run_functional_perftest,
    run_perftest,
    write_bandwidth,
    write_latency,
)


class TestPerftestModel:
    def test_sweep_sizes_are_powers_of_two(self):
        sizes = default_message_sizes()
        assert sizes[0] == 2
        assert sizes[-1] == 8 * 1024 * 1024
        assert all(b == 2 * a for a, b in zip(sizes, sizes[1:]))

    def test_vstellar_matches_bare_metal(self):
        """Figure 13's headline: the two curves are identical."""
        bare = run_perftest("bare_metal")
        virt = run_perftest("vstellar")
        for b, v in zip(bare, virt):
            assert v.latency == pytest.approx(b.latency)
            assert v.bandwidth == pytest.approx(b.bandwidth)

    def test_vxlan_small_message_latency_overhead(self):
        """+7% at 8 B (the paper's measured penalty)."""
        bare = write_latency(PROFILES["bare_metal"], 8)
        vxlan = write_latency(PROFILES["vf_vxlan_cx7"], 8)
        assert (vxlan - bare) / bare == pytest.approx(0.07, rel=0.02)

    def test_vxlan_large_message_bandwidth_loss(self):
        """-9% at 8 MB."""
        bare = write_bandwidth(PROFILES["bare_metal"], 8 * 1024 * 1024)
        vxlan = write_bandwidth(PROFILES["vf_vxlan_cx7"], 8 * 1024 * 1024)
        assert 1 - vxlan / bare == pytest.approx(0.09, abs=0.005)

    def test_bandwidth_monotone_in_size(self):
        rows = run_perftest("bare_metal")
        bandwidths = [r.bandwidth for r in rows]
        assert bandwidths == sorted(bandwidths)
        assert bandwidths[-1] <= calibration.RNIC_TOTAL_RATE

    def test_functional_perftest_matches_model_shape(self):
        client, server = BaseRnic(name="pc"), BaseRnic(name="ps")
        rows = run_functional_perftest(client, server, [8, 4096, 1 << 20])
        assert rows[0].latency < rows[-1].latency
        assert rows[0].bandwidth < rows[-1].bandwidth
        # Small-message latency is dominated by the base op cost.
        # Base op cost plus the two MTT lookups (~50 ns).
        assert rows[0].latency == pytest.approx(
            calibration.RDMA_BASE_LATENCY_SECONDS, rel=0.05
        )


class TestAtcMissExperiment:
    @pytest.fixture(scope="class")
    def sweep(self):
        return AtcMissExperiment().sweep(
            sizes=[1 << 20, 2 << 20, 8 << 20, 64 << 20]
        )

    def test_three_regimes(self, sweep):
        """Figure 8: full rate <=2MB, ATC-miss plateau, IOTLB-miss floor."""
        by_size = {r.message_bytes: r for r in sweep}
        assert by_size[1 << 20].gbps == pytest.approx(190.0, rel=0.02)
        assert by_size[2 << 20].gbps == pytest.approx(190.0, rel=0.02)
        assert 160 < by_size[8 << 20].gbps < 180
        assert 135 < by_size[64 << 20].gbps < 160

    def test_hit_rates_explain_the_knees(self, sweep):
        by_size = {r.message_bytes: r for r in sweep}
        assert by_size[2 << 20].atc_hit_rate == pytest.approx(1.0)
        assert by_size[8 << 20].atc_hit_rate == pytest.approx(0.0)
        assert by_size[8 << 20].iotlb_hit_rate == pytest.approx(1.0)
        assert by_size[64 << 20].iotlb_hit_rate == pytest.approx(0.0)

    def test_emtt_curve_is_flat_at_line_rate(self):
        rows = emtt_sweep(sizes=[1 << 20, 64 << 20])
        assert rows[0].gbps == rows[1].gbps == pytest.approx(190.0)

    def test_monotone_nonincreasing(self, sweep):
        rates = [r.rate for r in sweep]
        assert all(a >= b - 1e-6 for a, b in zip(rates, rates[1:]))


class TestGdrDatapathCurve:
    def test_hyv_masq_capped_at_rc_ceiling(self):
        """Figure 14: RC-routed GDR tops out at ~141 Gbps, ~36% of 393."""
        hyv = gdr_datapath_curve("hyv_masq")
        stellar = gdr_datapath_curve("vstellar")
        peak_hyv = max(r.rate for r in hyv)
        peak_stellar = max(r.rate for r in stellar)
        assert peak_hyv <= calibration.GDR_RC_ROUTED_RATE
        assert peak_stellar > 0.97 * calibration.GDR_P2P_PEAK_RATE
        assert peak_hyv / peak_stellar == pytest.approx(0.36, abs=0.03)

    def test_bare_metal_equals_vstellar(self):
        bare = gdr_datapath_curve("bare_metal")
        virt = gdr_datapath_curve("vstellar")
        for b, v in zip(bare, virt):
            assert v.rate == pytest.approx(b.rate)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            gdr_datapath_curve("warp")


class TestDefaultSizes:
    def test_gdr_sizes_cover_the_knees(self):
        sizes = default_gdr_sizes()
        assert 2 * 1024 * 1024 in sizes
        assert 32 * 1024 * 1024 in sizes
        assert sizes[-1] == 64 * 1024 * 1024
