"""TaskSpec identity: canonicalization, digests, and code fingerprints.

The digest is the result-cache key, so the properties under test are the
cache's correctness argument: same spec + same code → same digest;
different kwargs, seed, callable, *or source text* → different digest.
"""

import pytest

from repro.runner import (
    TaskError,
    TaskSpec,
    canonical_json,
    normalize_result,
    resolve_callable,
)
from repro.runner.fingerprint import closure_digest, module_closure

FIXTURES = "tests.runner_task_fixtures"


class TestCanonicalization:
    def test_canonical_json_sorts_keys_and_strips_whitespace(self):
        assert canonical_json({"b": 1, "a": [1, 2]}) == '{"a":[1,2],"b":1}'

    def test_normalize_result_converts_tuples_once(self):
        assert normalize_result({"pair": (1, 2)}) == {"pair": [1, 2]}

    def test_normalize_result_rejects_non_json(self):
        with pytest.raises(TaskError):
            normalize_result({"value": object()})


class TestSpecValidation:
    def test_empty_key_rejected(self):
        with pytest.raises(TaskError):
            TaskSpec("", "%s:add_point" % FIXTURES)

    def test_fn_must_be_module_colon_attr(self):
        with pytest.raises(TaskError):
            TaskSpec("k", "just_a_name")

    def test_non_json_kwargs_rejected(self):
        with pytest.raises(TaskError):
            TaskSpec("k", "%s:add_point" % FIXTURES, {"x": object()})

    def test_duplicate_digest_for_identical_specs(self):
        a = TaskSpec("k1", "%s:add_point" % FIXTURES, {"x": 1}, seed=3)
        b = TaskSpec("k2", "%s:add_point" % FIXTURES, {"x": 1}, seed=3)
        # The key names the row, not the work: it stays out of the digest.
        assert a.digest() == b.digest()

    def test_digest_varies_with_kwargs_seed_and_callable(self):
        memo = {}
        base = TaskSpec("k", "%s:add_point" % FIXTURES, {"x": 1}, seed=3)
        digests = {
            base.digest(memo=memo),
            TaskSpec("k", "%s:add_point" % FIXTURES, {"x": 2},
                     seed=3).digest(memo=memo),
            TaskSpec("k", "%s:add_point" % FIXTURES, {"x": 1},
                     seed=4).digest(memo=memo),
            TaskSpec("k", "%s:echo_tuple" % FIXTURES, {"x": 1},
                     seed=3).digest(memo=memo),
        }
        assert len(digests) == 4

    def test_memoized_digest_matches_fresh_digest(self):
        spec = TaskSpec("k", "%s:add_point" % FIXTURES, {"x": 1})
        assert spec.digest(memo={}) == spec.digest()

    def test_seed_is_injected_into_call_kwargs(self):
        spec = TaskSpec("k", "%s:add_point" % FIXTURES, {"x": 1}, seed=9)
        assert spec.call_kwargs() == {"x": 1, "seed": 9}
        assert spec.run() == {"x": 1, "y": 0, "seed": 9, "sum": 1}


class TestResolveCallable:
    def test_import_path_resolution(self):
        fn = resolve_callable("%s:add_point" % FIXTURES)
        assert fn(x=2, y=3) == {"x": 2, "y": 3, "seed": None, "sum": 5}

    def test_registered_tasks_resolve_without_import(self):
        from repro.runner import registered_tasks

        import repro.runner.tasks  # noqa: F401 -- populate the registry

        tasks = registered_tasks()
        assert "repro.runner.tasks:startup_point" in tasks
        assert resolve_callable("repro.runner.tasks:startup_point") is \
            tasks["repro.runner.tasks:startup_point"]

    def test_missing_attribute_raises(self):
        with pytest.raises(TaskError):
            resolve_callable("%s:no_such_fn" % FIXTURES)

    def test_unimportable_module_raises(self):
        with pytest.raises(TaskError):
            resolve_callable("definitely_not_a_module_xyz:fn")

    def test_path_without_colon_raises(self):
        with pytest.raises(TaskError):
            resolve_callable("tests.runner_task_fixtures.add_point")


class TestSourceFingerprint:
    def _write_module(self, tmp_path, body):
        module_path = tmp_path / "runner_digest_probe.py"
        module_path.write_text(body)
        return module_path

    def test_editing_source_changes_the_digest(self, tmp_path, monkeypatch):
        # The acceptance property for the cache key: a source edit — even
        # a comment — must invalidate cached results for specs over that
        # module.  Fresh memos per digest, since memos pin source bytes.
        monkeypatch.syspath_prepend(str(tmp_path))
        self._write_module(
            tmp_path, "def probe(x):\n    return {'x': x}\n")
        spec = TaskSpec("k", "runner_digest_probe:probe", {"x": 1})
        before = spec.digest(memo={})
        self._write_module(
            tmp_path, "def probe(x):\n    # edited\n    return {'x': x}\n")
        after = spec.digest(memo={})
        assert before != after

    def test_closure_follows_repro_imports_only(self):
        closure = module_closure("repro.runner.tasks")
        assert "repro.runner.tasks" in closure
        assert "repro.runner.spec" in closure
        assert all(name == "repro" or name.startswith("repro.")
                   for name in closure)

    def test_closure_digest_is_stable_within_a_session(self):
        assert closure_digest("repro.runner.tasks") == \
            closure_digest("repro.runner.tasks")
