"""Unit tests for the MMU/EPT, IOMMU, ATS, and pinning models."""

import pytest

from repro import calibration
from repro.memory import (
    AddressSpace,
    Iommu,
    MMU,
    MemoryKind,
    MemoryRegion,
    PageFault,
    PinError,
    PinManager,
    full_pin_seconds,
)
from repro.sim.units import GiB, MiB


def hpa(start, length, kind=MemoryKind.HOST_DRAM):
    return MemoryRegion(start, length, AddressSpace.HPA, kind)


class TestMmu:
    def test_ept_round_trip(self):
        mmu = MMU()
        mmu.create_ept("vm1")
        mmu.register_guest_memory("vm1", 0x0, hpa(0x100000, 0x4000))
        assert mmu.translate("vm1", 0x1234) == 0x101234
        assert mmu.entry_kind("vm1", 0x0) is MemoryKind.HOST_DRAM

    def test_duplicate_ept_rejected(self):
        mmu = MMU()
        mmu.create_ept("vm1")
        with pytest.raises(ValueError):
            mmu.create_ept("vm1")

    def test_missing_guest_faults(self):
        mmu = MMU()
        with pytest.raises(PageFault):
            mmu.translate("ghost", 0x0)

    def test_direct_map_lifecycle(self):
        mmu = MMU()
        mmu.create_ept("vm1")
        doorbell = hpa(0xF000_0000, 4096, MemoryKind.DEVICE_MMIO)
        mmu.register_direct_map("vm1", 0x7000_0000, doorbell)
        assert mmu.translate("vm1", 0x7000_0008) == 0xF000_0008
        assert 0x7000_0000 in mmu.direct_maps("vm1")
        released = mmu.unregister_direct_map("vm1", 0x7000_0000)
        assert released.start == 0xF000_0000
        with pytest.raises(PageFault):
            mmu.translate("vm1", 0x7000_0000)

    def test_direct_map_requires_4k_multiple(self):
        mmu = MMU()
        mmu.create_ept("vm1")
        with pytest.raises(ValueError):
            mmu.register_direct_map("vm1", 0x0, hpa(0x1000, 100))

    def test_destroy_ept_clears_state(self):
        mmu = MMU()
        mmu.create_ept("vm1")
        mmu.destroy_ept("vm1")
        assert mmu.direct_maps("vm1") == {}
        mmu.create_ept("vm1")  # recreate allowed after destroy


class TestPinManager:
    def test_pin_charges_only_new_blocks(self):
        pins = PinManager(block_size=2 * MiB)
        first = pins.pin(0x0, 2 * MiB)
        again = pins.pin(0x0, 2 * MiB)
        assert first > 0
        assert again == 0.0
        assert pins.pinned_blocks == 1

    def test_refcounted_unpin(self):
        pins = PinManager(block_size=4096)
        pins.pin(0x0, 4096)
        pins.pin(0x0, 4096)
        pins.unpin(0x0, 4096)
        assert pins.is_pinned(0x0)
        pins.unpin(0x0, 4096)
        assert not pins.is_pinned(0x0)

    def test_unpin_unpinned_raises(self):
        pins = PinManager()
        with pytest.raises(PinError):
            pins.unpin(0x0, 4096)

    def test_range_spanning_blocks(self):
        pins = PinManager(block_size=4096)
        pins.pin(4000, 200)  # crosses a block boundary
        assert pins.pinned_blocks == 2
        assert pins.range_pinned(4000, 200)
        assert not pins.range_pinned(0x0, 3 * 4096)

    def test_full_pin_matches_paper_datum(self):
        seconds = full_pin_seconds(int(1.6e12))
        assert seconds == pytest.approx(390.0, rel=1e-6)

    def test_block_size_validation(self):
        with pytest.raises(PinError):
            PinManager(block_size=3000)


class TestIommu:
    def test_map_translate_unmap(self):
        iommu = Iommu()
        iommu.create_domain("vm1")
        cost = iommu.map("vm1", 0x0, 0x100000, 0x4000, kind=MemoryKind.HOST_DRAM)
        assert cost > 0
        assert iommu.translate("vm1", 0x123) == 0x100123
        iommu.unmap("vm1", 0x0, 0x4000)
        with pytest.raises(PageFault):
            iommu.translate("vm1", 0x0)

    def test_map_without_pin_costs_nothing(self):
        iommu = Iommu()
        iommu.create_domain("vm1")
        assert iommu.map("vm1", 0x0, 0x100000, 0x1000, pin=False) == 0.0

    def test_ats_latency_iotlb_hit_vs_miss(self):
        iommu = Iommu()
        iommu.create_domain("vm1")
        iommu.map("vm1", 0x0, 0x200000, 0x2000, kind=MemoryKind.GPU_HBM)
        miss = iommu.ats_translate("vm1", 0x0)
        hit = iommu.ats_translate("vm1", 0x0)
        assert not miss.iotlb_hit and hit.iotlb_hit
        assert miss.latency == pytest.approx(
            calibration.ATS_QUERY_SECONDS + calibration.IOTLB_WALK_SECONDS
        )
        assert hit.latency == pytest.approx(calibration.ATS_QUERY_SECONDS)
        assert hit.kind is MemoryKind.GPU_HBM
        assert hit.hpa == 0x200000

    def test_ats_disabled_raises(self):
        iommu = Iommu(ats_enabled=False)
        iommu.create_domain("vm1")
        iommu.map("vm1", 0x0, 0x100000, 0x1000)
        with pytest.raises(PageFault):
            iommu.ats_translate("vm1", 0x0)

    def test_ats_unmapped_page_faults(self):
        iommu = Iommu()
        iommu.create_domain("vm1")
        with pytest.raises(PageFault):
            iommu.ats_translate("vm1", 0xDEAD000)

    def test_unmap_invalidates_iotlb(self):
        iommu = Iommu()
        iommu.create_domain("vm1")
        iommu.map("vm1", 0x0, 0x100000, 0x1000)
        iommu.ats_translate("vm1", 0x0)
        iommu.unmap("vm1", 0x0, 0x1000)
        assert ("vm1", 0x0) not in iommu.iotlb

    def test_rc_translate_uses_iotlb(self):
        iommu = Iommu()
        iommu.create_domain("vm1")
        iommu.map("vm1", 0x0, 0x100000, 0x1000)
        miss = iommu.rc_translate("vm1", 0x10)
        hit = iommu.rc_translate("vm1", 0x20)
        assert not miss.iotlb_hit and hit.iotlb_hit
        assert miss.latency > hit.latency == 0.0

    def test_domain_lifecycle(self):
        iommu = Iommu()
        iommu.create_domain("vm1")
        with pytest.raises(ValueError):
            iommu.create_domain("vm1")
        iommu.destroy_domain("vm1")
        with pytest.raises(KeyError):
            iommu.domain("vm1")
        with pytest.raises(KeyError):
            iommu.destroy_domain("vm1")

    def test_fullpin_of_large_vm_is_minutes(self):
        """Integration with the Figure 6 cost model: mapping 1.6 TB in one
        VFIO-style call takes ~390 simulated seconds."""
        iommu = Iommu()
        iommu.create_domain("big", pin_block_size=1 * GiB)
        cost = iommu.map("big", 0x0, 0x40000000, int(1.6e12), pin=True)
        assert 350 < cost < 430
