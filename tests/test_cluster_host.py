"""Unit tests for FleetHost admission accounting and the shared ATC."""

import pytest

from repro.cluster import FleetHost, FleetHostError
from repro.net.topology import ServerAddress
from repro.sim.units import GiB, MiB


def make_host(name="h0", segment=0, index=0, **kwargs):
    config = dict(gpus=2, rnics=1, dram_bytes=8 * GiB, gpu_hbm_bytes=1 * GiB)
    config.update(kwargs)
    return FleetHost(name, ServerAddress(segment, index), **config)


class TestAdmissionLedger:
    def test_fresh_host_is_empty(self):
        host = make_host()
        assert host.gpus_reserved == 0
        assert host.dram_reserved == 0
        assert host.sfs_reserved == 0
        assert host.lut_used == host.lut_base
        assert host.free_vector() == [
            host.gpu_capacity, host.dram_capacity, host.sf_capacity,
            host.lut_capacity - host.lut_base,
        ]

    def test_reserve_and_release_roundtrip(self):
        host = make_host()
        host.reserve("job-a", gpus=1, dram_bytes=2 * GiB, sfs=1, lut_entries=1)
        assert host.gpus_free == host.gpu_capacity - 1
        assert host.dram_free == host.dram_capacity - 2 * GiB
        assert host.sfs_free == host.sf_capacity - 1
        assert host.lut_used == host.lut_base + 1
        host.release("job-a")
        assert host.gpus_reserved == 0
        assert host.lut_used == host.lut_base

    def test_release_is_idempotent(self):
        host = make_host()
        host.reserve("job-a", gpus=1, dram_bytes=1 * GiB, sfs=1)
        assert host.release("job-a") is not None
        assert host.release("job-a") is None
        assert host.release("never-reserved") is None

    def test_duplicate_reservation_rejected(self):
        host = make_host()
        host.reserve("job-a", gpus=1, dram_bytes=1 * GiB, sfs=1)
        with pytest.raises(FleetHostError, match="already holds"):
            host.reserve("job-a", gpus=1, dram_bytes=1 * GiB, sfs=1)

    def test_over_capacity_rejected_per_dimension(self):
        host = make_host()
        with pytest.raises(FleetHostError, match="cannot fit"):
            host.reserve("gpus", gpus=host.gpu_capacity + 1,
                         dram_bytes=1 * GiB, sfs=1)
        with pytest.raises(FleetHostError, match="cannot fit"):
            host.reserve("dram", gpus=1,
                         dram_bytes=host.dram_capacity + 1, sfs=1)
        with pytest.raises(FleetHostError, match="cannot fit"):
            host.reserve("lut", gpus=1, dram_bytes=1 * GiB, sfs=1,
                         lut_entries=host.lut_free + 1)
        assert host.gpus_reserved == 0  # failed reserves commit nothing

    def test_can_fit_matches_reserve(self):
        host = make_host()
        assert host.can_fit(host.gpu_capacity, 1 * GiB, 1)
        assert not host.can_fit(host.gpu_capacity + 1, 1 * GiB, 1)


class TestContainerLifecycle:
    def test_launch_stripes_over_rnics(self):
        host = make_host(gpus=4, rnics=2)
        first = host.launch("stripe-0", 1 * GiB).container
        second = host.launch("stripe-1", 1 * GiB).container
        assert (first.vstellar_device.parent
                is not second.vstellar_device.parent)

    def test_stop_invalidates_shared_atc_entries(self):
        host = make_host(atc_capacity=64)
        container = host.launch("atc-owner", 1 * GiB).container
        region = container.alloc_buffer(1 * MiB)
        host.prepare_working_set(container, region)
        pages = [gpa for _, gpa, _ in
                 container.gva_to_gpa_chunks(region.start, region.length)]
        host.touch(container, pages)
        assert host.atc.snapshot()["size"] > 0
        host.stop(container)
        assert host.atc.snapshot()["size"] == 0


class TestSharedAtc:
    def working_set(self, host, name, pages=6):
        container = host.launch(name, 1 * GiB).container
        region = container.alloc_buffer(pages * host.atc.page_size)
        host.prepare_working_set(container, region)
        gpas = []
        for _, gpa, length in container.gva_to_gpa_chunks(
            region.start, region.length
        ):
            cursor = gpa - (gpa % host.atc.page_size)
            while cursor < gpa + length:
                gpas.append(cursor)
                cursor += host.atc.page_size
        return container, gpas[:pages]

    def test_second_touch_hits(self):
        host = make_host(atc_capacity=64)
        container, pages = self.working_set(host, "hot")
        assert host.touch(container, pages) == 0  # all cold
        assert host.touch(container, pages) == len(pages)  # all warm

    def test_colocated_tenants_evict_each_other(self):
        host = make_host(atc_capacity=8)
        a, pages_a = self.working_set(host, "tenant-a", pages=6)
        b, pages_b = self.working_set(host, "tenant-b", pages=6)
        host.touch(a, pages_a)
        host.touch(b, pages_b)  # evicts most of a's entries
        rewarm = host.touch(a, pages_a)
        assert rewarm < len(pages_a)
        snap = host.atc.snapshot()
        assert snap["size"] <= snap["capacity"] == 8
        assert snap["evictions"] > 0

    def test_snapshot_accounts_translation_time(self):
        host = make_host(atc_capacity=64)
        container, pages = self.working_set(host, "timed")
        host.touch(container, pages)
        assert host.atc.snapshot()["translation_seconds"] > 0


class TestSnapshot:
    def test_snapshot_pairs_satisfy_sanitizer_convention(self):
        host = make_host()
        host.reserve("job-a", gpus=1, dram_bytes=1 * GiB, sfs=1, lut_entries=1)
        snap = host.snapshot()
        for base in ("gpus", "dram", "sfs", "lut"):
            assert snap["%s_used" % base] <= snap["%s_capacity" % base]
        assert snap["jobs"] == 1

    def test_register_metrics_namespaces_by_host_name(self):
        from repro.obs.metrics import MetricsRegistry

        host = make_host(name="h1-3")
        registry = MetricsRegistry("t")
        host.register_metrics(registry)
        snapshot = registry.snapshot()
        assert "cluster.host.h1-3.gpus_capacity" in snapshot
