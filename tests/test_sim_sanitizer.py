"""SimSanitizer runtime invariants: clock, event leaks, conservation."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.sim import EventScheduler, SanitizerError, SimSanitizer


class TestAttachDetach:
    def test_attach_wraps_and_detach_restores(self):
        sched = EventScheduler()
        original_step = sched.step
        sanitizer = SimSanitizer(sched)
        assert sanitizer.attach() is sanitizer
        assert sched.step is not original_step
        sanitizer.detach()
        assert sched.step.__func__ is EventScheduler.step

    def test_attach_is_idempotent(self):
        sched = EventScheduler()
        sanitizer = SimSanitizer(sched).attach()
        wrapped = sched.step
        sanitizer.attach()
        assert sched.step is wrapped
        sanitizer.detach()

    def test_wrapped_scheduler_still_runs(self):
        sched = EventScheduler()
        seen = []
        with SimSanitizer(sched):
            for delay in (3.0, 1.0, 2.0):
                sched.schedule(delay, lambda d=delay: seen.append(d))
            sched.run()
        assert seen == [1.0, 2.0, 3.0]
        assert sched.now == 3.0


class TestClock:
    def test_monotonic_run_passes(self):
        sched = EventScheduler()
        sanitizer = SimSanitizer(sched).attach()
        sched.schedule(1.0, lambda: None)
        sched.run()
        sanitizer.check_clock()

    def test_backwards_clock_detected(self):
        sched = EventScheduler()
        sanitizer = SimSanitizer(sched).attach()
        sched.schedule(1.0, lambda: None)
        sched.run()
        # Simulate a component rewinding the clock behind the
        # scheduler's back (the bug class the sanitizer exists for).
        sched.now = 0.25
        with pytest.raises(SanitizerError, match="regressed"):
            sanitizer.check_clock()

    def test_backwards_step_detected(self):
        sched = EventScheduler()
        sanitizer = SimSanitizer(sched).attach()

        def rewind():
            sched.now = -5.0  # a callback corrupting the clock

        sched.schedule(1.0, rewind)
        with pytest.raises(SanitizerError, match="backwards"):
            sched.run()


class TestEventLeak:
    def test_drained_queue_passes(self):
        sched = EventScheduler()
        sanitizer = SimSanitizer(sched)
        sched.schedule(1.0, lambda: None)
        sched.run()
        sanitizer.assert_drained()

    def test_injected_leak_detected(self):
        sched = EventScheduler()
        sanitizer = SimSanitizer(sched)

        def leaky_workload():
            sched.schedule(10.0, lambda: None)  # never consumed

        sched.schedule(1.0, leaky_workload)
        sched.run(until=5.0)
        with pytest.raises(SanitizerError, match="event leak: 1 live"):
            sanitizer.assert_drained()

    def test_cancelled_events_are_not_leaks(self):
        sched = EventScheduler()
        sanitizer = SimSanitizer(sched)
        event = sched.schedule(10.0, lambda: None)
        event.cancel()
        sanitizer.assert_drained()

    def test_leak_error_names_the_callback(self):
        sched = EventScheduler()
        sanitizer = SimSanitizer(sched)

        def culprit():
            pass

        sched.schedule(2.0, culprit)
        with pytest.raises(SanitizerError, match="culprit"):
            sanitizer.assert_drained()


class TestConservation:
    @staticmethod
    def good_snapshot():
        return {
            "net.sim.packets_sent": 10,
            "net.sim.packets_delivered": 8,
            "net.sim.packets_dropped": 2,
            "mem.iommu.iotlb_size": 2,
            "mem.iommu.iotlb_capacity": 4,
            "pcie.switch.s0.lut_used": 1,
            "pcie.switch.s0.lut_capacity": 32,
        }

    def test_balanced_snapshot_passes(self):
        sanitizer = SimSanitizer(EventScheduler())
        sanitizer.check_conservation(snapshot=self.good_snapshot())
        assert sanitizer.checks_run == 1

    def test_overdelivery_detected(self):
        snapshot = self.good_snapshot()
        snapshot["net.sim.packets_delivered"] = 11
        sanitizer = SimSanitizer(EventScheduler())
        with pytest.raises(SanitizerError, match="exceeds sent"):
            sanitizer.check_conservation(snapshot=snapshot)

    def test_unaccounted_packets_at_drain_detected(self):
        snapshot = self.good_snapshot()
        snapshot["net.sim.packets_dropped"] = 0  # 2 packets vanish
        sanitizer = SimSanitizer(EventScheduler())
        with pytest.raises(SanitizerError, match="unaccounted"):
            sanitizer.check_conservation(snapshot=snapshot, drained=True)

    def test_in_flight_packets_allowed_mid_run(self):
        snapshot = self.good_snapshot()
        snapshot["net.sim.packets_dropped"] = 0  # still in flight
        sanitizer = SimSanitizer(EventScheduler())
        sanitizer.check_conservation(snapshot=snapshot, drained=False)

    def test_occupancy_over_capacity_detected(self):
        snapshot = self.good_snapshot()
        snapshot["mem.iommu.iotlb_size"] = 5
        sanitizer = SimSanitizer(EventScheduler())
        with pytest.raises(SanitizerError, match="exceeds configured capacity"):
            sanitizer.check_conservation(snapshot=snapshot)

    def test_lut_over_capacity_detected(self):
        snapshot = self.good_snapshot()
        snapshot["pcie.switch.s0.lut_used"] = 33
        sanitizer = SimSanitizer(EventScheduler())
        with pytest.raises(SanitizerError, match="lut_used"):
            sanitizer.check_conservation(snapshot=snapshot)

    def test_negative_occupancy_detected(self):
        snapshot = self.good_snapshot()
        snapshot["mem.iommu.iotlb_size"] = -1
        sanitizer = SimSanitizer(EventScheduler())
        with pytest.raises(SanitizerError, match="negative"):
            sanitizer.check_conservation(snapshot=snapshot)

    def test_registry_source(self):
        registry = MetricsRegistry("t")
        registry.counter("net.sim.packets_sent").inc(3)
        registry.counter("net.sim.packets_delivered").inc(3)
        registry.counter("net.sim.packets_dropped")
        sanitizer = SimSanitizer(EventScheduler(), registry=registry)
        sanitizer.check_conservation()

    def test_no_registry_and_no_snapshot_raises(self):
        sanitizer = SimSanitizer(EventScheduler())
        with pytest.raises(SanitizerError, match="no registry"):
            sanitizer.check_conservation()


class TestFullStack:
    """The sanitizer against the real telemetry probe."""

    def test_probe_run_satisfies_all_invariants(self):
        from repro.obs.probe import run_probe
        from repro.obs.trace import Tracer

        result = run_probe(registry=MetricsRegistry("sanitizer-probe"),
                           tracer=Tracer("sanitizer-probe"))
        sanitizer = SimSanitizer(result.sim.scheduler,
                                 registry=result.registry)
        sanitizer.check_clock()
        sanitizer.check_conservation()
        sanitizer.check()

    def test_context_manager_checks_on_exit(self):
        registry = MetricsRegistry("t")
        registry.counter("x.packets_sent").inc(2)
        registry.counter("x.packets_delivered").inc(1)
        registry.counter("x.packets_dropped")
        sched = EventScheduler()
        with pytest.raises(SanitizerError, match="unaccounted"):
            with SimSanitizer(sched, registry=registry):
                sched.run(until=1.0)  # drains; 1 packet unaccounted


class TestJobConservation:
    @staticmethod
    def fleet_snapshot():
        return {
            "cluster.fleet.jobs_submitted": 3,
            "cluster.fleet.jobs_queued": 1,
            "cluster.fleet.jobs_starting": 0,
            "cluster.fleet.jobs_running": 1,
            "cluster.fleet.jobs_completed": 1,
            "cluster.fleet.jobs_failed": 0,
        }

    def test_balanced_job_counts_pass(self):
        sanitizer = SimSanitizer(EventScheduler())
        sanitizer.check_conservation(snapshot=self.fleet_snapshot())

    def test_lost_job_detected(self):
        snapshot = self.fleet_snapshot()
        snapshot["cluster.fleet.jobs_running"] = 0  # a job vanished
        sanitizer = SimSanitizer(EventScheduler())
        with pytest.raises(SanitizerError, match="3 were submitted"):
            sanitizer.check_conservation(snapshot=snapshot)

    def test_double_counted_job_detected(self):
        snapshot = self.fleet_snapshot()
        snapshot["cluster.fleet.jobs_completed"] = 2  # counted twice
        sanitizer = SimSanitizer(EventScheduler())
        with pytest.raises(SanitizerError, match="job states sum to 4"):
            sanitizer.check_conservation(snapshot=snapshot)

    def test_partial_families_are_skipped(self):
        snapshot = {"cluster.fleet.jobs_submitted": 3}  # no state leaves
        sanitizer = SimSanitizer(EventScheduler())
        sanitizer.check_conservation(snapshot=snapshot)
