"""Edge-case coverage for corners the main suites touch only implicitly."""

import pytest

from repro.memory import MemoryKind
from repro.pcie import PcieError, PcieFabric
from repro.rnic import BaseRnic
from repro.sim.units import GiB


class TestGpuDevice:
    def make_gpu(self):
        fabric = PcieFabric(host_memory_bytes=1 * GiB)
        switch = fabric.add_switch()
        return fabric.add_gpu(switch, "gpu0", hbm_bytes=1 * GiB)

    def test_hbm_address_bounds(self):
        gpu = self.make_gpu()
        assert gpu.hbm_address(0) == gpu.hbm_bar.start
        assert gpu.hbm_address(GiB - 1) == gpu.hbm_bar.start + GiB - 1
        with pytest.raises(PcieError):
            gpu.hbm_address(GiB)
        with pytest.raises(PcieError):
            gpu.hbm_address(-1)

    def test_hbm_region_carries_kind(self):
        gpu = self.make_gpu()
        region = gpu.hbm_region(0x1000, 0x2000)
        assert region.kind is MemoryKind.GPU_HBM
        assert region.start == gpu.hbm_bar.start + 0x1000

    def test_register_bar_is_mmio(self):
        gpu = self.make_gpu()
        assert gpu.register_bar.kind is MemoryKind.DEVICE_MMIO
        assert not gpu.register_bar.overlaps(gpu.hbm_bar)

    def test_tlp_log_opt_in(self):
        gpu = self.make_gpu()
        from repro.pcie import AddressType, Tlp

        gpu.on_tlp(Tlp.mem_write(gpu.hbm_address(0), 64, None,
                                 at=AddressType.TRANSLATED))
        assert gpu.received_tlps == []  # logging is off by default
        gpu.keep_tlp_log = True
        gpu.on_tlp(Tlp.mem_write(gpu.hbm_address(0), 64, None,
                                 at=AddressType.TRANSLATED))
        assert len(gpu.received_tlps) == 1
        assert gpu.bytes_received == 128


class TestMttCounters:
    def test_lookup_counter_increments(self):
        nic = BaseRnic()
        pd = nic.alloc_pd("t")
        mr = nic.reg_mr(pd, 0x0, [(0x0, 0xA00000, 4096)],
                        MemoryKind.HOST_DRAM, True)
        before = nic.mtt.lookups
        nic.dma_access(mr, 0x0, 64)
        nic.dma_access(mr, 0x100, 64)
        assert nic.mtt.lookups == before + 2


class TestSprayRetransmitFallback:
    def test_sticky_selector_falls_back_to_neighbour_path(self):
        """A selector that keeps returning the lost path (flowlet with no
        clock) must still escape via the bounded-retry fallback."""
        from repro.core.spray import SprayConnection
        from repro.sim.rng import RngStream

        conn = SprayConnection("c", algorithm="flowlet", path_count=8,
                               rng=RngStream(5, "c"))
        pinned = conn.selector.next_path()  # clockless: sticks forever
        retry = conn.retransmit_path(pinned)
        assert retry != pinned
        assert 0 <= retry < 8


class TestVirtioQueuePairs:
    def test_multi_queue_device(self):
        from repro.virt import VirtioDevice, VirtioDeviceType

        dev = VirtioDevice(VirtioDeviceType.NET, queue_pairs=4, queue_size=64)
        assert len(dev.queues) == 8  # tx+rx per pair
        assert all(q.size == 64 for q in dev.queues)
