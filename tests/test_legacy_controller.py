"""Unit tests for the VxLAN Controller's rule offload dynamics.

"Since this mapping's requirements exceed the vSwitch's capacity, the
Controller tracks the active network connections of each container and
dynamically offloads relevant rules to the vSwitch." — Figure 2's control
loop, including the eviction/re-offload interference it creates.
"""

import pytest

from repro.legacy import VxlanController
from repro.legacy.framework import CONTROLLER_ROUND_TRIP_SECONDS
from repro.rnic import SteeringError, VSwitch


def make_controller(capacity=4, remotes=64):
    controller = VxlanController()
    for i in range(remotes):
        controller.register_remote("10.1.0.%d" % i, "aa:bb:cc:00:00:%02x" % i)
    return controller, VSwitch(capacity=capacity)


def offload(controller, vswitch, index):
    return controller.offload_connection(
        vswitch, vni=index, src_ip="10.0.0.1", dst_ip="10.1.0.%d" % index,
        src_mac="02:00:00:00:00:01",
    )


class TestOffloadEviction:
    def test_full_table_evicts_lru(self):
        controller, vswitch = make_controller(capacity=2)
        _, first = offload(controller, vswitch, 0)
        offload(controller, vswitch, 1)
        offload(controller, vswitch, 2)  # evicts connection 0
        assert controller.evictions == 1
        assert first not in vswitch.rules
        assert len(vswitch) == 2

    def test_touch_refreshes_lru_position(self):
        controller, vswitch = make_controller(capacity=2)
        _, first = offload(controller, vswitch, 0)
        _, second = offload(controller, vswitch, 1)
        controller.touch(first)          # now `second` is the LRU
        offload(controller, vswitch, 2)
        assert first in vswitch.rules
        assert second not in vswitch.rules

    def test_touch_unknown_rule_raises(self):
        controller, vswitch = make_controller()
        _, rule = offload(controller, vswitch, 0)
        controller.touch(rule)
        controller.installed.remove(rule)
        with pytest.raises(SteeringError):
            controller.touch(rule)


class TestMissPenalty:
    def test_hit_is_nanoseconds_miss_is_controller_round_trip(self):
        controller, vswitch = make_controller(capacity=1)
        offload(controller, vswitch, 0)
        hit_latency, _ = controller.lookup_or_reoffload(
            vswitch, {"src_ip": "10.0.0.1", "dst_ip": "10.1.0.0"},
            vni=0, src_ip="10.0.0.1", dst_ip="10.1.0.0",
            src_mac="02:00:00:00:00:01",
        )
        offload(controller, vswitch, 1)  # evicts connection 0
        miss_latency, rule = controller.lookup_or_reoffload(
            vswitch, {"src_ip": "10.0.0.1", "dst_ip": "10.1.0.0"},
            vni=0, src_ip="10.0.0.1", dst_ip="10.1.0.0",
            src_mac="02:00:00:00:00:01",
        )
        assert miss_latency == CONTROLLER_ROUND_TRIP_SECONDS
        assert miss_latency > 1000 * hit_latency
        assert controller.reoffloads == 1
        assert rule in vswitch.rules

    def test_churn_interferes_with_other_tenants(self):
        """One tenant's connection churn evicts another tenant's rule —
        the cross-container interference of problem 5."""
        controller, vswitch = make_controller(capacity=3)
        _, victim = offload(controller, vswitch, 0)   # tenant A
        for index in range(1, 4):                      # tenant B churns
            offload(controller, vswitch, index)
        assert victim not in vswitch.rules
        assert controller.evictions >= 1
