"""Unit and property tests for the multi-path spray algorithms."""

import collections

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ALGORITHMS, SprayConnection, make_selector
from repro.sim.rng import RngStream


def spread(counts, path_count):
    """Max/min load ratio over all paths (inf if any path unused)."""
    loads = [counts.get(p, 0) for p in range(path_count)]
    if min(loads) == 0:
        return float("inf")
    return max(loads) / min(loads)


class TestSelectorsBasics:
    @pytest.mark.parametrize("name", ALGORITHMS)
    def test_paths_in_range(self, name):
        selector = make_selector(name, 16, rng=RngStream(1, name))
        for _ in range(200):
            assert 0 <= selector.next_path() < 16

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            make_selector("warp-drive", 4)

    def test_zero_paths_rejected(self):
        with pytest.raises(ValueError):
            make_selector("obs", 0)

    def test_single_path_pins_one_path(self):
        selector = make_selector("single", 128, rng=RngStream(2, "s"))
        paths = {selector.next_path() for _ in range(500)}
        assert len(paths) == 1

    def test_rr_cycles_uniformly(self):
        selector = make_selector("rr", 8, rng=RngStream(3, "rr"))
        counts = collections.Counter(selector.next_path() for _ in range(8 * 100))
        assert set(counts.values()) == {100}

    def test_obs_is_near_uniform(self):
        selector = make_selector("obs", 128, rng=RngStream(4, "obs"))
        counts = collections.Counter(selector.next_path() for _ in range(128 * 200))
        assert spread(counts, 128) < 2.0

    def test_obs_deterministic_under_seed(self):
        a = make_selector("obs", 32, rng=RngStream(7, "x"))
        b = make_selector("obs", 32, rng=RngStream(7, "x"))
        assert [a.next_path() for _ in range(50)] == [b.next_path() for _ in range(50)]


class TestFeedbackDrivenSelectors:
    def test_best_rtt_herds_to_fast_path(self):
        """BestRTT's pathology: it concentrates on whatever looks fastest."""
        selector = make_selector("best_rtt", 8, rng=RngStream(5, "brtt"))
        # Give path 3 the lowest RTT, everyone else higher.
        for path in range(8):
            selector.on_feedback(path, rtt=10e-6 if path == 3 else 50e-6)
        counts = collections.Counter(selector.next_path() for _ in range(1000))
        assert counts[3] > 0.9 * 1000

    def test_dwrr_downweights_congested_path(self):
        selector = make_selector("dwrr", 4, rng=RngStream(6, "dwrr"))
        for _ in range(10):
            selector.on_feedback(0, ecn=True)
        counts = collections.Counter(selector.next_path() for _ in range(4000))
        assert counts[0] < counts[1] * 0.5

    def test_dwrr_recovers_weight_on_clean_acks(self):
        selector = make_selector("dwrr", 4, rng=RngStream(6, "dwrr2"))
        for _ in range(10):
            selector.on_feedback(0, ecn=True)
        low = selector.weights[0]
        for _ in range(100):
            selector.on_feedback(0, rtt=1e-6)
        assert selector.weights[0] > low

    def test_mprdma_shifts_probability_away_from_marked_path(self):
        selector = make_selector("mprdma", 4, rng=RngStream(8, "mp"))
        for _ in range(20):
            selector.on_feedback(2, ecn=True)
        counts = collections.Counter(selector.next_path() for _ in range(4000))
        assert counts[2] < min(counts[p] for p in (0, 1, 3))

    def test_obs_ignores_feedback(self):
        selector = make_selector("obs", 8, rng=RngStream(9, "obs"))
        draws_before = [selector.next_path() for _ in range(20)]
        fresh = make_selector("obs", 8, rng=RngStream(9, "obs"))
        for path in range(8):
            fresh.on_feedback(path, ecn=True, loss=True, rtt=1.0)
        draws_after = [fresh.next_path() for _ in range(20)]
        assert draws_before == draws_after


class TestSprayConnection:
    def test_retransmit_avoids_lost_path(self):
        conn = SprayConnection("c0", algorithm="obs", path_count=4,
                               rng=RngStream(10, "c0"))
        for _ in range(100):
            assert conn.retransmit_path(2) != 2
        assert conn.retransmissions == 100

    def test_retransmit_single_path_has_no_choice(self):
        conn = SprayConnection("c0", algorithm="single", path_count=1,
                               rng=RngStream(11, "c0"))
        assert conn.retransmit_path(0) == 0

    def test_ack_feeds_cc_and_selector(self):
        conn = SprayConnection("c0", algorithm="dwrr", path_count=4,
                               rng=RngStream(12, "c0"))
        conn.cc.on_send(1024)
        conn.on_ack(0, 1024, ecn=True)
        assert conn.cc.ecn_marks == 1
        assert conn.selector.weights[0] < 1.0

    def test_default_parameters_match_production(self):
        from repro import calibration

        conn = SprayConnection("c0", rng=RngStream(13, "c0"))
        assert conn.path_count == calibration.SPRAY_PATH_COUNT
        assert conn.algorithm == "obs"
        assert conn.rto == calibration.SPRAY_RTO_SECONDS


@settings(max_examples=30, deadline=None)
@given(
    name=st.sampled_from(ALGORITHMS),
    path_count=st.sampled_from([1, 2, 4, 16, 128]),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_every_selector_stays_in_range_property(name, path_count, seed):
    selector = make_selector(name, path_count, rng=RngStream(seed, name))
    for i in range(100):
        path = selector.next_path()
        assert 0 <= path < path_count
        selector.on_feedback(path, rtt=20e-6, ecn=(i % 7 == 0))
    assert selector.packets_sent == 100


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_sprayers_cover_all_paths_eventually(seed):
    """RR and OBS must use every one of 128 paths — the paper's whole point
    about covering the 60-aggregation-switch fan-out."""
    for name in ("rr", "obs"):
        selector = make_selector(name, 128, rng=RngStream(seed, name))
        used = {selector.next_path() for _ in range(128 * 30)}
        assert used == set(range(128))
