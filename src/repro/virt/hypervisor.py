"""The RunD hypervisor: guest memory backing, EPT/IOMMU plumbing.

The hypervisor is where the two memory-management regimes of the paper
meet:

* **FULL_PIN** — the VFIO-era behaviour: all guest memory is pinned at
  boot so device DMA can never hit a moved page (problem 2, the 390 s
  start-up at 1.6 TB).
* **PVDMA** — Stellar's regime: nothing is pinned up front; the PVDMA
  engine (:mod:`repro.core.pvdma`) pins 2 MiB blocks on first DMA.
"""

import enum

from repro import calibration
from repro.memory.address import AddressSpace, MemoryKind, PhysicalMemoryMap
from repro.memory.iommu import Iommu
from repro.memory.mmu import MMU
from repro.memory.pinning import full_pin_seconds


class MemoryMode(enum.Enum):
    FULL_PIN = "full_pin"
    PVDMA = "pvdma"


class HypervisorError(Exception):
    """Invalid guest lifecycle operation."""


class Hypervisor:
    """Hosts RunD containers on one server."""

    def __init__(self, fabric=None, iommu=None):
        self.fabric = fabric
        self.mmu = MMU()
        if fabric is not None:
            self.iommu = fabric.iommu
        else:
            self.iommu = iommu if iommu is not None else Iommu()
            self._hpa_map = PhysicalMemoryMap(AddressSpace.HPA, 1 << 50)
        self.containers = {}
        #: Optional churn hook ``(kind, container_name)`` — the fleet's
        #: flight recorder subscribes here; events flow out via the hook,
        #: never via an upward import.
        self.on_churn = None

    def allocate_guest_ram(self, memory_bytes):
        """Back a guest's RAM with one contiguous HPA region."""
        if self.fabric is not None:
            return self.fabric.allocate_host_buffer(memory_bytes, alignment=1 << 21)
        return self._hpa_map.allocate(
            memory_bytes, MemoryKind.HOST_DRAM, alignment=1 << 21
        )

    def register_container(self, container):
        if container.name in self.containers:
            raise HypervisorError("container %r already exists" % container.name)
        self.containers[container.name] = container
        if self.on_churn is not None:
            self.on_churn("container-register", container.name)

    def forget_container(self, container):
        if self.containers.pop(container.name, None) is not None:
            if self.on_churn is not None:
                self.on_churn("container-forget", container.name)

    def bind_device_domain(self, container, function):
        """Attach a device's DMA to the container's IOMMU domain."""
        if self.fabric is not None and function.bdf is not None:
            self.fabric.root_complex.bind_domain(function.bdf, container.domain_name)

    def pin_all_guest_memory(self, container):
        """The VFIO full-pin: map+pin the whole guest at once.

        The cost is the paper's pin-rate times the container size; the
        mapping itself is one IOMMU interval (identity GPA->HPA offset).
        """
        if container.fully_pinned:
            return 0.0
        self.iommu.map(
            container.domain_name,
            0,
            container.hpa_base,
            container.memory_bytes,
            kind=MemoryKind.HOST_DRAM,
            pin=False,  # cost accounted analytically below
        )
        container.fully_pinned = True
        cost = full_pin_seconds(container.memory_bytes)
        self.iommu.total_config_seconds += cost
        return cost

    def swap_out(self, container, gpa, length=4096):
        """Host memory pressure relocates a guest page to new backing.

        This is the root cause of problem 2: if a device holds a DMA
        mapping to the old frame, the EPT moves but the IOMMU does not,
        and the device reads or writes freed memory ("the RNIC driver
        inside the RunD container behaves unpredictably and crashes").
        Pinned frames refuse to move — that is what pinning is *for*.

        Returns ``True`` if the page moved, ``False`` if pinning held it.
        """
        old_hpa = self.mmu.translate(container.name, gpa)
        if container.fully_pinned:
            return False
        if self.iommu.has_domain(container.domain_name):
            pins = self.iommu.domain(container.domain_name).pins
            if pins.is_pinned(old_hpa):
                return False
        new_backing = self.allocate_guest_ram(length)
        self.mmu.ept(container.name).map_range(
            gpa, new_backing.start, length,
            kind=MemoryKind.HOST_DRAM, overwrite=True,
        )
        return True

    def device_dma_is_consistent(self, container, gpa):
        """Does a device DMA to ``gpa`` still land where the guest thinks?

        Compares the IOMMU's view (what the device hits) with the EPT's
        (what the guest believes).  A mismatch is the problem-2 crash.
        """
        device_hpa = self.iommu.rc_translate(container.domain_name, gpa).hpa
        guest_hpa = self.mmu.translate(container.name, gpa)
        return device_hpa == guest_hpa

    def hypervisor_overhead_seconds(self, memory_bytes):
        """Size-dependent boot overhead independent of pinning (the 11 s
        creep between 160 GB and 1.6 TB in Figure 6)."""
        return memory_bytes * calibration.HYPERVISOR_OVERHEAD_SECONDS_PER_BYTE

    def __repr__(self):
        return "Hypervisor(containers=%d, fabric=%s)" % (
            len(self.containers),
            "yes" if self.fabric is not None else "no",
        )
