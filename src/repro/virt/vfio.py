"""VFIO device passthrough with the full-pin requirement.

VFIO maps a PCIe function's BARs into the guest and programs the IOMMU so
the device can DMA into guest memory.  In a RunD container the GPA->HPA
mapping must never change underneath the device, so the hypervisor pins
*all* guest memory up front (Section 3.1 problem 2) — the minute-level
start-up cost PVDMA later removes.
"""



class VfioError(Exception):
    """Invalid passthrough operation."""


class VfioAttachment:
    """Record of one device passed through to one container."""

    __slots__ = ("function", "container_name", "guest_bar_gpas", "pin_seconds")

    def __init__(self, function, container_name, guest_bar_gpas, pin_seconds):
        self.function = function
        self.container_name = container_name
        self.guest_bar_gpas = guest_bar_gpas
        self.pin_seconds = pin_seconds

    def __repr__(self):
        return "VfioAttachment(%s -> %s, pin=%.1fs)" % (
            self.function.name,
            self.container_name,
            self.pin_seconds,
        )


class VfioDriver:
    """Passes PCIe functions through to RunD containers."""

    def __init__(self, hypervisor):
        self.hypervisor = hypervisor
        self.attachments = []

    def attach(self, container, function, pin_all_memory=True):
        """Assign ``function`` to ``container``.

        Maps each BAR into the guest GPA space via the MMU, binds the
        function's BDF to the container's IOMMU domain, and — the expensive
        part — pins the container's entire memory so GPA->HPA can never
        shift under the device's feet.  Returns the attachment record; the
        pin cost is added to the container's boot-time ledger.
        """
        if getattr(function, "assigned_to", None):
            raise VfioError(
                "%s is already assigned to %s" % (function.name, function.assigned_to)
            )
        guest_bar_gpas = {}
        for bar in function.bars:
            gpa = container.allocate_mmio_window(bar.length)
            self.hypervisor.mmu.register_direct_map(container.name, gpa, bar)
            guest_bar_gpas[bar.start] = gpa
        self.hypervisor.bind_device_domain(container, function)
        pin_seconds = 0.0
        if pin_all_memory:
            pin_seconds = self.hypervisor.pin_all_guest_memory(container)
        if hasattr(function, "assigned_to"):
            function.assigned_to = container.name
        attachment = VfioAttachment(
            function, container.name, guest_bar_gpas, pin_seconds
        )
        self.attachments.append(attachment)
        container.vfio_attachments.append(attachment)
        return attachment

    def detach(self, attachment):
        self.attachments.remove(attachment)
        attachment.function.assigned_to = None
        for gpa in attachment.guest_bar_gpas.values():
            self.hypervisor.mmu.unregister_direct_map(
                attachment.container_name, gpa
            )
