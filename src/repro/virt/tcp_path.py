"""The non-RDMA (TCP) datapath and its virtualization/IOMMU costs.

Two paper facts live here:

* Section 4: Stellar carries TCP over virtio-net + scalable functions +
  VxLAN, "a performance penalty of approximately 5% compared to the
  vfio/VF/VxLAN approach" — acceptable because TCP in AI jobs is control
  traffic.
* Section 3.1 problem 4: to guarantee GDR the affected server model runs
  the IOMMU in ``nopt`` mode, which forces the host kernel's TCP stack to
  DMA through I/O virtual addresses — a measurable per-page translation
  tax on host TCP throughput.
"""

import enum

from repro import calibration
from repro.memory.iommu import Iommu, IommuMode
from repro.sim.units import Gbps


class TcpDatapath(enum.Enum):
    VFIO_VF = "vfio/VF/VxLAN"          #: the legacy passthrough path
    VIRTIO_SF = "virtio/SF/VxLAN"      #: Stellar's choice (dynamic, light)


#: Baseline host TCP goodput on the 2x200G NIC with large flows.
TCP_BASELINE_RATE = Gbps(180.0)

#: Kernel DMA chunk size for TCP (pages per translation).
_TCP_DMA_PAGE_BYTES = 4096

#: Concurrent kernel DMA mappings in flight; IOVA translation walks are
#: amortized over this window, like the RNIC's ATS pipeline.
_TCP_DMA_PIPELINE_DEPTH = 16


def tcp_throughput(datapath, iommu=None, bytes_in_flight=64 * 1024 * 1024):
    """Model host/guest TCP goodput for a datapath + IOMMU mode.

    The virtio/SF path pays the paper's ~5% softirq/vring penalty.  An
    ``nopt`` IOMMU additionally charges the kernel one IOVA translation
    per DMA'd page, with the real IOTLB deciding hits and misses.
    """
    rate = TCP_BASELINE_RATE
    if datapath is TcpDatapath.VIRTIO_SF:
        rate *= 1.0 - calibration.VIRTIO_TCP_PENALTY
    if iommu is not None and iommu.mode is IommuMode.NOPT:
        domain = "host-kernel-tcp"
        if not iommu.has_domain(domain):
            iommu.create_domain(domain)
            iommu.map(domain, 0x0, 0x4000_0000, bytes_in_flight, pin=False)
        # Charge the per-page IOVA translation against the transfer time.
        pages = bytes_in_flight // _TCP_DMA_PAGE_BYTES
        translation = sum(
            iommu.rc_translate(domain, page * _TCP_DMA_PAGE_BYTES).latency
            for page in range(pages)
        ) / _TCP_DMA_PIPELINE_DEPTH
        wire_time = bytes_in_flight * 8.0 / rate
        rate = bytes_in_flight * 8.0 / (wire_time + translation)
    return rate


def compare_tcp_datapaths(iommu_mode=IommuMode.NOPT):
    """The Section 4 comparison table: VF vs SF, with the IOMMU tax.

    Returns {datapath name: goodput bits/s}.
    """
    results = {}
    for datapath in TcpDatapath:
        iommu = Iommu(mode=iommu_mode)
        results[datapath.value] = tcp_throughput(datapath, iommu=iommu)
    return results
