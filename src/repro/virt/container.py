"""RunD secure containers: lifecycle, guest address spaces, boot timing.

A container owns a guest page table (GVA->GPA), a GPA layout (RAM at 0,
MMIO windows above RAM), an IOMMU domain, and a boot-time ledger that the
Figure 6 experiment reads.
"""

import enum

from repro import calibration
from repro.memory.address import (
    AddressSpace,
    MemoryKind,
    MemoryRegion,
    align_up,
)
from repro.memory.range_table import RangeMap
from repro.virt.hypervisor import HypervisorError, MemoryMode


class ContainerState(enum.Enum):
    CREATED = "created"
    RUNNING = "running"
    STOPPED = "stopped"


class RunDContainer:
    """One secure container (MicroVM) on a host."""

    def __init__(self, name, memory_bytes, hypervisor,
                 memory_mode=MemoryMode.PVDMA):
        self.name = name
        self.memory_bytes = int(memory_bytes)
        self.hypervisor = hypervisor
        self.memory_mode = memory_mode
        self.state = ContainerState.CREATED
        self.domain_name = "dom-%s" % name
        self.guest_pt = RangeMap(AddressSpace.GVA, AddressSpace.GPA)
        self.hpa_base = None
        self.fully_pinned = False
        self.boot_seconds = None
        self.vfio_attachments = []
        self.virtio_devices = []
        self._gva_cursor = 0x0000_1000_0000  # apps allocate high in GVA
        self._gpa_cursor = 0
        # Device MMIO windows live above guest RAM, 2 MiB-aligned headroom.
        self._mmio_cursor = align_up(self.memory_bytes, 1 << 21) + (1 << 30)
        hypervisor.register_container(self)

    # -- lifecycle --------------------------------------------------------

    def boot(self):
        """Boot the MicroVM; returns (and records) the start-up seconds.

        FULL_PIN mode pays the entire pin cost here (the pre-Stellar
        behaviour); PVDMA mode defers pinning to first DMA.
        """
        if self.state is not ContainerState.CREATED:
            raise HypervisorError("container %r already booted" % self.name)
        hv = self.hypervisor
        ram = hv.allocate_guest_ram(self.memory_bytes)
        self.hpa_base = ram.start
        hv.mmu.create_ept(self.name)
        hv.mmu.register_guest_memory(self.name, 0, ram)
        hv.iommu.create_domain(
            self.domain_name, pin_block_size=calibration.PVDMA_BLOCK_BYTES
        )
        cost = calibration.CONTAINER_BASE_BOOT_SECONDS
        cost += hv.hypervisor_overhead_seconds(self.memory_bytes)
        if self.memory_mode is MemoryMode.FULL_PIN:
            cost += hv.pin_all_guest_memory(self)
        self.state = ContainerState.RUNNING
        self.boot_seconds = cost
        return cost

    def shutdown(self):
        if self.state is not ContainerState.RUNNING:
            raise HypervisorError("container %r is not running" % self.name)
        hv = self.hypervisor
        hv.mmu.destroy_ept(self.name)
        if hv.iommu.has_domain(self.domain_name):
            hv.iommu.destroy_domain(self.domain_name)
        hv.forget_container(self)
        self.state = ContainerState.STOPPED

    def _require_running(self):
        if self.state is not ContainerState.RUNNING:
            raise HypervisorError("container %r is not running" % self.name)

    # -- guest address-space management -------------------------------------

    def alloc_buffer(self, length, alignment=4096):
        """Allocate guest memory: returns a GVA region backed by fresh GPA."""
        self._require_running()
        gpa = align_up(self._gpa_cursor, alignment)
        if gpa + length > self.memory_bytes:
            raise HypervisorError(
                "container %r out of guest RAM (%d bytes requested)"
                % (self.name, length)
            )
        self._gpa_cursor = gpa + length
        gva = align_up(self._gva_cursor, alignment)
        self._gva_cursor = gva + length
        self.guest_pt.map_range(gva, gpa, length, kind=MemoryKind.HOST_DRAM)
        return MemoryRegion(gva, length, AddressSpace.GVA, MemoryKind.HOST_DRAM)

    def allocate_mmio_window(self, length):
        """Reserve a GPA window above RAM for a passed-through BAR."""
        self._require_running()
        gpa = align_up(self._mmio_cursor, 4096)
        self._mmio_cursor = gpa + length
        return gpa

    def alloc_gpa_at(self, gpa, length):
        """Place a guest allocation at a *specific* GPA (used by the
        Figure 5 hazard scenario, where adjacency matters)."""
        self._require_running()
        gva = align_up(self._gva_cursor, 4096)
        self._gva_cursor = gva + length
        self.guest_pt.map_range(gva, gpa, length, kind=MemoryKind.HOST_DRAM)
        return MemoryRegion(gva, length, AddressSpace.GVA, MemoryKind.HOST_DRAM)

    def gva_to_gpa_chunks(self, gva, length):
        """Translate a guest-virtual range to (gva, gpa, len) chunks."""
        return self.guest_pt.translate_region(gva, length)

    def gpa_to_hpa(self, gpa):
        """GPA -> HPA through the hypervisor's EPT for this guest."""
        return self.hypervisor.mmu.translate(self.name, gpa)

    def gva_to_hpa_chunks(self, gva, length):
        """Full GVA -> GPA -> HPA translation to contiguous HPA chunks."""
        chunks = []
        for chunk_gva, gpa, chunk_len in self.gva_to_gpa_chunks(gva, length):
            hpa = self.gpa_to_hpa(gpa)
            if chunks and chunks[-1][1] + chunks[-1][2] == hpa:
                prev_gva, prev_hpa, prev_len = chunks[-1]
                chunks[-1] = (prev_gva, prev_hpa, prev_len + chunk_len)
            else:
                chunks.append((chunk_gva, hpa, chunk_len))
        return chunks

    def add_virtio_device(self, device):
        self.virtio_devices.append(device)
        return device

    def __repr__(self):
        return "RunDContainer(%r, %s, %s, mem=%d)" % (
            self.name,
            self.state.value,
            self.memory_mode.value,
            self.memory_bytes,
        )
