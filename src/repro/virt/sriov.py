"""SR-IOV physical/virtual functions with the vendor's reset semantics.

Problem 1 of the paper: the VF count "can only be toggled between zero and
a fixed maximum" — moving between two non-zero counts requires destroying
every VF first, and each enabled VF permanently claims 63 queues x 5000 MTU
= 2.4 GB of host memory, so overprovisioning is ruinous.
"""

from repro import calibration
from repro.pcie.device import PcieFunction


class SriovError(Exception):
    """Invalid SR-IOV reconfiguration."""


class VirtualFunction(PcieFunction):
    """An SR-IOV VF: its own BDF, BARs, and fixed memory footprint."""

    def __init__(self, name, bdf, parent_pf,
                 memory_bytes=calibration.VF_MEMORY_BYTES):
        super().__init__(name, bdf)
        self.parent_pf = parent_pf
        self.memory_bytes = memory_bytes
        self.gdr_enabled = False
        self.assigned_to = None  # container name once passed through

    def __repr__(self):
        return "VirtualFunction(%r, bdf=%s, gdr=%s)" % (
            self.name,
            self.bdf,
            self.gdr_enabled,
        )


class SriovManager:
    """Manages the VFs of one RNIC physical function."""

    def __init__(self, pf_name, fabric, switch, max_vfs=64,
                 vf_memory_bytes=calibration.VF_MEMORY_BYTES):
        self.pf_name = pf_name
        self.fabric = fabric
        self.switch = switch
        self.max_vfs = max_vfs
        self.vf_memory_bytes = vf_memory_bytes
        self.vfs = []
        self.resets = 0

    @property
    def num_vfs(self):
        return len(self.vfs)

    @property
    def memory_overhead_bytes(self):
        """Host memory claimed by the enabled VFs (2.4 GB each)."""
        return sum(vf.memory_bytes for vf in self.vfs)

    def set_num_vfs(self, count):
        """Reconfigure the VF count with the vendor's constraint:

        only 0 -> N and N -> 0 transitions are supported.  Growing or
        shrinking a non-zero count raises — callers must ``reset()`` first,
        tearing down every existing VF (and every container using one).
        """
        if count < 0 or count > self.max_vfs:
            raise SriovError(
                "VF count %d outside [0, %d] for %s" % (count, self.max_vfs, self.pf_name)
            )
        if self.num_vfs != 0 and count != 0:
            raise SriovError(
                "cannot change VF count %d -> %d without a full reset "
                "(vendor limitation, paper problem 1)" % (self.num_vfs, count)
            )
        if count == 0:
            self.reset()
            return []
        for index in range(count):
            vf = VirtualFunction(
                "%s-vf%d" % (self.pf_name, index),
                self.fabric.new_bdf(),
                self.pf_name,
                memory_bytes=self.vf_memory_bytes,
            )
            vf.add_bar(
                self.fabric.hpa_map.allocate(1 << 20, _mmio_kind(), alignment=4096)
            )
            self.switch.attach(vf)
            self.vfs.append(vf)
        return list(self.vfs)

    def reset(self):
        """Tear down all VFs (the only way to change a non-zero count)."""
        for vf in self.vfs:
            if vf.gdr_enabled:
                self.switch.unregister_lut(vf.bdf)
            self.switch.detach(vf)
            for bar in vf.bars:
                self.fabric.hpa_map.free(bar)
        self.vfs.clear()
        self.resets += 1

    def enable_gdr(self, vf):
        """Register the VF's BDF in the PCIe switch LUT.

        Raises :class:`repro.pcie.LutCapacityError` when the LUT is full —
        the problem-3 failure mode.
        """
        if vf not in self.vfs:
            raise SriovError("VF %r does not belong to %s" % (vf.name, self.pf_name))
        self.switch.register_lut(vf.bdf)
        vf.gdr_enabled = True
        return vf


def _mmio_kind():
    from repro.memory.address import MemoryKind

    return MemoryKind.DEVICE_MMIO
