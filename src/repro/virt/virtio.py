"""virtio devices: queues, a control-path transport, and shm regions.

Stellar exposes two virtio devices per secure container (Figure 3):
``virtio-net`` for TCP/UDP/ARP and ``virtio-vStellar`` for RDMA.  The
vStellar *control* path rides virtio (QP/MR commands are intercepted by
the host backend); the *data* path bypasses it.  The virtio shared-memory
region feature is the fix for the PVDMA/doorbell overlap hazard
(Section 5, Figure 5f): shm regions live in an I/O space distinct from
guest physical memory, so PVDMA's 2 MiB blocks can never cover them.
"""

import enum
import itertools


class VirtioError(Exception):
    """Invalid virtio usage."""


class VirtioDeviceType(enum.Enum):
    NET = "virtio-net"
    VSTELLAR = "virtio-vstellar"


#: One guest->host->guest control-path round trip (vmexit + backend work).
CONTROL_ROUND_TRIP_SECONDS = 12e-6


class VirtioQueue:
    """A bounded descriptor ring (FIFO semantics are all we need)."""

    def __init__(self, size=256):
        if size <= 0 or size & (size - 1):
            raise VirtioError("virtqueue size must be a power of two: %r" % size)
        self.size = size
        self._ring = []
        self.enqueued = 0
        self.dropped = 0

    def push(self, item):
        if len(self._ring) >= self.size:
            self.dropped += 1
            raise VirtioError("virtqueue full (size %d)" % self.size)
        self._ring.append(item)
        self.enqueued += 1

    def pop(self):
        if not self._ring:
            return None
        return self._ring.pop(0)

    def __len__(self):
        return len(self._ring)


class ShmRegion:
    """A virtio shared-memory region: device I/O space outside guest RAM.

    ``shmid`` distinguishes regions; addresses here are *not* GPAs — the
    guest reaches them through a dedicated aperture, which is precisely why
    mapping the vStellar doorbell here removes the Figure 5 hazard.
    """

    _ids = itertools.count()

    def __init__(self, name, length, backing_hpa_region=None):
        self.shmid = next(ShmRegion._ids)
        self.name = name
        self.length = length
        self.backing = backing_hpa_region

    def __repr__(self):
        return "ShmRegion(%r, shmid=%d, len=%d)" % (self.name, self.shmid, self.length)


class ControlRequest:
    """A control-path command (QP create/modify, MR register, ...)."""

    __slots__ = ("op", "payload")

    def __init__(self, op, payload=None):
        self.op = op
        self.payload = payload if payload is not None else {}

    def __repr__(self):
        return "ControlRequest(%r)" % self.op


class ControlResponse:
    __slots__ = ("ok", "result", "error", "latency")

    def __init__(self, ok, result=None, error=None,
                 latency=CONTROL_ROUND_TRIP_SECONDS):
        self.ok = ok
        self.result = result
        self.error = error
        self.latency = latency

    def __repr__(self):
        return "ControlResponse(ok=%s, error=%r)" % (self.ok, self.error)


class VirtioDevice:
    """A virtio device instance plugged into one container."""

    _ids = itertools.count()

    def __init__(self, device_type, backend=None, queue_pairs=1, queue_size=256):
        self.device_id = next(VirtioDevice._ids)
        self.device_type = device_type
        self.backend = backend  # host-side handler: callable(ControlRequest)
        self.queues = [VirtioQueue(queue_size) for _ in range(2 * queue_pairs)]
        self.shm_regions = {}
        self.control_round_trips = 0

    @property
    def name(self):
        return "%s.%d" % (self.device_type.value, self.device_id)

    def add_shm_region(self, region):
        if region.name in self.shm_regions:
            raise VirtioError("duplicate shm region %r" % region.name)
        self.shm_regions[region.name] = region
        return region

    def control(self, op, **payload):
        """Issue a control-path request to the host backend.

        This is the virtio interception point where the host applies
        security and virtualization policy (Section 4).
        """
        if self.backend is None:
            raise VirtioError("device %s has no host backend" % self.name)
        self.control_round_trips += 1
        request = ControlRequest(op, payload)
        try:
            result = self.backend(request)
        except VirtioError:
            raise
        except Exception as exc:  # backend policy rejections surface as errors
            return ControlResponse(False, error=str(exc))
        return ControlResponse(True, result=result)

    def __repr__(self):
        return "VirtioDevice(%s, queues=%d, shm=%d)" % (
            self.name,
            len(self.queues),
            len(self.shm_regions),
        )
