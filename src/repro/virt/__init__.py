"""Virtualization substrate: RunD containers, the hypervisor, SR-IOV VFs,
scalable functions, VFIO passthrough, and virtio devices with shm regions.
"""

from repro.virt.container import ContainerState, RunDContainer
from repro.virt.hypervisor import Hypervisor, HypervisorError, MemoryMode
from repro.virt.sf import (
    SF_CREATE_SECONDS,
    SF_MEMORY_BYTES,
    ScalableFunction,
    ScalableFunctionManager,
    SfError,
)
from repro.virt.sriov import SriovError, SriovManager, VirtualFunction
from repro.virt.tcp_path import (
    TCP_BASELINE_RATE,
    TcpDatapath,
    compare_tcp_datapaths,
    tcp_throughput,
)
from repro.virt.vfio import VfioAttachment, VfioDriver, VfioError
from repro.virt.virtio import (
    CONTROL_ROUND_TRIP_SECONDS,
    ControlRequest,
    ControlResponse,
    ShmRegion,
    VirtioDevice,
    VirtioDeviceType,
    VirtioError,
    VirtioQueue,
)

__all__ = [
    "ContainerState",
    "RunDContainer",
    "Hypervisor",
    "HypervisorError",
    "MemoryMode",
    "SF_CREATE_SECONDS",
    "SF_MEMORY_BYTES",
    "ScalableFunction",
    "ScalableFunctionManager",
    "SfError",
    "SriovError",
    "SriovManager",
    "VirtualFunction",
    "TCP_BASELINE_RATE",
    "TcpDatapath",
    "compare_tcp_datapaths",
    "tcp_throughput",
    "VfioAttachment",
    "VfioDriver",
    "VfioError",
    "CONTROL_ROUND_TRIP_SECONDS",
    "ControlRequest",
    "ControlResponse",
    "ShmRegion",
    "VirtioDevice",
    "VirtioDeviceType",
    "VirtioError",
    "VirtioQueue",
]
