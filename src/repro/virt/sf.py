"""PCIe Scalable Functions: lightweight, dynamic virtual devices.

Stellar uses SFs instead of VFs for the TCP side (Section 4): they can be
created and destroyed at runtime, share the parent function's BDF (so they
consume no switch-LUT entries), and have a tiny memory footprint.
"""

import itertools

from repro.sim.units import MiB


class SfError(Exception):
    """Invalid scalable-function operation."""


#: SF creation is milliseconds of firmware work, not a host reset.
SF_CREATE_SECONDS = 50e-3

#: Per-SF state (queues, contexts) — megabytes, not the VF's 2.4 GB.
SF_MEMORY_BYTES = 8 * MiB


class ScalableFunction:
    """One SF slice of a parent PCIe function."""

    _ids = itertools.count()

    def __init__(self, parent_name, parent_bdf, memory_bytes=SF_MEMORY_BYTES):
        self.sf_index = next(ScalableFunction._ids)
        self.name = "%s-sf%d" % (parent_name, self.sf_index)
        #: SFs share the parent's BDF — no LUT entry, no new bus number.
        self.bdf = parent_bdf
        self.memory_bytes = memory_bytes
        self.assigned_to = None

    def __repr__(self):
        return "ScalableFunction(%r, bdf=%s)" % (self.name, self.bdf)


class ScalableFunctionManager:
    """Dynamic SF lifecycle on one parent function."""

    def __init__(self, parent_name, parent_bdf, max_sfs=1024):
        self.parent_name = parent_name
        self.parent_bdf = parent_bdf
        self.max_sfs = max_sfs
        self.sfs = []
        self.total_create_seconds = 0.0

    @property
    def num_sfs(self):
        return len(self.sfs)

    @property
    def memory_overhead_bytes(self):
        return sum(sf.memory_bytes for sf in self.sfs)

    def create(self):
        """Create one SF; unlike VFs this never requires a reset."""
        if self.num_sfs >= self.max_sfs:
            raise SfError(
                "%s is at its SF limit (%d)" % (self.parent_name, self.max_sfs)
            )
        sf = ScalableFunction(self.parent_name, self.parent_bdf)
        self.sfs.append(sf)
        self.total_create_seconds += SF_CREATE_SECONDS
        return sf

    def destroy(self, sf):
        try:
            self.sfs.remove(sf)
        except ValueError:
            raise SfError("SF %r does not belong to %s" % (sf.name, self.parent_name))

    def __repr__(self):
        return "ScalableFunctionManager(%r, %d SFs)" % (self.parent_name, self.num_sfs)
