"""Transaction-Layer Packets and the Address Translation field.

The AT field is the crux of eMTT (Section 6, Figure 7): a TLP marked
``TRANSLATED`` (0b10) carries a final host-physical address and ACS-enabled
switches route it peer-to-peer without a detour through the root complex;
an ``UNTRANSLATED`` (0b00) TLP must climb to the RC for IOMMU translation.
"""

import enum
import itertools

_tlp_ids = itertools.count()


class AddressType(enum.IntEnum):
    """PCIe TLP AT field encodings (PCIe spec section 10.1)."""

    UNTRANSLATED = 0b00
    TRANSLATION_REQUEST = 0b01
    TRANSLATED = 0b10


class TlpKind(enum.Enum):
    MEM_READ = "MRd"
    MEM_WRITE = "MWr"
    COMPLETION = "Cpl"


class Tlp:
    """A memory request TLP as seen by switches and the root complex."""

    __slots__ = ("kind", "address", "length", "at", "requester", "pasid", "tag")

    def __init__(self, kind, address, length, at, requester, pasid=None):
        if length <= 0:
            raise ValueError("TLP length must be positive: %r" % length)
        self.kind = kind
        self.address = int(address)
        self.length = int(length)
        self.at = AddressType(at)
        self.requester = requester
        #: Process Address Space ID: distinguishes IOMMU domains when many
        #: virtual devices share one BDF (the vStellar situation).
        self.pasid = pasid
        self.tag = next(_tlp_ids)

    @classmethod
    def mem_write(cls, address, length, requester, at=AddressType.UNTRANSLATED,
                  pasid=None):
        return cls(TlpKind.MEM_WRITE, address, length, at, requester, pasid=pasid)

    @classmethod
    def mem_read(cls, address, length, requester, at=AddressType.UNTRANSLATED,
                 pasid=None):
        return cls(TlpKind.MEM_READ, address, length, at, requester, pasid=pasid)

    @property
    def is_translated(self):
        return self.at == AddressType.TRANSLATED

    def __repr__(self):
        return "Tlp(%s, addr=0x%x, len=%d, at=%s, req=%s)" % (
            self.kind.value,
            self.address,
            self.length,
            self.at.name,
            self.requester,
        )


class Delivery:
    """Where a TLP ended up and what it cost to get there.

    ``path`` is the ordered list of component names the TLP traversed —
    tests assert that eMTT traffic bypasses the RC by inspecting it.
    """

    __slots__ = ("destination", "path", "latency", "translated_address")

    def __init__(self, destination, path, latency, translated_address=None):
        self.destination = destination
        self.path = list(path)
        self.latency = latency
        self.translated_address = translated_address

    def visited(self, component_name):
        return component_name in self.path

    def __repr__(self):
        return "Delivery(to=%s, path=%s, latency=%.2fus)" % (
            self.destination,
            "->".join(self.path),
            self.latency * 1e6,
        )
