"""PCIe root complex: hosts the IOMMU and reflects peer traffic.

Untranslated device DMA climbs to the RC, gets translated by the IOMMU,
and is delivered either to main memory or *reflected* back down to a peer
device.  The reflected path is the HyV/MasQ GDR datapath of Figure 14 —
it works, but the RC's peer-to-peer ceiling caps it at ~141 Gbps versus
393 Gbps for switch-level P2P, which is exactly why eMTT exists.
"""

from repro import calibration
from repro.memory.address import MemoryKind
from repro.pcie.device import PcieError
from repro.pcie.switch import PCIE_HOP_SECONDS

#: Internal RC forwarding cost (ordering, IOMMU queueing), per TLP.
RC_PROCESS_SECONDS = 250e-9


class RootComplex:
    """The root of the PCIe tree, owning the IOMMU and host memory port."""

    def __init__(self, iommu, host_memory, name="RC"):
        self.name = name
        self.iommu = iommu
        self.host_memory = host_memory  # HostMemoryTarget
        self._ports = []  # downstream switches
        self._domains = {}  # requester Bdf -> IOMMU domain name
        self.tlps_processed = 0
        self.p2p_reflected_tlps = 0
        self.p2p_reflected_bytes = 0
        #: Sustained ceiling for RC-reflected peer traffic (Figure 14).
        self.p2p_ceiling_rate = calibration.GDR_RC_ROUTED_RATE

    def snapshot(self):
        """Public counter snapshot: processed and reflected TLP totals."""
        return {
            "tlps_processed": self.tlps_processed,
            "p2p_reflected_tlps": self.p2p_reflected_tlps,
            "p2p_reflected_bytes": self.p2p_reflected_bytes,
            "domains_bound": len(self._domains),
        }

    def add_port(self, switch):
        self._ports.append(switch)
        switch.upstream = self
        return switch

    @property
    def ports(self):
        return list(self._ports)

    def bind_domain(self, bdf, domain_name, pasid=None):
        """Associate a requester (BDF, optional PASID) with an IOMMU domain.

        PASIDs let many virtual devices share one BDF yet keep separate
        domains — how vStellar devices stay isolated without new BDFs.
        """
        self._domains[(bdf, pasid)] = domain_name

    def unbind_domain(self, bdf, pasid=None):
        self._domains.pop((bdf, pasid), None)

    def domain_of(self, bdf, pasid=None):
        try:
            return self._domains[(bdf, pasid)]
        except KeyError:
            pass
        try:
            return self._domains[(bdf, None)]
        except KeyError:
            raise PcieError("requester %s (pasid=%r) has no IOMMU domain" % (bdf, pasid))

    def receive(self, tlp, path, latency):
        """Process a TLP forwarded up from a switch.

        Returns ``(destination, path, latency, final_address)``.
        """
        path.append(self.name)
        latency += RC_PROCESS_SECONDS
        self.tlps_processed += 1
        address = tlp.address
        kind = None
        if not tlp.is_translated:
            domain = self.domain_of(tlp.requester, tlp.pasid)
            result = self.iommu.rc_translate(domain, address)
            address = result.hpa
            kind = result.kind
            latency += result.latency
        # Deliver: main memory, or reflect to the peer device owning the BAR.
        if self.host_memory.claims(address, tlp.length) is not None:
            path.append(self.host_memory.name)
            self.host_memory.on_tlp(tlp)
            return self.host_memory, path, latency, address
        for switch in self._ports:
            claimant = switch.find_claimant(address, tlp.length)
            if claimant is not None:
                self.p2p_reflected_tlps += 1
                self.p2p_reflected_bytes += tlp.length
                path.append(switch.name)
                path.append(claimant.name)
                latency += 2 * PCIE_HOP_SECONDS
                claimant.on_tlp(tlp)
                return claimant, path, latency, address
        raise PcieError(
            "TLP to 0x%x (%s) matches neither host memory nor any BAR"
            % (address, kind.value if isinstance(kind, MemoryKind) else "?")
        )

    def __repr__(self):
        return "RootComplex(ports=%d, domains=%d, tlps=%d)" % (
            len(self._ports),
            len(self._domains),
            self.tlps_processed,
        )
