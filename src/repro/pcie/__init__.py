"""PCIe substrate: BDFs, TLPs with the AT field, switches with bounded
LUTs and ACS, the root complex hosting the IOMMU, and fabric routing.

Models Figure 1(b) and the eMTT routing semantics of Figure 7.
"""

from repro.pcie.atc import AtcTranslation, DeviceAtc
from repro.pcie.bdf import Bdf, BdfAllocator
from repro.pcie.device import GpuDevice, HostMemoryTarget, PcieError, PcieFunction
from repro.pcie.root_complex import RC_PROCESS_SECONDS, RootComplex
from repro.pcie.switch import PCIE_HOP_SECONDS, LutCapacityError, PcieSwitch
from repro.pcie.tlp import AddressType, Delivery, Tlp, TlpKind
from repro.pcie.topology import PcieFabric, build_ai_server_fabric

__all__ = [
    "AtcTranslation",
    "DeviceAtc",
    "Bdf",
    "BdfAllocator",
    "GpuDevice",
    "HostMemoryTarget",
    "PcieError",
    "PcieFunction",
    "RootComplex",
    "RC_PROCESS_SECONDS",
    "PCIE_HOP_SECONDS",
    "LutCapacityError",
    "PcieSwitch",
    "AddressType",
    "Delivery",
    "Tlp",
    "TlpKind",
    "PcieFabric",
    "build_ai_server_fabric",
]
