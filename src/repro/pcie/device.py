"""PCIe functions: the endpoints of the fabric.

A :class:`PcieFunction` owns a BDF and a set of BAR windows carved out of
the host-physical address map.  GPUs additionally expose an HBM aperture
(the window GDR peer-to-peer writes land in) and a register BAR.
"""

from repro.memory.address import AddressSpace, MemoryKind, MemoryRegion


class PcieError(Exception):
    """Base class for PCIe fabric failures."""


class PcieFunction:
    """A single PCIe function (physical, VF, or the base of SF slices)."""

    def __init__(self, name, bdf):
        self.name = name
        self.bdf = bdf
        self.bars = []  # list of MemoryRegion in HPA space
        self.port = None  # set when attached to a switch/RC port
        self.received_tlps = []
        self.bytes_received = 0
        self.keep_tlp_log = False

    def add_bar(self, region):
        """Register a BAR window (an HPA MemoryRegion) for this function."""
        if region.space is not AddressSpace.HPA:
            raise PcieError("BARs live in HPA space, got %s" % region.space)
        self.bars.append(region)
        return region

    def claims(self, address, length=1):
        """The BAR containing [address, address+length), or ``None``."""
        for bar in self.bars:
            if bar.contains(address, length):
                return bar
        return None

    def on_tlp(self, tlp):
        """Accept a delivered TLP; subclasses may extend."""
        self.bytes_received += tlp.length
        if self.keep_tlp_log:
            self.received_tlps.append(tlp)

    def __repr__(self):
        return "%s(%r, bdf=%s, bars=%d)" % (
            type(self).__name__,
            self.name,
            self.bdf,
            len(self.bars),
        )


class GpuDevice(PcieFunction):
    """A GPU with an HBM aperture BAR (GDR target) and a register BAR."""

    def __init__(self, name, bdf, hbm_bytes):
        super().__init__(name, bdf)
        self.hbm_bytes = hbm_bytes
        self.hbm_bar = None
        self.register_bar = None
        self.dma_reads = 0

    def install_bars(self, hpa_map, register_bytes=16 << 20):
        """Allocate the HBM aperture and register window from the HPA map."""
        self.hbm_bar = self.add_bar(
            hpa_map.allocate(self.hbm_bytes, MemoryKind.GPU_HBM, alignment=1 << 20)
        )
        self.register_bar = self.add_bar(
            hpa_map.allocate(register_bytes, MemoryKind.DEVICE_MMIO, alignment=4096)
        )
        return self.hbm_bar

    def hbm_address(self, offset):
        """HPA of a byte at ``offset`` inside this GPU's memory."""
        if not 0 <= offset < self.hbm_bytes:
            raise PcieError(
                "HBM offset 0x%x outside %d-byte GPU memory" % (offset, self.hbm_bytes)
            )
        return self.hbm_bar.start + offset

    def hbm_region(self, offset, length):
        return MemoryRegion(
            self.hbm_address(offset), length, AddressSpace.HPA, MemoryKind.GPU_HBM
        )


class HostMemoryTarget(PcieFunction):
    """Pseudo-function representing main memory behind the root complex."""

    def __init__(self, dram_region):
        super().__init__("host-dram", None)
        self.add_bar(dram_region)
