"""Device-side Address Translation Cache (ATC).

The ATC caches ATS replies inside a PCIe endpoint (an RNIC, here).  Its
bounded capacity is the root cause of the Figure 8 GDR throughput collapse:
once 16 connections' worth of 4 KiB pages exceed the ATC, every access pays
an ATS round trip, and past the IOTLB reach it also pays a table walk.
"""

from repro import calibration
from repro.memory.address import align_down
from repro.memory.caches import TranslationCache


class AtcTranslation:
    """Result of translating one device address through the ATC/ATS path."""

    __slots__ = ("hpa", "kind", "latency", "atc_hit", "iotlb_hit")

    def __init__(self, hpa, kind, latency, atc_hit, iotlb_hit):
        self.hpa = hpa
        self.kind = kind
        self.latency = latency
        self.atc_hit = atc_hit
        self.iotlb_hit = iotlb_hit

    def __repr__(self):
        return "AtcTranslation(hpa=0x%x, atc_hit=%s, iotlb_hit=%s)" % (
            self.hpa,
            self.atc_hit,
            self.iotlb_hit,
        )


class DeviceAtc:
    """An endpoint's ATC bound to one IOMMU domain via ATS."""

    def __init__(
        self,
        iommu,
        domain_name,
        capacity_pages=calibration.ATC_CAPACITY_PAGES,
        page_size=calibration.GDR_PAGE_BYTES,
        name="ATC",
    ):
        self.iommu = iommu
        self.domain_name = domain_name
        self.page_size = page_size
        self.cache = TranslationCache(capacity_pages, name=name)

    def translate(self, da):
        """Translate a device address, consulting the ATC then ATS."""
        page = align_down(da, self.page_size)
        hit, cached = self.cache.lookup(page)
        if hit:
            hpa_page, kind = cached
            return AtcTranslation(
                hpa_page + (da - page),
                kind,
                calibration.ATC_HIT_SECONDS,
                True,
                True,
            )
        result = self.iommu.ats_translate(self.domain_name, page)
        self.cache.insert(page, (result.hpa, result.kind))
        return AtcTranslation(
            result.hpa + (da - page),
            result.kind,
            calibration.ATC_HIT_SECONDS + result.latency,
            False,
            result.iotlb_hit,
        )

    def invalidate_range(self, da, length):
        """Handle an ATS invalidation from the IOMMU (on unmap)."""
        start = align_down(da, self.page_size)
        end = align_down(da + length - 1, self.page_size)
        self.cache.invalidate_where(lambda key: start <= key <= end)

    def reset_counters(self):
        self.cache.reset_counters()

    @property
    def hit_rate(self):
        return self.cache.hit_rate

    def __repr__(self):
        return "DeviceAtc(domain=%r, %r)" % (self.domain_name, self.cache)
