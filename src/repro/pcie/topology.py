"""PCIe fabric assembly and end-to-end TLP routing.

Builds the server shape used throughout the paper's evaluation: one root
complex, four PCIe switches, each hosting one RNIC and two GPUs (8 GPUs +
4 RNICs per server), and a host DRAM target behind the RC.  The fabric is
parameterized so tests can build degenerate shapes.
"""

from repro import calibration
from repro.memory.address import AddressSpace, MemoryKind, PhysicalMemoryMap
from repro.memory.iommu import Iommu
from repro.pcie.bdf import BdfAllocator
from repro.pcie.device import GpuDevice, HostMemoryTarget, PcieError, PcieFunction
from repro.pcie.root_complex import RootComplex
from repro.pcie.switch import PcieSwitch
from repro.sim.units import GiB


class PcieFabric:
    """A complete single-host PCIe subsystem."""

    def __init__(
        self,
        host_memory_bytes=256 * GiB,
        iommu=None,
        hpa_bits=48,
    ):
        self.hpa_map = PhysicalMemoryMap(AddressSpace.HPA, 1 << hpa_bits)
        dram = self.hpa_map.allocate(host_memory_bytes, MemoryKind.HOST_DRAM,
                                     alignment=1 << 30)
        self.host_memory = HostMemoryTarget(dram)
        self._dram = dram
        self._dram_cursor = dram.start
        self.iommu = iommu if iommu is not None else Iommu()
        self.root_complex = RootComplex(self.iommu, self.host_memory)
        self.bdf_allocator = BdfAllocator()
        self.switches = []
        self._functions = {}  # Bdf -> PcieFunction

    # -- telemetry ------------------------------------------------------

    def snapshot(self):
        """Public fabric-wide counter snapshot (the pcm-iio analog).

        Shape matches :func:`repro.analysis.diagnostics.fabric_report`:
        per-switch LUT/TLP counters plus root-complex and IOTLB health.
        """
        rc = self.root_complex
        snap = {
            "switches": [switch.snapshot() for switch in self.switches],
            "rc_tlps": rc.tlps_processed,
            "rc_p2p_reflected_tlps": rc.p2p_reflected_tlps,
            "rc_p2p_reflected_bytes": rc.p2p_reflected_bytes,
            "iotlb_hit_rate": self.iommu.iotlb.hit_rate,
            "iotlb_size": len(self.iommu.iotlb),
        }
        return snap

    def register_metrics(self, registry, prefix="pcie"):
        """Expose switch/RC counters under ``pcie.*`` and the IOMMU under
        ``mem.iommu.*``."""
        registry.add_provider(prefix + ".rc", self.root_complex.snapshot)
        registry.add_provider(
            prefix + ".switch",
            lambda: {switch.name: switch.snapshot() for switch in self.switches},
        )
        self.iommu.register_metrics(registry)
        return registry

    # -- assembly -------------------------------------------------------

    def add_switch(self, name=None, lut_capacity=None):
        if name is None:
            name = "pcie-sw%d" % len(self.switches)
        if lut_capacity is None:
            lut_capacity = calibration.PCIE_SWITCH_LUT_CAPACITY
        switch = PcieSwitch(name, lut_capacity=lut_capacity)
        self.root_complex.add_port(switch)
        self.switches.append(switch)
        return switch

    def new_bdf(self, bus=None):
        return self.bdf_allocator.allocate(bus=bus)

    def attach_function(self, switch, function):
        switch.attach(function)
        self._functions[function.bdf] = function
        return function

    def add_gpu(self, switch, name, hbm_bytes=80 * GiB):
        gpu = GpuDevice(name, self.new_bdf(), hbm_bytes)
        gpu.install_bars(self.hpa_map)
        return self.attach_function(switch, gpu)

    def add_endpoint(self, switch, name, bar_bytes=32 << 20):
        """Attach a generic endpoint (e.g. an RNIC function) with one BAR."""
        function = PcieFunction(name, self.new_bdf())
        function.add_bar(
            self.hpa_map.allocate(bar_bytes, MemoryKind.DEVICE_MMIO, alignment=4096)
        )
        return self.attach_function(switch, function)

    def function(self, bdf):
        try:
            return self._functions[bdf]
        except KeyError:
            raise PcieError("no function with BDF %s" % bdf)

    def switch_of(self, bdf):
        """The switch a function hangs off."""
        function = self.function(bdf)
        if function.port is None:
            raise PcieError("function %s is not attached" % bdf)
        return function.port

    def allocate_host_buffer(self, length, alignment=4096):
        """Carve a buffer out of the host DRAM window; returns an HPA region."""
        from repro.memory.address import MemoryRegion, align_up

        start = align_up(self._dram_cursor, alignment)
        if start + length > self._dram.end:
            raise PcieError(
                "host DRAM exhausted: need %d bytes at 0x%x" % (length, start)
            )
        self._dram_cursor = start + length
        return MemoryRegion(start, length, AddressSpace.HPA, MemoryKind.HOST_DRAM)

    # -- routing ----------------------------------------------------------

    def route(self, tlp):
        """Route a TLP from its requester through the fabric to delivery.

        Implements the Figure 7 semantics: translated TLPs short-circuit at
        the first switch whose downstream BAR matches; untranslated TLPs
        climb to the root complex for IOMMU translation.
        """
        origin_switch = self.switch_of(tlp.requester)
        destination, path, latency = origin_switch.route(tlp, [], 0.0)
        if destination is not None:
            from repro.pcie.tlp import Delivery

            return Delivery(destination, path, latency, tlp.address)
        destination, path, latency, final = self.root_complex.receive(
            tlp, path, latency
        )
        from repro.pcie.tlp import Delivery

        return Delivery(destination, path, latency, final)

    def __repr__(self):
        return "PcieFabric(switches=%d, functions=%d)" % (
            len(self.switches),
            len(self._functions),
        )


def build_ai_server_fabric(
    host_memory_bytes=2 * 1024 * GiB,
    gpus=calibration.SERVER_GPUS,
    rnics=calibration.SERVER_RNICS,
    pcie_switches=calibration.SERVER_PCIE_SWITCHES,
    lut_capacity=calibration.PCIE_SWITCH_LUT_CAPACITY,
    gpu_hbm_bytes=80 * GiB,
):
    """Build the paper's AI server: 4 switches x (1 RNIC + 2 GPUs).

    Returns ``(fabric, rnic_functions, gpu_devices)`` with devices listed
    in rail order (RNIC *i* shares a switch with GPUs *2i* and *2i+1*).
    """
    if gpus % pcie_switches or rnics != pcie_switches:
        raise PcieError(
            "server shape must evenly spread %d GPUs and %d RNICs over %d switches"
            % (gpus, rnics, pcie_switches)
        )
    fabric = PcieFabric(host_memory_bytes=host_memory_bytes)
    rnic_functions = []
    gpu_devices = []
    gpus_per_switch = gpus // pcie_switches
    for index in range(pcie_switches):
        switch = fabric.add_switch(lut_capacity=lut_capacity)
        rnic_functions.append(fabric.add_endpoint(switch, "rnic%d" % index))
        for g in range(gpus_per_switch):
            gpu_devices.append(
                fabric.add_gpu(
                    switch,
                    "gpu%d" % (index * gpus_per_switch + g),
                    hbm_bytes=gpu_hbm_bytes,
                )
            )
    return fabric, rnic_functions, gpu_devices
