"""Bus-Device-Function identifiers.

Every PCIe function — physical or SR-IOV virtual — owns a BDF.  BDFs are
the scarce resource behind the paper's problem 3: the PCIe switch LUT on
one server model only holds 32 of them, capping GDR-capable VFs.
"""

import re

_BDF_RE = re.compile(r"^([0-9a-fA-F]{1,2}):([0-9a-fA-F]{1,2})\.([0-7])$")


class Bdf:
    """A PCIe Bus:Device.Function triple, e.g. ``3a:00.1``."""

    __slots__ = ("bus", "device", "function")

    def __init__(self, bus, device, function):
        if not 0 <= bus <= 0xFF:
            raise ValueError("bus out of range: %r" % bus)
        if not 0 <= device <= 0x1F:
            raise ValueError("device out of range: %r" % device)
        if not 0 <= function <= 0x7:
            raise ValueError("function out of range: %r" % function)
        self.bus = bus
        self.device = device
        self.function = function

    @classmethod
    def parse(cls, text):
        match = _BDF_RE.match(text.strip())
        if match is None:
            raise ValueError("unparseable BDF: %r" % text)
        bus, device, function = match.groups()
        return cls(int(bus, 16), int(device, 16), int(function))

    def as_tuple(self):
        return (self.bus, self.device, self.function)

    def __eq__(self, other):
        if not isinstance(other, Bdf):
            return NotImplemented
        return self.as_tuple() == other.as_tuple()

    def __lt__(self, other):
        return self.as_tuple() < other.as_tuple()

    def __hash__(self):
        return hash(self.as_tuple())

    def __str__(self):
        return "%02x:%02x.%d" % (self.bus, self.device, self.function)

    def __repr__(self):
        return "Bdf(%s)" % self


class BdfAllocator:
    """Hands out unique BDFs bus by bus (one bus per switch port)."""

    def __init__(self):
        self._next_bus = 1  # bus 0 is the root complex
        self._next_fn = {}

    def new_bus(self):
        bus = self._next_bus
        if bus > 0xFF:
            raise ValueError("out of PCIe bus numbers")
        self._next_bus += 1
        self._next_fn[bus] = 0
        return bus

    def allocate(self, bus=None):
        """Allocate the next free function on ``bus`` (or a fresh bus)."""
        if bus is None:
            bus = self.new_bus()
        if bus not in self._next_fn:
            self._next_fn[bus] = 0
        index = self._next_fn[bus]
        device, function = divmod(index, 8)
        if device > 0x1F:
            raise ValueError("bus %d is out of device numbers" % bus)
        self._next_fn[bus] = index + 1
        return Bdf(bus, device, function)
