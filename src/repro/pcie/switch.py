"""PCIe switch with a bounded Look-Up Table and ACS policy.

Two paper mechanisms live here:

* **LUT capacity (problem 3)** — a requester BDF must be registered in the
  switch LUT before the switch will route its peer-to-peer traffic; on one
  production server model the LUT holds only 32 BDFs, so dense VF
  deployments cannot all enable GDR.
* **ACS Direct Translated P2P (Figure 7)** — with ACS DT enabled, a TLP
  whose AT field says ``TRANSLATED`` is routed straight to the peer BAR;
  untranslated TLPs are redirected upstream to the root complex.
"""

from repro import calibration
from repro.pcie.device import PcieError

#: One store-and-forward hop through a PCIe switch.
PCIE_HOP_SECONDS = 150e-9


class LutCapacityError(PcieError):
    """The switch LUT is full; another BDF cannot enable P2P/GDR."""


class PcieSwitch:
    """A PCIe switch: downstream functions, a LUT, and ACS settings."""

    def __init__(
        self,
        name,
        lut_capacity=calibration.PCIE_SWITCH_LUT_CAPACITY,
        acs_direct_translated=True,
    ):
        self.name = name
        self.lut_capacity = lut_capacity
        self.acs_direct_translated = acs_direct_translated
        self.upstream = None  # RootComplex or parent switch
        self._functions = {}  # bdf -> PcieFunction
        self._lut = set()
        self.p2p_tlps = 0
        self.upstream_tlps = 0

    # -- fabric assembly ----------------------------------------------------

    def attach(self, function):
        if function.bdf in self._functions:
            raise PcieError("BDF %s already attached to %s" % (function.bdf, self.name))
        self._functions[function.bdf] = function
        function.port = self
        return function

    def detach(self, function):
        self._functions.pop(function.bdf, None)
        self._lut.discard(function.bdf)
        function.port = None

    @property
    def functions(self):
        return list(self._functions.values())

    def snapshot(self):
        """Public counter snapshot: LUT pressure and routed-TLP counts."""
        return {
            "name": self.name,
            "functions": len(self._functions),
            "lut_used": self.lut_capacity - self.lut_free,
            "lut_capacity": self.lut_capacity,
            "p2p_tlps": self.p2p_tlps,
            "upstream_tlps": self.upstream_tlps,
        }

    # -- LUT management -----------------------------------------------------

    def register_lut(self, bdf):
        """Enable P2P routing for a requester BDF; bounded by capacity."""
        if bdf in self._lut:
            return
        if len(self._lut) >= self.lut_capacity:
            raise LutCapacityError(
                "switch %s LUT full (%d entries); cannot enable GDR for %s"
                % (self.name, self.lut_capacity, bdf)
            )
        self._lut.add(bdf)

    def unregister_lut(self, bdf):
        self._lut.discard(bdf)

    def lut_contains(self, bdf):
        return bdf in self._lut

    @property
    def lut_free(self):
        return self.lut_capacity - len(self._lut)

    # -- routing ------------------------------------------------------------

    def find_claimant(self, address, length):
        """Downstream function whose BAR covers the address, if any."""
        for function in self._functions.values():
            if function.claims(address, length) is not None:
                return function
        return None

    def route(self, tlp, path, latency):
        """Route a TLP arriving at this switch from a downstream port.

        Returns ``(delivered_function_or_None, path, latency)``; ``None``
        means the TLP was forwarded upstream and the caller (fabric) must
        continue at :attr:`upstream`.
        """
        path.append(self.name)
        latency += PCIE_HOP_SECONDS
        claimant = self.find_claimant(tlp.address, tlp.length)
        if claimant is not None:
            p2p_allowed = tlp.is_translated and self.acs_direct_translated
            if not tlp.is_translated:
                # Untranslated P2P would bypass the IOMMU; ACS forces it up.
                p2p_allowed = False
            if p2p_allowed and not self.lut_contains(tlp.requester):
                raise PcieError(
                    "requester %s not in %s LUT; P2P routing unavailable"
                    % (tlp.requester, self.name)
                )
            if p2p_allowed:
                self.p2p_tlps += 1
                path.append(claimant.name)
                latency += PCIE_HOP_SECONDS
                claimant.on_tlp(tlp)
                return claimant, path, latency
        self.upstream_tlps += 1
        return None, path, latency

    def __repr__(self):
        return "PcieSwitch(%r, fns=%d, lut=%d/%d)" % (
            self.name,
            len(self._functions),
            len(self._lut),
            self.lut_capacity,
        )
