"""repro.cluster: multi-tenant fleet simulation on the Stellar stack.

The top layer of the simulated system: :class:`FleetHost` servers (real
PCIe fabric + hypervisor + RNICs with admission accounting),
:class:`JobSpec`/:class:`Job` tenant workloads with a seeded arrival
process, pluggable placement in :class:`FleetScheduler`, and the
:class:`FleetSimulation` orchestrator that runs churn, shared-fabric
contention, and link failures end to end.
"""

from repro.cluster.fidelity import Fidelity, FidelityController
from repro.cluster.fleet import (
    CONNECTION_STRIDE,
    ContendedTopology,
    FleetResult,
    FleetSimulation,
    quantile,
)
from repro.cluster.host import FleetHost, FleetHostError, SharedAtc
from repro.cluster.job import (
    Job,
    JobArrivalProcess,
    JobSpec,
    JobState,
    TenantProfile,
)
from repro.cluster.scheduler import FleetScheduler, PlacementPolicy

__all__ = [
    "CONNECTION_STRIDE",
    "ContendedTopology",
    "Fidelity",
    "FidelityController",
    "FleetHost",
    "FleetHostError",
    "FleetResult",
    "FleetScheduler",
    "FleetSimulation",
    "Job",
    "JobArrivalProcess",
    "JobSpec",
    "JobState",
    "PlacementPolicy",
    "SharedAtc",
    "TenantProfile",
    "quantile",
]
