"""The fleet orchestrator: churn, contention, and failures on one fabric.

:class:`FleetSimulation` ties the whole stack together.  Jobs arrive on
an :class:`repro.sim.engine.EventScheduler`; admitted jobs boot *real*
secure containers on their :class:`repro.cluster.host.FleetHost` rings
(paying Figure 6 boot + pinning costs through ``repro.virt`` and PVDMA),
then iterate at a rate set by the shared network.

Congestion is recomputed in *epochs*: whenever fleet membership changes
(job starts running, finishes, fails, or a link fails/heals) every
running multi-host job's DP ring is launched onto one shared
:class:`repro.net.fluid_sim.FluidSimulation` whose link capacities are
reduced by cross-job background load (``repro.net.loadmodel``), and the
measured per-GPU bandwidth is fed to
:class:`repro.training.TrainingSimulation` to reprice the job's
iteration time.  Link failures (``repro.net.failure``) multiply a job's
bandwidth by the fraction of its sprayed paths that survive — 128-way
spray barely notices a dead uplink, a 4-path legacy transport loses up
to a quarter of its ring.

Epochs are priced at a configurable *fidelity*: the vectorized fluid
solver everywhere (default), packet-level DES everywhere, or — the
hybrid engine — fluid steady state with bounded packet windows that a
:class:`repro.cluster.fidelity.FidelityController` promotes around
failures, loss injections, admission bursts and CC collapse, then
demotes with hysteresis.  See EXPERIMENTS.md "Hybrid fidelity".

Everything is seeded; a fleet run is a pure function of
``(topology, hosts, arrivals, seed, fidelity)`` and double-runs
digest-identical at every fidelity.
"""

from functools import partial

from repro import calibration
from repro.cluster.fidelity import Fidelity, FidelityController
from repro.cluster.host import FleetHost
from repro.cluster.job import Job, JobState
from repro.cluster.scheduler import FleetScheduler, PlacementPolicy
from repro.collectives.allreduce import RingAllReduceTask
from repro.core.spray import make_selector
from repro.net.failure import effective_loss_rate, pick_victim_uplink
from repro.net.fluid_sim import FluidSimulation
from repro.net.packet_sim import MessageFlow, PacketNetSim
from repro.net.topology import ServerAddress
from repro.rnic.cc import WindowCC
from repro.obs.slo import (
    SLO_LATENCY_MULTIPLE,
    SloBoard,
    SloPolicy,
    build_health_document,
    default_job_policy,
)
from repro.sim.engine import EventScheduler
from repro.sim.rng import RngStream
from repro.sim.units import GB, usec
from repro.training.comms import comm_volumes
from repro.training.models import MODELS
from repro.training.trainer import (
    CostModelConfig,
    TRANSPORTS,
    TrainingSimulation,
)
from repro.virt.hypervisor import MemoryMode

#: Connection-id block per job, so no two jobs' sprayed flows ever share
#: an ECMP hash seed (and the failure model can reconstruct any flow).
CONNECTION_STRIDE = 4096

#: Floor on measured per-GPU bandwidth — max-min fairness never starves a
#: flow completely, and iteration times must stay finite.
_MIN_DP_BANDWIDTH = 1e7

#: Background-load modelling constants, mirroring the
#: ``StaticLoadModel.add_flow`` call _background_rates reproduces:
#: a 1-second pricing window, the model's default packet size, and the
#: 64-draw cap each background flow was sprayed with.
_BG_DURATION = 1.0
_BG_PACKET_BYTES = 4096
_BG_MAX_DRAWS = 64

#: Packet-window pricing knobs (hybrid/packet fidelities).  One promoted
#: epoch drives every running multi-host job's rail-0 DP ring through a
#: real :class:`PacketNetSim` for a short bounded window; large MTUs and
#: CC windows seeded at the fluid fair-share BDP keep the event count
#: per epoch in the tens of thousands even at 1024 hosts.  The window is
#: long enough for the 250 us spray RTO to fire several times on a dead
#: link, so failures are priced by real retransmission behaviour instead
#: of the analytic path-survival penalty.
_PRICING_WINDOW_SECONDS = 0.002
_PRICING_MTU = 256 * 1024
_PRICING_TARGET_RTT = usec(150)
_PRICING_MAX_WINDOW = 32 * 1024 * 1024
_PRICING_MESSAGE_BYTES = 1 << 40
_PRICING_MAX_EVENTS = 5_000_000


def quantile(values, q):
    """Deterministic nearest-rank quantile (0 for an empty sample)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, int(q * len(ordered)))
    return ordered[rank]


class ContendedTopology:
    """Read-through topology view with background load subtracted.

    The fluid simulator asks ``link_rate`` lazily per link; this wrapper
    answers with the residual capacity after cross-job storage/checkpoint
    traffic, floored at 5% so a saturated port still drains.
    """

    def __init__(self, base, background_bits_per_second):
        self._base = base
        self._background = dict(background_bits_per_second)

    def link_rate(self, link):
        rate = self._base.link_rate(link)
        load = self._background.get(link, 0.0)
        return max(rate * 0.05, rate - load)

    def __getattr__(self, name):
        return getattr(self._base, name)


class FleetResult:
    """Tenant-facing outcome of a fleet run."""

    def __init__(self, jobs, counters):
        self.jobs = list(jobs)
        self.counters = dict(counters)

    def by_state(self, state):
        return [job for job in self.jobs if job.state is state]

    def mean_wait_seconds(self):
        waits = [j.wait_seconds for j in self.jobs if j.wait_seconds is not None]
        return sum(waits) / len(waits) if waits else 0.0

    def mean_startup_seconds(self):
        starts = [j.startup_seconds for j in self.jobs
                  if j.startup_seconds is not None]
        return sum(starts) / len(starts) if starts else 0.0

    def total_goodput(self):
        """Aggregate training iterations per simulated second."""
        return sum(job.goodput() for job in self.jobs)

    def p99_slowdown(self):
        """p99 of per-block iteration slowdown vs each job's isolated run."""
        samples = [s for job in self.jobs for s in job.slowdown_samples]
        return quantile(samples, 0.99)

    def rows(self):
        rows = []
        for job in self.jobs:
            rows.append({
                "job": job.spec.name,
                "tenant": job.spec.tenant,
                "state": job.state.value,
                "wait_s": job.wait_seconds,
                "startup_s": job.startup_seconds,
                "iters": job.iterations_done,
                "goodput_it_s": job.goodput(),
                "p99_slowdown": quantile(job.slowdown_samples, 0.99),
            })
        return rows

    def __repr__(self):
        return "FleetResult(%d jobs, p99 slowdown %.2fx)" % (
            len(self.jobs), self.p99_slowdown(),
        )


class FleetSimulation:
    """A multi-tenant fleet on one shared dual-plane fabric."""

    def __init__(
        self,
        topology,
        hosts=None,
        policy=PlacementPolicy.DUAL_PLANE,
        seed=0,
        tracer=None,
        host_config=None,
        block_iterations=5,
        sample_pages=256,
        background_gbps_per_host=10.0,
        ring_bytes=int(1 * GB),
        congestion_dt=0.005,
        congestion_seconds=0.03,
        flight=None,
        trace_recorder=None,
        fidelity="fluid",
    ):
        self.topology = topology
        self.seed = seed
        self.tracer = tracer
        #: Optional FlightRecorder + the SLO board feeding off it.  Both
        #: are passive observers: attaching them cannot perturb the run
        #: (repro.obs.determinism asserts exactly that).
        self.flight = flight
        #: Optional duck-typed TraceRecorder (repro.traces): passive like
        #: the flight recorder — it only receives on_iteration_block()
        #: callbacks, so attaching one cannot perturb the run either.
        self.trace_recorder = trace_recorder
        self.slo = SloBoard(flight=flight)
        self.engine = EventScheduler(tracer=tracer)
        if hosts is None:
            config = dict(host_config or {})
            hosts = [
                FleetHost("h%d-%d" % (address.segment, address.index),
                          address, **config)
                for address in topology.servers()
            ]
        self.scheduler = FleetScheduler(hosts, policy)
        if flight is not None:
            # Container churn flows in via the hypervisor hook, not via
            # an upward import from repro.virt.
            for host in self.scheduler.hosts:
                host.host.hypervisor.on_churn = partial(
                    self._on_host_churn, host.name
                )
        self.trainer = TrainingSimulation(topology, seed=seed)
        self.block_iterations = block_iterations
        self.sample_pages = sample_pages
        self.background_gbps_per_host = background_gbps_per_host
        self.ring_bytes = ring_bytes
        self.congestion_dt = congestion_dt
        self.congestion_seconds = congestion_seconds
        #: How congestion epochs are priced: ``"fluid"`` (default — the
        #: vectorized solver everywhere, digests unchanged), ``"packet"``
        #: (packet-level DES everywhere, the costly reference), or
        #: ``"hybrid"`` (fluid steady state + auto-promoted packet
        #: windows around failures/loss/bursts/CC collapse).  Accepts a
        #: mode string, a :class:`Fidelity`, or a pre-tuned
        #: :class:`FidelityController`.
        self.fidelity = FidelityController.coerce(fidelity)
        #: Active loss injections: ``(link, drop probability)`` pairs.
        #: Random loss is below the fluid model's resolution, so it only
        #: changes rates inside packet-priced epochs — but it always
        #: counts as a fidelity trigger.
        self.active_losses = []
        self.loss_injections = 0
        #: Packet events spent pricing promoted epochs (fresh solves
        #: only; memoized epochs are free).
        self.fidelity_pricing_events = 0
        #: DP-allreduce byte ledger, split by the regime that priced each
        #: iteration block.  fluid + packet == total is the cross-fidelity
        #: conservation invariant SimSanitizer checks.
        self.dp_bytes_fluid = 0
        self.dp_bytes_packet = 0
        self.dp_bytes_total = 0
        self.atc_page = calibration.GDR_PAGE_BYTES
        self.jobs = []
        self.failed_links = []
        self.jobs_submitted = 0
        self.jobs_completed = 0
        self.jobs_failed = 0
        self.link_failures = 0
        self.rate_epochs = 0
        self._starting = 0
        self._running = 0
        #: Congestion-epoch memo: (failed links, running-job membership)
        #: -> {job.index: iter_seconds} for the multi-host jobs.  A fresh
        #: same-seed FluidSimulation is a pure function of those inputs,
        #: so a repeat epoch (churn re-pricing the same fleet state) can
        #: reuse the previous solve bit-for-bit — see _recompute_rates().
        self._epoch_cache = {}
        #: Cross-epoch reuse below the epoch cache, all bit-identical to
        #: recomputation by construction: sprayed-ring plan rows shared
        #: by every congestion-epoch FluidSimulation (the incidence
        #: structure the ISSUE-9 vectorization exposes), per-(job,
        #: placement) background draw counts plus the repeated-sum table
        #: their loads collapse onto, and per-(job, failed-links) ring
        #: penalties.
        self._plan_cache = {}
        self._bg_counts = {}
        self._bg_partial_sums = [0.0]
        self._penalty_cache = {}
        #: Promoted-epoch memo: (epoch key, active losses) -> (per-job
        #: values, packet events, CC-collapsed flag).  Like the fluid
        #: epoch cache, a packet epoch is a pure function of fleet state
        #: and the fleet seed, so repeats inside one promoted window are
        #: bit-identical replays.
        self._packet_epoch_cache = {}
        self._dp_volume_cache = {}

    # -- workload intake ---------------------------------------------------

    def submit(self, spec, at=None):
        """Schedule a job submission at simulated time ``at`` (now if None)."""
        when = self.engine.now if at is None else at
        return self.engine.schedule_at(when, partial(self._on_submit, spec))

    def load(self, arrivals):
        """Feed a ``JobArrivalProcess.generate()`` schedule."""
        for at, spec in arrivals:
            self.submit(spec, at=at)
        return self

    def inject_link_failure(self, at, duration, link=None):
        """Fail one ToR uplink at ``at`` for ``duration`` seconds.

        With ``link=None`` the victim is picked at failure time from a
        running job's actual sprayed path (first cross-segment ring edge,
        path 0), guaranteeing the failure lands on live traffic;
        :func:`repro.net.failure.pick_victim_uplink` is the fallback when
        nothing is running.
        """
        self.engine.schedule_at(at, partial(self._on_link_fail, link, duration))

    def inject_loss(self, at, duration, loss=0.05, link=None):
        """Schedule random loss on one uplink at ``at`` for ``duration``.

        Random loss sits below the fluid model's resolution: it is a
        fidelity trigger (promoting a packet window in hybrid mode) and
        is modelled natively — dropped packets, RTOs, re-spray — inside
        packet-priced epochs only.  ``link=None`` picks a live victim
        like :meth:`inject_link_failure`.
        """
        self.engine.schedule_at(
            at, partial(self._on_loss_start, link, duration, loss)
        )

    def run(self, until=None, max_events=None):
        """Drive the event loop; returns the :class:`FleetResult`."""
        self.engine.run(until=until, max_events=max_events)
        return self.result()

    def result(self):
        return FleetResult(self.jobs, self.snapshot())

    # -- event handlers ----------------------------------------------------

    def _instant(self, name, args=None):
        if self.tracer is not None:
            self.tracer.instant(name, self.engine.now, track="fleet",
                                cat="cluster", args=args)

    def _record(self, kind, entity=None, severity="info", **payload):
        if self.flight is not None:
            self.flight.record(self.engine.now, "cluster", kind,
                               entity=entity, severity=severity, **payload)

    def _on_host_churn(self, host_name, kind, container_name):
        if self.flight is not None:
            self.flight.record(self.engine.now, "virt", kind,
                               entity=container_name, severity="info",
                               host=host_name)

    def _on_submit(self, spec):
        job = Job(spec, self.engine.now)
        job.index = len(self.jobs)
        self.jobs.append(job)
        self.jobs_submitted += 1
        self._instant("job-submit %s" % spec.name, {"tenant": spec.tenant})
        ring = None
        if not self.scheduler.queue:  # FIFO: no overtaking the queue head
            ring = self.scheduler.place(spec)
        if ring is None:
            self.scheduler.enqueue(job)
            self._record("admission-queue", entity="job:%s" % spec.name,
                         severity="warn", tenant=spec.tenant,
                         queue_depth=len(self.scheduler.queue))
            if len(self.scheduler.queue) >= self.fidelity.admission_burst_depth:
                self._fidelity_trigger("admission-burst",
                                       entity="job:%s" % spec.name)
        else:
            self._admit(job, ring)

    def _admit(self, job, ring):
        spec = job.spec
        job.state = JobState.STARTING
        job.start_time = self.engine.now
        job.hosts = ring
        self._starting += 1
        for entry in self.scheduler.host_totals(spec, ring).values():
            entry["host"].reserve(
                spec.name, entry["gpus"], entry["dram_bytes"],
                entry["sfs"], entry["lut_entries"],
            )
        # Containers on the same host boot sequentially; hosts boot in
        # parallel, so startup is the slowest host's total (Figure 6 cost
        # lives in launch() + prepare_working_set()).
        per_host_seconds = {}
        for slot, host in enumerate(ring):
            cname = "%s-c%d" % (spec.name, slot)
            record = host.launch(cname, spec.memory_bytes,
                                 memory_mode=spec.memory_mode)
            container = record.container
            cost = record.total_seconds
            region = container.alloc_buffer(spec.working_set_bytes)
            if spec.memory_mode is MemoryMode.PVDMA:
                cost += host.prepare_working_set(container, region)
            job.containers.append(container)
            job.touch_pages[cname] = self._sample_pages(container, region)
            per_host_seconds[host.name] = (
                per_host_seconds.get(host.name, 0.0) + cost
            )
        job.startup_seconds = max(per_host_seconds.values())
        job.iso_iter_seconds = self._isolated_iter_seconds(job)
        self._instant("job-start %s" % spec.name, {
            "tenant": spec.tenant,
            "hosts": len(per_host_seconds),
            "startup_s": round(job.startup_seconds, 3),
        })
        self._record("job-admit", entity="job:%s" % spec.name,
                     tenant=spec.tenant, hosts=len(per_host_seconds),
                     startup_s=round(job.startup_seconds, 6))
        self.engine.schedule(job.startup_seconds, partial(self._on_running, job))

    def _on_running(self, job):
        if job.state is not JobState.STARTING:
            return
        job.state = JobState.RUNNING
        job.running_time = self.engine.now
        self._starting -= 1
        self._running += 1
        self._recompute_rates()
        now = self.engine.now
        tracker = self.slo.tracker(
            "job:%s" % job.spec.name, default_job_policy(job.iso_iter_seconds)
        )
        tracker.observe(now, "admission_wait", job.wait_seconds)
        # Tenant trackers aggregate the normalized slowdown, which is
        # comparable across jobs with different isolated baselines.
        self.slo.tracker(
            "tenant:%s" % job.spec.tenant,
            SloPolicy(latency_p99_ceiling=SLO_LATENCY_MULTIPLE),
        )
        if job.spec.abort_after is not None:
            job.abort_event = self.engine.schedule(
                job.spec.abort_after, partial(self._on_abort, job)
            )
        self.engine.schedule(0.0, partial(self._iterate, job))

    def _iterate(self, job):
        if job.state is not JobState.RUNNING:
            return
        block = min(self.block_iterations,
                    job.spec.iterations - job.iterations_done)
        seconds = job.iter_seconds
        job.iteration_log.append(
            (self.engine.now, block, seconds, self.failure_penalty(job))
        )
        slowdown = seconds / job.iso_iter_seconds
        job.slowdown_samples.append(slowdown)
        now = self.engine.now
        entity = "job:%s" % job.spec.name
        if entity in self.slo:
            self.slo.observe(now, entity, "latency", seconds)
            self.slo.observe(now, entity, "goodput", 1.0 / seconds)
            self.slo.observe(
                now, "tenant:%s" % job.spec.tenant, "latency", slowdown
            )
        for slot, container in enumerate(job.containers):
            job.hosts[slot].touch(container, job.touch_pages[container.name])
        if self.trace_recorder is not None:
            self.trace_recorder.on_iteration_block(
                now, job.spec.name, job.spec.strategy.dp, block,
                seconds, job.dp_seconds or 0.0, self._dp_volume(job),
            )
        # Cross-fidelity byte ledger: attribute the block's DP-allreduce
        # traffic, at block start, to the regime that priced it.  Exact
        # integer accounting — fluid + packet must equal total per job
        # and fleet-wide (SimSanitizer's conservation check).
        if len(job.unique_hosts()) >= 2:
            volume = block * self._dp_volume(job)
            job.dp_bytes_total += volume
            self.dp_bytes_total += volume
            if job.rate_fidelity == "packet":
                job.dp_bytes_packet += volume
                self.dp_bytes_packet += volume
            else:
                job.dp_bytes_fluid += volume
                self.dp_bytes_fluid += volume
        job.iterations_done += block
        if job.done:
            self.engine.schedule(block * seconds, partial(self._on_complete, job))
        else:
            self.engine.schedule(block * seconds, partial(self._iterate, job))

    def _on_complete(self, job):
        if job.state is not JobState.RUNNING:
            return
        self.jobs_completed += 1
        self._finish(job, JobState.COMPLETED, abnormal=False)

    def _on_abort(self, job):
        if job.state is not JobState.RUNNING:
            return
        self.jobs_failed += 1
        self._finish(job, JobState.FAILED, abnormal=True)

    def _finish(self, job, state, abnormal):
        if job.abort_event is not None:
            job.abort_event.cancel()
            job.abort_event = None
        for slot, container in enumerate(job.containers):
            job.hosts[slot].stop(container, abnormal=abnormal)
        for host in job.unique_hosts():
            host.release(job.spec.name)
        job.state = state
        job.end_time = self.engine.now
        self._running -= 1
        self._instant("job-%s %s" % (state.value, job.spec.name), {
            "tenant": job.spec.tenant,
            "iterations": job.iterations_done,
        })
        self._record(
            "job-abort" if abnormal else "job-complete",
            entity="job:%s" % job.spec.name,
            severity="error" if abnormal else "info",
            tenant=job.spec.tenant, iterations=job.iterations_done,
        )
        self._recompute_rates()
        self._drain_queue()

    def _drain_queue(self):
        while self.scheduler.queue:
            head = self.scheduler.queue[0]
            ring = self.scheduler.place(head.spec)
            if ring is None:
                break
            self.scheduler.queue.popleft()
            self._admit(head, ring)

    def _on_link_fail(self, link, duration):
        if link is None:
            link = self._auto_victim()
        self.failed_links.append(link)
        self.link_failures += 1
        self._instant("link-fail", {"link": str(link)})
        self._record("link-fail", entity=str(link), severity="error",
                     duration=duration)
        self._fidelity_trigger("link-fail", entity=str(link))
        self._recompute_rates()
        self.engine.schedule(duration, partial(self._on_link_heal, link))

    def _on_link_heal(self, link):
        if link in self.failed_links:
            self.failed_links.remove(link)
        self._instant("link-heal", {"link": str(link)})
        self._record("link-heal", entity=str(link))
        self._fidelity_trigger("link-heal", entity=str(link))
        self._recompute_rates()

    def _on_loss_start(self, link, duration, loss):
        if link is None:
            link = self._auto_victim()
        self.active_losses.append((link, loss))
        self.loss_injections += 1
        self._instant("loss-inject", {"link": str(link), "loss": loss})
        self._record("loss-inject", entity=str(link), severity="warn",
                     loss=loss, duration=duration)
        self._fidelity_trigger("loss-inject", entity=str(link))
        self._recompute_rates()
        self.engine.schedule(duration, partial(self._on_loss_end, link, loss))

    def _on_loss_end(self, link, loss):
        if (link, loss) in self.active_losses:
            self.active_losses.remove((link, loss))
        self._instant("loss-clear", {"link": str(link)})
        self._record("loss-clear", entity=str(link))
        self._fidelity_trigger("loss-inject", entity=str(link))
        self._recompute_rates()

    # -- fidelity windows --------------------------------------------------

    def _fidelity_trigger(self, kind, entity=None):
        """Report a trigger to the controller; arm the demotion timer.

        No-op in fluid mode (beyond trigger counting), so default-fidelity
        runs schedule no extra events and record nothing new — their
        digests are untouched.  Window boundaries derive from simulated
        time only, keeping hybrid runs double-run digest-identical.
        """
        ctl = self.fidelity
        action = ctl.on_trigger(self.engine.now, kind)
        if action is None:
            return
        release = ctl.release_time()
        self._instant("fidelity-%s" % action,
                      {"trigger": kind, "release": release})
        self._record("fidelity-%s" % action, entity=entity,
                     severity="warn" if action == "promote" else "info",
                     trigger=kind, release=release)
        self.engine.schedule_at(release, self._on_fidelity_release)

    def _on_fidelity_release(self):
        """Demote with hysteresis: close the window only if it stayed quiet."""
        ctl = self.fidelity
        if not ctl.note_demotion(self.engine.now):
            return  # extended since; a later callback is armed
        start, end, _closed_at = ctl.windows[-1]
        self._instant("fidelity-demote", {"window_start": start})
        self._record("fidelity-demote", window_start=start, window_end=end)
        # Demotion handoff: re-price immediately so the fleet leaves the
        # window on fluid steady-state rates (usually an epoch-cache hit,
        # i.e. bit-identical to the pre-window steady state).
        self._recompute_rates()

    def _auto_victim(self):
        """A ToR uplink actually carrying a running job's sprayed traffic."""
        for job in self.jobs:  # index order: deterministic
            if job.state is not JobState.RUNNING:
                continue
            servers = [h.address for h in job.unique_hosts()]
            n = len(servers)
            if n < 2:
                continue
            for i, src in enumerate(servers):
                dst = servers[(i + 1) % n]
                if src.segment == dst.segment:
                    continue
                route = self.topology.route(
                    src, dst, 0, path_id=0,
                    connection_id=job.index * CONNECTION_STRIDE + i,
                )
                for link in route:
                    if link.kind == "tor_up":
                        return link
        return pick_victim_uplink(self.topology)

    # -- congestion epochs -------------------------------------------------

    def failure_penalty(self, job):
        """Fraction of the job's ring bandwidth surviving failed links.

        The ring turns at its slowest member, so the penalty is set by the
        worst flow: the share of its sprayed path ids whose route crosses
        a failed link (``effective_loss_rate`` with 100% loss).  A 128-way
        spray spreads that share across every equivalent (plane, agg)
        choice; a 4-QP legacy transport concentrates it.
        """
        if not self.failed_links:
            return 1.0
        servers = [h.address for h in job.unique_hosts()]
        n = len(servers)
        if n < 2:
            return 1.0
        # Routes are static and placement is fixed while a job runs, so
        # the penalty is a pure function of (job, failed-link set) —
        # memoize it across the repeated repricings of one failure window.
        key = (job.index, tuple(sorted(
            (link.kind, link.key) for link in self.failed_links
        )))
        cached = self._penalty_cache.get(key)
        if cached is not None:
            return cached
        transport = TRANSPORTS[job.spec.transport]
        worst = 0.0
        for rail in range(self.topology.rails):
            for i, src in enumerate(servers):
                dst = servers[(i + 1) % n]
                connection_id = job.index * CONNECTION_STRIDE + rail * n + i
                crossing = 0
                for path_id in range(transport.path_count):
                    route = self.topology.route(
                        src, dst, rail, path_id=path_id,
                        connection_id=connection_id,
                    )
                    if any(link in self.failed_links for link in route):
                        crossing += 1
                share = effective_loss_rate(1.0, transport.path_count, crossing)
                worst = max(worst, share)
        penalty = max(0.05, 1.0 - worst)
        self._penalty_cache[key] = penalty
        return penalty

    def _background_counts(self, job):
        """Per-link draw counts of one job's background flows (memoized).

        Replays exactly the draws :meth:`StaticLoadModel.add_flow` would
        make for this job — same selectors, same ``RngStream`` seeds,
        same routes — but records draw *counts* instead of byte loads.
        Placement is fixed while a job runs, so the counts are a pure
        function of (job, placement) and survive across epochs.
        """
        key = (job.index, tuple(h.name for h in job.unique_hosts()))
        counts = self._bg_counts.get(key)
        if counts is not None:
            return counts
        counts = {}
        total_bytes = self.background_gbps_per_host * 1e9 / 8 * _BG_DURATION
        draws = min(max(1, int(total_bytes // _BG_PACKET_BYTES)),
                    _BG_MAX_DRAWS)
        for k, host in enumerate(job.unique_hosts()):
            src = host.address
            if self.topology.segments > 1:
                dst = ServerAddress(
                    (src.segment + 1) % self.topology.segments, src.index
                )
            else:
                dst = ServerAddress(
                    src.segment,
                    (src.index + 1) % self.topology.servers_per_segment,
                )
            if dst == src:
                continue
            selector = make_selector(
                "obs", 16,
                rng=RngStream(self.seed, "bg", job.spec.name, str(k)),
            )
            connection_id = 1_000_000 + job.index * 64 + k
            for _ in range(draws):
                path_id = selector.next_path()
                route = self.topology.route(
                    src, dst, 0, path_id=path_id, connection_id=connection_id
                )
                for link in route:
                    counts[link] = counts.get(link, 0) + 1
        self._bg_counts[key] = counts
        return counts

    def _background_rates(self, running):
        """Cross-job storage/checkpoint load per link, in bits/second.

        Numerically identical to spraying every running job's flows
        through one shared :class:`StaticLoadModel`: each (draw, route
        link) there adds the same ``bytes_per_draw`` constant, and a
        float slot's value depends only on its own addition sequence, so
        a link's accumulated load is exactly the repeated sum
        ``S(n) = S(n-1) + bytes_per_draw`` evaluated at its combined
        (integer, exact) draw count.  The partial-sum table is grown once
        per fleet, which turns each epoch's background pricing into dict
        merges instead of hundreds of re-sprayed flows.
        """
        if not running:
            return {}
        totals = {}
        for job in running:
            for link, count in self._background_counts(job).items():
                totals[link] = totals.get(link, 0) + count
        if not totals:
            return {}
        total_bytes = self.background_gbps_per_host * 1e9 / 8 * _BG_DURATION
        draws = min(max(1, int(total_bytes // _BG_PACKET_BYTES)),
                    _BG_MAX_DRAWS)
        bytes_per_draw = total_bytes / draws
        sums = self._bg_partial_sums
        deepest = max(totals.values())
        while len(sums) <= deepest:
            sums.append(sums[-1] + bytes_per_draw)
        return {
            link: sums[count] * 8.0 / _BG_DURATION
            for link, count in totals.items()
        }

    def _launch_ring(self, job, sim):
        transport = TRANSPORTS[job.spec.transport]
        servers = [h.address for h in job.unique_hosts()]
        task = RingAllReduceTask(
            "ring-%s" % job.spec.name,
            servers,
            data_bytes=self.ring_bytes,
            rails=self.topology.rails,
            algorithm=transport.algorithm,
            path_count=transport.path_count,
            gpus_per_server=max(1, job.spec.gpus // len(servers)),
        )
        task.launch(sim, continuous=True,
                    connection_base=job.index * CONNECTION_STRIDE)
        return task

    def _per_gpu_bandwidth(self, job, task):
        per_host_gpus = max(1.0, job.spec.gpus / len(job.unique_hosts()))
        per_gpu = task.bus_bandwidth_bytes() * self.topology.rails / per_host_gpus
        return max(per_gpu * self.failure_penalty(job), _MIN_DP_BANDWIDTH)

    def _dp_volume(self, job):
        """Per-rank DP-allreduce bytes (memoized; read every block)."""
        volume = self._dp_volume_cache.get(job.index)
        if volume is None:
            volume = int(comm_volumes(
                MODELS[job.spec.model], job.spec.strategy, job.spec.framework
            ).dp)
            self._dp_volume_cache[job.index] = volume
        return volume

    def _iteration_breakdown(self, job, dp_bandwidth):
        return self.trainer.train(
            MODELS[job.spec.model],
            job.spec.strategy,
            framework=job.spec.framework,
            transport=job.spec.transport,
            secure_container=True,
            dp_bandwidth=dp_bandwidth,
        )

    def _isolated_iter_seconds(self, job):
        """The job alone on a clean fabric — the slowdown baseline.

        Also stashes the baseline's DP-allreduce share on the job
        (``iso_dp_seconds``), which the trace recorder hook reads for
        single-host jobs that never enter a congestion epoch.
        """
        if len(job.unique_hosts()) < 2:
            # Single-host ring: NVLink-assisted DP, no fabric traffic.
            breakdown = self._iteration_breakdown(
                job, CostModelConfig().intra_server_dp_bandwidth
            )
            job.iso_dp_seconds = breakdown.dp
            return breakdown.total
        sim = FluidSimulation(self.topology, dt=self.congestion_dt,
                              seed=self.seed, plan_cache=self._plan_cache)
        task = self._launch_ring(job, sim)
        sim.run(duration=self.congestion_seconds)
        per_host_gpus = max(1.0, job.spec.gpus / len(job.unique_hosts()))
        per_gpu = max(
            task.bus_bandwidth_bytes() * self.topology.rails / per_host_gpus,
            _MIN_DP_BANDWIDTH,
        )
        breakdown = self._iteration_breakdown(job, per_gpu)
        job.iso_dp_seconds = breakdown.dp
        return breakdown.total

    def _recompute_rates(self):
        """One congestion epoch: reprice every running job's iteration.

        The contended fluid solve is a pure function of (failed links,
        running-job membership and placement): the FluidSimulation is
        built fresh with the fleet seed, every RngStream it feeds is
        derived from job specs, and the trainer is stateless.  Repeat
        epochs — churny fleets constantly re-price the same steady state
        between arrivals — therefore reuse the memoized per-job
        iteration times instead of re-running the whole solve; cached
        values are bit-identical to recomputation by construction.
        """
        self.rate_epochs += 1
        running = [job for job in self.jobs if job.state is JobState.RUNNING]
        multi = [job for job in running if len(job.unique_hosts()) >= 2]
        if multi:
            epoch_key = (
                tuple(sorted(
                    (link.kind, link.key) for link in self.failed_links
                )),
                tuple(
                    (job.index, tuple(h.name for h in job.unique_hosts()))
                    for job in running
                ),
            )
            fluid = self._fluid_epoch_values(running, multi, epoch_key)
            if self.fidelity.active(self.engine.now):
                values = self._packet_epoch_values(
                    running, multi, epoch_key, fluid
                )
                regime = "packet"
            else:
                values, regime = fluid, "fluid"
            for job in multi:
                entry = values[job.index]
                job.iter_seconds = entry[0]
                job.dp_seconds = entry[1]
                job.rate_fidelity = regime
        for job in running:
            if len(job.unique_hosts()) < 2:
                job.iter_seconds = job.iso_iter_seconds
                job.dp_seconds = job.iso_dp_seconds
        if self.tracer is not None:
            self.tracer.counter("fleet", self.engine.now, {
                "running": self._running,
                "queued": len(self.scheduler.queue),
                "links_down": len(self.failed_links),
            }, track="fleet")
        self._record("congestion-epoch", running=self._running,
                     links_down=len(self.failed_links))

    def _fluid_epoch_values(self, running, multi, epoch_key):
        """The fluid solve for one epoch: {job.index: (iter, dp, bw)}.

        Computed exactly as before the hybrid engine existed (same task
        launch order, same float sequence) and memoized per epoch key;
        the per-GPU bandwidth rides along as the third element so packet
        windows can seed their CC contexts from the fluid fair share.
        """
        cached = self._epoch_cache.get(epoch_key)
        if cached is None:
            contended = ContendedTopology(
                self.topology, self._background_rates(running)
            )
            sim = FluidSimulation(contended, dt=self.congestion_dt,
                                  seed=self.seed,
                                  plan_cache=self._plan_cache)
            tasks = []
            for job in multi:
                tasks.append((job, self._launch_ring(job, sim)))
            sim.run(duration=self.congestion_seconds)
            cached = {}
            for job, task in tasks:
                per_gpu = self._per_gpu_bandwidth(job, task)
                breakdown = self._iteration_breakdown(job, per_gpu)
                cached[job.index] = (breakdown.total, breakdown.dp, per_gpu)
            self._epoch_cache[epoch_key] = cached
        return cached

    def _packet_epoch_values(self, running, multi, epoch_key, fluid_values):
        """Price a promoted epoch at packet granularity (memoized).

        The memo key extends the fluid epoch key with the active loss
        injections — loss is invisible to the fluid solver but very much
        visible to a packet window.  A solve that left any flow's CC
        window at its floor re-fires the ``cc-collapse`` trigger (on
        cache hits too, so replayed epochs extend windows identically).
        """
        loss_key = tuple(sorted(
            (link.kind, link.key, rate) for link, rate in self.active_losses
        ))
        key = (epoch_key, loss_key)
        cached = self._packet_epoch_cache.get(key)
        if cached is None:
            cached = self._solve_packet_epoch(running, multi, fluid_values)
            self._packet_epoch_cache[key] = cached
            self.fidelity_pricing_events += cached[1]
        values, _events, collapsed = cached
        if collapsed:
            self._fidelity_trigger("cc-collapse")
        return values

    def _solve_packet_epoch(self, running, multi, fluid_values):
        """One packet-level DES window over every multi-host DP ring.

        Promotion handoff: each ring edge's :class:`WindowCC` opens at
        the bandwidth-delay product of its fluid fair share, so flows
        start at steady state instead of slow-starting through the
        window.  Failed links become 100% loss on the real port — RTOs,
        re-spray and window cuts replace the analytic path-survival
        penalty — and active loss injections drop packets at their real
        rate.  The measured goodput is the ring's slowest edge over the
        window, scaled exactly like the fluid treatment (rail-0 ring
        times ``rails``, divided across the host's GPUs).
        """
        contended = ContendedTopology(
            self.topology, self._background_rates(running)
        )
        # Untraced and flightless on purpose: the pricing sim has its own
        # 0-based clock, and like the fluid epochs it is an inner solver —
        # fleet-level records (fidelity-promote/demote, congestion-epoch)
        # carry the observability.
        psim = PacketNetSim(contended, seed=self.seed)
        for link in self.failed_links:
            psim.inject_loss(link, 1.0)
        for link, rate in self.active_losses:
            psim.inject_loss(link, rate)
        window = _PRICING_WINDOW_SECONDS
        jobs_flows = []
        for job in multi:
            transport = TRANSPORTS[job.spec.transport]
            servers = [h.address for h in job.unique_hosts()]
            n = len(servers)
            per_host_gpus = max(1.0, job.spec.gpus / n)
            per_gpu = fluid_values[job.index][2]
            flow_rate = per_gpu * per_host_gpus / self.topology.rails
            init_window = min(
                _PRICING_MAX_WINDOW,
                max(64 * 1024, flow_rate * _PRICING_TARGET_RTT),
            )
            flows = []
            for i, src in enumerate(servers):
                dst = servers[(i + 1) % n]
                flows.append(MessageFlow(
                    psim,
                    "dp:%s:%d" % (job.spec.name, i),
                    src, dst, 0,
                    message_bytes=_PRICING_MESSAGE_BYTES,
                    algorithm=transport.algorithm,
                    path_count=transport.path_count,
                    mtu=_PRICING_MTU,
                    connection_id=job.index * CONNECTION_STRIDE + i,
                    cc=WindowCC(
                        init_window=init_window,
                        max_window=_PRICING_MAX_WINDOW,
                        additive_bytes=64 * 1024,
                        target_rtt=_PRICING_TARGET_RTT,
                    ),
                ))
            jobs_flows.append((job, flows))
        psim.run(until=window, max_events=_PRICING_MAX_EVENTS)
        values = {}
        collapsed = False
        for job, flows in jobs_flows:
            per_host_gpus = max(1.0, job.spec.gpus / len(flows))
            worst = min(flow.bytes_acked for flow in flows) / window
            per_gpu = max(
                worst * self.topology.rails / per_host_gpus,
                _MIN_DP_BANDWIDTH,
            )
            breakdown = self._iteration_breakdown(job, per_gpu)
            values[job.index] = (breakdown.total, breakdown.dp, per_gpu)
            for flow in flows:
                if flow.conn.cc.window <= flow.conn.cc.min_window:
                    collapsed = True
        return (values, psim.scheduler.events_executed, collapsed)

    # -- working-set sampling ----------------------------------------------

    def _sample_pages(self, container, region):
        """A bounded, evenly-strided page sample of the working set."""
        pages = []
        page = self.atc_page
        for _, gpa, length in container.gva_to_gpa_chunks(
            region.start, region.length
        ):
            cursor = gpa - (gpa % page)
            end = gpa + length
            while cursor < end:
                pages.append(cursor)
                cursor += page
        stride = max(1, len(pages) // self.sample_pages)
        return pages[::stride][: self.sample_pages]

    # -- telemetry ---------------------------------------------------------

    def health_report(self, grace=5.0):
        """The fleet health document: counters, jobs, SLOs, incidents.

        This is what ``python -m repro fleet --health-report`` writes and
        the runner's health suite merges; see
        :func:`repro.obs.slo.build_health_document` for the schema.
        """
        return build_health_document(
            self.snapshot(), self.result().rows(),
            board=self.slo, flight=self.flight, grace=grace,
        )

    def snapshot(self):
        return {
            "jobs_submitted": self.jobs_submitted,
            "jobs_queued": len(self.scheduler.queue),
            "jobs_starting": self._starting,
            "jobs_running": self._running,
            "jobs_completed": self.jobs_completed,
            "jobs_failed": self.jobs_failed,
            "rate_epochs": self.rate_epochs,
            "link_failures": self.link_failures,
            "links_down": len(self.failed_links),
            "loss_injections": self.loss_injections,
            "policy": self.scheduler.policy.value,
            "fidelity_mode": self.fidelity.mode.value,
            "fidelity_promotions": self.fidelity.promotions,
            "fidelity_extensions": self.fidelity.extensions,
            "fidelity_demotions": self.fidelity.demotions,
            "fidelity_triggers": self.fidelity.triggers,
            "fidelity_pricing_events": self.fidelity_pricing_events,
            "dp_bytes_fluid": self.dp_bytes_fluid,
            "dp_bytes_packet": self.dp_bytes_packet,
            "dp_bytes_total": self.dp_bytes_total,
        }

    def register_metrics(self, registry, prefix="cluster"):
        registry.add_provider("%s.fleet" % prefix, self.snapshot)
        registry.add_provider("%s.scheduler" % prefix, self.scheduler.snapshot)
        for host in self.scheduler.hosts:
            host.register_metrics(
                registry, prefix="%s.host.%s" % (prefix, host.name)
            )
        self.engine.register_metrics(registry, prefix="%s.engine" % prefix)
        return registry

    def __repr__(self):
        return "FleetSimulation(hosts=%d, jobs=%d, t=%.1fs)" % (
            len(self.scheduler.hosts), len(self.jobs), self.engine.now,
        )
