"""Placement policies and the admission queue.

The scheduler maps a job's containers onto fleet hosts without mutating
them: :meth:`FleetScheduler.place` works on a copy of every host's free
vector and returns the chosen ring (one host per container, in DP-ring
order), or ``None`` when the job cannot fit anywhere.  The fleet commits
the reservation afterwards.

Policies (Figure 16's placement sensitivity, at fleet scale):

* ``FIRST_FIT`` — fill hosts in address order; fast, fragments rings.
* ``SPREAD``    — round-robin one container per least-loaded host;
  maximizes per-host headroom, maximizes cross-segment ring edges.
* ``PACK``      — most-loaded fitting host first; minimizes the number
  of hosts a job touches (and its network footprint).
* ``DUAL_PLANE`` — topology-aware: fill segment-contiguously starting
  from the segment with the most free GPUs, so DP rings stay inside a
  ToR segment (zero agg-plane crossings) whenever one segment can hold
  the job — the re-ranked placement story of the paper.
"""

import collections
import enum


class PlacementPolicy(enum.Enum):
    FIRST_FIT = "first_fit"
    SPREAD = "spread"
    PACK = "pack"
    DUAL_PLANE = "dual_plane"


def _fits(free, demand):
    return all(free[i] >= demand[i] for i in range(len(demand)))


def _take(free, demand):
    for i in range(len(demand)):
        free[i] -= demand[i]


class FleetScheduler:
    """Pluggable placement over a fixed host set, with FIFO queuing."""

    def __init__(self, hosts, policy=PlacementPolicy.DUAL_PLANE):
        if not hosts:
            raise ValueError("a fleet needs at least one host")
        self.hosts = list(hosts)
        self.policy = policy
        self.queue = collections.deque()

    def enqueue(self, job):
        self.queue.append(job)

    def _demand(self, spec):
        """Per-container resource demand vector."""
        return (
            spec.gpus_per_container,
            spec.memory_bytes,
            1,  # one virtio-net SF per container
            spec.lut_entries_per_container,
        )

    def _host_order(self, free):
        """Candidate host order for the active policy (deterministic)."""
        if self.policy is PlacementPolicy.FIRST_FIT:
            return list(self.hosts)
        if self.policy is PlacementPolicy.SPREAD:
            # Tie-break by server index *then* segment so equally-free
            # hosts interleave segments: spread maximizes failure-domain
            # diversity, the opposite of DUAL_PLANE's ring locality.
            return sorted(
                self.hosts,
                key=lambda h: (-free[h.name][0], h.address.index, h.address.segment),
            )
        if self.policy is PlacementPolicy.PACK:
            return sorted(
                self.hosts,
                key=lambda h: (free[h.name][0], h.address.segment, h.address.index),
            )
        # DUAL_PLANE: whole segments ordered by free GPUs (desc), hosts in
        # address order inside each segment, so rings fill contiguously.
        segments = {}
        for host in self.hosts:
            segments.setdefault(host.address.segment, []).append(host)
        def segment_key(item):
            segment, members = item
            return (-sum(free[h.name][0] for h in members), segment)
        order = []
        for _, members in sorted(segments.items(), key=segment_key):
            order.extend(sorted(members, key=lambda h: h.address.index))
        return order

    def place(self, spec):
        """Choose one host per container, or ``None`` if the fleet is full.

        Pure: host ledgers are not touched; the caller commits via
        :meth:`repro.cluster.host.FleetHost.reserve`.
        """
        demand = self._demand(spec)
        free = {host.name: host.free_vector() for host in self.hosts}
        order = self._host_order(free)
        ring = []
        if self.policy is PlacementPolicy.SPREAD:
            # One container per host per lap; stop when a full lap places
            # nothing (every host is out of room).
            idx = 0
            stalled = 0
            while len(ring) < spec.containers and stalled < len(order):
                host = order[idx % len(order)]
                idx += 1
                if _fits(free[host.name], demand):
                    _take(free[host.name], demand)
                    ring.append(host)
                    stalled = 0
                else:
                    stalled += 1
        else:
            for host in order:
                while len(ring) < spec.containers and _fits(free[host.name], demand):
                    _take(free[host.name], demand)
                    ring.append(host)
                if len(ring) == spec.containers:
                    break
        if len(ring) < spec.containers:
            return None
        return ring

    def host_totals(self, spec, ring):
        """Aggregate a placement into per-host reservation totals."""
        demand = self._demand(spec)
        totals = {}
        for host in ring:
            entry = totals.setdefault(
                host.name,
                {"host": host, "gpus": 0, "dram_bytes": 0, "sfs": 0,
                 "lut_entries": 0},
            )
            entry["gpus"] += demand[0]
            entry["dram_bytes"] += demand[1]
            entry["sfs"] += demand[2]
            entry["lut_entries"] += demand[3]
        return totals

    def snapshot(self):
        return {
            "policy": self.policy.value,
            "hosts": len(self.hosts),
            "queue_depth": len(self.queue),
        }

    def __repr__(self):
        return "FleetScheduler(%s, hosts=%d, queued=%d)" % (
            self.policy.value, len(self.hosts), len(self.queue),
        )
