"""Tenant jobs and the seeded arrival process.

A :class:`JobSpec` is what a tenant submits: a model, a parallel shape
(``containers`` secure containers of ``gpus_per_container`` GPUs each), a
memory footprint, and a lifetime in training iterations.  A :class:`Job`
is the fleet's runtime record of one submission moving through
``QUEUED -> STARTING -> RUNNING -> COMPLETED/FAILED``.

Arrivals are a merged Poisson process, one seeded
:class:`repro.sim.rng.RngStream` child per tenant, so adding a tenant
never perturbs the other tenants' draws (the repo-wide determinism
contract).
"""

import enum

from repro.sim.rng import RngStream
from repro.sim.units import GiB, MiB
from repro.training.models import MODELS, Framework, ParallelStrategy
from repro.virt.hypervisor import MemoryMode


class JobState(enum.Enum):
    QUEUED = "queued"
    STARTING = "starting"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"


class JobSpec:
    """What a tenant asks the fleet for."""

    def __init__(
        self,
        name,
        tenant,
        model="Llama-2B",
        containers=2,
        gpus_per_container=2,
        memory_bytes=8 * GiB,
        working_set_bytes=16 * MiB,
        iterations=10,
        memory_mode=MemoryMode.PVDMA,
        framework=Framework.MEGATRON,
        transport="stellar",
        lut_entries_per_container=0,
        abort_after=None,
    ):
        if model not in MODELS:
            raise ValueError("unknown model %r (have %s)"
                             % (model, ", ".join(sorted(MODELS))))
        if containers < 1:
            raise ValueError("job %r needs at least one container" % name)
        self.name = name
        self.tenant = tenant
        self.model = model
        self.containers = containers
        self.gpus_per_container = gpus_per_container
        self.memory_bytes = int(memory_bytes)
        self.working_set_bytes = int(working_set_bytes)
        self.iterations = iterations
        self.memory_mode = memory_mode
        self.framework = framework
        self.transport = transport
        #: Legacy VF-style deployments burn one switch-LUT entry per
        #: container (Section 3.1 problem 3); Stellar vdevices share the
        #: parent BDF and burn none.
        self.lut_entries_per_container = lut_entries_per_container
        #: Simulated seconds after reaching RUNNING at which the tenant
        #: kills the job (models crashes/preemption churn); ``None`` runs
        #: to completion.
        self.abort_after = abort_after

    @property
    def gpus(self):
        return self.containers * self.gpus_per_container

    @property
    def strategy(self):
        """TP within a container, DP across containers (ring traffic)."""
        return ParallelStrategy(
            tp=self.gpus_per_container, pp=1, dp=self.containers,
        )

    def __repr__(self):
        return "JobSpec(%r, tenant=%r, %s, %dx%d gpus, %s)" % (
            self.name, self.tenant, self.model, self.containers,
            self.gpus_per_container, self.memory_mode.value,
        )


class Job:
    """Runtime record of one submitted job."""

    def __init__(self, spec, submit_time):
        self.spec = spec
        self.submit_time = submit_time
        self.state = JobState.QUEUED
        self.index = None            # fleet-assigned, keys connection ids
        self.start_time = None       # admission (containers start booting)
        self.running_time = None     # first iteration possible
        self.end_time = None
        self.startup_seconds = None
        self.hosts = []              # one FleetHost per container, ring order
        self.containers = []         # RunDContainer per placement slot
        self.touch_pages = {}        # container name -> sampled GPA pages
        self.iterations_done = 0
        #: ``(sim time, iterations in block, seconds/iteration, penalty)``
        #: — the series the failure/recovery assertions read.
        self.iteration_log = []
        self.slowdown_samples = []   # iter_seconds / isolated iter_seconds
        self.iter_seconds = None     # current contended estimate
        self.iso_iter_seconds = None # measured alone on a clean fabric
        self.dp_seconds = None       # DP-allreduce share of iter_seconds
        self.iso_dp_seconds = None   # DP share of the isolated baseline
        self.abort_event = None
        #: Which engine priced the current iter_seconds ("fluid" or
        #: "packet"), and the DP-allreduce byte ledger split by regime.
        #: Bytes are attributed at block start to the regime that priced
        #: the block; fluid + packet must always equal total (the
        #: SimSanitizer cross-fidelity conservation check).
        self.rate_fidelity = "fluid"
        self.dp_bytes_fluid = 0
        self.dp_bytes_packet = 0
        self.dp_bytes_total = 0

    @property
    def wait_seconds(self):
        """Queue wait: submission to admission (None while queued)."""
        if self.start_time is None:
            return None
        return self.start_time - self.submit_time

    def unique_hosts(self):
        """Ring order over distinct hosts (containers may share a host)."""
        seen = {}
        for host in self.hosts:
            if host.name not in seen:
                seen[host.name] = host
        return list(seen.values())

    @property
    def done(self):
        return self.iterations_done >= self.spec.iterations

    def goodput(self):
        """Iterations per second over the RUNNING window (0 if never ran)."""
        if self.running_time is None or not self.iterations_done:
            return 0.0
        end = self.end_time
        if end is None or end <= self.running_time:
            return 0.0
        return self.iterations_done / (end - self.running_time)

    def __repr__(self):
        return "Job(%r, %s, done=%d/%d)" % (
            self.spec.name, self.state.value, self.iterations_done,
            self.spec.iterations,
        )


class TenantProfile:
    """One tenant's statistical behaviour: arrival rate + job templates."""

    def __init__(self, name, arrival_rate, templates, max_jobs=4):
        if arrival_rate <= 0:
            raise ValueError("arrival rate must be positive: %r" % arrival_rate)
        if not templates:
            raise ValueError("tenant %r needs at least one job template" % name)
        self.name = name
        self.arrival_rate = arrival_rate
        self.templates = list(templates)
        self.max_jobs = max_jobs

    def __repr__(self):
        return "TenantProfile(%r, rate=%g/s, %d template(s))" % (
            self.name, self.arrival_rate, len(self.templates),
        )


class JobArrivalProcess:
    """Seeded multi-tenant Poisson arrivals."""

    def __init__(self, tenants, seed=0):
        self.tenants = list(tenants)
        self.seed = seed

    def generate(self, horizon):
        """``[(arrival time, JobSpec)]`` sorted by (time, job name).

        Each tenant draws from its own child stream, so the merged
        schedule is stable under adding/removing other tenants.
        """
        arrivals = []
        for tenant in self.tenants:
            stream = RngStream(self.seed, "arrivals", tenant.name)
            at = 0.0
            for k in range(tenant.max_jobs):
                at += stream.expovariate(tenant.arrival_rate)
                if at > horizon:
                    break
                template = stream.choice(tenant.templates)
                spec = JobSpec(
                    name="%s-j%d" % (tenant.name, k),
                    tenant=tenant.name,
                    **template,
                )
                arrivals.append((at, spec))
        return sorted(arrivals, key=lambda pair: (pair[0], pair[1].name))

    def __repr__(self):
        return "JobArrivalProcess(%d tenants, seed=%d)" % (
            len(self.tenants), self.seed,
        )
