"""A fleet host: a real Stellar server plus admission accounting.

:class:`FleetHost` owns an honest :class:`repro.core.StellarHost` (PCIe
fabric, RNICs, hypervisor with PVDMA, SF managers) so container churn
pays real boot/pinning/device costs, and layers the scheduler-facing
bookkeeping on top: finite GPUs, pinnable DRAM, scalable functions and
switch-LUT entries, reserved per job and released on teardown.

:class:`SharedAtc` is the multi-tenant variant of
:class:`repro.pcie.atc.DeviceAtc`: one bounded RNIC-side translation
cache shared by *all* tenant domains on the host, keyed by
``(domain, page)``.  Co-located tenants evict each other, which is how
the Figure 8/14 miss-rate growth appears at fleet scale.
"""

from repro import calibration
from repro.core.stellar import StellarHost
from repro.memory.address import align_down
from repro.memory.caches import TranslationCache
from repro.sim.units import GiB
from repro.virt.hypervisor import MemoryMode


class FleetHostError(Exception):
    """Admission-accounting violation on a fleet host."""


class SharedAtc:
    """One host's RNIC ATC shared across every tenant IOMMU domain."""

    def __init__(self, iommu, capacity_pages=calibration.ATC_CAPACITY_PAGES,
                 page_size=calibration.GDR_PAGE_BYTES):
        self.iommu = iommu
        self.page_size = page_size
        self.cache = TranslationCache(capacity_pages, name="shared-atc")
        self.translation_seconds = 0.0

    def access(self, domain_name, da):
        """Translate one device address; return True on an ATC hit.

        Misses pay the real ATS round trip against the host IOMMU (and a
        table walk past the IOTLB reach) and install the reply, evicting
        some other tenant's page when the cache is full.
        """
        page = align_down(da, self.page_size)
        key = (domain_name, page)
        hit, _ = self.cache.lookup(key)
        if hit:
            self.translation_seconds += calibration.ATC_HIT_SECONDS
            return True
        result = self.iommu.ats_translate(domain_name, page)
        self.cache.insert(key, (result.hpa, result.kind))
        self.translation_seconds += calibration.ATC_HIT_SECONDS + result.latency
        return False

    def access_many(self, domain_name, das):
        """Batched :meth:`access` over a page sample; returns the hit count.

        Identical per-page semantics and accounting order (the
        ``translation_seconds`` float accumulates in the same sequence,
        so fleet digests are unchanged) — but bound methods and a local
        accumulator drop the per-page call overhead that dominates
        fleet-scale iteration touching.
        """
        hits = 0
        page_size = self.page_size
        lookup = self.cache.lookup
        insert = self.cache.insert
        ats_translate = self.iommu.ats_translate
        hit_seconds = calibration.ATC_HIT_SECONDS
        translation_seconds = self.translation_seconds
        for da in das:
            key = (domain_name, da - (da % page_size))
            hit, _ = lookup(key)
            if hit:
                translation_seconds += hit_seconds
                hits += 1
            else:
                result = ats_translate(domain_name, key[1])
                insert(key, (result.hpa, result.kind))
                translation_seconds += hit_seconds + result.latency
        self.translation_seconds = translation_seconds
        return hits

    def invalidate_domain(self, domain_name):
        """ATS invalidation when a tenant's container stops."""
        self.cache.invalidate_where(lambda key: key[0] == domain_name)

    def snapshot(self):
        snap = {}
        for key, value in self.cache.snapshot().items():
            snap[key] = value
        snap["translation_seconds"] = self.translation_seconds
        return snap

    def __repr__(self):
        return "SharedAtc(%r)" % (self.cache,)


class FleetHost:
    """One schedulable server: real Stellar stack + resource ledger."""

    def __init__(
        self,
        name,
        address,
        gpus=calibration.SERVER_GPUS,
        rnics=calibration.SERVER_RNICS,
        dram_bytes=256 * GiB,
        gpu_hbm_bytes=8 * GiB,
        sf_capacity=None,
        atc_capacity=calibration.ATC_CAPACITY_PAGES,
    ):
        self.name = name
        #: :class:`repro.net.topology.ServerAddress` of this server on the
        #: shared dual-plane fabric.
        self.address = address
        # The physical DRAM window is built far larger than the admission
        # capacity: the fabric's host-buffer allocator is a bump cursor,
        # so a churning host allocates fresh guest RAM for every boot even
        # though stopped containers released their *accounted* bytes.
        self.host = StellarHost.build(
            host_memory_bytes=64 * dram_bytes,
            gpus=gpus,
            rnics=rnics,
            gpu_hbm_bytes=gpu_hbm_bytes,
        )
        self.gpu_capacity = len(self.host.gpus)
        self.dram_capacity = int(dram_bytes)
        self.sf_capacity = sf_capacity if sf_capacity is not None else rnics * 64
        self.lut_capacity = sum(
            switch.lut_capacity for switch in self.host.fabric.switches
        )
        #: LUT entries burnt at build time (one per Stellar RNIC parent
        #: function); legacy per-container VFs add to this.
        self.lut_base = sum(
            switch.snapshot()["lut_used"] for switch in self.host.fabric.switches
        )
        self.atc = SharedAtc(self.host.hypervisor.iommu, capacity_pages=atc_capacity)
        self._reservations = {}  # job name -> resource dict
        self._rnic_cursor = 0

    # -- admission ledger --------------------------------------------------

    def _reserved(self, key):
        return sum(entry[key] for entry in self._reservations.values())

    @property
    def gpus_reserved(self):
        return self._reserved("gpus")

    @property
    def dram_reserved(self):
        return self._reserved("dram_bytes")

    @property
    def sfs_reserved(self):
        return self._reserved("sfs")

    @property
    def lut_used(self):
        return self.lut_base + self._reserved("lut_entries")

    @property
    def gpus_free(self):
        return self.gpu_capacity - self.gpus_reserved

    @property
    def dram_free(self):
        return self.dram_capacity - self.dram_reserved

    @property
    def sfs_free(self):
        return self.sf_capacity - self.sfs_reserved

    @property
    def lut_free(self):
        return self.lut_capacity - self.lut_used

    def free_vector(self):
        """``[gpus, dram, sfs, lut]`` headroom, for placement arithmetic."""
        return [self.gpus_free, self.dram_free, self.sfs_free, self.lut_free]

    def can_fit(self, gpus, dram_bytes, sfs, lut_entries=0):
        return (
            gpus <= self.gpus_free
            and dram_bytes <= self.dram_free
            and sfs <= self.sfs_free
            and lut_entries <= self.lut_free
        )

    def reserve(self, job_name, gpus, dram_bytes, sfs, lut_entries=0):
        """Commit a job's share of this host; raises when over capacity."""
        if job_name in self._reservations:
            raise FleetHostError(
                "job %r already holds a reservation on %s" % (job_name, self.name)
            )
        if not self.can_fit(gpus, dram_bytes, sfs, lut_entries):
            raise FleetHostError(
                "host %s cannot fit job %r (free gpus=%d dram=%d sfs=%d lut=%d)"
                % (self.name, job_name, self.gpus_free, self.dram_free,
                   self.sfs_free, self.lut_free)
            )
        self._reservations[job_name] = {
            "gpus": gpus,
            "dram_bytes": int(dram_bytes),
            "sfs": sfs,
            "lut_entries": lut_entries,
        }

    def release(self, job_name):
        """Return a job's resources to the pool (idempotent)."""
        return self._reservations.pop(job_name, None)

    # -- container lifecycle ----------------------------------------------

    @property
    def rnic_count(self):
        return len(self.host.rnics)

    def launch(self, name, memory_bytes, memory_mode=MemoryMode.PVDMA):
        """Boot a container, striping containers over the host's RNICs."""
        rnic_index = self._rnic_cursor % self.rnic_count
        self._rnic_cursor += 1
        return self.host.launch_container(
            name, memory_bytes, rnic_index=rnic_index, memory_mode=memory_mode
        )

    def prepare_working_set(self, container, region):
        """PVDMA-pin a guest buffer; returns the simulated seconds spent."""
        return self.host.dma_prepare(container, region)

    def stop(self, container, abnormal=False):
        """Stop a container, shooting down its shared-ATC entries first."""
        self.atc.invalidate_domain(container.domain_name)
        return self.host.stop_container(container, abnormal=abnormal)

    def touch(self, container, pages):
        """One iteration's worth of device accesses to a working set."""
        return self.atc.access_many(container.domain_name, pages)

    # -- telemetry ---------------------------------------------------------

    def snapshot(self):
        return {
            "gpus_used": self.gpus_reserved,
            "gpus_capacity": self.gpu_capacity,
            "dram_used": self.dram_reserved,
            "dram_capacity": self.dram_capacity,
            "sfs_used": self.sfs_reserved,
            "sfs_capacity": self.sf_capacity,
            "lut_used": self.lut_used,
            "lut_capacity": self.lut_capacity,
            "jobs": len(self._reservations),
            "containers": len(self.host.hypervisor.containers),
            "pvdma_pin_seconds": self.host.pvdma.total_pin_seconds,
            "atc": self.atc.snapshot(),
        }

    def register_metrics(self, registry, prefix=None):
        if prefix is None:
            prefix = "cluster.host.%s" % self.name
        registry.add_provider(prefix, self.snapshot)
        return registry

    def __repr__(self):
        return "FleetHost(%r, %s, gpus %d/%d, jobs=%d)" % (
            self.name, self.address, self.gpus_reserved, self.gpu_capacity,
            len(self._reservations),
        )
