"""Hybrid-fidelity control: when the fleet deserves packet-level truth.

The fleet prices congestion epochs on the vectorized fluid solver by
default — cheap, and exact for steady-state max-min sharing.  The
interesting behaviour at 1024 hosts is bursty and local in time (link
failures, loss storms, admission stampedes, CC collapse), so
:class:`FidelityController` promotes a *bounded sim-time window* to
packet-level DES when a trigger fires, extends the window when triggers
coalesce, and demotes back to fluid with hysteresis once the window has
been quiet.  ASTRA-sim 3.0 calls this "high fidelity only where it
matters"; here it is the dial ROADMAP item 1 asks for.

Everything is a pure function of trigger (sim-time, kind) sequences:
window boundaries are derived from simulated time only — never wall
clock, never RNG — so hybrid runs stay double-run digest-identical.

The module is deliberately free of ``repro.net`` imports: it is a policy
object the cluster layer owns (``cluster`` may import it; ``net`` may
not import ``cluster`` — the simlint layer DAG enforces that), and the
actual packet pricing lives in :mod:`repro.cluster.fleet`.
"""

import enum

#: The trigger catalogue (see EXPERIMENTS.md "Hybrid fidelity").  Every
#: promotion/extension names one of these kinds in its flight record.
TRIGGER_KINDS = (
    "link-fail",        # inject_link_failure landed on a live route
    "link-heal",        # capacity returning is a transient too
    "loss-inject",      # explicit loss injection started or cleared
    "admission-burst",  # admission queue depth crossed the threshold
    "cc-collapse",      # a priced flow's CC window hit its floor
)

#: Defaults, in simulated seconds.  A failure transient at fleet scale
#: (re-spray + CC re-convergence + queue drain) settles well inside a
#: few seconds of simulated time; hysteresis keeps flapping links from
#: thrashing the engine between fidelities.
DEFAULT_WINDOW_SECONDS = 4.0
DEFAULT_HYSTERESIS_SECONDS = 2.0
DEFAULT_ADMISSION_BURST_DEPTH = 3


class Fidelity(enum.Enum):
    """How congestion epochs are priced."""

    FLUID = "fluid"     # vectorized fluid solver everywhere (default)
    PACKET = "packet"   # packet-level DES everywhere (the costly truth)
    HYBRID = "hybrid"   # fluid + auto-promoted packet windows


class FidelityController:
    """Deterministic promote/extend/demote state machine.

    One instance rides along a :class:`repro.cluster.fleet.FleetSimulation`.
    The fleet reports triggers via :meth:`on_trigger`; the controller
    answers with the action taken (``"promote"``, ``"extend"`` or
    ``None``) and the fleet schedules the demotion callback at
    :meth:`release_time`.  :meth:`active` is the only question the epoch
    loop asks: *is sim-time ``now`` inside a promoted window?*

    Window semantics — all times are simulated seconds:

    * a trigger at ``t`` with no open window opens ``[t, t + window)``;
    * a trigger while ``now < release_time()`` (window still open, or in
      its hysteresis tail) *extends* the window to
      ``max(end, t + window)`` — overlapping triggers coalesce into one
      window instead of stacking;
    * the window stays promoted through its hysteresis tail
      ``[end, end + hysteresis)``; a demotion fires only once no trigger
      has landed for a full hysteresis period;
    * a trigger exactly at ``release_time()`` starts a *new* window (the
      boundary belongs to the demotion).
    """

    def __init__(
        self,
        mode=Fidelity.FLUID,
        window_seconds=DEFAULT_WINDOW_SECONDS,
        hysteresis_seconds=DEFAULT_HYSTERESIS_SECONDS,
        admission_burst_depth=DEFAULT_ADMISSION_BURST_DEPTH,
    ):
        self.mode = Fidelity(mode)
        if window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        if hysteresis_seconds < 0:
            raise ValueError("hysteresis_seconds must be non-negative")
        self.window_seconds = float(window_seconds)
        self.hysteresis_seconds = float(hysteresis_seconds)
        self.admission_burst_depth = int(admission_burst_depth)
        #: Closed windows: ``(start, last-trigger end, demoted-at)``.
        self.windows = []
        self.promotions = 0
        self.extensions = 0
        self.demotions = 0
        self.trigger_counts = {}
        self._window_start = None
        self._window_end = None

    # -- the state machine -------------------------------------------------

    def on_trigger(self, now, kind):
        """Report a trigger; returns ``"promote"``, ``"extend"`` or None.

        Counts every trigger in every mode (the counters are cheap,
        deterministic observability), but only HYBRID mode opens
        windows: FLUID never promotes and PACKET is always promoted.
        """
        self.trigger_counts[kind] = self.trigger_counts.get(kind, 0) + 1
        if self.mode is not Fidelity.HYBRID:
            return None
        release = self.release_time()
        if release is not None and now >= release:
            # The demotion callback for this window has not run yet (it
            # is queued at `release` behind us) — close it here so the
            # late callback sees a fresh window and stands down.
            self._close(release)
        if self._window_end is None:
            self._window_start = now
            self._window_end = now + self.window_seconds
            self.promotions += 1
            return "promote"
        self._window_end = max(self._window_end, now + self.window_seconds)
        self.extensions += 1
        return "extend"

    def note_demotion(self, now):
        """Close the open window if its release time has truly passed.

        Returns True when a window was closed; False for stale callbacks
        (the window was extended after this demotion was scheduled — a
        later callback is already armed at the new release time).
        """
        release = self.release_time()
        if release is None or now < release:
            return False
        self._close(now)
        return True

    def _close(self, at):
        self.windows.append((self._window_start, self._window_end, at))
        self.demotions += 1
        self._window_start = None
        self._window_end = None

    # -- queries -----------------------------------------------------------

    def active(self, now):
        """True when epoch pricing at sim-time ``now`` should be packet."""
        if self.mode is Fidelity.PACKET:
            return True
        if self.mode is Fidelity.FLUID or self._window_end is None:
            return False
        return now < self._window_end + self.hysteresis_seconds

    def release_time(self):
        """When the open window (plus hysteresis) expires; None if closed."""
        if self._window_end is None:
            return None
        return self._window_end + self.hysteresis_seconds

    def window_open(self):
        return self._window_end is not None

    @property
    def triggers(self):
        return sum(self.trigger_counts.values())

    @classmethod
    def coerce(cls, value):
        """Accept a mode string, a :class:`Fidelity`, or a controller."""
        if isinstance(value, cls):
            return value
        return cls(mode=Fidelity(value))

    def snapshot(self):
        return {
            "mode": self.mode.value,
            "window_seconds": self.window_seconds,
            "hysteresis_seconds": self.hysteresis_seconds,
            "promotions": self.promotions,
            "extensions": self.extensions,
            "demotions": self.demotions,
            "triggers": self.triggers,
            "windows_closed": len(self.windows),
            "window_open": int(self.window_open()),
        }

    def __repr__(self):
        return "FidelityController(%s, %d window(s), %d trigger(s))" % (
            self.mode.value, len(self.windows) + int(self.window_open()),
            self.triggers,
        )
