"""RNIC substrate: verbs resources, the MTT, DMA datapaths, the embedded
vSwitch with its steering pitfalls, and window-based congestion control.
"""

from repro.rnic.cc import PerPathCC, WindowCC
from repro.rnic.datapath import AccessResult, DatapathMode, RnicDatapath
from repro.rnic.mtt import Mtt, MttEntry, MttError
from repro.rnic.rnic import BaseRnic
from repro.rnic.verbs import (
    CompletionQueue,
    MemoryRegionHandle,
    Opcode,
    ProtectionDomain,
    QpState,
    QueuePair,
    VerbsError,
    WcStatus,
    WorkCompletion,
    WorkRequest,
    connect_qps,
)
from repro.rnic.vswitch import (
    FlowRule,
    KernelRoutingTable,
    LookupResult,
    SteeringError,
    TrafficClass,
    VSwitch,
    VxlanHeader,
    encapsulate,
)

__all__ = [
    "PerPathCC",
    "WindowCC",
    "AccessResult",
    "DatapathMode",
    "RnicDatapath",
    "Mtt",
    "MttEntry",
    "MttError",
    "BaseRnic",
    "CompletionQueue",
    "MemoryRegionHandle",
    "Opcode",
    "ProtectionDomain",
    "QpState",
    "QueuePair",
    "VerbsError",
    "WcStatus",
    "WorkCompletion",
    "WorkRequest",
    "connect_qps",
    "FlowRule",
    "KernelRoutingTable",
    "LookupResult",
    "SteeringError",
    "TrafficClass",
    "VSwitch",
    "VxlanHeader",
    "encapsulate",
]
