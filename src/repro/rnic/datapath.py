"""RNIC DMA datapaths: how a verbs access becomes PCIe TLPs.

Three datapaths cover every system in the paper:

* ``DIRECT`` — the MTT already holds final HPAs (bare-metal, or Stellar's
  eMTT).  GPU-owned pages are emitted with AT=TRANSLATED and ride switch
  P2P at full rate (Figure 7); host pages go to the RC, whose path to DRAM
  is full-rate.
* ``ATS_ATC`` — the MTT holds device addresses; each page consults the
  RNIC's ATC and, on a miss, the IOMMU via ATS.  This is the CX6 baseline
  of Figure 8, where translation stalls cost real bandwidth.
* ``RC_ROUTED`` — the MTT holds device addresses and the RNIC emits
  untranslated TLPs that the root complex translates and reflects.  This is
  the HyV/MasQ GDR path of Figure 14, rate-capped by the RC.
"""

import enum

from repro import calibration
from repro.memory.address import MemoryKind
from repro.pcie.tlp import AddressType


class DatapathMode(enum.Enum):
    DIRECT = "direct"
    ATS_ATC = "ats_atc"
    RC_ROUTED = "rc_routed"


class AccessResult:
    """One page's translation outcome: what to emit and what it stalled."""

    __slots__ = ("address", "at", "kind", "stall", "atc_hit", "iotlb_hit")

    def __init__(self, address, at, kind, stall, atc_hit=None, iotlb_hit=None):
        self.address = address
        self.at = at
        self.kind = kind
        self.stall = stall
        self.atc_hit = atc_hit
        self.iotlb_hit = iotlb_hit

    def __repr__(self):
        return "AccessResult(0x%x, %s, stall=%.0fns)" % (
            self.address,
            self.at.name,
            self.stall * 1e9,
        )


class RnicDatapath:
    """Translates (mtt_key, va) accesses into TLP parameters + stall time."""

    def __init__(self, mtt, mode, atc=None,
                 ats_pipeline_depth=calibration.ATS_PIPELINE_DEPTH):
        if mode is DatapathMode.ATS_ATC and atc is None:
            raise ValueError("ATS_ATC datapath requires a DeviceAtc")
        self.mtt = mtt
        self.mode = mode
        self.atc = atc
        self.ats_pipeline_depth = ats_pipeline_depth

    def access(self, key, va, length=1):
        """Translate one access (within a single page) for emission."""
        chunks, entry = self.mtt.lookup(key, va, length)
        target = chunks[0][1]
        stall = calibration.MTT_LOOKUP_SECONDS
        if entry.translated:
            # Final HPA in hand (bare-metal registration or an eMTT GPU
            # entry): emit pre-translated so switches route P2P / the RC
            # skips the IOMMU.
            return AccessResult(target, AddressType.TRANSLATED, entry.kind, stall)
        if self.mode is DatapathMode.ATS_ATC:
            result = self.atc.translate(target)
            # ATS requests are pipelined; the per-access cost is the miss
            # latency amortized over the outstanding-request window.
            stall += (
                result.latency
                if result.atc_hit
                else result.latency / self.ats_pipeline_depth
            )
            return AccessResult(
                result.hpa,
                AddressType.TRANSLATED,
                result.kind,
                stall,
                atc_hit=result.atc_hit,
                iotlb_hit=result.iotlb_hit,
            )
        # RC_ROUTED: emit the device address untranslated and let the root
        # complex do the work (and become the bottleneck).
        return AccessResult(target, AddressType.UNTRANSLATED, entry.kind, stall)

    def rate_ceiling(self, kind, wire_rate):
        """Sustained-rate cap imposed by the datapath for this memory kind."""
        if self.mode is DatapathMode.RC_ROUTED and kind is MemoryKind.GPU_HBM:
            return min(wire_rate, calibration.GDR_RC_ROUTED_RATE)
        return wire_rate

    def __repr__(self):
        return "RnicDatapath(mode=%s)" % self.mode.value
