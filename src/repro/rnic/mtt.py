"""The RNIC Memory Translation Table (MTT).

The MTT maps a memory region's virtual addresses to the target addresses
the RNIC should emit on PCIe (Figure 1c).  In a bare-metal environment the
targets are final HPAs; in a RunD container they are GPAs that still need
IOMMU translation.  Stellar's eMTT (:mod:`repro.core.emtt`) extends the
entries with the backing kind so the RNIC can choose the TLP AT field.
"""

from repro import calibration
from repro.memory.address import AddressError
from repro.memory.range_table import RangeMap


class MttError(AddressError):
    """Raised on invalid MTT operations (bad key, out-of-bounds access)."""


class MttEntry:
    """Translation state for one registered memory region (one key)."""

    __slots__ = ("key", "va_base", "length", "kind", "translated", "map")

    def __init__(self, key, va_base, length, kind, translated):
        self.key = key
        self.va_base = va_base
        self.length = length
        self.kind = kind
        #: True when ``map`` holds final HPAs (bare metal / eMTT);
        #: False when it holds device addresses needing IOMMU translation.
        self.translated = translated
        self.map = RangeMap()

    def covers(self, va, length):
        return self.va_base <= va and va + length <= self.va_base + self.length

    def __repr__(self):
        return "MttEntry(key=%d, va=0x%x, len=%d, kind=%s, translated=%s)" % (
            self.key,
            self.va_base,
            self.length,
            self.kind.value if self.kind else None,
            self.translated,
        )


class Mtt:
    """Capacity-bounded table of region translations keyed by lkey/rkey."""

    def __init__(self, capacity=calibration.MTT_CAPACITY_ENTRIES):
        self.capacity = capacity
        self._entries = {}
        self._next_key = 1
        self.lookups = 0

    def __len__(self):
        return len(self._entries)

    def register(self, va_base, chunks, kind, translated):
        """Install a region and return its key.

        ``chunks`` is a list of ``(va, target, length)`` triples (typically
        from :meth:`RangeMap.translate_region`) covering the region
        contiguously in VA space.
        """
        if not chunks:
            raise MttError("cannot register a region with no chunks")
        if len(self._entries) >= self.capacity:
            raise MttError("MTT full (%d entries)" % self.capacity)
        length = sum(chunk_len for _, _, chunk_len in chunks)
        expected_va = va_base
        for va, _, chunk_len in chunks:
            if va != expected_va:
                raise MttError(
                    "chunks not VA-contiguous: expected 0x%x, got 0x%x"
                    % (expected_va, va)
                )
            expected_va += chunk_len
        key = self._next_key
        self._next_key += 1
        entry = MttEntry(key, va_base, length, kind, translated)
        for va, target, chunk_len in chunks:
            entry.map.map_range(va, target, chunk_len, kind=kind)
        self._entries[key] = entry
        return key

    def deregister(self, key):
        if key not in self._entries:
            raise MttError("deregister of unknown MTT key %r" % key)
        del self._entries[key]

    def entry(self, key):
        try:
            return self._entries[key]
        except KeyError:
            raise MttError("unknown MTT key %r" % key)

    def lookup(self, key, va, length=1):
        """Translate ``[va, va+length)`` under ``key``.

        Returns ``(chunks, entry)`` where chunks are ``(va, target, length)``
        triples in target space.
        """
        entry = self.entry(key)
        if not entry.covers(va, length):
            raise MttError(
                "access [0x%x, 0x%x) outside region key=%d [0x%x, 0x%x)"
                % (va, va + length, key, entry.va_base, entry.va_base + entry.length)
            )
        self.lookups += 1
        return entry.map.translate_region(va, length), entry

    def __repr__(self):
        return "Mtt(%d/%d entries)" % (len(self._entries), self.capacity)
