"""The RNIC's embedded vSwitch: hardware flow steering and VxLAN encap.

In the legacy framework (Figure 2), TCP and RDMA traffic share one ordered
hardware rule pipeline, and a host Controller offloads VxLAN entries for
active connections.  Two production incidents live here (Section 3.1
problem 5):

* rule-order interference — TCP entries installed ahead of RDMA entries
  lengthen every RDMA packet's lookup;
* the zero-MAC bug — the driver fills VxLAN outer MACs from its kernel
  routing table, which says "local delivery" for two VFs on the same
  server even when they sit on *different* RNICs and must cross the ToR.
"""

import enum

#: Per-rule match cost in the hardware TCAM/hash pipeline.  The absolute
#: value only matters relative to rule position.
_RULE_LOOKUP_SECONDS = 5e-9


class TrafficClass(enum.Enum):
    TCP = "tcp"
    RDMA = "rdma"
    ARP = "arp"
    UDP = "udp"


class SteeringError(Exception):
    """Raised when the vSwitch cannot steer a packet."""


class FlowRule:
    """One steering rule: exact-match fields -> action label."""

    def __init__(self, traffic_class, match, action, vxlan_vni=None):
        self.traffic_class = traffic_class
        self.match = dict(match)
        self.action = action
        self.vxlan_vni = vxlan_vni
        self.hit_count = 0

    def matches(self, header):
        return all(header.get(field) == value for field, value in self.match.items())

    def __repr__(self):
        return "FlowRule(%s, %r -> %r)" % (
            self.traffic_class.value,
            self.match,
            self.action,
        )


class LookupResult:
    __slots__ = ("rule", "position", "latency")

    def __init__(self, rule, position, latency):
        self.rule = rule
        self.position = position
        self.latency = latency

    def __repr__(self):
        return "LookupResult(pos=%d, latency=%.0fns)" % (
            self.position,
            self.latency * 1e9,
        )


class VSwitch:
    """An ordered shared rule pipeline with bounded capacity."""

    def __init__(self, capacity=4096):
        self.capacity = capacity
        self.rules = []
        self.lookup_count = 0
        self.miss_count = 0

    def install(self, rule, position=None):
        """Insert a rule; ``position=None`` appends (hardware default)."""
        if len(self.rules) >= self.capacity:
            raise SteeringError("vSwitch rule table full (%d)" % self.capacity)
        if position is None:
            self.rules.append(rule)
        else:
            self.rules.insert(position, rule)
        return rule

    def remove(self, rule):
        self.rules.remove(rule)

    def remove_class(self, traffic_class):
        """Drop all rules of one traffic class (management churn)."""
        before = len(self.rules)
        self.rules = [r for r in self.rules if r.traffic_class is not traffic_class]
        return before - len(self.rules)

    def lookup(self, header):
        """Linear-priority match; latency grows with the matched position.

        This is the problem-5a mechanism: an RDMA packet whose rule sits
        behind a pile of TCP entries pays for every entry it walks past.
        """
        self.lookup_count += 1
        for position, rule in enumerate(self.rules):
            if rule.matches(header):
                rule.hit_count += 1
                return LookupResult(rule, position, (position + 1) * _RULE_LOOKUP_SECONDS)
        self.miss_count += 1
        raise SteeringError("no steering rule matches header %r" % (header,))

    def position_of_class(self, traffic_class):
        """First rule position of a class (for interference diagnostics)."""
        for position, rule in enumerate(self.rules):
            if rule.traffic_class is traffic_class:
                return position
        return None

    def __len__(self):
        return len(self.rules)


class VxlanHeader:
    """The outer encapsulation produced by the vSwitch."""

    __slots__ = ("vni", "src_mac", "dst_mac", "src_ip", "dst_ip")

    def __init__(self, vni, src_mac, dst_mac, src_ip, dst_ip):
        self.vni = vni
        self.src_mac = src_mac
        self.dst_mac = dst_mac
        self.src_ip = src_ip
        self.dst_ip = dst_ip

    @property
    def macs_zeroed(self):
        return self.src_mac == "00:00:00:00:00:00" or self.dst_mac == "00:00:00:00:00:00"

    def __repr__(self):
        return "VxlanHeader(vni=%d, %s -> %s)" % (self.vni, self.src_mac, self.dst_mac)


class KernelRoutingTable:
    """The host kernel's routing view that the legacy RNIC driver consults.

    For destinations on the same host the kernel says "local delivery" and
    the driver fills zero MACs — correct for the kernel stack, fatal for
    RDMA packets that must transit the ToR between two RNICs (problem 5b).
    """

    def __init__(self):
        self._local_ips = set()
        self._gateway_macs = {}  # ip -> next-hop MAC

    def add_local(self, ip):
        self._local_ips.add(ip)

    def add_remote(self, ip, gateway_mac):
        self._gateway_macs[ip] = gateway_mac

    def is_local(self, ip):
        return ip in self._local_ips

    def next_hop_mac(self, ip):
        if ip in self._local_ips:
            return "00:00:00:00:00:00"  # local delivery: no MAC needed (kernel view)
        try:
            return self._gateway_macs[ip]
        except KeyError:
            raise SteeringError("no route to %s" % ip)


def encapsulate(routing_table, vni, src_ip, dst_ip, src_mac):
    """Build the VxLAN outer header the way the legacy driver does.

    Faithfully reproduces the bug: the MAC comes straight from the kernel
    routing table, zeroed for host-local destinations.
    """
    dst_mac = routing_table.next_hop_mac(dst_ip)
    if routing_table.is_local(dst_ip):
        src_mac = "00:00:00:00:00:00"
    return VxlanHeader(vni, src_mac, dst_mac, src_ip, dst_ip)
