"""The base RNIC: verbs front-end, MTT-backed datapath, DMA emission.

Every NIC in the repo derives from :class:`BaseRnic`: the bare-metal
Stellar RNIC, vStellar virtual devices, and the legacy CX6/CX7-style
baselines (which differ only in datapath mode and steering).
"""

import itertools

from repro import calibration
from repro.pcie.atc import DeviceAtc
from repro.pcie.tlp import Tlp
from repro.rnic.datapath import DatapathMode, RnicDatapath
from repro.rnic.mtt import Mtt
from repro.rnic.verbs import (
    CompletionQueue,
    MemoryRegionHandle,
    Opcode,
    ProtectionDomain,
    QueuePair,
    VerbsError,
    WcStatus,
    WorkCompletion,
)
from repro.sim.units import transfer_time


class BaseRnic:
    """A (possibly virtualized) RDMA NIC."""

    _ids = itertools.count()

    def __init__(
        self,
        name=None,
        mode=DatapathMode.DIRECT,
        fabric=None,
        function=None,
        iommu_domain=None,
        ports=calibration.RNIC_PORTS,
        port_rate=calibration.RNIC_PORT_RATE,
        atc_capacity=calibration.ATC_CAPACITY_PAGES,
        page_size=calibration.GDR_PAGE_BYTES,
    ):
        self.name = name if name is not None else "rnic%d" % next(BaseRnic._ids)
        self.fabric = fabric
        self.function = function
        self.iommu_domain = iommu_domain
        #: PASID stamped on emitted TLPs (virtual devices sharing a BDF).
        self.pasid = None
        self.ports = ports
        self.port_rate = port_rate
        self.page_size = page_size
        self.mtt = Mtt()
        atc = None
        if mode is DatapathMode.ATS_ATC:
            if fabric is None or iommu_domain is None:
                raise ValueError("ATS_ATC mode needs a fabric and an IOMMU domain")
            atc = DeviceAtc(
                fabric.iommu,
                iommu_domain,
                capacity_pages=atc_capacity,
                page_size=page_size,
                name="%s-ATC" % self.name,
            )
        self.datapath = RnicDatapath(self.mtt, mode, atc=atc)
        self._mrs_by_rkey = {}
        self._qps = {}
        self.ops_executed = 0
        self.bytes_sent = 0
        self.bytes_received = 0

    # -- capability surface ---------------------------------------------

    @property
    def mode(self):
        return self.datapath.mode

    @property
    def atc(self):
        return self.datapath.atc

    @property
    def wire_rate(self):
        """Aggregate line rate across ports (bits/second)."""
        return self.ports * self.port_rate

    # -- telemetry --------------------------------------------------------

    def snapshot(self):
        """Public counter snapshot (the Neohost per-NIC counter page).

        Subclasses extend this with their own counters; diagnostics and the
        metrics registry both consume it, so nothing needs to reach into
        private attributes.
        """
        snap = {
            "name": self.name,
            "mode": self.mode.value,
            "ops_executed": self.ops_executed,
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
            "mtt_entries": len(self.mtt),
            "mtt_lookups": self.mtt.lookups,
            "qps": len(self._qps),
            "mrs": len(self._mrs_by_rkey),
        }
        if self.atc is not None:
            snap["atc_hit_rate"] = self.atc.cache.hit_rate
            snap["atc_evictions"] = self.atc.cache.evictions
        return snap

    def register_metrics(self, registry, prefix=None):
        """Expose this NIC's counters under ``rnic.<name>.*``."""
        registry.add_provider(prefix or "rnic.%s" % self.name, self.snapshot)
        return registry

    # -- verbs ------------------------------------------------------------

    def alloc_pd(self, owner):
        return ProtectionDomain(owner)

    def create_cq(self, depth=4096):
        return CompletionQueue(depth=depth)

    def create_qp(self, pd, send_cq=None, recv_cq=None, max_send_wr=1024):
        send_cq = send_cq if send_cq is not None else self.create_cq()
        recv_cq = recv_cq if recv_cq is not None else send_cq
        qp = QueuePair(pd, send_cq, recv_cq, max_send_wr=max_send_wr)
        self._qps[qp.qpn] = qp
        return qp

    def destroy_qp(self, qp):
        self._qps.pop(qp.qpn, None)

    def qp(self, qpn):
        try:
            return self._qps[qpn]
        except KeyError:
            raise VerbsError("%s has no QP 0x%x" % (self.name, qpn))

    def reg_mr(self, pd, va_base, chunks, kind, translated):
        """Register a memory region.

        ``chunks`` are ``(va, target, length)`` triples describing where
        each VA extent lives in target (HPA or DA) space; the environment
        (bare-metal host, hypervisor, vStellar control path) computes them.
        """
        mtt_key = self.mtt.register(va_base, chunks, kind, translated)
        length = sum(chunk_len for _, _, chunk_len in chunks)
        mr = MemoryRegionHandle(pd, va_base, length, kind, mtt_key)
        self._mrs_by_rkey[mr.rkey] = mr
        return mr

    def dereg_mr(self, mr):
        if not mr.valid:
            raise VerbsError("MR lkey=0x%x already deregistered" % mr.lkey)
        mr.valid = False
        self.mtt.deregister(mr.mtt_key)
        del self._mrs_by_rkey[mr.rkey]

    def mr_by_rkey(self, rkey):
        try:
            return self._mrs_by_rkey[rkey]
        except KeyError:
            raise VerbsError("%s has no MR with rkey 0x%x" % (self.name, rkey))

    # -- datapath ----------------------------------------------------------

    def dma_access(self, mr, va, length=None, emit=False, write=True):
        """Translate one access through the datapath; optionally emit a TLP
        through the real PCIe fabric (used by routing tests/benches).

        Returns ``(AccessResult, Delivery-or-None)``.
        """
        if length is None:
            length = min(self.page_size, mr.va_base + mr.length - va)
        result = self.datapath.access(mr.mtt_key, va, length)
        delivery = None
        if emit:
            if self.fabric is None or self.function is None:
                raise VerbsError("%s is not attached to a PCIe fabric" % self.name)
            maker = Tlp.mem_write if write else Tlp.mem_read
            tlp = maker(
                result.address, length, self.function.bdf, at=result.at,
                pasid=self.pasid,
            )
            delivery = self.fabric.route(tlp)
        return result, delivery

    # -- functional RDMA execution -----------------------------------------

    def rdma_write(self, qp, wr_id, local_mr, local_va, length, remote_rkey,
                   remote_va):
        """Execute a one-sided RDMA write end-to-end (functional model).

        Validates QP state, PD ownership on both ends, and region bounds;
        updates byte counters on both NICs; pushes a completion.  Returns
        the estimated one-way completion latency in seconds.
        """
        from repro.rnic.verbs import WorkRequest

        wr = WorkRequest(
            wr_id, Opcode.RDMA_WRITE, local_va, length, local_mr.lkey,
            remote_va=remote_va, rkey=remote_rkey,
        )
        qp.post_send(wr)
        qp.send_queue.remove(wr)
        status = WcStatus.SUCCESS
        latency = calibration.RDMA_BASE_LATENCY_SECONDS

        if local_mr.pd.handle != qp.pd.handle:
            status = WcStatus.LOCAL_PROTECTION_ERROR
        elif not local_mr.covers(local_va, length):
            status = WcStatus.LOCAL_PROTECTION_ERROR
        else:
            remote_nic = qp.remote_nic
            if remote_nic is None:
                raise VerbsError("QP 0x%x has no remote NIC bound" % qp.qpn)
            try:
                remote_mr = remote_nic.mr_by_rkey(remote_rkey)
            except VerbsError:
                remote_mr = None
            remote_qp = remote_nic.qp(qp.remote_qpn)
            if (
                remote_mr is None
                or not remote_mr.valid
                or remote_mr.pd.handle != remote_qp.pd.handle
                or not remote_mr.covers(remote_va, length)
            ):
                status = WcStatus.REMOTE_ACCESS_ERROR

        if status is WcStatus.SUCCESS:
            # Touch both datapaths so translation state (ATC etc.) evolves.
            local_result = self.datapath.access(local_mr.mtt_key, local_va, 1)
            remote_result = remote_nic.datapath.access(remote_mr.mtt_key, remote_va, 1)
            rate = min(self.wire_rate, remote_nic.wire_rate)
            rate = min(
                self.datapath.rate_ceiling(local_result.kind, rate),
                remote_nic.datapath.rate_ceiling(remote_result.kind, rate),
            )
            latency += transfer_time(length, rate)
            latency += local_result.stall + remote_result.stall
            self.ops_executed += 1
            self.bytes_sent += length
            qp.bytes_sent += length
            remote_nic.bytes_received += length
            remote_qp.bytes_received += length
        qp.send_cq.push(WorkCompletion(wr_id, status, Opcode.RDMA_WRITE, length))
        return latency

    def rdma_read(self, qp, wr_id, local_mr, local_va, length, remote_rkey,
                  remote_va):
        """Execute a one-sided RDMA read (functional model).

        Mirrors :meth:`rdma_write` with the data flowing toward the
        requester; the same PD/bounds checks apply on both ends.
        """
        from repro.rnic.verbs import WorkRequest

        wr = WorkRequest(
            wr_id, Opcode.RDMA_READ, local_va, length, local_mr.lkey,
            remote_va=remote_va, rkey=remote_rkey,
        )
        qp.post_send(wr)
        qp.send_queue.remove(wr)
        status = WcStatus.SUCCESS
        latency = calibration.RDMA_BASE_LATENCY_SECONDS

        if local_mr.pd.handle != qp.pd.handle or not local_mr.covers(
            local_va, length
        ):
            status = WcStatus.LOCAL_PROTECTION_ERROR
        else:
            remote_nic = qp.remote_nic
            if remote_nic is None:
                raise VerbsError("QP 0x%x has no remote NIC bound" % qp.qpn)
            try:
                remote_mr = remote_nic.mr_by_rkey(remote_rkey)
            except VerbsError:
                remote_mr = None
            remote_qp = remote_nic.qp(qp.remote_qpn)
            if (
                remote_mr is None
                or not remote_mr.valid
                or remote_mr.pd.handle != remote_qp.pd.handle
                or not remote_mr.covers(remote_va, length)
            ):
                status = WcStatus.REMOTE_ACCESS_ERROR

        if status is WcStatus.SUCCESS:
            local_result = self.datapath.access(local_mr.mtt_key, local_va, 1)
            remote_result = remote_nic.datapath.access(
                remote_mr.mtt_key, remote_va, 1
            )
            rate = min(self.wire_rate, remote_nic.wire_rate)
            rate = min(
                self.datapath.rate_ceiling(local_result.kind, rate),
                remote_nic.datapath.rate_ceiling(remote_result.kind, rate),
            )
            # Reads pay an extra one-way trip: request out, data back.
            latency += calibration.RDMA_BASE_LATENCY_SECONDS / 2
            latency += transfer_time(length, rate)
            latency += local_result.stall + remote_result.stall
            self.ops_executed += 1
            self.bytes_received += length
            qp.bytes_received += length
            remote_nic.bytes_sent += length
            remote_nic.qp(qp.remote_qpn).bytes_sent += length
        qp.send_cq.push(WorkCompletion(wr_id, status, Opcode.RDMA_READ, length))
        return latency

    def post_recv(self, qp, wr_id, mr, va, length):
        """Post a receive buffer for two-sided SEND traffic."""
        if mr.pd.handle != qp.pd.handle or not mr.covers(va, length):
            raise VerbsError("recv buffer fails PD/bounds checks")
        if not hasattr(qp, "recv_queue"):
            qp.recv_queue = []
        qp.recv_queue.append((wr_id, mr, va, length))

    def send(self, qp, wr_id, local_mr, local_va, length):
        """Two-sided SEND: consumes the head receive WQE on the remote QP.

        Returns the one-way latency; RNR (no posted receive) surfaces as a
        RETRY_EXCEEDED completion, as a retried-out verbs send would.
        """
        status = WcStatus.SUCCESS
        latency = calibration.RDMA_BASE_LATENCY_SECONDS
        if qp.state.value != "RTS":
            raise VerbsError("send on QP 0x%x not in RTS" % qp.qpn)
        if local_mr.pd.handle != qp.pd.handle or not local_mr.covers(
            local_va, length
        ):
            status = WcStatus.LOCAL_PROTECTION_ERROR
        else:
            remote_nic = qp.remote_nic
            remote_qp = remote_nic.qp(qp.remote_qpn)
            pending = getattr(remote_qp, "recv_queue", [])
            if not pending:
                status = WcStatus.RETRY_EXCEEDED  # RNR retries exhausted
            else:
                recv_id, recv_mr, recv_va, recv_len = pending[0]
                if recv_len < length or not recv_mr.valid:
                    status = WcStatus.REMOTE_ACCESS_ERROR
                else:
                    pending.pop(0)
                    rate = min(self.wire_rate, remote_nic.wire_rate)
                    latency += transfer_time(length, rate)
                    self.ops_executed += 1
                    self.bytes_sent += length
                    qp.bytes_sent += length
                    remote_nic.bytes_received += length
                    remote_qp.bytes_received += length
                    remote_qp.recv_cq.push(
                        WorkCompletion(recv_id, WcStatus.SUCCESS, Opcode.RECV,
                                       length)
                    )
        qp.send_cq.push(WorkCompletion(wr_id, status, Opcode.SEND, length))
        return latency

    def __repr__(self):
        return "%s(%r, mode=%s, %d QPs, %d MRs)" % (
            type(self).__name__,
            self.name,
            self.mode.value,
            len(self._qps),
            len(self._mrs_by_rkey),
        )
