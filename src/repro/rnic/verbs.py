"""Verbs-style RDMA resources: PDs, MRs, CQs, and QPs.

This is the user-facing API of every RNIC in the repo — bare-metal
Stellar, vStellar devices inside secure containers, and the legacy VF
stack all hand out these objects.  Protection-domain enforcement follows
the RDMA spec (and Section 9 of the paper): a QP may only touch an MR in
its own PD, which is what isolates co-hosted vStellar tenants.
"""

import enum
import itertools


class VerbsError(Exception):
    """Invalid verbs usage (bad state transition, PD violation, ...)."""


class QpState(enum.Enum):
    RESET = "RESET"
    INIT = "INIT"
    RTR = "RTR"  #: ready to receive
    RTS = "RTS"  #: ready to send
    ERROR = "ERR"


_VALID_TRANSITIONS = {
    QpState.RESET: {QpState.INIT, QpState.ERROR},
    QpState.INIT: {QpState.RTR, QpState.ERROR, QpState.RESET},
    QpState.RTR: {QpState.RTS, QpState.ERROR, QpState.RESET},
    QpState.RTS: {QpState.ERROR, QpState.RESET},
    QpState.ERROR: {QpState.RESET},
}


class Opcode(enum.Enum):
    RDMA_WRITE = "RDMA_WRITE"
    RDMA_READ = "RDMA_READ"
    SEND = "SEND"
    RECV = "RECV"


class WcStatus(enum.Enum):
    SUCCESS = "SUCCESS"
    LOCAL_PROTECTION_ERROR = "LOC_PROT_ERR"
    REMOTE_ACCESS_ERROR = "REM_ACCESS_ERR"
    RETRY_EXCEEDED = "RETRY_EXC_ERR"


class ProtectionDomain:
    """A protection domain; owner is the tenant/VM identity."""

    _ids = itertools.count(1)

    def __init__(self, owner):
        self.handle = next(ProtectionDomain._ids)
        self.owner = owner

    def __repr__(self):
        return "ProtectionDomain(handle=%d, owner=%r)" % (self.handle, self.owner)


class MemoryRegionHandle:
    """A registered memory region: keys plus MTT linkage."""

    _keys = itertools.count(0x1000)

    def __init__(self, pd, va_base, length, kind, mtt_key):
        self.pd = pd
        self.va_base = va_base
        self.length = length
        self.kind = kind
        self.mtt_key = mtt_key
        token = next(MemoryRegionHandle._keys)
        self.lkey = token
        self.rkey = token
        self.valid = True

    def covers(self, va, length):
        return self.va_base <= va and va + length <= self.va_base + self.length

    def __repr__(self):
        return "MR(lkey=0x%x, va=0x%x, len=%d, kind=%s)" % (
            self.lkey,
            self.va_base,
            self.length,
            self.kind.value if self.kind else None,
        )


class WorkCompletion:
    __slots__ = ("wr_id", "status", "opcode", "byte_len")

    def __init__(self, wr_id, status, opcode, byte_len):
        self.wr_id = wr_id
        self.status = status
        self.opcode = opcode
        self.byte_len = byte_len

    @property
    def ok(self):
        return self.status is WcStatus.SUCCESS

    def __repr__(self):
        return "WC(wr_id=%r, %s, %s, %dB)" % (
            self.wr_id,
            self.status.value,
            self.opcode.value,
            self.byte_len,
        )


class CompletionQueue:
    """A completion queue with bounded depth."""

    _ids = itertools.count(1)

    def __init__(self, depth=4096):
        self.handle = next(CompletionQueue._ids)
        self.depth = depth
        self._completions = []
        self.overflows = 0

    def push(self, wc):
        if len(self._completions) >= self.depth:
            self.overflows += 1
            raise VerbsError("CQ %d overflow (depth %d)" % (self.handle, self.depth))
        self._completions.append(wc)

    def poll(self, max_entries=1):
        """Pop up to ``max_entries`` completions, oldest first."""
        polled = self._completions[:max_entries]
        del self._completions[:max_entries]
        return polled

    def __len__(self):
        return len(self._completions)


class WorkRequest:
    """A send-queue work request."""

    __slots__ = (
        "wr_id",
        "opcode",
        "local_va",
        "length",
        "lkey",
        "remote_va",
        "rkey",
    )

    def __init__(self, wr_id, opcode, local_va, length, lkey,
                 remote_va=None, rkey=None):
        self.wr_id = wr_id
        self.opcode = opcode
        self.local_va = local_va
        self.length = length
        self.lkey = lkey
        self.remote_va = remote_va
        self.rkey = rkey

    def __repr__(self):
        return "WR(%r, %s, %dB)" % (self.wr_id, self.opcode.value, self.length)


class QueuePair:
    """A reliable-connected queue pair with the standard state machine."""

    _qpns = itertools.count(0x100)

    def __init__(self, pd, send_cq, recv_cq, max_send_wr=1024):
        self.qpn = next(QueuePair._qpns)
        self.pd = pd
        self.send_cq = send_cq
        self.recv_cq = recv_cq
        self.max_send_wr = max_send_wr
        self.state = QpState.RESET
        self.remote_qpn = None
        self.remote_nic = None
        self.send_queue = []
        self.bytes_sent = 0
        self.bytes_received = 0

    def modify(self, new_state, remote_qpn=None, remote_nic=None):
        """Transition the QP; RTR requires remote endpoint info."""
        if new_state not in _VALID_TRANSITIONS[self.state]:
            raise VerbsError(
                "invalid QP transition %s -> %s" % (self.state.value, new_state.value)
            )
        if new_state is QpState.RTR:
            if remote_qpn is None:
                raise VerbsError("RTR requires the remote QPN")
            self.remote_qpn = remote_qpn
            self.remote_nic = remote_nic
        if new_state is QpState.RESET:
            self.remote_qpn = None
            self.remote_nic = None
            self.send_queue.clear()
        self.state = new_state
        return self

    @property
    def connected(self):
        return self.state in (QpState.RTR, QpState.RTS)

    def post_send(self, wr):
        if self.state is not QpState.RTS:
            raise VerbsError(
                "post_send on QP 0x%x in state %s" % (self.qpn, self.state.value)
            )
        if len(self.send_queue) >= self.max_send_wr:
            raise VerbsError("send queue full on QP 0x%x" % self.qpn)
        self.send_queue.append(wr)
        return wr

    def __repr__(self):
        return "QP(qpn=0x%x, state=%s, pd=%d)" % (
            self.qpn,
            self.state.value,
            self.pd.handle,
        )


def connect_qps(qp_a, qp_b, nic_a=None, nic_b=None):
    """Drive both QPs through INIT/RTR/RTS against each other."""
    for qp in (qp_a, qp_b):
        if qp.state is not QpState.RESET:
            raise VerbsError("connect_qps requires RESET QPs")
        qp.modify(QpState.INIT)
    qp_a.modify(QpState.RTR, remote_qpn=qp_b.qpn, remote_nic=nic_b)
    qp_b.modify(QpState.RTR, remote_qpn=qp_a.qpn, remote_nic=nic_a)
    qp_a.modify(QpState.RTS)
    qp_b.modify(QpState.RTS)
    return qp_a, qp_b
