"""Window-based congestion control with ECN and RTT signals.

The paper's RNIC "runs an in-house, window-based congestion control (CC)
algorithm that adjusts based on ECN and RTT" (Section 7.2) and keeps a
*single* congestion-control context shared by all 128 spray paths
(Section 9).  :class:`WindowCC` models that context; :class:`PerPathCC`
models the 4-path per-path alternative for the ablation.
"""

from repro.sim.units import usec


class WindowCC:
    """One congestion-control context: a byte window, AI/MD on ECN + RTT."""

    def __init__(
        self,
        init_window=64 * 1024,
        min_window=4 * 1024,
        max_window=4 * 1024 * 1024,
        additive_bytes=8 * 1024,
        ecn_backoff=0.8,
        target_rtt=usec(30),
        rtt_backoff=0.95,
    ):
        self.window = float(init_window)
        self.min_window = min_window
        self.max_window = max_window
        self.additive_bytes = additive_bytes
        self.ecn_backoff = ecn_backoff
        self.target_rtt = target_rtt
        self.rtt_backoff = rtt_backoff
        self.in_flight = 0
        self.acks = 0
        self.ecn_marks = 0
        self.rtos = 0
        self._last_cut_time = None

    def can_send(self, byte_count):
        """Window check, with the standard liveness floor: when nothing is
        in flight one packet may always go, even if the window has been
        beaten below a single MTU."""
        if self.in_flight == 0:
            return True
        return self.in_flight + byte_count <= self.window

    def on_send(self, byte_count):
        self.in_flight += byte_count

    def on_ack(self, byte_count, ecn=False, rtt=None, now=None):
        """Credit the window: AI per acked window-fraction, MD on ECN or
        sustained RTT inflation.

        The multiplicative decrease fires at most once per RTT (standard
        DCTCP-style gating) — ``now`` enables the gate; without a clock
        every mark cuts, which is only appropriate for unit tests.
        """
        self.in_flight = max(0, self.in_flight - byte_count)
        self.acks += 1
        if ecn:
            self.ecn_marks += 1
            holdoff = rtt if rtt is not None else self.target_rtt
            if (
                now is None
                or self._last_cut_time is None
                or now - self._last_cut_time >= holdoff
            ):
                self.window = max(self.min_window, self.window * self.ecn_backoff)
                self._last_cut_time = now
            return
        if rtt is not None and rtt > self.target_rtt:
            holdoff = max(rtt, self.target_rtt)
            if (
                now is None
                or self._last_cut_time is None
                or now - self._last_cut_time >= holdoff
            ):
                self.window = max(self.min_window, self.window * self.rtt_backoff)
                self._last_cut_time = now
            return
        self.window = min(
            self.max_window,
            self.window + self.additive_bytes * byte_count / max(self.window, 1.0),
        )

    def on_rto(self, byte_count=None):
        """Timeout on one packet (or, with no argument, a full stall).

        Per-packet timeouts release just the lost bytes and apply a mild
        backoff — the Stellar recovery re-sprays the retransmission on a
        different path, so one lossy link must not collapse the whole
        connection.  A full stall (no argument) halves the window and
        clears the in-flight account.
        """
        self.rtos += 1
        if byte_count is None:
            self.window = max(self.min_window, self.window * 0.5)
            self.in_flight = 0
        else:
            self.window = max(self.min_window, self.window * 0.9)
            self.in_flight = max(0, self.in_flight - byte_count)

    def __repr__(self):
        return "WindowCC(window=%.0fB, in_flight=%d)" % (self.window, self.in_flight)


class PerPathCC:
    """Per-path CC contexts (the Section 9 alternative design).

    Hardware cost limits this to ~4 paths; each path gets an equal share of
    the aggregate initial window so total aggressiveness matches the shared
    context at start.
    """

    def __init__(self, path_count=4, init_window=64 * 1024, **kwargs):
        if path_count <= 0:
            raise ValueError("path_count must be positive: %r" % path_count)
        self.paths = [
            WindowCC(init_window=init_window / path_count, **kwargs)
            for _ in range(path_count)
        ]

    def __getitem__(self, path_id):
        return self.paths[path_id % len(self.paths)]

    @property
    def window(self):
        return sum(path.window for path in self.paths)

    @property
    def in_flight(self):
        return sum(path.in_flight for path in self.paths)

    def can_send(self, byte_count, path_id):
        return self[path_id].can_send(byte_count)

    def on_send(self, byte_count, path_id):
        self[path_id].on_send(byte_count)

    def on_ack(self, byte_count, path_id, ecn=False, rtt=None, now=None):
        self[path_id].on_ack(byte_count, ecn=ecn, rtt=rtt, now=now)

    def on_rto(self, path_id):
        self[path_id].on_rto()

    def __repr__(self):
        return "PerPathCC(paths=%d, window=%.0fB)" % (len(self.paths), self.window)
