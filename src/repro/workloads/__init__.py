"""Workload harnesses: perftest analogs, GDR sweeps, startup timing."""

from repro.workloads.gdr_bench import (
    AtcMissExperiment,
    GdrSweepRow,
    default_gdr_sizes,
    emtt_sweep,
    gdr_datapath_curve,
)
from repro.workloads.perftest import (
    PROFILES,
    DatapathProfile,
    PerftestRow,
    default_message_sizes,
    run_functional_perftest,
    run_perftest,
    write_bandwidth,
    write_latency,
)
from repro.workloads.startup import StartupRow, measure_startup

__all__ = [
    "AtcMissExperiment",
    "GdrSweepRow",
    "default_gdr_sizes",
    "emtt_sweep",
    "gdr_datapath_curve",
    "PROFILES",
    "DatapathProfile",
    "PerftestRow",
    "default_message_sizes",
    "run_functional_perftest",
    "run_perftest",
    "write_bandwidth",
    "write_latency",
    "StartupRow",
    "measure_startup",
]
