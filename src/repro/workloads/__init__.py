"""Workload harnesses: perftest analogs, GDR sweeps, startup timing,
fleet-scale churn scenarios."""

from repro.workloads.fleet_bench import (
    CHURN_SEED,
    build_churn_fleet,
    churn_tenants,
    churn_topology,
    run_churn,
    run_fleet_smoke,
    smoke_specs,
)
from repro.workloads.gdr_bench import (
    AtcMissExperiment,
    GdrSweepRow,
    default_gdr_sizes,
    emtt_sweep,
    gdr_datapath_curve,
)
from repro.workloads.perftest import (
    PROFILES,
    DatapathProfile,
    PerftestRow,
    default_message_sizes,
    run_functional_perftest,
    run_perftest,
    write_bandwidth,
    write_latency,
)
from repro.workloads.startup import StartupRow, measure_startup

__all__ = [
    "AtcMissExperiment",
    "CHURN_SEED",
    "GdrSweepRow",
    "build_churn_fleet",
    "churn_tenants",
    "churn_topology",
    "default_gdr_sizes",
    "emtt_sweep",
    "gdr_datapath_curve",
    "run_churn",
    "run_fleet_smoke",
    "smoke_specs",
    "PROFILES",
    "DatapathProfile",
    "PerftestRow",
    "default_message_sizes",
    "run_functional_perftest",
    "run_perftest",
    "write_bandwidth",
    "write_latency",
    "StartupRow",
    "measure_startup",
]
