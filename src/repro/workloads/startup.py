"""GPU pod startup timing (Figure 6).

Boots containers of 16 GB / 160 GB / 1.6 TB under the legacy VFIO
full-pin regime and under Stellar's PVDMA regime, reporting the wall
times the hypervisor would spend.
"""

from repro import calibration
from repro.core.stellar import StellarHost
# Figure 6 *is* the legacy-vs-Stellar comparison; this workload is the
# one non-legacy module allowed to boot the previous-generation stack.
from repro.legacy.framework import LegacyHost  # simlint: ok L-layer
from repro.sim.units import GiB


class StartupRow:
    __slots__ = ("memory_bytes", "full_pin_seconds", "pvdma_seconds")

    def __init__(self, memory_bytes, full_pin_seconds, pvdma_seconds):
        self.memory_bytes = memory_bytes
        self.full_pin_seconds = full_pin_seconds
        self.pvdma_seconds = pvdma_seconds

    @property
    def speedup(self):
        return self.full_pin_seconds / self.pvdma_seconds

    def __repr__(self):
        return "StartupRow(%.0fGB: full=%.0fs pvdma=%.1fs %.0fx)" % (
            self.memory_bytes / 1e9,
            self.full_pin_seconds,
            self.pvdma_seconds,
            self.speedup,
        )


def measure_startup(memory_points=calibration.FIG6_MEMORY_POINTS_BYTES):
    """Run the Figure 6 sweep; returns one StartupRow per memory size."""
    rows = []
    for index, memory_bytes in enumerate(memory_points):
        legacy = LegacyHost.build(host_memory_bytes=memory_bytes + 64 * GiB)
        legacy.sriov_managers[0].set_num_vfs(1)
        _, full_pin = legacy.launch_container_with_vf(
            "legacy-%d" % index, memory_bytes
        )
        stellar = StellarHost.build(host_memory_bytes=memory_bytes + 64 * GiB)
        record = stellar.launch_container("stellar-%d" % index, memory_bytes)
        rows.append(StartupRow(memory_bytes, full_pin, record.total_seconds))
    return rows
