"""perftest analogs: ``ib_write_lat`` / ``ib_write_bw`` sweeps (Figure 13).

Compares the three datapath stacks of the microbenchmark:

* **bare-metal Stellar** — the reference;
* **vStellar in a RunD container** — same direct-mapped data path, so the
  curves must coincide (the paper's headline: virtualization overhead is
  negligible);
* **VF+VxLAN on a CX7** — the SOTA competitor, paying VxLAN encap on every
  packet: "+7% latency for 8 B packets and 9% bandwidth loss for 8 MB".
"""

from repro import calibration
from repro.sim.units import transfer_time


class DatapathProfile:
    """Datapath cost deltas relative to the bare-metal reference."""

    def __init__(self, name, per_message_overhead=0.0, rate_factor=1.0):
        self.name = name
        #: Extra seconds per message (header build, encap lookup).
        self.per_message_overhead = per_message_overhead
        #: Multiplier on achievable wire rate (encap bytes, pipeline cost).
        self.rate_factor = rate_factor

    def __repr__(self):
        return "DatapathProfile(%r)" % self.name


#: The Figure 13 contenders.  The VxLAN numbers are back-solved from the
#: paper's two endpoints: +7% latency at 8 B and -9% bandwidth at 8 MB.
PROFILES = {
    "bare_metal": DatapathProfile("bare-metal Stellar"),
    "vstellar": DatapathProfile("vStellar (secure container)"),
    "vf_vxlan_cx7": DatapathProfile(
        "VF+VxLAN (CX7)",
        per_message_overhead=(
            calibration.VXLAN_SMALL_MSG_LATENCY_OVERHEAD
            * calibration.RDMA_BASE_LATENCY_SECONDS
        ),
        rate_factor=1.0 - calibration.VXLAN_LARGE_MSG_BW_LOSS,
    ),
}


def default_message_sizes(start=2, stop=8 * 1024 * 1024):
    """The perftest sweep: powers of two from 2 B to 8 MB."""
    sizes = []
    size = start
    while size <= stop:
        sizes.append(size)
        size *= 2
    return sizes


def write_latency(profile, size, wire_rate=calibration.RNIC_TOTAL_RATE):
    """One-way RDMA write latency for a message of ``size`` bytes."""
    base = calibration.RDMA_BASE_LATENCY_SECONDS
    return (
        base
        + profile.per_message_overhead
        + transfer_time(size, wire_rate * profile.rate_factor)
    )


def write_bandwidth(profile, size, wire_rate=calibration.RNIC_TOTAL_RATE,
                    queue_depth=128):
    """Achieved bandwidth (bits/s) with ``queue_depth`` outstanding writes.

    Small messages are op-rate-bound (the doorbell/WQE overhead divided by
    pipelining); large ones are wire-rate-bound.
    """
    effective_rate = wire_rate * profile.rate_factor
    per_message = (
        calibration.RDMA_BASE_LATENCY_SECONDS + profile.per_message_overhead
    ) / queue_depth
    seconds_per_message = per_message + transfer_time(size, effective_rate)
    return size * 8.0 / seconds_per_message


class PerftestRow:
    __slots__ = ("size", "latency", "bandwidth")

    def __init__(self, size, latency, bandwidth):
        self.size = size
        self.latency = latency
        self.bandwidth = bandwidth

    def __repr__(self):
        return "PerftestRow(size=%d, lat=%.2fus, bw=%.1fGbps)" % (
            self.size,
            self.latency * 1e6,
            self.bandwidth / 1e9,
        )


def run_perftest(profile_name, sizes=None,
                 wire_rate=calibration.RNIC_TOTAL_RATE):
    """The full sweep for one stack; returns a list of PerftestRow."""
    profile = PROFILES[profile_name]
    sizes = sizes if sizes is not None else default_message_sizes()
    return [
        PerftestRow(
            size,
            write_latency(profile, size, wire_rate),
            write_bandwidth(profile, size, wire_rate),
        )
        for size in sizes
    ]


def run_functional_perftest(client, server, sizes, iterations=4):
    """Latency sweep through *real* simulated RNICs (verbs + MTT + CC).

    Exercises the object datapath end-to-end (QP state machine, PD checks,
    MTT lookups) rather than the closed-form model; used to validate that
    the functional stack and the cost model agree in shape.
    """
    from repro.memory.address import MemoryKind
    from repro.rnic.verbs import connect_qps

    pd_c, pd_s = client.alloc_pd("perftest"), server.alloc_pd("perftest")
    size_cap = max(sizes)
    mr_c = client.reg_mr(
        pd_c, 0x0, [(0x0, 0x10000000, size_cap)], MemoryKind.HOST_DRAM, True
    )
    mr_s = server.reg_mr(
        pd_s, 0x0, [(0x0, 0x20000000, size_cap)], MemoryKind.HOST_DRAM, True
    )
    qp_c = client.create_qp(pd_c)
    qp_s = server.create_qp(pd_s)
    connect_qps(qp_c, qp_s, nic_a=client, nic_b=server)
    rows = []
    for size in sizes:
        latencies = [
            client.rdma_write(qp_c, "wr-%d-%d" % (size, i), mr_c, 0x0, size,
                              mr_s.rkey, 0x0)
            for i in range(iterations)
        ]
        qp_c.send_cq.poll(iterations)
        latency = sum(latencies) / len(latencies)
        rows.append(PerftestRow(size, latency, size * 8.0 / latency))
    return rows
