"""Fleet-scale churn scenarios: the 16-host / 3-tenant benchmark.

The canonical scenario (``run_churn``) puts three tenants with very
different footprints on one shared 16-host, dual-plane fabric:

* ``svc``    — small PVDMA inference-tuning jobs (2 x 2 GPUs, 4 GiB),
  Stellar transport.  Cheap to start, frequent.
* ``train``  — Llama-13B training (8 x 4 GPUs, 16 GiB), Stellar 128-way
  spray.  The fleet's bandwidth (and GPU) hog.
* ``legacy`` — a tenant still on VFIO FULL_PIN + a 4-QP CX7-style
  transport, one switch-LUT entry per container, in two memory sizes
  (8 and 32 GiB) — the Figure 6 cold-start curve and the failure-
  sensitive victim of Figure 11, at fleet scale.

Mid-run, one ToR uplink carrying live sprayed traffic fails for a
while (``repro.net.failure`` semantics), then heals.

Everything derives from a single seed: double runs are digest-equal
(see ``repro.obs.determinism.check_fleet_determinism``), and the small
ATC (512 pages vs ~1024 sampled working-set pages per host under
co-location) makes multi-tenant miss rates visibly climb.
"""

from repro.cluster import (
    FleetSimulation,
    JobArrivalProcess,
    JobSpec,
    PlacementPolicy,
    TenantProfile,
)
from repro.net.topology import DualPlaneTopology
from repro.sim.units import GiB, MiB
from repro.virt.hypervisor import MemoryMode

#: Seed of record for the churn scenario (EXPERIMENTS.md quotes it).
CHURN_SEED = 17

#: Arrival horizon in simulated seconds; the run itself drains fully.
_CHURN_HORIZON = 240.0

#: Mid-run uplink failure window (simulated seconds).  Timed to land on
#: peak contention, when the failure-sensitive 4-QP legacy tenant is
#: live alongside the spray-armored svc/train jobs — the fleet-scale
#: Figure 11 contrast (and the incident the health report attributes).
CHURN_FAILURE_AT = 140.0
CHURN_FAILURE_SECONDS = 45.0


def churn_topology():
    """16 servers, two ToR segments, dual planes, two rails."""
    return DualPlaneTopology(
        segments=2, servers_per_segment=8, rails=2, planes=2, aggs_per_plane=4,
    )


def churn_tenants():
    """The three tenant profiles of the canonical scenario."""
    return [
        TenantProfile(
            "svc",
            arrival_rate=1.0 / 25.0,
            max_jobs=6,
            templates=[dict(
                model="Llama-2B", containers=2, gpus_per_container=2,
                memory_bytes=4 * GiB, working_set_bytes=8 * MiB,
                iterations=250, transport="stellar",
            )],
        ),
        TenantProfile(
            "train",
            arrival_rate=1.0 / 40.0,
            max_jobs=4,
            templates=[dict(
                model="Llama-13B", containers=8, gpus_per_container=4,
                memory_bytes=16 * GiB, working_set_bytes=16 * MiB,
                iterations=80, transport="stellar",
            )],
        ),
        TenantProfile(
            "legacy",
            arrival_rate=1.0 / 45.0,
            max_jobs=4,
            templates=[
                dict(
                    model="Llama-2B", containers=2, gpus_per_container=4,
                    memory_bytes=8 * GiB, working_set_bytes=8 * MiB,
                    iterations=200, memory_mode=MemoryMode.FULL_PIN,
                    transport="cx7", lut_entries_per_container=1,
                ),
                dict(
                    model="Llama-2B", containers=2, gpus_per_container=4,
                    memory_bytes=32 * GiB, working_set_bytes=8 * MiB,
                    iterations=200, memory_mode=MemoryMode.FULL_PIN,
                    transport="cx7", lut_entries_per_container=1,
                ),
            ],
        ),
    ]


def build_churn_fleet(seed=CHURN_SEED, tracer=None, registry=None,
                      policy=PlacementPolicy.SPREAD, tenants=None,
                      horizon=_CHURN_HORIZON, failure=True, flight=None,
                      trace_recorder=None, fidelity="fluid"):
    """Assemble (but do not run) the 16-host / 3-tenant churn scenario.

    ``SPREAD`` placement is the scenario default: it scatters rings
    across both segments, which is what makes the uplink failure land on
    real traffic and the shared fabric genuinely contended.
    """
    topology = churn_topology()
    fleet = FleetSimulation(
        topology,
        policy=policy,
        seed=seed,
        tracer=tracer,
        flight=flight,
        trace_recorder=trace_recorder,
        fidelity=fidelity,
        host_config=dict(
            gpus=4, rnics=2, dram_bytes=64 * GiB, gpu_hbm_bytes=2 * GiB,
            atc_capacity=512,
        ),
        sample_pages=512,
    )
    if tenants is None:
        tenants = churn_tenants()
    arrivals = JobArrivalProcess(tenants, seed=seed).generate(horizon)
    fleet.load(arrivals)
    if failure:
        fleet.inject_link_failure(CHURN_FAILURE_AT, CHURN_FAILURE_SECONDS)
    if registry is not None:
        fleet.register_metrics(registry)
    return fleet


def run_churn(seed=CHURN_SEED, tracer=None, registry=None,
              policy=PlacementPolicy.SPREAD, tenants=None,
              horizon=_CHURN_HORIZON, failure=True, flight=None,
              trace_recorder=None, fidelity="fluid"):
    """Run the churn scenario to drain; returns ``(fleet, result)``."""
    fleet = build_churn_fleet(
        seed=seed, tracer=tracer, registry=registry, policy=policy,
        tenants=tenants, horizon=horizon, failure=failure, flight=flight,
        trace_recorder=trace_recorder, fidelity=fidelity,
    )
    result = fleet.run()
    return fleet, result


def smoke_specs():
    """Three tiny fixed jobs for the probe/CI smoke scenario."""
    return [
        JobSpec(
            "smoke-pvdma", "svc", model="Llama-2B", containers=2,
            gpus_per_container=1, memory_bytes=1 * GiB,
            working_set_bytes=4 * MiB, iterations=4, transport="stellar",
        ),
        JobSpec(
            "smoke-pinned", "legacy", model="Llama-2B", containers=2,
            gpus_per_container=1, memory_bytes=2 * GiB,
            working_set_bytes=4 * MiB, iterations=4,
            memory_mode=MemoryMode.FULL_PIN, transport="cx7",
            lut_entries_per_container=1,
        ),
        # Queues behind the first two (the hosts are full), then crashes
        # mid-run: exercises the FIFO queue and the abnormal-exit release.
        JobSpec(
            "smoke-abort", "svc", model="Llama-2B", containers=2,
            gpus_per_container=1, memory_bytes=1 * GiB,
            working_set_bytes=4 * MiB, iterations=50, transport="stellar",
            abort_after=1.0,
        ),
    ]


#: Paper-scale fleet (Section 2: 512-1024-GPU jobs on the production
#: HPN cluster).  Same 3-tier dual-plane shape as the 16-host scenario,
#: scaled to 1024 hosts — the workload the vectorized fluid engine and
#: the fleet-level plan cache exist for.
_FLEET1024_HORIZON = 120.0
_FLEET1024_FAILURE_AT = 60.0
_FLEET1024_FAILURE_SECONDS = 20.0


def fleet1024_topology():
    """1024 servers: 16 ToR segments x 64, dual planes, 8 aggs/plane."""
    return DualPlaneTopology(
        segments=16, servers_per_segment=64, rails=1, planes=2,
        aggs_per_plane=8,
    )


def fleet1024_tenants():
    """Three tenants sized for the 1024-host fabric.

    ``pretrain`` books 64-host 256-GPU spray rings (the paper's
    512-1024-GPU band at 4 GPUs/host), ``mid`` runs 16-host fine-tunes,
    and ``svc`` keeps small 2-host jobs churning through the queue.
    """
    return [
        TenantProfile(
            "pretrain",
            arrival_rate=1.0 / 25.0,
            max_jobs=6,
            templates=[dict(
                model="Llama-13B", containers=64, gpus_per_container=4,
                memory_bytes=16 * GiB, working_set_bytes=16 * MiB,
                iterations=40, transport="stellar",
            )],
        ),
        TenantProfile(
            "mid",
            arrival_rate=1.0 / 15.0,
            max_jobs=8,
            templates=[dict(
                model="Llama-2B", containers=16, gpus_per_container=4,
                memory_bytes=8 * GiB, working_set_bytes=8 * MiB,
                iterations=60, transport="stellar",
            )],
        ),
        TenantProfile(
            "svc",
            arrival_rate=1.0 / 10.0,
            max_jobs=10,
            templates=[dict(
                model="Llama-2B", containers=2, gpus_per_container=2,
                memory_bytes=4 * GiB, working_set_bytes=8 * MiB,
                iterations=120, transport="cx7",
            )],
        ),
    ]


def build_fleet1024(seed=CHURN_SEED, tracer=None, registry=None,
                    policy=PlacementPolicy.SPREAD, horizon=_FLEET1024_HORIZON,
                    failure=True, flight=None, trace_recorder=None,
                    fidelity="fluid"):
    """Assemble (but do not run) the 1024-host churn scenario."""
    topology = fleet1024_topology()
    fleet = FleetSimulation(
        topology,
        policy=policy,
        seed=seed,
        tracer=tracer,
        flight=flight,
        trace_recorder=trace_recorder,
        fidelity=fidelity,
        host_config=dict(
            gpus=4, rnics=1, dram_bytes=64 * GiB, gpu_hbm_bytes=2 * GiB,
            atc_capacity=512,
        ),
        sample_pages=256,
    )
    arrivals = JobArrivalProcess(fleet1024_tenants(), seed=seed).generate(horizon)
    fleet.load(arrivals)
    if failure:
        fleet.inject_link_failure(_FLEET1024_FAILURE_AT, _FLEET1024_FAILURE_SECONDS)
    if registry is not None:
        fleet.register_metrics(registry)
    return fleet


def run_fleet1024_churn(seed=CHURN_SEED, tracer=None, registry=None,
                        policy=PlacementPolicy.SPREAD,
                        horizon=_FLEET1024_HORIZON, failure=True, flight=None,
                        trace_recorder=None, fidelity="fluid"):
    """Run the 1024-host churn scenario to drain; ``(fleet, result)``."""
    fleet = build_fleet1024(
        seed=seed, tracer=tracer, registry=registry, policy=policy,
        horizon=horizon, failure=failure, flight=flight,
        trace_recorder=trace_recorder, fidelity=fidelity,
    )
    result = fleet.run()
    return fleet, result


def run_fleet1024_smoke(seed=CHURN_SEED, tracer=None, registry=None,
                        flight=None, trace_recorder=None, fidelity="fluid"):
    """The CI smoke leg of the 1024-host scenario.

    Identical 1024-host topology — smoke shrinks the *workload*, never
    the shape — with three fixed jobs (one 8-host ring, one 2-host CX7
    job, one queued-then-completing svc job) and one short uplink
    failure landing mid-run.
    """
    fleet = FleetSimulation(
        fleet1024_topology(),
        policy=PlacementPolicy.SPREAD,
        seed=seed,
        tracer=tracer,
        flight=flight,
        trace_recorder=trace_recorder,
        fidelity=fidelity,
        host_config=dict(
            gpus=4, rnics=1, dram_bytes=64 * GiB, gpu_hbm_bytes=2 * GiB,
            atc_capacity=512,
        ),
        sample_pages=256,
    )
    specs = [
        JobSpec(
            "smoke1024-ring", "mid", model="Llama-2B", containers=8,
            gpus_per_container=4, memory_bytes=8 * GiB,
            working_set_bytes=8 * MiB, iterations=8, transport="stellar",
        ),
        JobSpec(
            "smoke1024-legacy", "svc", model="Llama-2B", containers=2,
            gpus_per_container=2, memory_bytes=4 * GiB,
            working_set_bytes=4 * MiB, iterations=8, transport="cx7",
        ),
        JobSpec(
            "smoke1024-svc", "svc", model="Llama-2B", containers=2,
            gpus_per_container=2, memory_bytes=4 * GiB,
            working_set_bytes=4 * MiB, iterations=8, transport="stellar",
        ),
    ]
    for offset, spec in enumerate(specs):
        fleet.submit(spec, at=float(offset))
    fleet.inject_link_failure(at=6.0, duration=3.0)
    if registry is not None:
        fleet.register_metrics(registry)
    result = fleet.run()
    return fleet, result


def run_fleet_smoke(seed=CHURN_SEED, tracer=None, registry=None, flight=None,
                    trace_recorder=None, fidelity="fluid"):
    """A seconds-fast 2-segment fleet exercising every churn code path.

    Two hosts, three fixed jobs (PVDMA/Stellar, FULL_PIN/CX7, and one
    that queues then aborts), one short uplink failure.  This is the
    fleet leg of the full-stack probe and of the determinism harness's
    cheap checks.
    """
    topology = DualPlaneTopology(
        segments=2, servers_per_segment=1, rails=1, planes=2, aggs_per_plane=2,
    )
    fleet = FleetSimulation(
        topology,
        policy=PlacementPolicy.SPREAD,
        seed=seed,
        tracer=tracer,
        flight=flight,
        trace_recorder=trace_recorder,
        fidelity=fidelity,
        host_config=dict(
            gpus=2, rnics=1, dram_bytes=8 * GiB, gpu_hbm_bytes=1 * GiB,
            atc_capacity=256,
        ),
        sample_pages=64,
    )
    for offset, spec in enumerate(smoke_specs()):
        fleet.submit(spec, at=float(offset))
    fleet.inject_link_failure(at=8.0, duration=4.0)
    if registry is not None:
        fleet.register_metrics(registry)
    result = fleet.run()
    return fleet, result
