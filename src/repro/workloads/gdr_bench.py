"""GDR write sweeps: the ATC-miss experiment (Figure 8) and the GDR
datapath comparison (Figure 14).

The Figure 8 experiment is rebuilt mechanistically: 16 connections each
own a GPU buffer of the message size; the client issues GDR writes
round-robin across connections at 4 KiB page granularity; every page
access runs through the RNIC's real ATC (bounded LRU) and, on miss,
through ATS into the IOMMU's real IOTLB.  The bandwidth knees at 2 MB and
32 MB emerge from those two capacities — nothing is special-cased per
message size.
"""

from repro import calibration
from repro.memory.address import MemoryKind
from repro.memory.iommu import Iommu
from repro.pcie.atc import DeviceAtc
from repro.sim.units import transfer_time


class GdrSweepRow:
    """One message-size point of a GDR sweep."""

    __slots__ = ("message_bytes", "rate", "atc_hit_rate", "iotlb_hit_rate",
                 "avg_pcie_latency")

    def __init__(self, message_bytes, rate, atc_hit_rate=None,
                 iotlb_hit_rate=None, avg_pcie_latency=None):
        self.message_bytes = message_bytes
        self.rate = rate
        self.atc_hit_rate = atc_hit_rate
        self.iotlb_hit_rate = iotlb_hit_rate
        #: Neohost-style counter: mean per-operation PCIe latency.  The
        #: paper confirmed the Figure 8 drops by watching this rise.
        self.avg_pcie_latency = avg_pcie_latency

    @property
    def gbps(self):
        return self.rate / 1e9

    def __repr__(self):
        return "GdrSweepRow(%dB, %.1fGbps)" % (self.message_bytes, self.gbps)


def default_gdr_sizes(start=64 * 1024, stop=64 * 1024 * 1024):
    sizes = []
    size = start
    while size <= stop:
        sizes.append(size)
        size *= 2
    return sizes


class AtcMissExperiment:
    """The Figure 8 client: 16 connections, round-robin page accesses."""

    def __init__(
        self,
        connections=calibration.FIG8_CONNECTIONS,
        page_bytes=calibration.GDR_PAGE_BYTES,
        atc_capacity=calibration.ATC_CAPACITY_PAGES,
        iotlb_capacity=calibration.IOTLB_CAPACITY_PAGES,
        wire_rate=calibration.CX6_GDR_PEAK_RATE,
        ats_pipeline_depth=calibration.ATS_PIPELINE_DEPTH,
        measure_cap_pages=200_000,
    ):
        self.connections = connections
        self.page_bytes = page_bytes
        self.atc_capacity = atc_capacity
        self.iotlb_capacity = iotlb_capacity
        self.wire_rate = wire_rate
        self.ats_pipeline_depth = ats_pipeline_depth
        self.measure_cap_pages = measure_cap_pages

    def _build(self, message_bytes):
        """IOMMU domain mapping every connection's GPU buffer, plus an ATC."""
        iommu = Iommu(iotlb_capacity=self.iotlb_capacity)
        iommu.create_domain("gdr")
        hbm_base = 0x100_0000_0000
        for conn in range(self.connections):
            da = conn * message_bytes
            iommu.map(
                "gdr", da, hbm_base + da, message_bytes,
                kind=MemoryKind.GPU_HBM, pin=False,
            )
        atc = DeviceAtc(
            iommu, "gdr",
            capacity_pages=self.atc_capacity,
            page_size=self.page_bytes,
        )
        return iommu, atc

    def _access_stream(self, message_bytes):
        """Round-robin page addresses: one page per connection per turn."""
        pages_per_conn = max(1, message_bytes // self.page_bytes)
        for page_index in range(pages_per_conn):
            offset = page_index * self.page_bytes
            for conn in range(self.connections):
                yield conn * message_bytes + offset

    def measure(self, message_bytes):
        """Run one sweep point; returns a :class:`GdrSweepRow`.

        One full warm cycle populates the caches; the measurement window
        (capped for very large working sets — the pattern is cyclic, so a
        contiguous window is representative) accumulates per-page stalls.
        """
        iommu, atc = self._build(message_bytes)
        for address in self._access_stream(message_bytes):
            atc.translate(address)
        atc.reset_counters()
        iommu.iotlb.reset_counters()
        wire_page = transfer_time(self.page_bytes, self.wire_rate)
        total_time = 0.0
        pcie_latency_sum = 0.0
        pages_measured = 0
        for address in self._access_stream(message_bytes):
            result = atc.translate(address)
            # On-chip ATC hits are fully pipelined; a miss stalls for the
            # ATS round trip amortized over the outstanding-request window.
            stall = (
                0.0 if result.atc_hit
                else result.latency / self.ats_pipeline_depth
            )
            total_time += wire_page + stall
            pcie_latency_sum += result.latency
            pages_measured += 1
            if pages_measured >= self.measure_cap_pages:
                break
        rate = pages_measured * self.page_bytes * 8.0 / total_time
        return GdrSweepRow(
            message_bytes,
            rate,
            atc_hit_rate=atc.cache.hit_rate,
            iotlb_hit_rate=iommu.iotlb.hit_rate,
            avg_pcie_latency=pcie_latency_sum / pages_measured,
        )

    def sweep(self, sizes=None):
        sizes = sizes if sizes is not None else default_gdr_sizes()
        return [self.measure(size) for size in sizes]


def emtt_sweep(sizes=None, wire_rate=calibration.CX6_GDR_PEAK_RATE,
               page_bytes=calibration.GDR_PAGE_BYTES):
    """The vStellar curve of Figure 8: eMTT pages pay only the on-chip
    lookup, so bandwidth is flat across working-set sizes."""
    sizes = sizes if sizes is not None else default_gdr_sizes()
    # eMTT lookups are on-chip SRAM reads, fully pipelined against the
    # wire: bandwidth is flat at line rate for every working-set size.
    rate = wire_rate
    return [GdrSweepRow(size, rate, atc_hit_rate=None) for size in sizes]


def gdr_datapath_curve(mode, sizes=None,
                       wire_rate=calibration.GDR_P2P_PEAK_RATE):
    """Figure 14: GDR write throughput of one datapath over message sizes.

    ``mode``: 'vstellar' / 'bare_metal' (switch P2P at the 393 Gbps P2P
    ceiling) or 'hyv_masq' (RC-reflected, capped at the RC's 141 Gbps).
    """
    if sizes is None:
        sizes = default_gdr_sizes(start=4 * 1024, stop=8 * 1024 * 1024)
    if mode in ("vstellar", "bare_metal"):
        ceiling = wire_rate
    elif mode == "hyv_masq":
        ceiling = min(wire_rate, calibration.GDR_RC_ROUTED_RATE)
    else:
        raise ValueError("unknown GDR datapath %r" % mode)
    rows = []
    for size in sizes:
        per_message = (
            calibration.RDMA_BASE_LATENCY_SECONDS / 64  # pipelined ops
            + transfer_time(size, ceiling)
        )
        rows.append(GdrSweepRow(size, size * 8.0 / per_message))
    return rows
