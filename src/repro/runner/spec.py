"""TaskSpec: one sweep point as a pure, picklable unit of work.

A spec names its callable by dotted path (``repro.runner.tasks:startup_point``),
carries JSON-plain kwargs plus an optional seed, and derives a
content-addressed digest from the callable's source closure
(:mod:`repro.runner.fingerprint`) and the canonicalized arguments.  Two
specs with the same digest are guaranteed to compute the same result, so
the digest doubles as the result-cache key.

Task callables are **pure**: everything they consume arrives through
kwargs/seed, everything they produce leaves through the JSON-plain return
value.  The ``@task`` decorator marks callables as pool-executable and is
what simlint's ``D-taskpure`` rule keys on.
"""

import hashlib
import importlib
import json
import os

from repro.runner.fingerprint import closure_digest, file_digest


class TaskError(ValueError):
    """Invalid task spec or unresolvable task callable."""


#: ``"module:attr"`` -> callable, populated by the :func:`task` decorator.
_TASK_REGISTRY = {}


def task(fn):
    """Mark ``fn`` as a runner task (pure, picklable-by-path, JSON result).

    simlint's ``D-taskpure`` rule audits every decorated callable for
    ambient state (module-level mutables, ambient RNG, the process-default
    metrics registry); the decorator itself only registers the callable so
    resolution never depends on import side effects.
    """
    path = "%s:%s" % (fn.__module__, fn.__qualname__)
    _TASK_REGISTRY[path] = fn
    fn.__sim_task__ = True
    return fn


def registered_tasks():
    """Snapshot of the registered task table (``path -> callable``)."""
    return dict(_TASK_REGISTRY)


def resolve_callable(path):
    """Import and return the callable behind ``"module:attr"``."""
    fn = _TASK_REGISTRY.get(path)
    if fn is not None:
        return fn
    if ":" not in path:
        raise TaskError("task path %r is not 'module:attr'" % path)
    module_name, _, attr = path.partition(":")
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise TaskError("cannot import task module %r: %s" % (module_name, exc))
    target = module
    for part in attr.split("."):
        target = getattr(target, part, None)
        if target is None:
            raise TaskError("module %r has no attribute %r" % (module_name, attr))
    if not callable(target):
        raise TaskError("task %r is not callable" % path)
    return target


def canonical_json(value):
    """Deterministic JSON encoding (sorted keys, no whitespace)."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def normalize_result(value):
    """Round-trip ``value`` through canonical JSON.

    Guarantees a task result is JSON-plain *before* it is cached or
    compared, and makes a computed result byte-identical to the same
    result read back from the cache (tuples become lists exactly once,
    at the source).
    """
    try:
        return json.loads(canonical_json(value))
    except (TypeError, ValueError) as exc:
        raise TaskError("task result is not JSON-plain data: %s" % exc)


class TaskSpec:
    """One pure unit of work: callable path + kwargs + seed + data files.

    ``key`` is the stable merge key results are ordered by; it must be
    unique within a batch.  ``kwargs`` must be JSON-plain (they enter the
    digest via canonical JSON and cross the process boundary by pickle).
    ``data_files`` declares file inputs the task reads (e.g. a trace
    file): their *content* digests enter the cache identity, closing the
    blind spot where the source-closure digest alone would serve stale
    cached results after a data file changes.
    """

    __slots__ = ("key", "fn", "kwargs", "seed", "data_files")

    def __init__(self, key, fn, kwargs=None, seed=None, data_files=None):
        if not key or not isinstance(key, str):
            raise TaskError("task key must be a non-empty string: %r" % key)
        if not isinstance(fn, str) or ":" not in fn:
            raise TaskError("task fn must be a 'module:attr' path: %r" % fn)
        self.key = key
        self.fn = fn
        self.kwargs = dict(kwargs or {})
        self.seed = seed
        self.data_files = tuple(data_files or ())
        for path in self.data_files:
            if not isinstance(path, str):
                raise TaskError(
                    "data_files for %r must be path strings: %r" % (key, path)
                )
        try:
            canonical_json(self.kwargs)
        except (TypeError, ValueError) as exc:
            raise TaskError("kwargs for %r are not JSON-plain: %s" % (key, exc))

    # -- identity --------------------------------------------------------

    @property
    def module(self):
        return self.fn.partition(":")[0]

    def spec_payload(self):
        """The argument half of the cache identity (JSON-plain)."""
        payload = {"fn": self.fn, "kwargs": self.kwargs, "seed": self.seed}
        if self.data_files:
            payload["data_files"] = list(self.data_files)
        return payload

    def data_digests(self, memo=None):
        """Content digest of every declared data file, in declared order.

        Paths are digested by *content*, not name — editing a trace file
        in place invalidates exactly the cached results that read it.  A
        missing file is an error at digest time, before any pool work.
        """
        digests = []
        for path in self.data_files:
            if not os.path.isfile(path):
                raise TaskError(
                    "data file for %r not found: %s" % (self.key, path)
                )
            digests.append(file_digest(path, memo=memo))
        return digests

    def digest(self, memo=None):
        """Content address: SHA-256 over code closure + data files +
        canonical spec."""
        code = closure_digest(self.module, memo=memo)
        parts = [code] + self.data_digests(memo=memo)
        payload = canonical_json(self.spec_payload())
        return hashlib.sha256(
            ("\x00".join(parts) + "\x00" + payload).encode("utf-8")
        ).hexdigest()

    # -- execution -------------------------------------------------------

    def call_kwargs(self):
        kwargs = dict(self.kwargs)
        if self.seed is not None:
            kwargs["seed"] = self.seed
        return kwargs

    def run(self):
        """Resolve and invoke the callable; returns the *normalized* result."""
        fn = resolve_callable(self.fn)
        return normalize_result(fn(**self.call_kwargs()))

    def to_json(self):
        payload = self.spec_payload()
        payload["key"] = self.key
        return payload

    def __repr__(self):
        return "TaskSpec(%r, %s, seed=%r)" % (self.key, self.fn, self.seed)
