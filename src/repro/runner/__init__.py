"""Parallel experiment runner with content-addressed result caching.

The repo's sweeps — figure series, multi-seed determinism checks, perf
kernel repeats — are dozens of fully independent seeded runs.  This
package expresses each as a pure, picklable :class:`TaskSpec`, executes
batches across a ``multiprocessing`` pool with deterministic merge order
(:func:`run_tasks`), and backs them with an on-disk content-addressed
:class:`ResultCache` keyed by a digest of module source + spec + seed, so
re-running figures only recomputes what changed.

Invariant inherited from PR 2/PR 4: pooled and sequential execution
produce bit-identical per-task results.  Workers run each task under a
fresh telemetry registry (snapshots merged by the parent), tasks are
audited for purity by simlint's ``D-taskpure`` rule, and the determinism
digests of ``repro.obs.determinism`` are the acceptance oracle.

Entry points: ``python -m repro run <suite>``, ``make figures``, and the
benchmark suite's shared conftest backend.
"""

from repro.runner.cache import CACHE_DIR_ENV, ResultCache, default_cache_dir
from repro.runner.pool import (
    RunReport,
    TaskResult,
    default_workers,
    run_tasks,
)
from repro.runner.spec import (
    TaskError,
    TaskSpec,
    canonical_json,
    normalize_result,
    registered_tasks,
    resolve_callable,
    task,
)
from repro.runner.suites import SUITES, Suite

__all__ = [
    "CACHE_DIR_ENV",
    "ResultCache",
    "default_cache_dir",
    "RunReport",
    "TaskResult",
    "default_workers",
    "run_tasks",
    "TaskError",
    "TaskSpec",
    "canonical_json",
    "normalize_result",
    "registered_tasks",
    "resolve_callable",
    "task",
    "SUITES",
    "Suite",
]
