"""Process-parallel task execution with deterministic result merging.

``run_tasks`` is the one entry point: it digests every
:class:`~repro.runner.spec.TaskSpec`, satisfies what it can from the
content-addressed cache, fans the misses out over a ``multiprocessing``
pool, and merges everything back **in spec order** — never completion
order — so a pooled run is indistinguishable from a sequential one.

Worker-side telemetry is per-task: before a task body runs (in a worker
*or* inline), a fresh :class:`~repro.obs.metrics.MetricsRegistry` is
installed as the process default and its snapshot is captured afterwards
and returned to the parent.  Pooled tasks therefore never interleave
counters — two tasks that each bump ``task.calls`` once both report 1,
regardless of which worker process they landed on — and the parent's own
default registry is never touched.

Wall-clock reads in this module time the *runner* (per-task seconds for
the report table), never simulated state; simlint sanctions exactly this
module for it, the way it sanctions ``repro.perf``.
"""

import multiprocessing
import os
import sys
import time
from collections import OrderedDict

from repro.obs.metrics import MetricsRegistry, get_registry, set_registry
from repro.runner.spec import TaskSpec, normalize_result, resolve_callable


def default_workers():
    """Worker count when the caller does not choose: capped at 4."""
    return min(4, os.cpu_count() or 1)


class TaskResult:
    """One task's outcome: normalized value + provenance."""

    __slots__ = ("key", "value", "digest", "cached", "seconds", "telemetry")

    def __init__(self, key, value, digest, cached, seconds, telemetry):
        self.key = key
        self.value = value
        self.digest = digest
        #: True when the value came from the result cache, not a compute.
        self.cached = cached
        #: Worker-side wall seconds of the task body (0.0 for cache hits).
        self.seconds = seconds
        #: Flat metrics snapshot of the task's private default registry.
        self.telemetry = telemetry

    def to_json(self):
        return {
            "key": self.key,
            "digest": self.digest,
            "cached": self.cached,
            "seconds": round(self.seconds, 6),
            "value": self.value,
        }

    def __repr__(self):
        return "TaskResult(%r, cached=%s, %.3fs)" % (
            self.key, self.cached, self.seconds,
        )


class RunReport:
    """Ordered results of one batch plus cache/pool bookkeeping."""

    def __init__(self, results, workers, cache_stats, wall_seconds):
        #: ``OrderedDict key -> TaskResult`` in *spec* order.
        self.results = results
        self.workers = workers
        self.cache_stats = cache_stats
        self.wall_seconds = wall_seconds

    def __len__(self):
        return len(self.results)

    def __getitem__(self, key):
        return self.results[key]

    def values(self):
        """Task values in spec order."""
        return [result.value for result in self.results.values()]

    def rows(self):
        """``[(key, value), ...]`` in spec order — the figure series."""
        return [(key, result.value) for key, result in self.results.items()]

    @property
    def computed(self):
        return sum(1 for r in self.results.values() if not r.cached)

    @property
    def hits(self):
        return sum(1 for r in self.results.values() if r.cached)

    def merged_telemetry(self):
        """Sum of numeric telemetry leaves across tasks (parent-side merge)."""
        merged = {}
        for result in self.results.values():
            for name, value in (result.telemetry or {}).items():
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    continue
                merged[name] = merged.get(name, 0) + value
        return dict(sorted(merged.items()))

    def to_json(self):
        return {
            "workers": self.workers,
            "wall_seconds": round(self.wall_seconds, 6),
            "cache": self.cache_stats,
            "tasks": [result.to_json() for result in self.results.values()],
        }

    def __repr__(self):
        return "RunReport(%d tasks, %d cached, workers=%d)" % (
            len(self.results), self.hits, self.workers,
        )


def _execute_spec_isolated(key, fn_path, kwargs, seed):
    """Run one task body under a fresh process-default registry.

    Returns ``(value, seconds, telemetry)``.  Shared by the pool workers
    and the sequential path so both have identical isolation semantics.
    """
    spec = TaskSpec(key, fn_path, kwargs, seed=seed)
    previous = set_registry(MetricsRegistry("runner:%s" % key))
    try:
        start = time.perf_counter()
        value = normalize_result(resolve_callable(spec.fn)(**spec.call_kwargs()))
        seconds = time.perf_counter() - start
        telemetry = get_registry().snapshot()
    finally:
        set_registry(previous)
    return value, seconds, telemetry


def _worker_init(path_entries):
    """Make the parent's import roots visible under any start method."""
    for entry in reversed(path_entries):
        if entry not in sys.path:
            sys.path.insert(0, entry)


def _worker_run(payload):
    index, key, fn_path, kwargs, seed = payload
    value, seconds, telemetry = _execute_spec_isolated(key, fn_path, kwargs, seed)
    return index, value, seconds, telemetry


def _pool_context():
    """Prefer fork (cheap, Linux); fall back to spawn elsewhere."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


def run_tasks(specs, workers=None, cache=None, refresh=False):
    """Execute ``specs``; return a :class:`RunReport` merged in spec order.

    * ``workers``: ``None`` picks :func:`default_workers`; ``0``/``1``
      runs inline (sequential), still with per-task telemetry isolation.
    * ``cache``: a :class:`~repro.runner.cache.ResultCache` or ``None``
      (no caching).
    * ``refresh``: recompute every task and overwrite cache entries
      (``--refresh``); ``cache=None`` is ``--no-cache``.
    """
    specs = list(specs)
    seen = set()
    for spec in specs:
        if spec.key in seen:
            raise ValueError("duplicate task key %r in batch" % spec.key)
        seen.add(spec.key)
    if workers is None:
        workers = default_workers()

    started = time.perf_counter()
    memo = {}
    digests = [spec.digest(memo=memo) for spec in specs]

    slots = [None] * len(specs)  # index -> TaskResult
    pending = []                 # (index, spec, digest) to compute
    for index, (spec, digest) in enumerate(zip(specs, digests)):
        if cache is not None and not refresh:
            hit, value = cache.load(digest)
            if hit:
                slots[index] = TaskResult(
                    spec.key, value, digest, True, 0.0, {},
                )
                continue
        pending.append((index, spec, digest))

    if pending:
        payloads = [
            (index, spec.key, spec.fn, spec.kwargs, spec.seed)
            for index, spec, _ in pending
        ]
        if workers > 1 and len(payloads) > 1:
            context = _pool_context()
            pool_size = min(workers, len(payloads))
            with context.Pool(
                pool_size, initializer=_worker_init, initargs=(list(sys.path),),
            ) as pool:
                outcomes = pool.imap_unordered(_worker_run, payloads, chunksize=1)
                for index, value, seconds, telemetry in outcomes:
                    spec, digest = _find_pending(pending, index)
                    slots[index] = TaskResult(
                        spec.key, value, digest, False, seconds, telemetry,
                    )
        else:
            for index, spec, digest in pending:
                value, seconds, telemetry = _execute_spec_isolated(
                    spec.key, spec.fn, spec.kwargs, spec.seed,
                )
                slots[index] = TaskResult(
                    spec.key, value, digest, False, seconds, telemetry,
                )
        if cache is not None:
            for index, spec, digest in pending:
                cache.store(digest, slots[index].value, spec=spec)

    results = OrderedDict((result.key, result) for result in slots)
    return RunReport(
        results,
        workers,
        cache.stats.snapshot() if cache is not None else None,
        time.perf_counter() - started,
    )


def _find_pending(pending, index):
    for pending_index, spec, digest in pending:
        if pending_index == index:
            return spec, digest
    raise KeyError("worker returned unknown task index %d" % index)
