"""Code fingerprints for the result cache: digest a task's source closure.

A cached result is only reusable while the code that produced it is
unchanged.  The closure of a task callable is its defining module plus
every ``repro.*`` module that module (transitively) imports, discovered
statically from the ``import`` statements in each source file — no code
is executed to compute a fingerprint, so fingerprinting is itself free of
side effects and deterministic.

The digest deliberately covers *source bytes*, not bytecode or mtimes:
editing a comment invalidates cached results (safe, cheap to recompute)
while ``touch``-ing a file does not.
"""

import ast
import hashlib
import importlib.util


#: Bump when the execution contract changes (result normalization, the
#: worker protocol, ...) — invalidates every previously cached result.
_FINGERPRINT_SCHEMA = "repro-runner-v1"


def source_digest(data):
    """SHA-256 hex digest of one file's source bytes.

    The per-file half of :func:`closure_digest`, exposed on its own so
    other content-addressed caches (simlint's incremental lint cache)
    key on the exact same notion of "this file changed": source bytes,
    not mtimes or bytecode.
    """
    return hashlib.sha256(data).hexdigest()


def file_digest(path, memo=None):
    """:func:`source_digest` of the file at ``path``.

    ``memo`` (optional dict, shared with :func:`module_closure`) caches
    digests under ``("digest", path)`` so a tree walk that fingerprints
    and lints the same files reads each one once.
    """
    key = ("digest", path)
    if memo is not None:
        cached = memo.get(key)
        if cached is not None:
            return cached
    with open(path, "rb") as handle:
        digest = source_digest(handle.read())
    if memo is not None:
        memo[key] = digest
    return digest


def _spec_origin(module_name):
    """Source path for ``module_name``, or ``None`` when unresolvable."""
    try:
        spec = importlib.util.find_spec(module_name)
    except (ImportError, ValueError, AttributeError):
        return None
    if spec is None or spec.origin in (None, "built-in", "frozen"):
        return None
    if not spec.origin.endswith(".py"):
        return None
    return spec.origin


def _imported_modules(source, module_name):
    """Absolute dotted module names imported by ``source``.

    Resolves relative imports against ``module_name``; only names inside
    the ``repro`` package are followed (stdlib and third-party modules are
    pinned by the environment, not by the repo, so they stay out of the
    digest).
    """
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return []
    package_parts = module_name.split(".")
    names = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                names.add(alias.name)
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                module = node.module
            else:
                base = package_parts[: len(package_parts) - node.level]
                if node.module:
                    base = base + node.module.split(".")
                module = ".".join(base) if base else None
            if module is None:
                continue
            names.add(module)
            # ``from repro.workloads import startup`` may name submodules.
            for alias in node.names:
                names.add("%s.%s" % (module, alias.name))
    return sorted(n for n in names if n == "repro" or n.startswith("repro."))


def module_closure(module_name, memo=None):
    """``{dotted name: source path}`` for a module and its repro imports.

    ``memo`` (optional dict) caches per-module results across calls — a
    sweep of many specs over the same modules reads each file once.
    """
    if memo is None:
        memo = {}
    closure = {}
    stack = [module_name]
    while stack:
        name = stack.pop()
        if name in closure:
            continue
        cached = memo.get(name)
        if cached is None:
            origin = _spec_origin(name)
            if origin is None:
                memo[name] = (None, ())
                continue
            with open(origin, "rb") as handle:
                source_bytes = handle.read()
            imports = _imported_modules(
                source_bytes.decode("utf-8", "replace"), name
            )
            cached = (origin, tuple(imports))
            memo[name] = cached
            memo[("source", name)] = source_bytes
        origin, imports = cached
        if origin is None:
            continue
        closure[name] = origin
        stack.extend(imports)
    return closure


def closure_digest(module_name, memo=None):
    """SHA-256 over the sorted source closure of ``module_name``."""
    if memo is None:
        memo = {}
    closure = module_closure(module_name, memo=memo)
    digest = hashlib.sha256()
    digest.update(_FINGERPRINT_SCHEMA.encode("utf-8"))
    for name in sorted(closure):
        source = memo.get(("source", name))
        if source is None:
            with open(closure[name], "rb") as handle:
                source = handle.read()
        digest.update(name.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(source)
        digest.update(b"\x00")
    return digest.hexdigest()
