"""CLI for the parallel runner: ``python -m repro run`` / ``make figures``.

Runs a named suite through the pooled backend with the content-addressed
cache, printing one row per task (cache hit or computed, worker seconds,
digest prefix) plus the suite's consistency check.

``--check-sequential`` is the determinism gate CI's ``figures-smoke`` job
uses: the suite is executed once pooled and once sequentially, both with
the cache bypassed, and every row must be byte-identical.
"""

import argparse
import json
import sys

from repro.analysis import Table
from repro.runner.cache import ResultCache, default_cache_dir
from repro.runner.pool import default_workers, run_tasks
from repro.runner.spec import canonical_json
from repro.runner.suites import SUITES


def build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro run",
        description="Pooled experiment runner with content-addressed "
                    "result caching.",
    )
    parser.add_argument(
        "suite", nargs="?", default=None,
        choices=sorted(SUITES),
        help="task suite to run (default: figures-smoke)",
    )
    parser.add_argument(
        "--suite", dest="suite_opt", default=None, metavar="NAME",
        choices=sorted(SUITES),
        help="task suite to run (same as the positional form)",
    )
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="pool size; 0/1 runs sequentially (default: min(4, cpus))",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help="result cache root (default: %s or $%s)"
             % (default_cache_dir(), "REPRO_CACHE_DIR"),
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="bypass the result cache entirely",
    )
    parser.add_argument(
        "--refresh", action="store_true",
        help="recompute every task and overwrite its cache entry",
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the merged report (rows + provenance) as JSON",
    )
    parser.add_argument(
        "--check-sequential", action="store_true",
        help="also run the suite sequentially (no cache) and fail unless "
             "every row is byte-identical to the pooled run",
    )
    parser.add_argument(
        "--list", action="store_true", help="list suites and exit",
    )
    return parser


def print_report(suite_name, report):
    table = Table(
        "runner: %s — %d task(s), %d cached, workers=%d, %.2fs"
        % (suite_name, len(report), report.hits, report.workers,
           report.wall_seconds),
        ["task", "status", "seconds", "digest"],
    )
    for result in report.results.values():
        table.add_row(
            result.key,
            "hit" if result.cached else "run",
            "%.3f" % result.seconds,
            result.digest[:12],
        )
    table.print()


def diff_reports(pooled, sequential):
    """Byte-level row diff; returns the list of mismatching keys."""
    mismatches = []
    for (key_a, value_a), (key_b, value_b) in zip(
        pooled.rows(), sequential.rows()
    ):
        if key_a != key_b or canonical_json(value_a) != canonical_json(value_b):
            mismatches.append(key_a)
    if len(pooled) != len(sequential):
        mismatches.append("<row count: %d pooled vs %d sequential>"
                          % (len(pooled), len(sequential)))
    return mismatches


def main(argv=None):
    args = build_parser().parse_args(argv)
    if args.list:
        for name, suite in SUITES.items():
            print("%-16s %s" % (name, suite.description))
        return 0

    if args.suite and args.suite_opt and args.suite != args.suite_opt:
        print("conflicting suites: %r and --suite %r"
              % (args.suite, args.suite_opt), file=sys.stderr)
        return 2
    args.suite = args.suite_opt or args.suite or "figures-smoke"
    suite = SUITES[args.suite]
    specs = suite.build()
    workers = args.workers if args.workers is not None else default_workers()
    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir)

    report = run_tasks(specs, workers=workers, cache=cache,
                       refresh=args.refresh)
    print_report(args.suite, report)
    if cache is not None:
        stats = cache.stats
        print("  [runner] cache %s: %d hit(s), %d store(s) -> %s"
              % (args.suite, stats.hits, stats.stores, cache.root))

    status = 0
    if suite.check is not None:
        problems = suite.check(report)
        if problems:
            for problem in problems:
                print("  [runner] CHECK FAILED: %s" % problem,
                      file=sys.stderr)
            status = 1
        else:
            print("  [runner] suite check passed (%s)" % args.suite)

    if args.check_sequential:
        print("  [runner] verifying pooled == sequential (cache bypassed)...")
        if cache is None and workers > 1:
            pooled = report  # the primary run already was pooled + uncached
        else:
            pooled = run_tasks(specs, workers=max(2, workers), cache=None)
        sequential = run_tasks(specs, workers=0, cache=None)
        mismatches = diff_reports(pooled, sequential)
        if mismatches:
            for key in mismatches:
                print("  [runner] DIVERGED: %s" % key, file=sys.stderr)
            status = 1
        else:
            print("  [runner] %d row(s) byte-identical pooled vs sequential"
                  % len(pooled))

    if args.json:
        document = report.to_json()
        document["suite"] = args.suite
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("  [runner] report -> %s" % args.json)
    return status


if __name__ == "__main__":
    sys.exit(main())
