"""Built-in task suites: the repo's sweeps expressed as TaskSpec batches.

A suite is a named, deterministic list of :class:`~repro.runner.spec.TaskSpec`
plus an optional ``check`` that audits the merged report (repeat-equality
for determinism cells, event-count agreement for perf kernels).  The CLI
(``python -m repro run <suite>``), ``make figures``, and CI's
``figures-smoke`` job all drive these.

Suite membership is frozen per name — same suite, same spec list, same
keys — so cached results stay addressable across invocations and a
pooled run can always be diffed row-for-row against a sequential one.
"""

from collections import OrderedDict

from repro.runner.spec import TaskSpec

_TASKS = "repro.runner.tasks"


def _spec(key, fn, kwargs=None, seed=None, data_files=None):
    return TaskSpec(key, "%s:%s" % (_TASKS, fn), kwargs, seed=seed,
                    data_files=data_files)


# -- builders ------------------------------------------------------------


def build_figures(trim=False):
    """The figure sweeps: Fig 6 startup, Fig 8/14 GDR, Fig 13 perftest,
    and the seeded fleet scenario (churn only in the full suite)."""
    from repro import calibration
    from repro.workloads.gdr_bench import default_gdr_sizes

    specs = []
    memory_points = (
        (16 * 10**9, int(1.6e12)) if trim
        else calibration.FIG6_MEMORY_POINTS_BYTES
    )
    for memory_bytes in memory_points:
        specs.append(_spec(
            "fig6/startup/%dGB" % (memory_bytes // 10**9),
            "startup_point", {"memory_bytes": memory_bytes},
        ))
    gdr_sizes = (2 << 20, 4 << 20, 64 << 20) if trim else default_gdr_sizes()
    for size in gdr_sizes:
        specs.append(_spec(
            "fig8/atc/%dKB" % (size >> 10),
            "gdr_atc_point", {"message_bytes": size},
        ))
        specs.append(_spec(
            "fig8/emtt/%dKB" % (size >> 10),
            "gdr_emtt_point", {"message_bytes": size},
        ))
    for mode in ("vstellar", "bare_metal", "hyv_masq"):
        specs.append(_spec(
            "fig14/datapath/%s" % mode, "gdr_datapath_sweep", {"mode": mode},
        ))
    for profile in ("bare_metal", "vstellar", "vf_vxlan_cx7"):
        specs.append(_spec(
            "fig13/perftest/%s" % profile, "perftest_sweep",
            {"profile": profile},
        ))
    specs.append(_spec(
        "fleet/smoke", "fleet_scenario", {"scenario": "smoke"}, seed=17,
    ))
    if not trim:
        specs.append(_spec(
            "fleet/churn", "fleet_scenario", {"scenario": "churn"}, seed=17,
        ))
    return specs


def _build_figures_smoke():
    return build_figures(trim=True)


def build_determinism():
    """Multi-seed determinism cells: every (seed, run) pair is one task.

    ``run`` enters the cache key, so repeats stay distinct tasks; the
    check then requires same-seed digests to agree and cross-seed fleet
    digests to differ (a scenario that ignores its seed is a bug).
    """
    specs = []
    for run in (0, 1):
        specs.append(_spec(
            "determinism/probe/seed17/run%d" % run,
            "probe_digests", {"run": run}, seed=17,
        ))
    for seed in (17, 23):
        for run in (0, 1):
            specs.append(_spec(
                "determinism/fleet/seed%d/run%d" % (seed, run),
                "fleet_digests", {"run": run, "scenario": "smoke"}, seed=seed,
            ))
    return specs


def _build_hybrid_smoke():
    """Hybrid-fidelity determinism cells: the churn scenario priced by
    the fidelity controller, two seeds x two runs.

    The sequential-diff oracle is the same as the determinism suite:
    promoted packet windows open and close at sim-time boundaries, so a
    hybrid run must reproduce digest-for-digest just like a fluid one —
    pooled and sequential runner modes included.
    """
    specs = []
    for seed in (17, 23):
        for run in (0, 1):
            specs.append(_spec(
                "determinism/fleet-hybrid/seed%d/run%d" % (seed, run),
                "fleet_digests", {"run": run, "scenario": "hybrid"},
                seed=seed,
            ))
    return specs


def check_determinism(report):
    problems = []
    by_cell = {}
    for key, value in report.rows():
        prefix, _, _ = key.rpartition("/")  # strip the runN leg
        by_cell.setdefault(prefix, []).append((key, value))
    seed_digests = {}
    for prefix, cells in sorted(by_cell.items()):
        digests = {
            (value["metrics_digest"], value["trace_digest"],
             value.get("flight_digest"))
            for _, value in cells
        }
        if len(digests) != 1:
            problems.append(
                "%s: runs disagree (%d distinct digests)"
                % (prefix, len(digests))
            )
        if prefix.startswith("determinism/fleet"):
            seed_digests[prefix] = cells[0][1]["trace_digest"]
    if len(seed_digests) > 1 and len(set(seed_digests.values())) == 1:
        problems.append(
            "fleet seeds produced identical traces (seed unused?)"
        )
    return problems


def _build_health():
    """Fleet health cells: one seeded health document per (scenario, seed).

    Two seeds of the smoke scenario keep the suite CI-fast; the churn
    scenario's full incident report is exercised by the CLI
    (``python -m repro fleet --health-report``) and the e2e tests.
    """
    specs = []
    for seed in (17, 23):
        specs.append(_spec(
            "health/smoke/seed%d" % seed,
            "fleet_health", {"scenario": "smoke"}, seed=seed,
        ))
    return specs


def check_health(report):
    """Validate health-document shape and merge incidents in spec order."""
    from repro.obs.slo import merge_incident_reports

    problems = []
    keyed = []
    for key, value in report.rows():
        for field in ("fleet", "jobs", "slo", "incidents", "flight"):
            if field not in value:
                problems.append("%s: missing %r field" % (key, field))
        keyed.append((key, value.get("incidents", [])))
    merged = merge_incident_reports(keyed)
    for incident in merged:
        fault = incident.get("fault", {})
        for field in ("kind", "t", "entity"):
            if field not in fault:
                problems.append(
                    "%s: incident fault missing %r"
                    % (incident.get("source"), field)
                )
        for entry in incident.get("affected", []):
            if "impact" not in entry or "recovery_seconds" not in entry:
                problems.append(
                    "%s: affected entry missing impact/recovery"
                    % incident.get("source")
                )
    return problems


def build_perf():
    """Every perf kernel's repeat pair as pooled determinism cells.

    ``runner_fanout`` is excluded: it drives a pool itself, and pool
    workers are daemonic — they cannot spawn a nested pool.
    """
    from repro.perf.harness import KERNELS

    specs = []
    for name in KERNELS:
        if name == "runner_fanout":
            continue
        for repeat in (0, 1):
            specs.append(_spec(
                "perf/%s/repeat%d" % (name, repeat),
                "perf_kernel_events",
                {"name": name, "smoke": True, "repeat": repeat},
            ))
    return specs


def check_perf(report):
    problems = []
    events = {}
    for key, value in report.rows():
        events.setdefault(value["name"], set()).add(value["events"])
    for name, counts in sorted(events.items()):
        if len(counts) != 1:
            problems.append(
                "kernel %s is not deterministic across repeats: %s"
                % (name, sorted(counts))
            )
    return problems


def build_traces(trim=False):
    """Replay cells over the bundled trace library.

    Every bundled trace replays twice at fluid fidelity (repeat pairs the
    check diffs for determinism), the smallest also at packet fidelity,
    plus one record→replay round-trip cell.  Each replay spec declares
    its trace file as a ``data_files`` input, so regenerating a bundled
    trace invalidates exactly the cached cells that read it.  ``trim``
    keeps only the smallest trace's cells (the CI smoke suite).
    """
    from repro.traces.library import BUNDLED, bundled_path, smallest_bundled

    smallest = smallest_bundled()
    names = (smallest,) if trim else BUNDLED
    specs = []
    for name in names:
        for run in (0, 1):
            specs.append(_spec(
                "traces/%s/fluid/run%d" % (name, run),
                "trace_replay",
                {"trace": name, "fidelity": "fluid", "run": run},
                seed=17, data_files=[bundled_path(name)],
            ))
    specs.append(_spec(
        "traces/%s/packet/run0" % smallest,
        "trace_replay",
        {"trace": smallest, "fidelity": "packet", "run": 0},
        seed=17, data_files=[bundled_path(smallest)],
    ))
    if not trim:
        specs.append(_spec(
            "traces/roundtrip/smoke", "trace_roundtrip",
            {"scenario": "smoke"}, seed=17,
        ))
    return specs


def _build_traces_smoke():
    return build_traces(trim=True)


def check_traces(report):
    """Repeat pairs must replay identically, op for op."""
    problems = []
    by_cell = {}
    for key, value in report.rows():
        if "/fluid/" in key or "/packet/" in key:
            prefix, _, _ = key.rpartition("/")  # strip the runN leg
            scrubbed = dict(value)
            scrubbed.pop("run", None)
            by_cell.setdefault(prefix, []).append((key, scrubbed))
        elif key.startswith("traces/roundtrip/"):
            if not value.get("collective_sequence"):
                problems.append(
                    "%s: round trip recorded no collectives" % key
                )
    for prefix, cells in sorted(by_cell.items()):
        rows = [value for _, value in cells]
        if any(row != rows[0] for row in rows[1:]):
            problems.append("%s: repeat replays disagree" % prefix)
        for key, value in cells:
            if value["ops"] != sum(value["kind_counts"].values()):
                problems.append("%s: op counts inconsistent" % key)
    return problems


class Suite:
    """A named spec batch plus its post-merge consistency check."""

    __slots__ = ("name", "description", "build", "check")

    def __init__(self, name, description, build, check=None):
        self.name = name
        self.description = description
        self.build = build
        self.check = check


SUITES = OrderedDict((suite.name, suite) for suite in [
    Suite("figures", "full figure sweeps (Fig 6/8/13/14 + fleet runs)",
          build_figures),
    Suite("figures-smoke", "trimmed figure sweeps (CI-sized)",
          _build_figures_smoke),
    Suite("determinism", "multi-seed probe + fleet determinism cells",
          build_determinism, check_determinism),
    Suite("hybrid-smoke", "hybrid-fidelity fleet determinism cells "
          "(CI-sized)", _build_hybrid_smoke, check_determinism),
    Suite("health", "fleet health documents + merged incident reports",
          _build_health, check_health),
    Suite("perf", "perf-kernel repeat pairs (event-count determinism)",
          build_perf, check_perf),
    Suite("traces", "bundled trace replays + record/replay round trip",
          build_traces, check_traces),
    Suite("traces-smoke", "smallest bundled trace replay (CI-sized)",
          _build_traces_smoke, check_traces),
])
