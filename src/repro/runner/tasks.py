"""The runner's task library: every sweep point as a pure callable.

Each function here is a ``@task``: all inputs arrive through kwargs (plus
an explicit seed where the workload is stochastic), the return value is
JSON-plain data, and nothing reads ambient state — no module-level
mutables, no ambient RNG, no process-default metrics registry.  simlint's
``D-taskpure`` rule enforces exactly that contract on every decorated
callable, because these bodies execute inside pool workers where captured
parent state would silently diverge between sequential and pooled runs.

These tasks are the pooled backend for the Figure 6/8/13/14 sweeps, the
fleet scenarios, the multi-seed determinism checks, and the perf-kernel
repeat verification (``python -m repro run``, ``make figures``, and the
benchmark suite's shared conftest fixture all build specs over them).
"""

from repro.runner.spec import task


# -- Figure 6: GPU pod startup ------------------------------------------


@task
def startup_point(memory_bytes):
    """One Figure 6 memory point: legacy full-pin vs Stellar PVDMA boot."""
    from repro.workloads.startup import measure_startup

    row = measure_startup(memory_points=(memory_bytes,))[0]
    return {
        "memory_bytes": row.memory_bytes,
        "full_pin_seconds": row.full_pin_seconds,
        "pvdma_seconds": row.pvdma_seconds,
        "speedup": row.speedup,
    }


# -- Figures 8 / 14: GDR sweeps -----------------------------------------


def _gdr_row(row):
    return {
        "message_bytes": row.message_bytes,
        "gbps": row.gbps,
        "atc_hit_rate": row.atc_hit_rate,
        "iotlb_hit_rate": row.iotlb_hit_rate,
        "avg_pcie_latency": row.avg_pcie_latency,
    }


@task
def gdr_atc_point(message_bytes):
    """One Figure 8 CX6 ATS/ATC sweep point (real ATC + IOTLB walk)."""
    from repro.workloads.gdr_bench import AtcMissExperiment

    return _gdr_row(AtcMissExperiment().measure(message_bytes))


@task
def gdr_emtt_point(message_bytes):
    """One Figure 8 vStellar eMTT point (flat at line rate by design)."""
    from repro.workloads.gdr_bench import emtt_sweep

    return _gdr_row(emtt_sweep(sizes=(message_bytes,))[0])


@task
def gdr_datapath_sweep(mode):
    """The Figure 14 curve for one GDR datapath mode."""
    from repro.workloads.gdr_bench import gdr_datapath_curve

    return [
        {"message_bytes": row.message_bytes, "gbps": row.gbps}
        for row in gdr_datapath_curve(mode)
    ]


# -- Figure 13: perftest microbenchmark ---------------------------------


@task
def perftest_sweep(profile, sizes=None):
    """``ib_write_lat``/``ib_write_bw`` sweep for one datapath profile."""
    from repro.workloads.perftest import run_perftest

    return [
        {
            "size": row.size,
            "latency_us": row.latency * 1e6,
            "bandwidth_gbps": row.bandwidth / 1e9,
        }
        for row in run_perftest(profile, sizes=sizes)
    ]


# -- Fleet scenarios -----------------------------------------------------


@task
def fleet_scenario(scenario="smoke", seed=17):
    """One seeded fleet run reduced to its determinism fingerprint.

    Returns the metrics/trace digests plus headline counters — the exact
    oracle ``repro.obs.determinism`` diffs, so pooled fleet runs are
    comparable bit-for-bit against sequential ones.
    """
    from repro.obs.determinism import fleet_fingerprint

    fingerprint = fleet_fingerprint(seed=seed, scenario=scenario)
    return {
        "scenario": scenario,
        "seed": seed,
        "metrics": len(fingerprint.metrics),
        "metrics_digest": fingerprint.metrics_digest,
        "trace_digest": fingerprint.trace_digest,
        "trace_events": fingerprint.trace_events,
    }


# -- Determinism probes --------------------------------------------------


@task
def probe_digests(seed=17, run=0):
    """Full-stack probe fingerprint for one (seed, run) determinism cell.

    ``run`` only distinguishes repeat cells in the cache key — the digest
    of run 0 and run 1 must match for the check to pass, so repeats must
    not collapse into one cache entry.
    """
    from repro.obs.determinism import probe_fingerprint

    fingerprint = probe_fingerprint(seed=seed)
    return {
        "seed": seed,
        "run": run,
        "metrics": len(fingerprint.metrics),
        "metrics_digest": fingerprint.metrics_digest,
        "trace_digest": fingerprint.trace_digest,
        "flight_digest": fingerprint.flight_digest,
    }


@task
def fleet_digests(seed=17, run=0, scenario="smoke"):
    """Fleet determinism cell: like :func:`probe_digests` for a fleet run."""
    from repro.obs.determinism import fleet_fingerprint

    fingerprint = fleet_fingerprint(seed=seed, scenario=scenario)
    return {
        "seed": seed,
        "run": run,
        "scenario": scenario,
        "metrics_digest": fingerprint.metrics_digest,
        "trace_digest": fingerprint.trace_digest,
        "flight_digest": fingerprint.flight_digest,
    }


@task
def fleet_health(scenario="smoke", seed=17):
    """One seeded fleet run reduced to its health document.

    The health suite merges the per-task ``incidents`` lists in spec
    order (:func:`repro.obs.slo.merge_incident_reports`), so pooled and
    sequential suite runs produce byte-identical merged reports.
    """
    from repro.obs.flight import FlightRecorder
    from repro.workloads.fleet_bench import run_churn, run_fleet_smoke

    flight = FlightRecorder()
    runner = {"churn": run_churn, "smoke": run_fleet_smoke}[scenario]
    fleet, _ = runner(seed=seed, flight=flight)
    document = fleet.health_report()
    document["scenario"] = scenario
    document["seed"] = seed
    return document


# -- Perf-kernel repeats -------------------------------------------------


@task
def perf_kernel_events(name, smoke=True, repeat=0):
    """One perf-kernel execution reduced to its deterministic event count.

    The perf harness repeats each kernel to trim timing noise; expressed
    as specs, those repeats fan out across the pool and the suite check
    asserts the event counts agree — the kernel-determinism half of
    ``time_kernel`` without the wall-clock half.  ``repeat`` keeps the
    cells distinct in the cache.  Timing still belongs to ``repro.perf``.
    """
    from repro.perf.harness import KERNELS

    out = KERNELS[name].fn(smoke=smoke)
    return {
        "name": name,
        "repeat": repeat,
        "events": out["events"],
        "meta": out.get("meta", {}),
    }


# -- Fig. 11-style ring (the fanout perf kernel's unit of work) ----------


@task
def fig11_ring(seed=17, servers=8, window=0.002, loss=0.03):
    """A small seeded Fig. 11-style spray ring with one lossy uplink.

    The ``runner_fanout`` perf kernel runs N of these (distinct seeds) to
    measure pool fan-out against sequential execution; the returned
    counters double as the per-task determinism digest.
    """
    from repro.net import MessageFlow, PacketNetSim, ServerAddress, run_flows
    from repro.net.topology import DualPlaneTopology
    from repro.rnic.cc import WindowCC
    from repro.sim.units import MB, usec

    topology = DualPlaneTopology(
        segments=2, servers_per_segment=servers // 2, rails=1, planes=2,
        aggs_per_plane=8,
    )
    sim = PacketNetSim(topology, seed=seed, ecn_threshold=1 * MB)
    ring = []
    for i in range(servers // 2):
        ring.append(ServerAddress(0, i))
        ring.append(ServerAddress(1, i))
    flows = []
    for i, src in enumerate(ring):
        dst = ring[(i + 1) % len(ring)]
        flows.append(MessageFlow(
            sim, "ring-%d" % i, src, dst, 0,
            message_bytes=200 * MB,
            algorithm="obs", path_count=64,
            mtu=128 * 1024, connection_id=i,
            cc=WindowCC(init_window=2 * 1024 * 1024,
                        additive_bytes=64 * 1024, target_rtt=usec(150)),
            recovery="selective",
        ))
    if loss > 0:
        victim = topology.route(ring[0], ring[1], 0, path_id=0, connection_id=0)
        sim.inject_loss(victim[1], loss)
    results = run_flows(sim, flows, timeout=window)
    return {
        "seed": seed,
        "events": sim.scheduler.events_executed,
        "packets": sim.packets_sent,
        "rtos": sum(r.rtos for r in results),
        "delivered_bytes": sum(r.bytes_acked for r in results),
    }


# -- Trace-driven workloads (repro.traces) ------------------------------


@task
def trace_replay(trace="checkpoint_burst", fidelity="fluid", run=0, seed=17):
    """Replay one bundled trace; returns the JSON-plain replay row.

    The spec that builds this task declares the trace file under
    ``data_files``, so the result cache keys off the file *content* —
    regenerating or hand-editing a bundled trace invalidates exactly the
    cells that read it.  ``run`` keeps repeat cells distinct so the
    suite check can assert replay determinism across the pool.
    """
    from repro.traces.library import load_bundled
    from repro.traces.replay import replay_trace

    result = replay_trace(load_bundled(trace), fidelity=fidelity, seed=seed)
    row = result.to_row()
    row["run"] = run
    return row


@task
def trace_roundtrip(scenario="smoke", job=None, seed=17):
    """Record a fleet run, replay one job's trace, return both digests.

    The recorded trace digest is a pure function of the seeded fleet
    run, and the replay row is a pure function of the trace — the suite
    check (and the round-trip determinism tests) assert both stay
    bit-identical across repeats and across the pool boundary.
    """
    from repro.traces.record import TraceRecorder
    from repro.traces.replay import replay_trace
    from repro.workloads.fleet_bench import run_fleet_smoke

    if scenario != "smoke":
        raise ValueError("unknown roundtrip scenario %r" % scenario)
    recorder = TraceRecorder()
    run_fleet_smoke(seed=seed, trace_recorder=recorder)
    job = job or recorder.job_names()[0]
    trace = recorder.trace(job)
    replay = replay_trace(trace, fidelity="recorded", seed=seed)
    return {
        "job": job,
        "trace_digest": trace.digest(),
        "ops": len(trace.ops),
        "collective_sequence": replay.op_sequence(kinds=(
            "allreduce", "allgather", "reducescatter", "alltoall",
        )),
        "replay": replay.to_row(),
    }
