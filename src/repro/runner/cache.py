"""On-disk content-addressed result cache for runner tasks.

Layout: ``<root>/<digest[:2]>/<digest>.json`` where the digest is the
:meth:`repro.runner.spec.TaskSpec.digest` (code closure + canonical spec
+ seed).  The value stored is the task's *normalized* JSON result, so a
cache hit is byte-identical to a recompute by construction.

Robustness contract: the cache must never turn a disk problem into a
wrong answer.  Any unreadable, truncated, or schema-mismatched entry is
treated as a miss (and evicted) so the task simply recomputes.  Writes go
through a temp file + ``os.replace`` so a crashed run cannot leave a
half-written entry that later parses as valid JSON.
"""

import json
import os

#: Bump to orphan every previously written entry.
_CACHE_SCHEMA = 1

#: Default cache root (relative to the working directory) and the
#: environment override honoured by :func:`default_cache_dir`.
_DEFAULT_CACHE_DIR = ".repro_cache"
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir():
    return os.environ.get(CACHE_DIR_ENV) or _DEFAULT_CACHE_DIR


# Result type exposed as ResultCache.stats; consumers read the
# counters off the instance rather than importing the class.
class CacheStats:  # simlint: ok L-api-drift
    """Hit/miss/store counters for one runner invocation."""

    __slots__ = ("hits", "misses", "stores", "evictions")

    def __init__(self):
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0

    def snapshot(self):
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
        }

    def __repr__(self):
        return "CacheStats(hits=%d, misses=%d, stores=%d, evictions=%d)" % (
            self.hits, self.misses, self.stores, self.evictions,
        )


class ResultCache:
    """Content-addressed store mapping task digests to JSON results."""

    def __init__(self, root=None):
        self.root = root if root is not None else default_cache_dir()
        self.stats = CacheStats()

    def path_for(self, digest):
        return os.path.join(self.root, digest[:2], digest + ".json")

    def load(self, digest):
        """``(hit, value)``; every failure mode is a miss, never an error."""
        path = self.path_for(digest)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, ValueError):
            if os.path.exists(path):
                self._evict(path)
            self.stats.misses += 1
            return False, None
        if (
            not isinstance(document, dict)
            or document.get("schema") != _CACHE_SCHEMA
            or document.get("digest") != digest
            or "result" not in document
        ):
            self._evict(path)
            self.stats.misses += 1
            return False, None
        self.stats.hits += 1
        return True, document["result"]

    def store(self, digest, result, spec=None):
        """Atomically persist ``result`` under ``digest``."""
        path = self.path_for(digest)
        document = {"schema": _CACHE_SCHEMA, "digest": digest, "result": result}
        if spec is not None:
            document["spec"] = spec.to_json()
        temp = path + ".tmp.%d" % os.getpid()
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(temp, "w", encoding="utf-8") as handle:
                json.dump(document, handle, sort_keys=True)
                handle.write("\n")
            os.replace(temp, path)
            self.stats.stores += 1
        except OSError:
            # A read-only or full disk degrades to "no cache", not a crash.
            try:
                os.unlink(temp)
            except OSError:
                pass

    def _evict(self, path):
        try:
            os.unlink(path)
            self.stats.evictions += 1
        except OSError:
            pass

    def __repr__(self):
        return "ResultCache(%r, %r)" % (self.root, self.stats)
