"""``python -m repro`` — a fast guided tour of the reproduction.

Runs a trimmed version of the headline experiments (seconds, not the
full benchmark suite) and prints the same tables the paper's figures
report.  For the complete regeneration run::

    pytest benchmarks/ --benchmark-only -s
"""

import argparse
import sys

from repro import __version__
from repro.analysis import Table, format_bytes_axis, format_decimal_bytes


def tour_startup():
    from repro.workloads import measure_startup

    table = Table("Figure 6 (trimmed): GPU pod startup (seconds)",
                  ["memory", "full pin", "PVDMA", "speedup"])
    for row in measure_startup(memory_points=(16 * 10**9, int(1.6e12))):
        table.add_row(format_decimal_bytes(row.memory_bytes),
                      row.full_pin_seconds, row.pvdma_seconds,
                      "%.0fx" % row.speedup)
    table.print()


def tour_gdr():
    from repro.workloads import AtcMissExperiment, emtt_sweep, gdr_datapath_curve

    sizes = [2 << 20, 4 << 20, 64 << 20]
    atc = AtcMissExperiment().sweep(sizes=sizes)
    emtt = emtt_sweep(sizes=sizes)
    table = Table("Figure 8 (trimmed): GDR throughput (Gbps)",
                  ["message", "CX6 ATS/ATC", "vStellar eMTT"])
    for a, e in zip(atc, emtt):
        table.add_row(format_bytes_axis(a.message_bytes), a.gbps, e.gbps)
    table.print()

    peaks = Table("Figure 14: GDR datapath peaks (Gbps)", ["datapath", "Gbps"])
    for mode in ("vstellar", "hyv_masq"):
        peaks.add_row(mode, max(r.gbps for r in gdr_datapath_curve(mode)))
    peaks.print()


def tour_spray():
    from repro import calibration
    from repro.core import make_selector
    from repro.net import DualPlaneTopology, ServerAddress, StaticLoadModel
    from repro.sim.rng import RngStream

    topology = DualPlaneTopology(segments=2, servers_per_segment=2, rails=1)
    table = Table("Figure 12 (trimmed): uplink imbalance vs path count",
                  ["paths", "max-min delta %"])
    for paths in (4, 32, 128):
        model = StaticLoadModel(topology, seed=23)
        for conn in range(16):
            model.add_flow(
                ServerAddress(0, 0), ServerAddress(1, 0), 0,
                make_selector("obs", paths, rng=RngStream(23, "c", conn)),
                int(calibration.RNIC_TOTAL_RATE / 8 * 0.5 / 16),
                connection_id=conn,
            )
        table.add_row(paths, 100 * model.imbalance(0.5, segment=0, rail=0))
    table.print()


def tour_fleet(health_report=None, fidelity="fluid"):
    from repro.workloads import run_churn

    flight = tracer = None
    if health_report:
        from repro.obs import FlightRecorder, Tracer

        flight = FlightRecorder()
        tracer = Tracer()
    fleet, result = run_churn(flight=flight, tracer=tracer, fidelity=fidelity)
    table = Table(
        "Fleet churn: 16 hosts, 3 tenants, mid-run uplink failure",
        ["job", "tenant", "state", "wait s", "startup s", "iters",
         "goodput it/s", "p99 slowdown"],
    )
    for row in result.rows():
        table.add_row(row["job"], row["tenant"], row["state"],
                      row["wait_s"], row["startup_s"], row["iters"],
                      row["goodput_it_s"], row["p99_slowdown"])
    table.print()
    summary = Table("Fleet summary", ["metric", "value"])
    summary.add_row("jobs submitted", result.counters["jobs_submitted"])
    summary.add_row("jobs completed", result.counters["jobs_completed"])
    summary.add_row("jobs failed", result.counters["jobs_failed"])
    summary.add_row("mean wait (s)", result.mean_wait_seconds())
    summary.add_row("mean startup (s)", result.mean_startup_seconds())
    summary.add_row("total goodput (it/s)", result.total_goodput())
    summary.add_row("p99 slowdown vs isolated", result.p99_slowdown())
    summary.add_row("repricing epochs", result.counters["rate_epochs"])
    if fidelity != "fluid":
        summary.add_row("fidelity mode", fidelity)
        summary.add_row("packet windows promoted",
                        result.counters.get("fidelity_promotions", 0))
        summary.add_row("bytes priced at packet fidelity",
                        result.counters.get("dp_bytes_packet", 0))
    summary.print()
    if health_report:
        write_health_report(fleet, flight, tracer, health_report)


def write_health_report(fleet, flight, tracer, path):
    """Render the SLO/incident tables and write the JSON + Perfetto
    artifacts for ``--health-report PATH``."""
    import json

    from repro.obs import write_perfetto_trace

    document = fleet.health_report()
    slo = document["slo"]
    table = Table(
        "Fleet SLO trackers",
        ["entity", "breached", "metric", "breaches", "breach s", "peak ratio"],
    )
    for entity in fleet.slo.entities():
        tracker = slo["trackers"][entity]
        for metric, state in tracker["metrics"].items():
            if not state["breaches"]:
                continue
            table.add_row(entity, "yes" if tracker["breached"] else "no",
                          metric, state["breaches"],
                          round(state["breach_seconds"], 1),
                          state["peak_ratio"])
    table.print()
    incidents = Table(
        "Incidents (fault -> impact -> recovery)",
        ["fault", "at s", "entity", "affected", "impact", "recovery s"],
    )
    for incident in document["incidents"]:
        fault = incident["fault"]
        for entry in incident["affected"] or [None]:
            if entry is None:
                incidents.add_row(fault["kind"], fault["t"], fault["entity"],
                                  "-", "-", "-")
                continue
            recovery = entry["recovery_seconds"]
            incidents.add_row(
                fault["kind"], fault["t"], fault["entity"], entry["entity"],
                round(entry["impact"], 3),
                round(recovery, 1) if recovery is not None else "-",
            )
    incidents.print()
    with open(path, "w") as fh:
        json.dump(document, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print("health report: %d incidents, flight digest %s -> %s"
          % (len(document["incidents"]),
             document["flight"].get("digest", "-")[:12], path))
    trace_path = path + ".trace.json"
    count = write_perfetto_trace(trace_path, tracer=tracer, flight=flight)
    print("perfetto trace: %d events -> %s (open in https://ui.perfetto.dev)"
          % (count, trace_path))


def tour_quickstart():
    import examples.quickstart  # noqa: F401  (path fallback below)


#: The telemetry probe result shared between the metrics tour and the
#: --trace/--metrics exporters (run at most once per invocation).
_PROBE = None


def ensure_probe():
    """Run the canned full-stack telemetry probe once; return its result."""
    global _PROBE
    if _PROBE is None:
        from repro.obs.probe import run_probe

        _PROBE = run_probe()
    return _PROBE


def tour_metrics():
    """The Neohost-style counter report for a canned full-stack run."""
    from repro.analysis import render_report
    from repro.obs import metrics_document

    probe = ensure_probe()
    for title, report in probe.reports():
        render_report(title, report).print()
    document = metrics_document(probe.registry)
    summary = Table("Metrics registry summary", ["family", "instruments"])
    for family in document["families"]:
        summary.add_row(
            family,
            sum(1 for name in document["metrics"] if name.startswith(family + ".")),
        )
    summary.print()


def tour_perf():
    """Smoke pass of the tracked perf suite (``repro.perf``).

    Full-size kernels and the BENCH_perf.json trajectory live behind
    ``python -m repro.perf`` / ``make perf``; the tour reuses its CLI in
    smoke mode so the table and speedup column match exactly.
    """
    from repro.perf.__main__ import main as perf_main

    perf_main(["--smoke"])


TOURS = {
    "startup": tour_startup,
    "gdr": tour_gdr,
    "spray": tour_spray,
    "metrics": tour_metrics,
    "fleet": tour_fleet,
    "perf": tour_perf,
}


def export_telemetry(args):
    """Handle --trace/--metrics/--timeseries by running the probe and
    writing its artifacts."""
    from repro.obs import write_chrome_trace, write_metrics_json

    probe = ensure_probe()
    if args.trace:
        count = write_chrome_trace(probe.tracer, args.trace)
        print("trace: %d events -> %s (open in https://ui.perfetto.dev)"
              % (count, args.trace))
    if args.metrics:
        count = write_metrics_json(probe.registry, args.metrics)
        print("metrics: %d instruments -> %s" % (count, args.metrics))
    if args.timeseries:
        count = probe.sampler.dump(args.timeseries)
        print("timeseries: %d samples -> %s" % (count, args.timeseries))


def main(argv=None):
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv and argv[0] == "run":
        # Pooled experiment runner with result caching (repro.runner):
        # ``python -m repro run <suite> [--workers N] [--no-cache] ...``.
        from repro.runner.__main__ import main as runner_main

        return runner_main(argv[1:])
    if argv and argv[0] == "trace":
        # Trace-driven workloads (repro.traces):
        # ``python -m repro trace {validate,replay,record} ...``.
        from repro.traces.cli import main as trace_main

        return trace_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Quick tour of the Stellar reproduction (%s)" % __version__,
        epilog="Sweeps: 'python -m repro run <suite>' drives the pooled "
               "experiment runner with result caching (see --list there).",
    )
    parser.add_argument(
        "tour", nargs="?", choices=sorted(TOURS) + ["all"], default="all",
        help="which trimmed experiment to run (default: all)",
    )
    parser.add_argument(
        "--trace", metavar="PATH",
        help="export a Chrome trace-event JSON of the telemetry probe run "
             "(loadable in Perfetto)",
    )
    parser.add_argument(
        "--metrics", metavar="PATH",
        help="export the metrics registry snapshot as JSON",
    )
    parser.add_argument(
        "--timeseries", metavar="PATH",
        help="export the sim-time gauge samples (.csv or .json)",
    )
    parser.add_argument(
        "--fidelity", choices=["fluid", "packet", "hybrid"], default="fluid",
        help="with the fleet tour: congestion-pricing fidelity — 'fluid' "
             "(default) prices every epoch on the max-min solver, 'packet' "
             "on the packet simulator, 'hybrid' auto-promotes bounded "
             "packet windows around failures and bursts",
    )
    parser.add_argument(
        "--health-report", metavar="PATH", dest="health_report",
        help="with the fleet tour: run churn with the flight recorder, "
             "print the SLO/incident tables, and write the health JSON to "
             "PATH plus a Perfetto trace to PATH.trace.json",
    )
    args = parser.parse_args(argv)
    print("repro %s — Alibaba Stellar (SIGCOMM 2025) reproduction" % __version__)
    selected = sorted(TOURS) if args.tour == "all" else [args.tour]
    for name in selected:
        if name == "fleet":
            tour_fleet(health_report=args.health_report,
                       fidelity=args.fidelity)
        else:
            TOURS[name]()
    if args.trace or args.metrics or args.timeseries:
        export_telemetry(args)
    print("\nFull regeneration: pytest benchmarks/ --benchmark-only -s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
