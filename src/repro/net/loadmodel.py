"""Static port-load analysis: where does each flow's traffic land?

The fastest of the three network models: distribute each flow's bytes
across ECMP buckets exactly as its path selector would, then study the
per-port load distribution.  This is precisely the measurement behind
Figure 12 (max-min load delta on ToR uplink ports vs. path count) and a
good first-order proxy for the queue-depth orderings of Figure 9.
"""

import collections

from repro.sim.rng import RngStream


class PortLoads:
    """Accumulated byte loads per directed link."""

    def __init__(self, topology):
        self.topology = topology
        self.bytes_by_link = collections.defaultdict(float)
        self.total_bytes = 0.0

    def add(self, link, byte_count):
        self.bytes_by_link[link] += byte_count
        self.total_bytes += byte_count

    def load(self, link):
        return self.bytes_by_link.get(link, 0.0)

    def loads_for(self, links):
        return [self.load(link) for link in links]

    def rates_for(self, links, duration):
        """Offered rate in bits/second per port over ``duration`` seconds."""
        if duration <= 0:
            raise ValueError("duration must be positive: %r" % duration)
        return [self.load(link) * 8.0 / duration for link in links]


class StaticLoadModel:
    """Distributes flow traffic across paths via the real selectors."""

    def __init__(self, topology, seed=0, packet_bytes=4096):
        self.topology = topology
        self.seed = seed
        self.packet_bytes = packet_bytes
        self.loads = PortLoads(topology)
        self._rng = RngStream(seed, "loadmodel")

    def add_flow(
        self,
        src,
        dst,
        rail,
        selector,
        total_bytes,
        connection_id=0,
        max_draws=4096,
    ):
        """Spray one flow's bytes across the fabric.

        The selector is consulted per packet; when the flow has more
        packets than ``max_draws``, draws are scaled up so huge transfers
        stay cheap to model without changing the distribution.
        """
        packets = max(1, int(total_bytes // self.packet_bytes))
        draws = min(packets, max_draws)
        bytes_per_draw = total_bytes / draws
        for _ in range(draws):
            path_id = selector.next_path()
            route = self.topology.route(
                src, dst, rail, path_id=path_id, connection_id=connection_id
            )
            for link in route:
                self.loads.add(link, bytes_per_draw)

    # -- metrics ----------------------------------------------------------

    def tor_uplink_rates(self, duration, segment=None, rail=None):
        links = self.topology.tor_uplinks(segment=segment, rail=rail)
        return self.loads.rates_for(links, duration)

    def imbalance(self, duration, segment=None, rail=None):
        """Figure 12's metric: (max - min) uplink load over port bandwidth."""
        rates = self.tor_uplink_rates(duration, segment=segment, rail=rail)
        if not rates:
            return 0.0
        return (max(rates) - min(rates)) / self.topology.tor_uplink_rate

    def queue_depth_proxy(self, duration, segment=None, rail=None):
        """First-order queue depths: bytes in excess of line rate per port.

        Returns ``(average_bytes, max_bytes)`` over all ToR uplink ports —
        the quantities Figure 9 plots (averaged over time there; offered
        load in excess of drain capacity here).
        """
        links = self.topology.tor_uplinks(segment=segment, rail=rail)
        depths = []
        for link in links:
            offered = self.loads.load(link)
            capacity = self.topology.link_rate(link) / 8.0 * duration
            depths.append(max(0.0, offered - capacity))
        if not depths:
            return 0.0, 0.0
        return sum(depths) / len(depths), max(depths)
