"""Packet-granularity discrete-event network simulator.

Models output-queued switch ports with ECN marking, tail drop, random
loss injection (Figure 11), per-packet path spraying, ACK-clocked
window congestion control, and RTO-driven retransmission on a different
path — the full Stellar transport of Section 7 at packet granularity.

Used for the queue-depth (Figure 9) and loss-resilience (Figure 11)
experiments and for pricing the fleet's promoted hybrid-fidelity
windows; the fluid simulator handles the 512+-GPU collective runs.

Untraced runs take a struct-of-arrays hot path: whole window bursts are
priced through one numpy busy-chain per first-hop port (send_burst) and
retransmission timers collapse into one lazy ladder per flow — both
reproduce the scalar engine's floats and RNG draws bit for bit
(tests/test_packet_differential.py pins this).  Traced runs keep the
original per-packet events, so determinism digests are unchanged.
"""

from collections import deque
from functools import partial

import numpy as np

from repro import calibration
from repro.core.spray import PathSelector, SprayConnection
from repro.rnic.cc import WindowCC
from repro.sim.engine import EventScheduler
from repro.sim.rng import RngStream

#: One-way propagation + switching latency per hop (short DC cables).
HOP_PROPAGATION_SECONDS = 1.0e-6

#: ECN marking threshold, as queue depth in bytes (per port).
DEFAULT_ECN_THRESHOLD_BYTES = 512 * 1024

#: Tail-drop limit per port.
DEFAULT_MAX_QUEUE_BYTES = 16 * 1024 * 1024

#: Minimum same-instant packets before :meth:`MessageFlow._pump` takes
#: the vectorized burst path; below this the numpy setup costs more
#: than the scalar hops it replaces.
BURST_MIN_PACKETS = 8


class PortState:
    """Transmit-port state: virtual queue via busy time, plus statistics."""

    __slots__ = (
        "ref",
        "rate",
        "busy_until",
        "drop_prob",
        "ecn_threshold",
        "max_queue",
        "bytes_tx",
        "packets_tx",
        "drops_random",
        "drops_overflow",
        "ecn_marks",
        "queue_samples",
        "queue_sample_sum",
        "queue_max",
    )

    def __init__(self, ref, rate, ecn_threshold, max_queue):
        self.ref = ref
        self.rate = rate
        self.busy_until = 0.0
        self.drop_prob = 0.0
        self.ecn_threshold = ecn_threshold
        self.max_queue = max_queue
        self.bytes_tx = 0
        self.packets_tx = 0
        self.drops_random = 0
        self.drops_overflow = 0
        self.ecn_marks = 0
        self.queue_samples = 0
        self.queue_sample_sum = 0.0
        self.queue_max = 0.0

    def queue_bytes(self, now):
        """Backlog implied by the busy horizon (virtual output queue)."""
        return max(0.0, (self.busy_until - now) * self.rate / 8.0)

    def sample_queue(self, now):
        depth = self.queue_bytes(now)
        self.queue_samples += 1
        self.queue_sample_sum += depth
        self.queue_max = max(self.queue_max, depth)
        return depth

    @property
    def queue_avg(self):
        return self.queue_sample_sum / self.queue_samples if self.queue_samples else 0.0

    def snapshot(self, now=0.0):
        """Public counter snapshot for one port (Neohost port counters)."""
        return {
            "bytes_tx": self.bytes_tx,
            "packets_tx": self.packets_tx,
            "queue_depth": self.queue_bytes(now),
            "queue_avg": self.queue_avg,
            "queue_max": self.queue_max,
            "ecn_marks": self.ecn_marks,
            "drops_random": self.drops_random,
            "drops_overflow": self.drops_overflow,
        }


class PacketNetSim:
    """The event-driven fabric: ports + packet forwarding."""

    def __init__(
        self,
        topology,
        seed=0,
        ecn_threshold=DEFAULT_ECN_THRESHOLD_BYTES,
        max_queue=DEFAULT_MAX_QUEUE_BYTES,
        tracer=None,
        flight=None,
    ):
        self.topology = topology
        #: Optional FlightRecorder; hooks live on rare paths only (loss
        #: injection, RTOs), never per packet or per ACK.
        self.flight = flight
        self.scheduler = EventScheduler()
        self.rng = RngStream(seed, "packet-sim")
        self.ecn_threshold = ecn_threshold
        self.max_queue = max_queue
        self._ports = {}
        #: id(route) -> (route, tuple of PortState) — per-route port
        #: resolution memo, see send_packet().  The entry keeps the route
        #: object alive, so its id can never be recycled while cached.
        self._route_ports = {}
        self.packets_sent = 0
        self.packets_delivered = 0
        self.packets_dropped = 0
        #: Bumped on every inject_loss() call; flows revalidate their
        #: cached burst-send eligibility against it (see
        #: MessageFlow._burst_eligible).
        self._loss_epoch = 0
        self.tracer = None
        self._latency_hist = None
        if tracer is not None:
            self.set_tracer(tracer)

    @property
    def now(self):
        return self.scheduler.now

    # -- telemetry --------------------------------------------------------

    def set_tracer(self, tracer):
        """Attach a tracer to the sim and its scheduler (None to detach)."""
        self.tracer = self.scheduler.set_tracer(tracer)
        return self.tracer

    def register_metrics(self, registry, prefix="net"):
        """Expose fabric counters under ``net.*`` and start the latency
        histogram (``net.packet.latency_us``).

        Per-port counters appear as ``net.port.<link>.*`` as ports are
        touched; the scheduler rides along under ``scheduler.*``.
        """
        from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS_US

        registry.add_provider(prefix + ".sim", self.snapshot)
        registry.add_provider(prefix + ".port", self._port_snapshots)
        self._latency_hist = registry.histogram(
            prefix + ".packet.latency_us",
            bounds=DEFAULT_LATENCY_BUCKETS_US,
            description="end-to-end delivered packet latency (sim us)",
        )
        self.scheduler.register_metrics(registry)
        return registry

    def ports(self):
        """All materialized port states (public accessor for diagnostics)."""
        return list(self._ports.values())

    def snapshot(self):
        """Public top-level counter snapshot of the fabric."""
        return {
            "packets_sent": self.packets_sent,
            "packets_delivered": self.packets_delivered,
            "packets_dropped": self.packets_dropped,
            "packets_in_flight": (
                self.packets_sent - self.packets_delivered
                - self.packets_dropped
            ),
            "ports": len(self._ports),
        }

    def _port_snapshots(self):
        now = self.now
        return {
            repr(port.ref): port.snapshot(now) for port in self._ports.values()
        }

    def port(self, ref):
        state = self._ports.get(ref)
        if state is None:
            state = PortState(
                ref, self.topology.link_rate(ref), self.ecn_threshold, self.max_queue
            )
            self._ports[ref] = state
        return state

    def inject_loss(self, ref, drop_prob):
        """Random loss on one port (the Figure 11 failure model)."""
        if not 0.0 <= drop_prob <= 1.0:
            raise ValueError("drop probability out of range: %r" % drop_prob)
        self.port(ref).drop_prob = drop_prob
        self._loss_epoch += 1
        if self.flight is not None:
            if drop_prob == 0.0:
                kind, severity = "path-up", "info"
            elif drop_prob >= 1.0:
                kind, severity = "path-down", "error"
            else:
                kind, severity = "loss-inject", "warn"
            self.flight.record(
                self.now, "net", kind, entity=repr(ref),
                severity=severity, drop_prob=drop_prob,
            )

    def send_packet(self, route, size, on_delivered, on_dropped=None):
        """Forward one packet along ``route`` (a sequence of LinkRefs).

        ``on_delivered(latency, ecn_marked)`` fires at the destination;
        ``on_dropped(link)`` fires at the drop point.
        """
        self.packets_sent += 1
        # Resolve the route's PortStates once per packet instead of once
        # per hop: routes from DualPlaneTopology.route() are interned
        # tuples, so an identity-checked id() memo replaces one LinkRef
        # dict lookup per hop (a Python-level __hash__ call each) with a
        # single int-keyed get per packet.  The memo entry pins the route
        # object, so a cached id can never be recycled.
        entry = self._route_ports.get(id(route))
        if entry is None or entry[0] is not route:
            ports = tuple(self.port(ref) for ref in route)
            entry = (route, ports, len(ports))
            self._route_ports[id(route)] = entry
        packet = (
            entry[1], entry[2], size, self.scheduler.now,
            on_delivered, on_dropped,
        )
        self._hop(packet, 0, False)

    def _hop(self, packet, index, ecn):
        # The per-packet hot loop: one invocation per hop per packet, so
        # port state is updated inline (attribute stores on locals)
        # instead of through PortState helpers.  Float expressions match
        # the helpers op for op — sampled depths and departure times feed
        # the determinism digests.  The per-packet invariants travel in
        # one ``packet`` tuple so each hop's continuation closes over
        # three cells instead of eight.
        ports, hop_count, size, start_time, on_delivered, on_dropped = packet
        scheduler = self.scheduler
        now = scheduler.now
        if index >= hop_count:
            self.packets_delivered += 1
            latency = now - start_time
            if self._latency_hist is not None:
                self._latency_hist.observe(latency * 1e6)
            on_delivered(latency, ecn)
            return
        port = ports[index]
        # Inlined PortState.sample_queue()/queue_bytes().
        queue = (port.busy_until - now) * port.rate / 8.0
        if queue <= 0.0:
            queue = 0.0
        port.queue_samples += 1
        port.queue_sample_sum += queue
        if queue > port.queue_max:
            port.queue_max = queue
        drop_prob = port.drop_prob
        if drop_prob > 0 and self.rng.random() < drop_prob:
            port.drops_random += 1
        elif queue + size > port.max_queue:
            port.drops_overflow += 1
        else:
            if queue >= port.ecn_threshold:
                port.ecn_marks += 1
                ecn = True
            tx_time = size * 8.0 / port.rate
            busy = port.busy_until
            depart = (busy if busy > now else now) + tx_time
            port.busy_until = depart
            next_index = index + 1
            # schedule_call: the hop event is never cancelled, so skip
            # the Event-handle allocation.  Untraced runs continue via a
            # C-level partial (no closure frame per hop); traced runs
            # keep the lambda so the recorded callback qualname stays
            # ``PacketNetSim._hop.<locals>.<lambda>`` in the digests.
            if self.tracer is None:
                hop = partial(self._hop, packet, next_index, ecn)
            else:
                hop = lambda: self._hop(packet, next_index, ecn)
            scheduler.schedule_call(depart - now + HOP_PROPAGATION_SECONDS, hop)
            return
        self.packets_dropped += 1
        if self.tracer is not None:
            self.tracer.instant(
                "packet.drop", now, track="net",
                args={"link": repr(port.ref), "bytes": size},
            )
        if on_dropped is not None:
            on_dropped(port.ref)

    def send_burst(self, rows):
        """Vectorized hop 0 for a same-instant burst from one sender.

        ``rows`` is a list of ``(route, size, on_delivered)``.  The
        caller guarantees no first-hop port in the burst can randomly
        drop (batching would otherwise reorder the drop draws relative
        to the scalar path-draw/hop interleaving).  When every row
        shares one first-hop port and nothing can tail-drop, the port's
        busy-time chain, queue samples, and ECN marks are computed
        struct-of-arrays style — cumulative sums reproduce the scalar
        ``+=`` chains bit for bit — and only the hop-1 continuations go
        through the scheduler one by one.  Mixed first hops or a
        potential overflow fall back to the exact scalar hop, which is
        RNG-free here, so either way the draw sequence and every float
        matches the scalar engine.
        """
        count = len(rows)
        self.packets_sent += count
        now = self.scheduler.now
        route_ports = self._route_ports
        entries = []
        for row in rows:
            route = row[0]
            entry = route_ports.get(id(route))
            if entry is None or entry[0] is not route:
                ports = tuple(self.port(ref) for ref in route)
                entry = (route, ports, len(ports))
                route_ports[id(route)] = entry
            entries.append(entry)
        port = entries[0][1][0]
        vector = port.drop_prob == 0.0
        if vector:
            for entry in entries:
                if entry[1][0] is not port:
                    vector = False
                    break
        if vector:
            # Struct-of-arrays hop 0.  Float expressions mirror _hop()
            # op for op (``size * 8.0 / rate``, ``(busy - now) * rate
            # / 8.0``); np.cumsum runs its adds sequentially, so the
            # departure chain and the queue_sample_sum accumulator are
            # bit-identical to the scalar loop's repeated ``+=``.
            sizes = np.array([row[1] for row in rows], dtype=np.float64)
            rate = port.rate
            busy = port.busy_until
            chain = np.empty(count + 1)
            chain[0] = busy if busy > now else now
            chain[1:] = sizes * 8.0 / rate
            departs = np.cumsum(chain)[1:]
            before = np.empty(count)
            before[0] = busy
            before[1:] = departs[:-1]
            queues = (before - now) * rate / 8.0
            np.maximum(queues, 0.0, out=queues)
            if not np.any(queues + sizes > port.max_queue):
                ecn = queues >= port.ecn_threshold
                port.queue_samples += count
                chain[0] = port.queue_sample_sum
                chain[1:] = queues
                port.queue_sample_sum = float(np.cumsum(chain)[-1])
                peak = float(queues.max())
                if peak > port.queue_max:
                    port.queue_max = peak
                marks = int(np.count_nonzero(ecn))
                if marks:
                    port.ecn_marks += marks
                port.busy_until = float(departs[-1])
                delays = departs - now + HOP_PROPAGATION_SECONDS
                schedule_call = self.scheduler.schedule_call
                hop = self._hop
                for i in range(count):
                    entry = entries[i]
                    row = rows[i]
                    packet = (
                        entry[1], entry[2], row[1], now, row[2], _drop_ignored,
                    )
                    schedule_call(
                        float(delays[i]), partial(hop, packet, 1, bool(ecn[i])),
                    )
                return
        hop = self._hop
        for i in range(count):
            entry = entries[i]
            row = rows[i]
            packet = (entry[1], entry[2], row[1], now, row[2], _drop_ignored)
            hop(packet, 0, False)

    # -- statistics -------------------------------------------------------

    def start_queue_monitor(self, interval=100e-6, segment=None, rail=None):
        """Periodically sample every ToR uplink queue (switch telemetry).

        Time-based sampling is unbiased where arrival-based sampling
        over-weights busy instants; Figure 9's queue-depth series is
        reported from these samples via :meth:`monitored_queue_stats`.
        """
        links = self.topology.tor_uplinks(segment=segment, rail=rail)
        self._monitor_samples = []
        self._monitor_links = links

        def sample():
            depths = [
                self._ports[link].queue_bytes(self.now)
                if link in self._ports else 0.0
                for link in links
            ]
            self._monitor_samples.append(depths)
            self.scheduler.schedule(interval, sample)

        self.scheduler.schedule(0.0, sample)

    def monitored_queue_stats(self):
        """(avg, max) queue depth in bytes over all monitored samples."""
        samples = getattr(self, "_monitor_samples", None)
        if not samples:
            raise ValueError("start_queue_monitor() was never called")
        total = sum(sum(row) for row in samples)
        count = sum(len(row) for row in samples)
        peak = max(max(row) for row in samples)
        return total / count, peak

    def tor_queue_stats(self, segment=None, rail=None):
        """(avg, max) sampled queue depth in bytes over ToR uplink ports.

        Ports that never carried traffic contribute zero-depth samples via
        their absence — we average over ports that exist in the sim plus
        untouched uplinks, mirroring a switch-counter sweep.
        """
        links = self.topology.tor_uplinks(segment=segment, rail=rail)
        total = 0.0
        worst = 0.0
        for link in links:
            state = self._ports.get(link)
            if state is None or state.queue_samples == 0:
                continue
            total += state.queue_avg
            worst = max(worst, state.queue_max)
        return (total / len(links) if links else 0.0), worst

    def run(self, until=None, max_events=None):
        return self.scheduler.run(until=until, max_events=max_events)


class FlowResult:
    """Outcome of one finished (or cut-off) message flow."""

    __slots__ = (
        "flow_id",
        "bytes_acked",
        "completion_time",
        "retransmissions",
        "rtos",
    )

    def __init__(self, flow_id, bytes_acked, completion_time, retransmissions, rtos):
        self.flow_id = flow_id
        self.bytes_acked = bytes_acked
        self.completion_time = completion_time
        self.retransmissions = retransmissions
        self.rtos = rtos

    @property
    def goodput(self):
        """Achieved rate in bits/second."""
        if not self.completion_time:
            return 0.0
        return self.bytes_acked * 8.0 / self.completion_time

    def __repr__(self):
        return "FlowResult(%r, %.1fMB acked, %.2fms)" % (
            self.flow_id,
            self.bytes_acked / 1e6,
            (self.completion_time or 0) * 1e3,
        )


def _drop_ignored(link):
    """Shared no-op drop callback: flows detect loss by RTO only.

    Module-level so the per-packet send path doesn't allocate a fresh
    closure for a callback that never does anything.
    """


class MessageFlow:
    """One RDMA message driven through a SprayConnection over the sim."""

    def __init__(
        self,
        sim,
        flow_id,
        src,
        dst,
        rail,
        message_bytes,
        algorithm="obs",
        path_count=calibration.SPRAY_PATH_COUNT,
        mtu=64 * 1024,
        connection_id=0,
        rto=calibration.SPRAY_RTO_SECONDS,
        cc=None,
        start_time=0.0,
        recovery="selective",
    ):
        self.sim = sim
        self._scheduler = sim.scheduler  # hot-path alias (sim.now property)
        self._send_packet = sim.send_packet  # hot-path bound method
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.rail = rail
        self.message_bytes = message_bytes
        self.mtu = mtu
        self.connection_id = connection_id
        self.conn = SprayConnection(
            flow_id,
            algorithm=algorithm,
            path_count=path_count,
            rng=RngStream(sim.rng.seed, "flow", flow_id),
            cc=cc,
            rto=rto,
        )
        self.bytes_unsent = message_bytes
        self.bytes_acked = 0
        self.start_time = start_time
        self.finish_time = None
        self.rto_count = 0
        self._next_seq = 0
        #: seq -> (rto event or None, size, path, tx id) for every
        #: unacked packet.  The tx id is a per-flow monotone counter that
        #: disambiguates retransmissions reusing a seq; untraced runs
        #: timer their RTOs through the lazy ladder below and leave the
        #: event slot None.
        self._outstanding = {}
        # SprayConnection.rto is immutable after construction; the alias
        # saves one attribute hop per transmitted packet.
        self._rto = self.conn.rto
        #: Lazy RTO machinery (untraced runs only): a FIFO of
        #: (deadline, seq, size, path, tx id) — deadline-ordered because
        #: the RTO is constant and send times are non-decreasing —
        #: drained by a single armed timer (_rto_tick) instead of one
        #: schedule/cancel Event pair per packet.
        self._rto_ladder = deque()
        self._rto_timer_armed = False
        self._next_tx_id = 0
        #: Burst-send cache: whether every first-hop port is drop-free,
        #: revalidated whenever the sim's loss configuration changes
        #: (see _burst_eligible).
        self._burst_safe = False
        self._burst_epoch = -1
        # Oblivious selectors inherit the base no-op on_feedback; caching
        # None for them skips one dead method call per ACK.  Selectors
        # that do react to feedback (dwrr, flowlet) keep the bound method.
        selector = self.conn.selector
        if type(selector).on_feedback is PathSelector.on_feedback:
            self._selector_feedback = None
        else:
            self._selector_feedback = selector.on_feedback
        #: path id -> interned route; (src, dst, rail, connection_id) are
        #: fixed per flow, so the topology route key shrinks to one int.
        self._routes = {}
        if recovery not in ("selective", "go_back_n"):
            raise ValueError("unknown recovery mode %r" % recovery)
        #: "selective" is Stellar's out-of-order-tolerant recovery (Direct
        #: Packet Placement); "go_back_n" is classic single-path RoCE,
        #: where one loss retransmits the entire tail of the window.
        self.recovery = recovery
        self.on_complete = None
        if sim.tracer is not None:
            sim.tracer.async_begin(
                "flow", id=flow_id, ts=start_time, track="flows",
                args={"flow": repr(flow_id), "bytes": message_bytes,
                      "algorithm": algorithm},
            )
        sim.scheduler.schedule_at(start_time, self._pump)

    @property
    def done(self):
        return self.finish_time is not None

    def result(self):
        completion = (
            (self.finish_time - self.start_time) if self.finish_time else
            (self.sim.now - self.start_time)
        )
        return FlowResult(
            self.flow_id,
            self.bytes_acked,
            completion,
            self.conn.retransmissions,
            self.rto_count,
        )

    # -- transmission machinery ----------------------------------------

    def _pump(self):
        conn = self.conn
        cc = conn.cc
        next_path = conn.selector.next_path  # skip the conn delegation
        mtu = self.mtu
        now = self._scheduler.now
        if cc.__class__ is WindowCC:
            # Inlined can_send(mtu)/on_send(size) for the stock window
            # CC — identical arithmetic, two fewer Python calls per
            # packet.  Subclasses and alternative CCs take the generic
            # loop below so overrides keep working.
            if self.sim.tracer is None:
                # Batched window arithmetic: decide the whole burst's
                # sizes with local ints first (same comparisons as the
                # scalar loop — window is constant during a pump, no ACK
                # runs in between), then transmit.  Big window-opening
                # bursts go struct-of-arrays through send_burst(); small
                # ACK-clocked refills replay the scalar sequence.
                in_flight = cc.in_flight
                window = cc.window
                unsent = self.bytes_unsent
                sizes = []
                while unsent > 0:
                    if in_flight != 0 and in_flight + mtu > window:
                        break
                    size = mtu if mtu < unsent else unsent
                    unsent -= size
                    in_flight += size
                    sizes.append(size)
                if not sizes:
                    return
                cc.in_flight = in_flight
                self.bytes_unsent = unsent
                if len(sizes) >= BURST_MIN_PACKETS and self._burst_eligible():
                    self._transmit_burst(sizes, now, next_path)
                    return
                for size in sizes:
                    seq = self._next_seq
                    self._next_seq = seq + 1
                    self._transmit(seq, size, next_path(now=now))
                return
            while self.bytes_unsent > 0:
                in_flight = cc.in_flight
                if in_flight != 0 and in_flight + mtu > cc.window:
                    break
                size = mtu if mtu < self.bytes_unsent else self.bytes_unsent
                self.bytes_unsent -= size
                seq = self._next_seq
                self._next_seq = seq + 1
                cc.in_flight = in_flight + size
                self._transmit(seq, size, next_path(now=now))
            return
        while self.bytes_unsent > 0 and cc.can_send(mtu):
            size = mtu if mtu < self.bytes_unsent else self.bytes_unsent
            self.bytes_unsent -= size
            seq = self._next_seq
            self._next_seq += 1
            cc.on_send(size)
            self._transmit(seq, size, next_path(now=now))

    def _transmit(self, seq, size, path):
        route = self._routes.get(path)
        if route is None:
            route = self.sim.topology.route(
                self.src, self.dst, self.rail,
                path_id=path, connection_id=self.connection_id,
            )
            self._routes[path] = route
        scheduler = self._scheduler
        sent_at = scheduler.now
        tx_id = self._next_tx_id
        self._next_tx_id = tx_id + 1
        # RTO handling splits on tracing like the hop continuation.
        # Untraced runs take the lazy ladder: one deque append here plus
        # a single armed timer replaces a per-packet Event schedule and
        # the (almost always) matching cancel — the dominant scheduler
        # churn of a healthy flow, where real RTO fires are vanishingly
        # rare.  Traced runs keep the per-packet timer: its
        # schedule/cancel sequence and the lambda qualname are
        # digest-bearing.  The delivery callback is invoked directly by
        # the packet sim — never recorded — so it is always a partial:
        # _hop calls it with (latency, ecn), which append positionally
        # onto (seq, size, path, sent_at).
        if self.sim.tracer is None:
            deadline = sent_at + self._rto
            self._rto_ladder.append((deadline, seq, size, path, tx_id))
            self._outstanding[seq] = (None, size, path, tx_id)
            if not self._rto_timer_armed:
                self._rto_timer_armed = True
                scheduler.schedule_at(deadline, self._rto_tick)
        else:
            rto_cb = lambda: self._on_rto(seq, size, path)
            rto_event = scheduler.schedule(self._rto, rto_cb)
            self._outstanding[seq] = (rto_event, size, path, tx_id)
        self._send_packet(
            route,
            size,
            on_delivered=partial(self._on_delivered, seq, size, path, sent_at),
            on_dropped=_drop_ignored,
        )

    def _burst_eligible(self):
        """True when a burst send cannot perturb the RNG draw order.

        Burst sends draw every path before running any hop, so they are
        only exact when no first-hop port can randomly drop (no drop
        draw can interleave with the path draws).  A sim that never saw
        inject_loss() qualifies outright — no port anywhere draws.
        Otherwise eligibility needs every path's route resolved so each
        first hop can be checked, and the verdict is cached per loss
        epoch (inject_loss invalidates it).
        """
        sim = self.sim
        if sim._loss_epoch == 0:
            return True
        routes = self._routes
        if len(routes) < self.conn.path_count:
            return False
        if self._burst_epoch == sim._loss_epoch:
            return self._burst_safe
        port = sim.port
        safe = all(port(route[0]).drop_prob == 0.0 for route in routes.values())
        self._burst_epoch = sim._loss_epoch
        self._burst_safe = safe
        return safe

    def _transmit_burst(self, sizes, now, next_path):
        """Ladder + outstanding bookkeeping for a burst, then send_burst.

        Path draws happen in the same order as the scalar loop; hop 0
        consumes no RNG here (_burst_eligible), so batching them ahead
        of the hops leaves the draw sequence unchanged.
        """
        routes = self._routes
        ladder = self._rto_ladder
        outstanding = self._outstanding
        on_delivered = self._on_delivered
        deadline = now + self._rto
        seq = self._next_seq
        tx_id = self._next_tx_id
        rows = []
        for size in sizes:
            path = next_path(now=now)
            route = routes.get(path)
            if route is None:
                route = self.sim.topology.route(
                    self.src, self.dst, self.rail,
                    path_id=path, connection_id=self.connection_id,
                )
                routes[path] = route
            rows.append(
                (route, size, partial(on_delivered, seq, size, path, now))
            )
            ladder.append((deadline, seq, size, path, tx_id))
            outstanding[seq] = (None, size, path, tx_id)
            seq += 1
            tx_id += 1
        self._next_seq = seq
        self._next_tx_id = tx_id
        if not self._rto_timer_armed:
            self._rto_timer_armed = True
            self._scheduler.schedule_at(deadline, self._rto_tick)
        self.sim.send_burst(rows)

    def _rto_tick(self):
        """The single armed retransmission timer (untraced runs).

        Pops every stale head (acked or superseded packets — recognised
        by tx id), fires any live entry whose deadline has passed, then
        re-arms at the next live deadline.  Ticks are O(distinct arm
        points), not O(packets); the per-packet cost is one deque
        append at transmit and one popleft here.
        """
        ladder = self._rto_ladder
        outstanding = self._outstanding
        now = self._scheduler.now
        while ladder:
            deadline, seq, size, path, tx_id = ladder[0]
            entry = outstanding.get(seq)
            if entry is None or entry[3] != tx_id:
                ladder.popleft()
                continue
            if deadline <= now:
                ladder.popleft()
                self._on_rto(seq, size, path)
                continue
            break
        if ladder:
            self._scheduler.schedule_at(ladder[0][0], self._rto_tick)
        else:
            self._rto_timer_armed = False

    def _on_delivered(self, seq, size, path, sent_at, latency, ecn):
        # The ACK flies back contention-free (ACKs are tiny).  Same
        # traced/untraced split as the hop continuation: the ACK event's
        # qualname is digest-bearing, so traced runs keep the in-function
        # lambda while untraced runs skip the closure and its extra frame.
        ack_delay = HOP_PROPAGATION_SECONDS * 2
        if self.sim.tracer is None:
            ack_cb = partial(self._on_ack, seq, size, path, sent_at, ecn)
        else:
            ack_cb = lambda: self._on_ack(seq, size, path, sent_at, ecn)
        self._scheduler.schedule_call(ack_delay, ack_cb)

    def _on_ack(self, seq, size, path, sent_at, ecn):
        outstanding = self._outstanding
        if self.recovery == "go_back_n":
            if seq not in outstanding:
                return  # already retransmitted; ignore the stale ACK
            if seq != min(outstanding):
                # A go-back-N receiver discards out-of-order arrivals: a
                # gap ahead of this packet means it will be retransmitted
                # anyway.
                return
        entry = outstanding.pop(seq, None)
        if entry is None:
            return  # already retransmitted; ignore the stale ACK
        event = entry[0]
        if event is not None:
            event.cancel()  # traced runs: per-packet timer
        now = self._scheduler.now
        rtt = now - sent_at
        self.bytes_acked += size
        # Inlined SprayConnection.on_ack (pure delegation): credit the CC
        # and feed the path selector directly, one frame fewer per ACK.
        conn = self.conn
        cc = conn.cc
        if cc.__class__ is WindowCC and not ecn and rtt <= cc.target_rtt:
            # Inlined WindowCC.on_ack additive-increase path — the vast
            # majority of ACKs even in loss runs — with the arithmetic
            # matched op for op.  ECN marks and inflated RTTs fall back
            # to the real method so the cut/holdoff logic stays in cc.py,
            # as do CC subclasses (exact-type check).
            in_flight = cc.in_flight - size
            cc.in_flight = in_flight if in_flight > 0 else 0
            cc.acks += 1
            window = cc.window
            cc.window = min(
                cc.max_window,
                window + cc.additive_bytes * size / max(window, 1.0),
            )
        else:
            cc.on_ack(size, ecn, rtt, now)
        feedback = self._selector_feedback
        if feedback is not None:
            feedback(path, rtt, ecn)
        if self.bytes_acked >= self.message_bytes and self.finish_time is None:
            self.finish_time = now
            if self.sim.tracer is not None:
                self.sim.tracer.async_end(
                    "flow", id=self.flow_id, ts=self.finish_time, track="flows",
                    args={"retransmissions": self.conn.retransmissions,
                          "rtos": self.rto_count},
                )
            if self.on_complete is not None:
                self.on_complete(self)
            return
        self._pump()

    def _on_rto(self, seq, size, path):
        if seq not in self._outstanding:
            return
        self.rto_count += 1
        if self.sim.tracer is not None:
            self.sim.tracer.instant(
                "flow.rto", self.sim.now, track="flows",
                args={"flow": repr(self.flow_id), "seq": seq, "path": path},
            )
        flight = self.sim.flight
        if flight is not None:
            flight.record(
                self.sim.now, "net", "retransmit",
                entity=repr(self.flow_id), severity="warn",
                seq=seq, path=path,
            )
        self.conn.on_loss(path)
        if self.recovery == "go_back_n":
            # Classic RoCE: the loss invalidates every later in-flight
            # packet; cancel their timers and retransmit the whole tail.
            tail = sorted(s for s in self._outstanding if s >= seq)
            resend = []
            for s in tail:
                event, sz, p, _tx = self._outstanding.pop(s)
                if event is not None:
                    event.cancel()
                resend.append((s, sz, p))
            self.conn.cc.on_rto()  # full stall: halve window, clear flight
            self._record_cc_collapse(flight)
            for s, sz, p in resend:
                self.conn.cc.on_send(sz)
                self._transmit(s, sz, self.conn.next_path(now=self.sim.now))
            return
        del self._outstanding[seq]
        self.conn.cc.on_rto(size)
        self._record_cc_collapse(flight)
        # Instant recovery: retransmit on a different path (Section 7.2).
        retry_path = self.conn.retransmit_path(path)
        self.conn.cc.on_send(size)
        self._transmit(seq, size, retry_path)

    def _record_cc_collapse(self, flight):
        """Flag an RTO that drove the CC window to its floor (RTO path only)."""
        if flight is None:
            return
        cc = self.conn.cc
        min_window = getattr(cc, "min_window", None)
        if min_window is not None and cc.window <= min_window:
            flight.record(
                self.sim.now, "net", "cc-collapse",
                entity=repr(self.flow_id), severity="error",
                window=cc.window,
            )


def run_flows(sim, flows, timeout=5.0):
    """Run until every flow completes (or the timeout hits); returns results."""
    deadline = timeout
    while not all(flow.done for flow in flows):
        executed = sim.run(until=deadline, max_events=200_000)
        if executed == 0 and sim.scheduler.peek_time() is None:
            break
        if sim.now >= deadline:
            break
    return [flow.result() for flow in flows]
