"""Time-stepped fluid (flow-level) network simulator.

For 512-GPU-and-up collective workloads (Figures 10, 15, 16) packet
granularity is unnecessary: what matters is how each algorithm's *path
distribution* interacts with link capacities.  Each step:

1. every active flow turns its selector into a weight vector over ECMP
   buckets (analytic for single/RR/OBS, sampled for feedback-driven
   algorithms),
2. a max-min fair allocation is computed over all directed links
   (vectorized with scipy.sparse),
3. flows advance and selectors receive per-path congestion feedback
   derived from bottleneck utilization — so BestRTT's herding and DWRR's
   weight collapse emerge from the same code paths production would run.
"""

import collections

import numpy as np
from scipy import sparse

from repro import calibration
from repro.core.spray import make_selector
from repro.net.ecmp import flow_entropy
from repro.sim.rng import RngStream

#: Selector draws per step used to estimate feedback-driven weights.
_FEEDBACK_SAMPLE_DRAWS = 192

#: Utilization above which a path is considered congested (ECN proxy).
_CONGESTION_UTILIZATION = 0.95

#: Analytic-weight algorithms: the per-packet distribution over path ids
#: is uniform, so bucket weights follow directly from the hash map.
_ANALYTIC = {"rr", "obs"}


class FluidFlow:
    """One long-lived transfer between two servers on one rail."""

    def __init__(
        self,
        flow_id,
        src,
        dst,
        rail,
        algorithm="obs",
        path_count=calibration.SPRAY_PATH_COUNT,
        total_bytes=None,
        connection_id=0,
        start_time=0.0,
        on_seconds=None,
        off_seconds=None,
        rng=None,
    ):
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.rail = rail
        self.algorithm = algorithm
        self.path_count = path_count
        self.total_bytes = total_bytes
        self.connection_id = connection_id
        self.start_time = start_time
        self.on_seconds = on_seconds
        self.off_seconds = off_seconds
        self.transferred = 0.0
        self.finish_time = None
        self.rate_history = []
        self.entropy = flow_entropy(src.node_id, dst.node_id, connection_id)
        rng = rng if rng is not None else RngStream(0, "fluid", flow_id)
        self.selector = make_selector(algorithm, path_count, rng=rng)
        #: (weights, routes) memo for algorithms whose distribution is
        #: static across steps (single/RR/OBS) — saves re-hashing 128
        #: routes per flow per step.
        self._static_plan = None

    @property
    def done(self):
        return self.total_bytes is not None and self.transferred >= self.total_bytes

    def active(self, now):
        if now < self.start_time or self.done:
            return False
        if self.on_seconds is None:
            return True
        period = self.on_seconds + (self.off_seconds or 0.0)
        return (now - self.start_time) % period < self.on_seconds

    def mean_rate(self):
        """Average achieved rate over active steps, bits/second."""
        rates = [r for r in self.rate_history if r is not None]
        return sum(rates) / len(rates) if rates else 0.0

    def __repr__(self):
        return "FluidFlow(%r, %s x %d)" % (
            self.flow_id,
            self.algorithm,
            self.path_count,
        )


class FluidSimulation:
    """Max-min fluid allocation over the dual-plane topology."""

    def __init__(self, topology, dt=0.01, seed=0):
        self.topology = topology
        self.dt = dt
        self.seed = seed
        self.now = 0.0
        self.flows = []
        self.steps_run = 0
        self._link_index = {}
        self._link_caps = []
        self._rng = RngStream(seed, "fluid-sim")
        #: (active flows, link count, rates, utilization) of the last
        #: solve, reused while the inputs are provably unchanged —
        #: see step().
        self._solve_cache = None

    def add_flow(self, *args, **kwargs):
        kwargs.setdefault(
            "rng", RngStream(self.seed, "fluid-flow", len(self.flows))
        )
        flow = FluidFlow(*args, **kwargs)
        self.flows.append(flow)
        return flow

    # -- link table -----------------------------------------------------

    def _link_id(self, link):
        idx = self._link_index.get(link)
        if idx is None:
            idx = len(self._link_caps)
            self._link_index[link] = idx
            self._link_caps.append(self.topology.link_rate(link))
        return idx

    # -- weights ---------------------------------------------------------

    def _flow_paths(self, flow):
        """(path_id -> probability) for this step."""
        if flow.algorithm == "single":
            return {flow.selector.next_path(now=self.now): 1.0}
        if flow.algorithm in _ANALYTIC:
            share = 1.0 / flow.path_count
            return {p: share for p in range(flow.path_count)}
        draws = collections.Counter(
            flow.selector.next_path(now=self.now)
            for _ in range(_FEEDBACK_SAMPLE_DRAWS)
        )
        return {p: n / _FEEDBACK_SAMPLE_DRAWS for p, n in draws.items()}

    def _flow_link_weights(self, flow, path_probs):
        """Aggregate path probabilities into per-link weight sums."""
        weights = collections.defaultdict(float)
        routes = {}
        for path_id, prob in path_probs.items():
            route = self.topology.route(
                flow.src, flow.dst, flow.rail,
                path_id=path_id, connection_id=flow.connection_id,
            )
            routes[path_id] = route
            for link in route:
                weights[self._link_id(link)] += prob
        return weights, routes

    # -- the max-min allocator ------------------------------------------

    @staticmethod
    def max_min_rates(weight_rows, capacities):
        """Progressive-filling max-min fairness.

        ``weight_rows[f]`` maps link index -> weight; returns rates such
        that no flow can increase without decreasing a poorer flow.
        """
        flow_count = len(weight_rows)
        if flow_count == 0:
            return np.zeros(0)
        rows, cols, vals = [], [], []
        for f, weights in enumerate(weight_rows):
            for link, weight in weights.items():
                rows.append(f)
                cols.append(link)
                vals.append(weight)
        link_count = len(capacities)
        matrix = sparse.csr_matrix(
            (vals, (rows, cols)), shape=(flow_count, link_count)
        )
        caps = np.asarray(capacities, dtype=float)
        rates = np.zeros(flow_count)
        active = np.ones(flow_count, dtype=bool)
        for _ in range(flow_count + 1):
            if not active.any():
                break
            demand = matrix.T @ active.astype(float)
            load = matrix.T @ rates
            headroom = caps - load
            constrained = demand > 1e-12
            if not constrained.any():
                break
            delta = np.min(headroom[constrained] / demand[constrained])
            delta = max(delta, 0.0)
            rates[active] += delta
            load = matrix.T @ rates
            saturated = (caps - load) <= caps * 1e-9 + 1.0
            if not saturated.any():
                break
            touching = (matrix[:, saturated].getnnz(axis=1) > 0) & active
            if not touching.any():
                break
            active &= ~touching
        return rates

    # -- stepping -------------------------------------------------------

    def step(self):
        """Advance the simulation by one dt.

        Incremental re-solve: the max-min allocation depends only on the
        active flow set and their link weights.  When every active flow
        has a static path distribution (single/RR/OBS) and the active set
        and link table match the previous solve exactly, last step's
        rates and utilization are bit-identical by construction and are
        reused instead of re-running progressive filling — the dominant
        cost for steady-state collectives and fleet congestion epochs.
        Any feedback-driven flow (its weights re-sample every step) or
        any membership change invalidates the cache.
        """
        active_flows = [f for f in self.flows if f.active(self.now)]
        weight_rows = []
        route_maps = []
        all_static = True
        for flow in active_flows:
            static = flow.algorithm in _ANALYTIC or flow.algorithm == "single"
            if static and flow._static_plan is not None:
                probs, weights, routes = flow._static_plan
            else:
                all_static = all_static and static
                probs = self._flow_paths(flow)
                weights, routes = self._flow_link_weights(flow, probs)
                if static:
                    flow._static_plan = (probs, weights, routes)
            weight_rows.append(weights)
            route_maps.append((probs, routes))
        cache = self._solve_cache
        if (
            all_static
            and cache is not None
            and cache[1] == len(self._link_caps)
            and cache[0] == active_flows  # element-wise identity compare
        ):
            rates = cache[2]
            utilization = cache[3]
        else:
            rates = self.max_min_rates(weight_rows, self._link_caps)
            # Link utilization for feedback.
            if len(self._link_caps):
                loads = np.zeros(len(self._link_caps))
                for f, weights in enumerate(weight_rows):
                    for link, weight in weights.items():
                        loads[link] += rates[f] * weight
                caps = np.asarray(self._link_caps)
                utilization = np.divide(loads, caps, out=np.zeros_like(loads),
                                        where=caps > 0)
            else:
                utilization = np.zeros(0)
            self._solve_cache = (
                (list(active_flows), len(self._link_caps), rates, utilization)
                if all_static else None
            )
        for flow in self.flows:
            flow.rate_history.append(None)
        feed_back = not all_static
        for f, flow in enumerate(active_flows):
            rate = float(rates[f])
            flow.rate_history[-1] = rate
            flow.transferred += rate / 8.0 * self.dt
            if flow.done and flow.finish_time is None:
                flow.finish_time = self.now + self.dt
            if feed_back:
                self._feed_back(flow, route_maps[f], utilization)
        self.now += self.dt
        self.steps_run += 1
        return rates

    def _feed_back(self, flow, probs_routes, utilization):
        """Translate link utilization into selector feedback signals."""
        if flow.algorithm in _ANALYTIC or flow.algorithm == "single":
            return
        probs, routes = probs_routes
        base_rtt = 8e-6
        for path_id, route in routes.items():
            worst = max(
                utilization[self._link_index[link]]
                for link in route
            )
            # ECN marking is probabilistic in utilization, like a RED/ECN
            # threshold seen through sampled ACKs.  The stochastic
            # asymmetry is what lets DWRR's weights diverge and collapse
            # onto few paths — the pathology Figure 10a reports.
            mark_probability = min(1.0, max(0.0, (worst - 0.8) / 0.4))
            congested = self._rng.random() < mark_probability
            rtt = base_rtt * (1.0 + 8.0 * max(0.0, worst - 0.8))
            flow.selector.on_feedback(path_id, rtt=rtt, ecn=congested)

    def run(self, duration=None, until_done=False, max_steps=10_000):
        """Run for a duration and/or until all bounded flows finish."""
        steps = 0
        while steps < max_steps:
            if duration is not None and self.now >= duration - 1e-12:
                break
            if until_done and all(
                f.done for f in self.flows if f.total_bytes is not None
            ):
                break
            if duration is None and not until_done:
                raise ValueError("run() needs a duration or until_done=True")
            self.step()
            steps += 1
        return steps
