"""Time-stepped fluid (flow-level) network simulator.

For 512-GPU-and-up collective workloads (Figures 10, 15, 16) packet
granularity is unnecessary: what matters is how each algorithm's *path
distribution* interacts with link capacities.  Each step:

1. every active flow turns its selector into a weight vector over ECMP
   buckets (analytic for single/RR/OBS, sampled for feedback-driven
   algorithms),
2. a max-min fair allocation is computed over all directed links
   (vectorized with scipy.sparse),
3. flows advance and selectors receive per-path congestion feedback
   derived from bottleneck utilization — so BestRTT's herding and DWRR's
   weight collapse emerge from the same code paths production would run.

The engine is struct-of-arrays: mutable flow state (transferred bytes,
finish times, rate accumulators, activity) lives in numpy arrays owned
by :class:`FluidSimulation`, and :class:`FluidFlow` objects are views
into those arrays.  Per-flow link weights are kept as canonical sparse
rows (sorted link-id / weight arrays) built once per static flow, so the
flow x link incidence matrix is re-assembled only when the active
membership changes, never per step.  The float semantics of the original
scalar engine are preserved operation-for-operation (same accumulation
order, same per-step arithmetic), which keeps every determinism digest
bit-identical across the vectorization.
"""

import collections

import numpy as np
from scipy import sparse

from repro import calibration
from repro.core.spray import make_selector
from repro.net.ecmp import flow_entropy, hash_combine
from repro.sim.rng import RngStream

#: Selector draws per step used to estimate feedback-driven weights.
_FEEDBACK_SAMPLE_DRAWS = 192

#: Utilization above which a path is considered congested (ECN proxy).
_CONGESTION_UTILIZATION = 0.95

#: Analytic-weight algorithms: the per-packet distribution over path ids
#: is uniform, so bucket weights follow directly from the hash map.
_ANALYTIC = {"rr", "obs"}

_MASK64 = (1 << 64) - 1
_U64 = np.uint64
# splitmix64 constants, pre-wrapped so the vector mixer below stays in
# uint64 (numpy wraps on overflow exactly like the `& _MASK64` in
# repro.net.ecmp.splitmix64 — the two produce identical streams).
_SM_GAMMA = _U64(0x9E3779B97F4A7C15)
_SM_MUL1 = _U64(0xBF58476D1CE4E5B9)
_SM_MUL2 = _U64(0x94D049BB133111EB)
_SM_S30 = _U64(30)
_SM_S27 = _U64(27)
_SM_S31 = _U64(31)


def _splitmix64_vec(values):
    """Vector splitmix64: bit-identical to ``ecmp.splitmix64`` per lane."""
    v = values + _SM_GAMMA
    v = (v ^ (v >> _SM_S30)) * _SM_MUL1
    v = (v ^ (v >> _SM_S27)) * _SM_MUL2
    return v ^ (v >> _SM_S31)


class FluidFlow:
    """One long-lived transfer between two servers on one rail.

    Constructed standalone the flow owns its own scalars; once attached
    to a :class:`FluidSimulation` (via ``add_flow``) the mutable state
    moves into the simulation's arrays and the attributes below become
    views — reading ``flow.transferred`` reads the array slot.
    """

    def __init__(
        self,
        flow_id,
        src,
        dst,
        rail,
        algorithm="obs",
        path_count=calibration.SPRAY_PATH_COUNT,
        total_bytes=None,
        connection_id=0,
        start_time=0.0,
        on_seconds=None,
        off_seconds=None,
        rng=None,
        transferred=0.0,
    ):
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.rail = rail
        self.algorithm = algorithm
        self.path_count = path_count
        self.total_bytes = total_bytes
        self.connection_id = connection_id
        self.start_time = start_time
        self.on_seconds = on_seconds
        self.off_seconds = off_seconds
        #: Per-step achieved rates; only populated when the owning
        #: simulation was built with ``record_history=True`` (figure
        #: paths that plot the timeline) — mean_rate() never needs it.
        self.rate_history = []
        self.entropy = flow_entropy(src.node_id, dst.node_id, connection_id)
        rng = rng if rng is not None else RngStream(0, "fluid", flow_id)
        self.selector = make_selector(algorithm, path_count, rng=rng)
        #: Static path distributions (single/RR/OBS) resolve to one
        #: canonical sparse row (sorted link ids, weights), built lazily
        #: at the flow's first active step.
        self._static = algorithm in _ANALYTIC or algorithm == "single"
        self._plan = None
        #: Feedback flows: path_id -> link-id array (route order), so
        #: re-sampled weights re-use resolved routes.
        self._path_link_ids = {}
        self._sim = None
        self._idx = None
        # Standalone state, authoritative until _attach() migrates it.
        # ``transferred`` may start non-zero: the hybrid-fidelity engine
        # re-seeds a fluid flow with packet-measured progress when a
        # promoted window demotes mid-message.
        self._transferred = float(transferred)
        self._finish_time = None
        self._rate_sum = 0.0
        self._rate_count = 0.0

    # -- array-backed state views ---------------------------------------

    @property
    def transferred(self):
        if self._sim is None:
            return self._transferred
        return float(self._sim._arr_transferred[self._idx])

    @transferred.setter
    def transferred(self, value):
        if self._sim is None:
            self._transferred = value
        else:
            self._sim._arr_transferred[self._idx] = value

    @property
    def finish_time(self):
        if self._sim is None:
            return self._finish_time
        value = self._sim._arr_finish[self._idx]
        return None if np.isnan(value) else float(value)

    @finish_time.setter
    def finish_time(self, value):
        if self._sim is None:
            self._finish_time = value
        else:
            self._sim._arr_finish[self._idx] = (
                np.nan if value is None else value
            )

    @property
    def done(self):
        return self.total_bytes is not None and self.transferred >= self.total_bytes

    def active(self, now):
        if now < self.start_time or self.done:
            return False
        if self.on_seconds is None:
            return True
        period = self.on_seconds + (self.off_seconds or 0.0)
        return (now - self.start_time) % period < self.on_seconds

    def mean_rate(self):
        """Average achieved rate over active steps, bits/second."""
        if self._sim is None:
            count = self._rate_count
            return self._rate_sum / count if count else 0.0
        count = self._sim._arr_rate_count[self._idx]
        if not count:
            return 0.0
        return float(self._sim._arr_rate_sum[self._idx] / count)

    def __repr__(self):
        return "FluidFlow(%r, %s x %d)" % (
            self.flow_id,
            self.algorithm,
            self.path_count,
        )


class FluidSimulation:
    """Max-min fluid allocation over the dual-plane topology.

    ``record_history`` opts into per-step ``FluidFlow.rate_history``
    lists (unbounded; figure-scale runs only).  ``plan_cache`` accepts a
    dict shared across simulations on the same topology structure:
    analytic flow plans are stored in LinkRef terms and re-priced
    per-simulation, which is what lets fleet congestion epochs skip
    re-deriving identical path distributions every repricing.
    """

    def __init__(self, topology, dt=0.01, seed=0, record_history=False,
                 plan_cache=None):
        self.topology = topology
        self.dt = dt
        self.seed = seed
        self.now = 0.0
        self.flows = []
        self.steps_run = 0
        self.record_history = record_history
        self._plan_cache = plan_cache
        self._link_index = {}
        self._link_caps = []
        self._links = []
        self._caps_arr = np.zeros(0)
        self._rng = RngStream(seed, "fluid-sim")
        #: (active indices, link count, rates, utilization) of the last
        #: solve, reused while the inputs are provably unchanged —
        #: see step().
        self._solve_cache = None
        # Struct-of-arrays flow state; _n live rows, doubling growth.
        self._n = 0
        self._arr_transferred = np.zeros(0)
        self._arr_total = np.zeros(0)       # +inf = unbounded
        self._arr_start = np.zeros(0)
        self._arr_on = np.zeros(0)          # nan = always on
        self._arr_period = np.zeros(0)      # on + off; nan = always on
        self._arr_finish = np.zeros(0)      # nan = not finished
        self._arr_rate_sum = np.zeros(0)
        self._arr_rate_count = np.zeros(0)
        self._arr_static = np.zeros(0, dtype=bool)
        self._arr_has_plan = np.zeros(0, dtype=bool)

    def add_flow(self, *args, **kwargs):
        kwargs.setdefault(
            "rng", RngStream(self.seed, "fluid-flow", len(self.flows))
        )
        flow = FluidFlow(*args, **kwargs)
        self._attach(flow)
        self.flows.append(flow)
        return flow

    # -- flow state arrays ----------------------------------------------

    def _ensure_capacity(self, count):
        capacity = len(self._arr_transferred)
        if count <= capacity:
            return
        new_cap = max(8, capacity * 2, count)
        for name in (
            "_arr_transferred", "_arr_total", "_arr_start", "_arr_on",
            "_arr_period", "_arr_finish", "_arr_rate_sum",
            "_arr_rate_count",
        ):
            old = getattr(self, name)
            grown = np.zeros(new_cap)
            grown[: len(old)] = old
            setattr(self, name, grown)
        for name in ("_arr_static", "_arr_has_plan"):
            old = getattr(self, name)
            grown = np.zeros(new_cap, dtype=bool)
            grown[: len(old)] = old
            setattr(self, name, grown)

    def _attach(self, flow):
        idx = self._n
        self._ensure_capacity(idx + 1)
        self._n = idx + 1
        self._arr_transferred[idx] = flow._transferred
        self._arr_total[idx] = (
            np.inf if flow.total_bytes is None else flow.total_bytes
        )
        self._arr_start[idx] = flow.start_time
        if flow.on_seconds is None:
            self._arr_on[idx] = np.nan
            self._arr_period[idx] = np.nan
        else:
            self._arr_on[idx] = flow.on_seconds
            self._arr_period[idx] = flow.on_seconds + (flow.off_seconds or 0.0)
        self._arr_finish[idx] = (
            np.nan if flow._finish_time is None else flow._finish_time
        )
        self._arr_rate_sum[idx] = flow._rate_sum
        self._arr_rate_count[idx] = flow._rate_count
        self._arr_static[idx] = flow._static
        self._arr_has_plan[idx] = False
        flow._sim = self
        flow._idx = idx

    def _active_indices(self):
        """Indices of flows active at ``self.now`` (vectorized)."""
        n = self._n
        if n == 0:
            return np.zeros(0, dtype=np.int64)
        now = self.now
        started = self._arr_start[:n] <= now
        not_done = self._arr_transferred[:n] < self._arr_total[:n]
        always_on = np.isnan(self._arr_on[:n])
        with np.errstate(invalid="ignore"):
            phase = np.mod(now - self._arr_start[:n], self._arr_period[:n])
            on_phase = always_on | (phase < self._arr_on[:n])
        return np.flatnonzero(started & not_done & on_phase)

    # -- link table -----------------------------------------------------

    def _link_id(self, link):
        idx = self._link_index.get(link)
        if idx is None:
            idx = len(self._link_caps)
            self._link_index[link] = idx
            self._link_caps.append(self.topology.link_rate(link))
            self._links.append(link)
        return idx

    def _caps_array(self):
        if len(self._caps_arr) != len(self._link_caps):
            self._caps_arr = np.asarray(self._link_caps, dtype=float)
        return self._caps_arr

    # -- weights ---------------------------------------------------------

    def _flow_paths(self, flow):
        """(path_id -> probability) for this step."""
        if flow.algorithm == "single":
            return {flow.selector.next_path(now=self.now): 1.0}
        if flow.algorithm in _ANALYTIC:
            share = 1.0 / flow.path_count
            return {p: share for p in range(flow.path_count)}
        draws = collections.Counter(
            flow.selector.next_path(now=self.now)
            for _ in range(_FEEDBACK_SAMPLE_DRAWS)
        )
        return {p: n / _FEEDBACK_SAMPLE_DRAWS for p, n in draws.items()}

    def _path_ids(self, flow, path_id):
        """Link-id array for one resolved path (route order), memoized."""
        ids = flow._path_link_ids.get(path_id)
        if ids is None:
            route = self.topology.route(
                flow.src, flow.dst, flow.rail,
                path_id=path_id, connection_id=flow.connection_id,
            )
            ids = np.array([self._link_id(link) for link in route],
                           dtype=np.int64)
            flow._path_link_ids[path_id] = ids
        return ids

    @staticmethod
    def _accumulate_row(flat_ids, flat_vals):
        """Canonical sparse row from (link id, weight) pairs in path order.

        ``np.add.at`` applies the additions in array order, which is the
        same accumulation order the scalar engine's ``dict[id] += w``
        loop used — so repeated-sum floats (k additions of 1/P) come out
        bit-identical, not merely close.
        """
        cols, inverse = np.unique(flat_ids, return_inverse=True)
        vals = np.zeros(len(cols))
        np.add.at(vals, inverse.ravel(), flat_vals)
        return cols, vals

    def _feedback_row(self, flow, probs):
        """Sparse row for a feedback flow's freshly sampled distribution."""
        ids_list = [self._path_ids(flow, p) for p in probs]
        flat = np.concatenate(ids_list)
        lens = [len(ids) for ids in ids_list]
        vals = np.repeat(
            np.fromiter(probs.values(), dtype=float, count=len(probs)), lens
        )
        return self._accumulate_row(flat, vals)

    def _analytic_plan(self, flow):
        """Vectorized uniform-spray plan: ECMP-hash all P paths at once.

        Replicates ``topology.route`` link-for-link: plane alternates
        with (path id + entropy), the agg switch comes from the same
        splitmix64 chain ``EcmpHasher.bucket`` runs — but hashed as one
        uint64 array instead of P Python calls, and resolved through the
        <= planes x aggs distinct (plane, agg) pairs instead of P routes.
        """
        topo = self.topology
        src, dst, rail = flow.src, flow.dst, flow.rail
        if src == dst:
            raise ValueError("route to self: %r" % (src,))
        planes = topo.planes
        aggs = topo.aggs_per_plane
        count = flow.path_count
        path = np.arange(count, dtype=np.int64)
        plane = (path % planes + flow.entropy % planes) % planes
        if src.segment == dst.segment:
            codes, inverse = np.unique(plane, return_inverse=True)
            table = np.empty((len(codes), 2), dtype=np.int64)
            for u, code in enumerate(codes):
                pl = int(code)
                table[u, 0] = self._link_id(topo.host_up(src, rail, pl))
                table[u, 1] = self._link_id(topo.host_down(dst, rail, pl))
        else:
            # hash_combine(entropy, p) == splitmix64(state ^ p) with the
            # entropy already folded into ``state`` — one scalar round,
            # then a vector round over all path ids.
            state = _U64(hash_combine(flow.entropy))
            hashed = _splitmix64_vec(state ^ path.astype(np.uint64))
            bucket = (hashed % _U64(planes * aggs)).astype(np.int64)
            agg = bucket % aggs
            codes, inverse = np.unique(plane * aggs + agg, return_inverse=True)
            table = np.empty((len(codes), 4), dtype=np.int64)
            for u, code in enumerate(codes):
                pl = int(code // aggs)
                ag = int(code % aggs)
                table[u, 0] = self._link_id(topo.host_up(src, rail, pl))
                table[u, 1] = self._link_id(
                    topo.tor_up(src.segment, rail, pl, ag))
                table[u, 2] = self._link_id(
                    topo.tor_down(dst.segment, rail, pl, ag))
                table[u, 3] = self._link_id(topo.host_down(dst, rail, pl))
        flat = table[inverse.ravel()].ravel()
        share = np.full(len(flat), 1.0 / count)
        return self._accumulate_row(flat, share)

    def _build_static_plan(self, flow):
        """Resolve a static flow's canonical row, via the shared cache."""
        if flow.algorithm == "single":
            # The selector draw (and its packets_sent side effect) must
            # happen here, at the flow's first active step, exactly as
            # the scalar engine did.
            probs = self._flow_paths(flow)
            path_id = next(iter(probs))
            ids = self._path_ids(flow, path_id)
            order = np.argsort(ids, kind="stable")
            flow._plan = (ids[order], np.ones(len(ids))[order])
            return
        key = None
        if self._plan_cache is not None:
            key = (flow.algorithm, flow.path_count, flow.src.node_id,
                   flow.dst.node_id, flow.rail, flow.connection_id)
            hit = self._plan_cache.get(key)
            if hit is not None:
                refs, vals = hit
                ids = np.fromiter(
                    (self._link_id(ref) for ref in refs),
                    dtype=np.int64, count=len(refs),
                )
                order = np.argsort(ids, kind="stable")
                flow._plan = (ids[order], vals[order])
                return
        cols, vals = self._analytic_plan(flow)
        flow._plan = (cols, vals)
        if key is not None:
            refs = tuple(self._links[c] for c in cols)
            self._plan_cache[key] = (refs, vals.copy())

    # -- the max-min allocator ------------------------------------------

    @staticmethod
    def max_min_rates(weight_rows, capacities):
        """Progressive-filling max-min fairness.

        ``weight_rows[f]`` maps link index -> weight; returns rates such
        that no flow can increase without decreasing a poorer flow.
        """
        flow_count = len(weight_rows)
        if flow_count == 0:
            return np.zeros(0)
        rows, cols, vals = [], [], []
        for f, weights in enumerate(weight_rows):
            for link, weight in weights.items():
                rows.append(f)
                cols.append(link)
                vals.append(weight)
        link_count = len(capacities)
        matrix = sparse.csr_matrix(
            (vals, (rows, cols)), shape=(flow_count, link_count)
        )
        caps = np.asarray(capacities, dtype=float)
        return FluidSimulation._max_min_rates_csr(matrix, caps)

    @staticmethod
    def _max_min_rates_csr(matrix, caps):
        """Progressive filling over a canonical flows x links CSR matrix."""
        flow_count = matrix.shape[0]
        if flow_count == 0:
            return np.zeros(0)
        transposed = matrix.T
        rates = np.zeros(flow_count)
        active = np.ones(flow_count, dtype=bool)
        for _ in range(flow_count + 1):
            if not active.any():
                break
            demand = transposed @ active.astype(float)
            load = transposed @ rates
            headroom = caps - load
            constrained = demand > 1e-12
            if not constrained.any():
                break
            delta = np.min(headroom[constrained] / demand[constrained])
            delta = max(delta, 0.0)
            rates[active] += delta
            load = transposed @ rates
            saturated = (caps - load) <= caps * 1e-9 + 1.0
            if not saturated.any():
                break
            # Positive weights make "touches any saturated link" the
            # same predicate as "weight mass on saturated links > 0",
            # which is one csr matvec instead of a column slice.
            touching = (matrix @ saturated.astype(float)) > 0
            touching &= active
            if not touching.any():
                break
            active &= ~touching
        return rates

    # -- stepping -------------------------------------------------------

    def step(self):
        """Advance the simulation by one dt.

        Incremental re-solve: the max-min allocation depends only on the
        active flow set and their link weights.  When every active flow
        has a static path distribution (single/RR/OBS) and the active set
        and link table match the previous solve exactly, last step's
        rates and utilization are bit-identical by construction and are
        reused instead of re-running progressive filling — the dominant
        cost for steady-state collectives and fleet congestion epochs.
        Any feedback-driven flow (its weights re-sample every step) or
        any membership change invalidates the cache.
        """
        now = self.now
        active_idx = self._active_indices()
        all_static = bool(self._arr_static[active_idx].all())
        # Resolve plans lazily, in flow order, for exactly the flows the
        # scalar engine would have resolved this step (static flows at
        # their first active step; feedback flows every step).
        feedback_rows = None
        missing = active_idx[~self._arr_has_plan[active_idx]]
        if len(missing):
            feedback_rows = {}
            for i in missing:
                flow = self.flows[i]
                if flow._static:
                    if flow._plan is None:
                        self._build_static_plan(flow)
                    self._arr_has_plan[i] = True
                else:
                    probs = self._flow_paths(flow)
                    feedback_rows[i] = (probs, self._feedback_row(flow, probs))
        link_count = len(self._link_caps)
        cache = self._solve_cache
        if (
            all_static
            and cache is not None
            and cache[1] == link_count
            and np.array_equal(cache[0], active_idx)
        ):
            rates = cache[2]
            utilization = cache[3]
        else:
            if len(active_idx):
                rows = [
                    feedback_rows[i][1]
                    if feedback_rows is not None and i in feedback_rows
                    else self.flows[i]._plan
                    for i in active_idx
                ]
                lens = np.fromiter(
                    (len(cols) for cols, _ in rows),
                    dtype=np.int64, count=len(rows),
                )
                indptr = np.zeros(len(rows) + 1, dtype=np.int64)
                np.cumsum(lens, out=indptr[1:])
                indices = (
                    np.concatenate([cols for cols, _ in rows])
                    if len(rows) else np.zeros(0, dtype=np.int64)
                )
                data = (
                    np.concatenate([vals for _, vals in rows])
                    if len(rows) else np.zeros(0)
                )
                matrix = sparse.csr_matrix(
                    (data, indices, indptr),
                    shape=(len(active_idx), link_count),
                )
                caps = self._caps_array()
                rates = self._max_min_rates_csr(matrix, caps)
                if link_count:
                    loads = matrix.T @ rates
                    utilization = np.divide(
                        loads, caps, out=np.zeros_like(loads),
                        where=caps > 0,
                    )
                else:
                    utilization = np.zeros(0)
            else:
                rates = np.zeros(0)
                utilization = np.zeros(link_count, dtype=float)
            self._solve_cache = (
                (active_idx.copy(), link_count, rates, utilization)
                if all_static else None
            )
        if self.record_history:
            for flow in self.flows:
                flow.rate_history.append(None)
            for pos, i in enumerate(active_idx):
                self.flows[i].rate_history[-1] = float(rates[pos])
        # Batch advancement: same per-flow arithmetic (rate/8.0*dt) the
        # scalar loop ran, applied elementwise.
        self._arr_rate_sum[active_idx] += rates
        self._arr_rate_count[active_idx] += 1.0
        self._arr_transferred[active_idx] += rates / 8.0 * self.dt
        newly_done = active_idx[
            (self._arr_transferred[active_idx] >= self._arr_total[active_idx])
            & np.isnan(self._arr_finish[active_idx])
        ]
        self._arr_finish[newly_done] = now + self.dt
        if not all_static:
            for i in active_idx:
                row = feedback_rows.get(i) if feedback_rows else None
                if row is not None:
                    self._feed_back(self.flows[i], row[0], utilization)
        self.now += self.dt
        self.steps_run += 1
        return rates

    def _feed_back(self, flow, probs, utilization):
        """Translate link utilization into selector feedback signals."""
        base_rtt = 8e-6
        for path_id in probs:
            ids = flow._path_link_ids[path_id]
            worst = utilization[ids].max()
            # ECN marking is probabilistic in utilization, like a RED/ECN
            # threshold seen through sampled ACKs.  The stochastic
            # asymmetry is what lets DWRR's weights diverge and collapse
            # onto few paths — the pathology Figure 10a reports.
            mark_probability = min(1.0, max(0.0, (worst - 0.8) / 0.4))
            congested = self._rng.random() < mark_probability
            rtt = base_rtt * (1.0 + 8.0 * max(0.0, worst - 0.8))
            flow.selector.on_feedback(path_id, rtt=rtt, ecn=congested)

    def _all_bounded_done(self):
        n = self._n
        bounded = np.isfinite(self._arr_total[:n])
        return bool(
            np.all(self._arr_transferred[:n][bounded]
                   >= self._arr_total[:n][bounded])
        )

    def run(self, duration=None, until_done=False, max_steps=10_000):
        """Run for a duration and/or until all bounded flows finish."""
        if duration is None and not until_done:
            raise ValueError("run() needs a duration or until_done=True")
        steps = 0
        while steps < max_steps:
            if duration is not None and self.now >= duration - 1e-12:
                break
            if until_done and self._all_bounded_done():
                break
            self.step()
            steps += 1
        return steps
