"""The dual-plane, rail-optimized training fabric (HPN7.0-style).

Topology model (Section 3.1 problem 6 and Section 7.2 of the paper):

* Each **server** has 4 RNICs ("rails"), each with two 200 Gbps ports —
  port 0 on network **plane A**, port 1 on **plane B**.
* Each (segment, rail, plane) triple has one **ToR** switch; a server's
  rail-``r`` RNIC connects to the rail-``r`` ToRs of its segment.
* Each plane has ``aggs_per_plane`` (60 in production) **aggregation**
  switches; every ToR uplinks to all of them.  Cross-segment traffic on
  one rail goes ToR -> agg -> ToR within a plane, so the equivalent-path
  count per rail is ``planes x aggs_per_plane`` (120).
* The planes are additionally joined at a **core** layer that serves as a
  failure-escape route; normal traffic never uses it, and neither do our
  experiments, so the core is represented only as spare capacity.

Links are directed; a :class:`LinkRef` names one transmit port.  The
topology is pure structure — the packet/fluid simulators attach state
(queues, rates) to the link names it hands out.
"""

from repro import calibration
from repro.net.ecmp import EcmpHasher, flow_entropy


class LinkRef:
    """A directed link (transmit port) in the fabric.

    LinkRefs key every per-port dict in the packet and fluid simulators,
    so the hash is computed once at construction and equality tests
    identity first — the route cache hands out interned instances, which
    makes the identity test hit on the per-packet fast path.
    """

    __slots__ = ("kind", "key", "_hash")

    # kinds: "host_up", "host_down", "tor_up", "tor_down"
    def __init__(self, kind, key):
        self.kind = kind
        self.key = key
        self._hash = hash((kind, key))

    def as_tuple(self):
        return (self.kind, self.key)

    def __eq__(self, other):
        if other is self:
            return True
        return (
            isinstance(other, LinkRef)
            and self.kind == other.kind
            and self.key == other.key
        )

    def __hash__(self):
        return self._hash

    def __repr__(self):
        return "LinkRef(%s, %r)" % (self.kind, self.key)


class ServerAddress:
    """Where a server lives: (segment, index within segment)."""

    __slots__ = ("segment", "index")

    def __init__(self, segment, index):
        self.segment = segment
        self.index = index

    def as_tuple(self):
        return (self.segment, self.index)

    @property
    def node_id(self):
        return self.segment * 100_000 + self.index

    def __eq__(self, other):
        return (
            isinstance(other, ServerAddress) and self.as_tuple() == other.as_tuple()
        )

    def __hash__(self):
        return hash(self.as_tuple())

    def __repr__(self):
        return "ServerAddress(seg=%d, idx=%d)" % (self.segment, self.index)


class DualPlaneTopology:
    """Structure + routing for the rail-optimized dual-plane fabric."""

    def __init__(
        self,
        segments=2,
        servers_per_segment=16,
        rails=calibration.SERVER_RNICS,
        planes=2,
        aggs_per_plane=calibration.AGG_SWITCHES_PER_PLANE,
        port_rate=calibration.RNIC_PORT_RATE,
        tor_uplink_rate=None,
    ):
        if min(segments, servers_per_segment, rails, planes, aggs_per_plane) <= 0:
            raise ValueError("all topology dimensions must be positive")
        self.segments = segments
        self.servers_per_segment = servers_per_segment
        self.rails = rails
        self.planes = planes
        self.aggs_per_plane = aggs_per_plane
        self.port_rate = port_rate
        self.tor_uplink_rate = (
            tor_uplink_rate if tor_uplink_rate is not None else port_rate
        )
        self._hasher = EcmpHasher(planes * aggs_per_plane)
        # Per-(src, dst, rail, path, connection) resolved routes.  Route
        # resolution (flow entropy + ECMP hash + four LinkRef builds) is
        # the hottest per-packet topology work, and the key space is tiny
        # compared to packet counts, so routes are resolved once and the
        # interned tuples handed out forever.  Topology structure is
        # immutable after construction, so the cache never invalidates.
        self._route_cache = {}
        # Interned LinkRefs: one instance per directed port, so the
        # simulators' per-port dict lookups hit CPython's identity
        # short-circuit instead of tuple-comparing keys per packet.
        self._link_cache = {}

    # -- enumeration -------------------------------------------------------

    @property
    def path_diversity(self):
        """Equivalent cross-segment paths per rail (plane x agg choices)."""
        return self.planes * self.aggs_per_plane

    def servers(self):
        for segment in range(self.segments):
            for index in range(self.servers_per_segment):
                yield ServerAddress(segment, index)

    @property
    def server_count(self):
        return self.segments * self.servers_per_segment

    def gpu_count(self, gpus_per_server=calibration.SERVER_GPUS):
        return self.server_count * gpus_per_server

    # -- link naming ---------------------------------------------------------

    def _link(self, kind, key):
        """Intern one LinkRef per directed port (see ``_link_cache``)."""
        ident = (kind, key)
        ref = self._link_cache.get(ident)
        if ref is None:
            ref = self._link_cache[ident] = LinkRef(kind, key)
        return ref

    def host_up(self, server, rail, plane):
        return self._link("host_up", (server.segment, server.index, rail, plane))

    def host_down(self, server, rail, plane):
        return self._link("host_down", (server.segment, server.index, rail, plane))

    def tor_up(self, segment, rail, plane, agg):
        """ToR(segment, rail, plane) -> aggregation switch ``agg``.

        These are the ports whose queue depth Figures 9 and 12 report.
        """
        return self._link("tor_up", (segment, rail, plane, agg))

    def tor_down(self, segment, rail, plane, agg):
        """Aggregation switch ``agg`` -> ToR(segment, rail, plane)."""
        return self._link("tor_down", (segment, rail, plane, agg))

    def link_rate(self, link):
        if link.kind in ("host_up", "host_down"):
            return self.port_rate
        # ToR uplinks and core escape links run at the fabric rate.
        return self.tor_uplink_rate

    def tor_uplinks(self, segment=None, rail=None):
        """All ToR uplink ports, optionally filtered (for imbalance stats)."""
        segments = range(self.segments) if segment is None else [segment]
        rails = range(self.rails) if rail is None else [rail]
        refs = []
        for seg in segments:
            for r in rails:
                for plane in range(self.planes):
                    for agg in range(self.aggs_per_plane):
                        refs.append(self.tor_up(seg, r, plane, agg))
        return refs

    # -- routing ---------------------------------------------------------

    def ecmp_choice(self, entropy, path_id):
        """Map a (flow, path id) to a (plane, agg) choice.

        The plane (i.e. which of the RNIC's two ports) alternates
        deterministically with the path id — the NIC spreads its ports
        evenly by construction, with a per-connection random base so
        single-path flows still pick a random port ("the RNIC randomly
        chooses one of its two ports", Section 3).  Only the aggregation
        switch is ECMP-hashed in the network.
        """
        plane = (path_id + entropy) % self.planes
        agg = self._hasher.bucket(entropy, path_id) % self.aggs_per_plane
        return plane, agg

    def route(self, src, dst, rail, path_id=0, connection_id=0):
        """The directed links from ``src`` to ``dst`` on ``rail`` for one
        path id.  Rail-optimized: traffic never changes rails.

        Returns an interned, immutable tuple — the same object for the
        same (src, dst, rail, path, connection) — so per-packet callers
        never pay resolution twice and port-dict lookups hit the LinkRef
        identity fast path.
        """
        key = (
            src.segment, src.index, dst.segment, dst.index,
            rail, path_id, connection_id,
        )
        cached = self._route_cache.get(key)
        if cached is not None:
            return cached
        if src == dst:
            raise ValueError("route to self: %r" % (src,))
        entropy = flow_entropy(src.node_id, dst.node_id, connection_id)
        plane, agg = self.ecmp_choice(entropy, path_id)
        if src.segment == dst.segment:
            # Same ToR: host -> ToR -> host; the plane still matters (two
            # single-plane ToRs), the agg layer is not involved.
            route = (
                self.host_up(src, rail, plane),
                self.host_down(dst, rail, plane),
            )
        else:
            route = (
                self.host_up(src, rail, plane),
                self.tor_up(src.segment, rail, plane, agg),
                self.tor_down(dst.segment, rail, plane, agg),
                self.host_down(dst, rail, plane),
            )
        self._route_cache[key] = route
        return route

    def escape_route(self, src, dst, rail, path_id=0, connection_id=0):
        """The core-layer escape path (Section 3.1 problem 6 context).

        "Both planes are connected at the core switch to create an
        'escape' layer for failure resiliency."  When a rail's selected
        plane is unusable end-to-end, traffic climbs one plane, crosses
        the core, and descends the other — longer, but it keeps the rail
        alive through a whole-plane event.
        """
        entropy = flow_entropy(src.node_id, dst.node_id, connection_id)
        plane, agg = self.ecmp_choice(entropy, path_id)
        other_plane = (plane + 1) % self.planes
        if src.segment == dst.segment:
            # Same ToR on the healthy plane suffices; no core needed.
            return [
                self.host_up(src, rail, other_plane),
                self.host_down(dst, rail, other_plane),
            ]
        return [
            self.host_up(src, rail, plane),
            self.tor_up(src.segment, rail, plane, agg),
            LinkRef("core_up", (rail, plane, agg)),
            LinkRef("core_down", (rail, other_plane, agg)),
            self.tor_down(dst.segment, rail, other_plane, agg),
            self.host_down(dst, rail, other_plane),
        ]

    def __repr__(self):
        return (
            "DualPlaneTopology(segments=%d, servers/seg=%d, rails=%d, "
            "planes=%d, aggs=%d)"
            % (
                self.segments,
                self.servers_per_segment,
                self.rails,
                self.planes,
                self.aggs_per_plane,
            )
        )
