"""Network substrate: dual-plane rail-optimized topology, ECMP hashing,
and three simulators at different fidelities — static port loads
(:mod:`repro.net.loadmodel`), packet-level DES
(:mod:`repro.net.packet_sim`), and flow-level fluid
(:mod:`repro.net.fluid_sim`) — plus failure injection.
"""

from repro.net.ecmp import EcmpHasher, flow_entropy, hash_combine, splitmix64
from repro.net.failure import (
    FailureScenario,
    bgp_reroute,
    effective_loss_rate,
    pick_victim_uplink,
)
from repro.net.fluid_sim import FluidFlow, FluidSimulation
from repro.net.loadmodel import PortLoads, StaticLoadModel
from repro.net.packet_sim import (
    DEFAULT_ECN_THRESHOLD_BYTES,
    DEFAULT_MAX_QUEUE_BYTES,
    FlowResult,
    HOP_PROPAGATION_SECONDS,
    MessageFlow,
    PacketNetSim,
    PortState,
    run_flows,
)
from repro.net.topology import DualPlaneTopology, LinkRef, ServerAddress

__all__ = [
    "EcmpHasher",
    "flow_entropy",
    "hash_combine",
    "splitmix64",
    "FailureScenario",
    "bgp_reroute",
    "effective_loss_rate",
    "pick_victim_uplink",
    "FluidFlow",
    "FluidSimulation",
    "PortLoads",
    "StaticLoadModel",
    "DEFAULT_ECN_THRESHOLD_BYTES",
    "DEFAULT_MAX_QUEUE_BYTES",
    "FlowResult",
    "HOP_PROPAGATION_SECONDS",
    "MessageFlow",
    "PacketNetSim",
    "PortState",
    "run_flows",
    "DualPlaneTopology",
    "LinkRef",
    "ServerAddress",
]
