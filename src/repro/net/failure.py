"""Failure injection: random drop, link-down, and flap scenarios.

The paper's Figure 11 drops packets with 1% and 3% probability on a
single link under a 960-GPU AllReduce; complete link failures are
recovered first by the 250 us RTO re-spraying onto other paths, then by
the control plane (BGP) rerouting — both modelled here.
"""

from repro import calibration


class FailureScenario:
    """Drives failures against a :class:`PacketNetSim`."""

    def __init__(self, sim):
        self.sim = sim
        self.injected = []

    def random_drop(self, link, probability):
        """Figure 11: random loss on one link."""
        self.sim.inject_loss(link, probability)
        self.injected.append((link, probability))
        return link

    def fail_link(self, link):
        """Complete failure: every packet on the link is lost."""
        return self.random_drop(link, 1.0)

    def heal_link(self, link):
        self.sim.inject_loss(link, 0.0)

    def flap(self, link, down_at, up_at):
        """Schedule a down/up cycle (optical flap)."""
        if up_at <= down_at:
            raise ValueError("flap must come back up after it goes down")
        if self.sim.flight is not None:
            # The down/up transitions themselves record via inject_loss;
            # this marks the scenario decision, at decision time.
            self.sim.flight.record(
                self.sim.now, "net.failure", "flap-armed",
                entity=repr(link), severity="info",
                down_at=down_at, up_at=up_at,
            )
        self.sim.scheduler.schedule_at(down_at, lambda: self.fail_link(link))
        self.sim.scheduler.schedule_at(up_at, lambda: self.heal_link(link))


def pick_victim_uplink(topology, segment=0, rail=0, plane=0, agg=0):
    """A deterministic ToR uplink to injure (tests/benches need stability)."""
    return topology.tor_up(segment, rail, plane, agg)


def effective_loss_rate(link_loss_probability, path_count,
                        paths_crossing_link=1):
    """The paper's Figure 11 argument, as arithmetic: spraying over N paths
    divides the loss a connection perceives on one bad link by ~N."""
    if path_count <= 0:
        raise ValueError("path_count must be positive")
    share = min(1.0, paths_crossing_link / path_count)
    return link_loss_probability * share


def bgp_reroute(topology, sim, link, detect_seconds=1.0):
    """Long-term recovery: after the control plane detects the failure the
    link stops being offered to ECMP.  We model detection latency plus the
    capacity effect (the link drains nothing until healed)."""
    scenario = FailureScenario(sim)
    scenario.fail_link(link)
    if sim.flight is not None:
        sim.flight.record(
            sim.now, "net.failure", "bgp-reroute",
            entity=repr(link), severity="warn",
            detect_seconds=detect_seconds,
        )
    sim.scheduler.schedule(detect_seconds, lambda: scenario.heal_link(link))
    return scenario


__all__ = [
    "FailureScenario",
    "pick_victim_uplink",
    "effective_loss_rate",
    "bgp_reroute",
]

# Re-export the RTO the recovery story depends on, for discoverability.
_RECOVERY_RTO_SECONDS = calibration.SPRAY_RTO_SECONDS
