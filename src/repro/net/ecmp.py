"""ECMP-style hashing for path selection.

Stellar modulates a header entropy field per packet (the path id); every
switch hashes the header to pick an uplink.  We model the end-to-end
effect: ``(flow entropy, path id) -> (plane, aggregation switch)``.  The
hash must be fast (it runs per simulated packet), deterministic across
runs, and well-mixed — splitmix64 fits all three.
"""

_MASK64 = (1 << 64) - 1


def splitmix64(value):
    """One round of the splitmix64 mixer: cheap, high-quality avalanche."""
    value = (value + 0x9E3779B97F4A7C15) & _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


def hash_combine(*values):
    """Mix several integers into one 64-bit hash."""
    state = 0x243F6A8885A308D3  # pi digits; arbitrary non-zero seed
    for value in values:
        state = splitmix64(state ^ (value & _MASK64))
    return state


class EcmpHasher:
    """Maps (flow entropy, path id) to one of ``bucket_count`` routes."""

    def __init__(self, bucket_count):
        if bucket_count <= 0:
            raise ValueError("bucket_count must be positive: %r" % bucket_count)
        self.bucket_count = bucket_count

    def bucket(self, flow_entropy, path_id=0):
        """The ECMP bucket this (flow, path) combination lands in.

        Single-path transports always pass ``path_id=0`` — every packet of
        the flow shares one bucket, which is the hash-imbalance problem.
        """
        return hash_combine(flow_entropy, path_id) % self.bucket_count

    def buckets_for_paths(self, flow_entropy, path_count):
        """The bucket each of the flow's ``path_count`` path ids maps to.

        Distinct path ids may collide into the same bucket; the *effective*
        fan-out saturates at ``bucket_count`` as path_count grows, which is
        exactly the Figure 12 saturation behaviour.
        """
        return [self.bucket(flow_entropy, p) for p in range(path_count)]


def flow_entropy(src_id, dst_id, connection_id=0):
    """Stable per-connection entropy from endpoint identifiers."""
    return hash_combine(src_id, dst_id, connection_id)
