"""Neohost-style diagnostics: counter reports for every simulated layer.

The paper leans on Mellanox Neohost and Intel pcm-iio to diagnose the
Figure 8 regressions; operators of this reproduction get the same view —
structured counter snapshots for RNICs, the PCIe fabric, PVDMA, and the
packet-level network.

Every report is assembled from the components' **public** ``snapshot()``
APIs (no private-attribute access); the same snapshots feed the
:mod:`repro.obs` metrics registry, so a report and a ``--metrics`` dump
always agree.
"""

from repro.analysis.report import Table


def rnic_report(nic):
    """Counter snapshot for one RNIC (physical or vStellar)."""
    return nic.snapshot()


def fabric_report(fabric):
    """PCIe-level telemetry: LUT pressure, RC reflections, IOTLB health."""
    return fabric.snapshot()


def pvdma_report(pvdma, containers):
    """Map-cache and pinning economics per container."""
    snap = pvdma.snapshot()
    rows = []
    for container in containers:
        per = snap["containers"].get(container.name)
        if per is None:
            per = {"map_cache_blocks": 0, "hits": 0, "misses": 0,
                   "pinned_bytes": 0}
        rows.append(dict(per, container=container.name))
    return {"block_size": snap["block_size"],
            "total_pin_seconds": snap["total_pin_seconds"],
            "containers": rows}


def network_report(sim, top_n=10):
    """The busiest ports of a packet-level simulation."""
    ports = sorted(
        sim.ports(), key=lambda p: p.bytes_tx + p.queue_max, reverse=True,
    )[:top_n]
    return {
        "packets_delivered": sim.packets_delivered,
        "packets_dropped": sim.packets_dropped,
        "hot_ports": [
            {
                "link": repr(port.ref),
                "queue_max": port.queue_max,
                "queue_avg": port.queue_avg,
                "ecn_marks": port.ecn_marks,
                "drops": port.drops_random + port.drops_overflow,
            }
            for port in ports
        ],
    }


def metrics_report(registry, prefix=None):
    """The full registry snapshot as a report dict (Neohost "all counters").

    ``prefix`` narrows to one instrument family (``"rnic."``, ``"net."``).
    """
    return registry.snapshot(prefix=prefix)


def render_report(title, report):
    """Flatten any report dict into a printable two-column table."""
    table = Table(title, ["counter", "value"])

    def walk(prefix, value):
        if isinstance(value, dict):
            for key, sub in value.items():
                walk("%s.%s" % (prefix, key) if prefix else str(key), sub)
        elif isinstance(value, list):
            for index, sub in enumerate(value):
                walk("%s[%d]" % (prefix, index), sub)
        else:
            table.add_row(prefix, value)

    walk("", report)
    return table
