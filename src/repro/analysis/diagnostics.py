"""Neohost-style diagnostics: counter reports for every simulated layer.

The paper leans on Mellanox Neohost and Intel pcm-iio to diagnose the
Figure 8 regressions; operators of this reproduction get the same view —
structured counter snapshots for RNICs, the PCIe fabric, PVDMA, and the
packet-level network.
"""

from repro.analysis.report import Table


def rnic_report(nic):
    """Counter snapshot for one RNIC (physical or vStellar)."""
    report = {
        "name": nic.name,
        "mode": nic.mode.value,
        "ops_executed": nic.ops_executed,
        "bytes_sent": nic.bytes_sent,
        "bytes_received": nic.bytes_received,
        "mtt_entries": len(nic.mtt),
        "mtt_lookups": nic.mtt.lookups,
    }
    if nic.atc is not None:
        report["atc_hit_rate"] = nic.atc.cache.hit_rate
        report["atc_evictions"] = nic.atc.cache.evictions
    if hasattr(nic, "vdevices"):
        report["vdevices"] = len(nic.vdevices)
        report["vdev_bytes_sent"] = nic.vdev_bytes_sent
    if hasattr(nic, "doorbell_rings"):
        report["doorbell_rings"] = nic.doorbell_rings
    return report


def fabric_report(fabric):
    """PCIe-level telemetry: LUT pressure, RC reflections, IOTLB health."""
    rc = fabric.root_complex
    return {
        "switches": [
            {
                "name": switch.name,
                "functions": len(switch.functions),
                "lut_used": switch.lut_capacity - switch.lut_free,
                "lut_capacity": switch.lut_capacity,
                "p2p_tlps": switch.p2p_tlps,
                "upstream_tlps": switch.upstream_tlps,
            }
            for switch in fabric.switches
        ],
        "rc_tlps": rc.tlps_processed,
        "rc_p2p_reflected_tlps": rc.p2p_reflected_tlps,
        "rc_p2p_reflected_bytes": rc.p2p_reflected_bytes,
        "iotlb_hit_rate": fabric.iommu.iotlb.hit_rate,
        "iotlb_size": len(fabric.iommu.iotlb),
    }


def pvdma_report(pvdma, containers):
    """Map-cache and pinning economics per container."""
    rows = []
    for container in containers:
        stats = pvdma.stats(container)
        rows.append({
            "container": container.name,
            "map_cache_blocks": len(pvdma.cached_blocks(container)),
            "hits": stats.hits,
            "misses": stats.misses,
            "pinned_bytes": len(pvdma.cached_blocks(container))
            * pvdma.block_size,
        })
    return {"block_size": pvdma.block_size,
            "total_pin_seconds": pvdma.total_pin_seconds,
            "containers": rows}


def network_report(sim, top_n=10):
    """The busiest ports of a packet-level simulation."""
    ports = sorted(
        sim._ports.values(), key=lambda p: p.bytes_tx + p.queue_max,
        reverse=True,
    )[:top_n]
    return {
        "packets_delivered": sim.packets_delivered,
        "packets_dropped": sim.packets_dropped,
        "hot_ports": [
            {
                "link": repr(port.ref),
                "queue_max": port.queue_max,
                "queue_avg": port.queue_avg,
                "ecn_marks": port.ecn_marks,
                "drops": port.drops_random + port.drops_overflow,
            }
            for port in ports
        ],
    }


def render_report(title, report):
    """Flatten any report dict into a printable two-column table."""
    table = Table(title, ["counter", "value"])

    def walk(prefix, value):
        if isinstance(value, dict):
            for key, sub in value.items():
                walk("%s.%s" % (prefix, key) if prefix else str(key), sub)
        elif isinstance(value, list):
            for index, sub in enumerate(value):
                walk("%s[%d]" % (prefix, index), sub)
        else:
            table.add_row(prefix, value)

    walk("", report)
    return table
