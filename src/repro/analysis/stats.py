"""Statistics helpers shared by benchmarks and reports."""

import math


def mean(values):
    values = list(values)
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def percentile(values, q):
    """Linear-interpolated percentile, q in [0, 100]."""
    values = sorted(values)
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= q <= 100:
        raise ValueError("percentile q out of range: %r" % q)
    if len(values) == 1:
        return values[0]
    rank = (len(values) - 1) * q / 100.0
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return values[low]
    return values[low] + (values[high] - values[low]) * (rank - low)


def max_min_delta(values, denominator):
    """The Figure 12 imbalance metric: (max - min) / denominator."""
    values = list(values)
    if not values:
        raise ValueError("imbalance of empty sequence")
    if denominator <= 0:
        raise ValueError("denominator must be positive: %r" % denominator)
    return (max(values) - min(values)) / denominator


def coefficient_of_variation(values):
    values = list(values)
    m = mean(values)
    if m == 0:
        return 0.0
    variance = sum((v - m) ** 2 for v in values) / len(values)
    return math.sqrt(variance) / m


def geometric_mean(values):
    values = list(values)
    if not values:
        raise ValueError("geometric mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def relative_gain(new, old):
    """(new - old) / old — how Figure 16 reports Stellar's advantage."""
    if old == 0:
        raise ValueError("relative gain against zero baseline")
    return (new - old) / old
