"""Statistics and report-rendering helpers."""

from repro.analysis.diagnostics import (
    fabric_report,
    metrics_report,
    network_report,
    pvdma_report,
    render_report,
    rnic_report,
)
from repro.analysis.report import Table, format_bytes_axis, format_decimal_bytes
from repro.analysis.stats import (
    coefficient_of_variation,
    geometric_mean,
    max_min_delta,
    mean,
    percentile,
    relative_gain,
)

__all__ = [
    "fabric_report",
    "metrics_report",
    "network_report",
    "pvdma_report",
    "render_report",
    "rnic_report",
    "Table",
    "format_bytes_axis",
    "format_decimal_bytes",
    "coefficient_of_variation",
    "geometric_mean",
    "max_min_delta",
    "mean",
    "percentile",
    "relative_gain",
]
