"""Fixed-width table rendering for benchmark output.

Every benchmark prints the same rows/series the paper's figure or table
reports; this module keeps that output consistent and diffable.  When the
``REPRO_TABLES_FILE`` environment variable is set (the benchmark
conftest sets it), every printed table is also appended there, so the
full series survive pytest's stdout capture.
"""

import os


class Table:
    """A simple monospace table with typed column formatting."""

    def __init__(self, title, headers):
        self.title = title
        self.headers = list(headers)
        self.rows = []

    def add_row(self, *cells):
        if len(cells) != len(self.headers):
            raise ValueError(
                "row has %d cells, table has %d columns"
                % (len(cells), len(self.headers))
            )
        self.rows.append([self._format(cell) for cell in cells])

    @staticmethod
    def _format(cell):
        if isinstance(cell, float):
            if cell != 0 and (abs(cell) >= 10_000 or abs(cell) < 0.01):
                return "%.3e" % cell
            return "%.3f" % cell
        return str(cell)

    def render(self):
        widths = [
            max(len(self.headers[i]), *(len(row[i]) for row in self.rows))
            if self.rows else len(self.headers[i])
            for i in range(len(self.headers))
        ]
        lines = ["== %s ==" % self.title]
        lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(self.headers)))
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
        return "\n".join(lines)

    def print(self):
        print()
        text = self.render()
        print(text)
        sink = os.environ.get("REPRO_TABLES_FILE")
        if sink:
            with open(sink, "a") as handle:
                handle.write(text + "\n\n")


def format_bytes_axis(byte_count):
    """Message-size axis labels like the paper's figures (2B ... 8MB)."""
    for threshold, suffix in ((1 << 30, "GB"), (1 << 20, "MB"), (1 << 10, "KB")):
        if byte_count >= threshold:
            value = byte_count / threshold
            if value == int(value):
                return "%d%s" % (int(value), suffix)
            return "%.1f%s" % (value, suffix)
    return "%dB" % byte_count


def format_decimal_bytes(byte_count):
    """Decimal (SI) byte labels: 16 GB, 1.6 TB — for capacity axes."""
    for threshold, suffix in ((10**12, "TB"), (10**9, "GB"), (10**6, "MB")):
        if byte_count >= threshold:
            value = byte_count / threshold
            if round(value, 1) == int(value):
                return "%d%s" % (int(value), suffix)
            return "%.1f%s" % (value, suffix)
    return "%dB" % byte_count
