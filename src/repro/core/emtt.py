"""eMTT: the extended Memory Translation Table (Section 6).

The eMTT stores, per registered region, the *final* host-physical
translation and the memory owner (main memory vs GPU).  That single bit of
ownership lets the RNIC emit GPU-bound TLPs with AT=TRANSLATED so PCIe
switches route them peer-to-peer without consulting the root complex —
erasing the ATC-miss cliff of Figure 8 and the RC bottleneck of Figure 14.

This module provides the registration helpers that populate RNIC MTTs in
each of the three regimes the paper compares:

* :class:`EmttRegistrar` — Stellar: final HPAs + owner kind (translated).
* :class:`AtsRegistrar` — the CX6-style baseline: device addresses that the
  RNIC's ATC/ATS machinery translates per page at access time.
* :class:`RcRoutedRegistrar` — HyV/MasQ: device addresses emitted
  untranslated, leaving all translation (and all GPU P2P reflection) to
  the root complex.
"""

from repro.memory.address import MemoryKind
from repro.rnic.verbs import VerbsError


class EmttError(VerbsError):
    """Invalid eMTT registration."""


def host_hpa_chunks(container, gva_region):
    """GVA -> final HPA chunks for a guest buffer (full chain resolved)."""
    return container.gva_to_hpa_chunks(gva_region.start, gva_region.length)


def host_gpa_chunks(container, gva_region):
    """GVA -> GPA chunks: the device-address view a non-eMTT RNIC stores."""
    return container.gva_to_gpa_chunks(gva_region.start, gva_region.length)


def gpu_hpa_chunks(gpu, offset, length, va_base=None):
    """A GPU buffer as one HPA chunk inside the GPU's HBM BAR aperture."""
    if va_base is None:
        # By convention GDR buffers use the BAR address as their VA too.
        va_base = gpu.hbm_address(offset)
    return [(va_base, gpu.hbm_address(offset), length)]


class EmttRegistrar:
    """Registers regions the Stellar way: translated + owner-typed."""

    def __init__(self, nic):
        self.nic = nic

    def register_host(self, pd, container, gva_region):
        """Register guest host-memory.

        Per Figure 7, host-memory entries keep the *device address* (the
        GPA) and are emitted with AT=UNTRANSLATED so the IOMMU still
        performs — and protects — the final translation; only GPU entries
        bypass the root complex.
        """
        chunks = host_gpa_chunks(container, gva_region)
        return self.nic.reg_mr(
            pd, gva_region.start, chunks, MemoryKind.HOST_DRAM, translated=False
        )

    def register_gpu(self, pd, gpu, offset, length, va_base=None):
        """Register GPU memory; the owner bit routes it P2P (Figure 7)."""
        chunks = gpu_hpa_chunks(gpu, offset, length, va_base)
        return self.nic.reg_mr(
            pd, chunks[0][0], chunks, MemoryKind.GPU_HBM, translated=True
        )


class AtsRegistrar:
    """Registers regions the PCIe ATS/ATC way (the Figure 8 baseline).

    The MTT stores device addresses; the IOMMU domain must already map
    them (VFIO or PVDMA did that), and every access pays ATC/ATS costs.
    """

    def __init__(self, nic, iommu, domain_name):
        if nic.mode.value != "ats_atc":
            raise EmttError(
                "AtsRegistrar requires an ATS_ATC-mode RNIC, got %s" % nic.mode.value
            )
        self.nic = nic
        self.iommu = iommu
        self.domain_name = domain_name

    def register_host(self, pd, container, gva_region):
        chunks = host_gpa_chunks(container, gva_region)
        return self.nic.reg_mr(
            pd, gva_region.start, chunks, MemoryKind.HOST_DRAM, translated=False
        )

    def register_gpu(self, pd, gpu, offset, length, da_base):
        """Register GPU memory behind the IOMMU: map DA -> HBM HPA first,
        then store the DA in the MTT for per-access ATS translation."""
        self.iommu.map(
            self.domain_name,
            da_base,
            gpu.hbm_address(offset),
            length,
            kind=MemoryKind.GPU_HBM,
            pin=False,
        )
        return self.nic.reg_mr(
            pd, da_base, [(da_base, da_base, length)], MemoryKind.GPU_HBM,
            translated=False,
        )


class RcRoutedRegistrar:
    """Registers regions the HyV/MasQ way: untranslated, RC does the rest.

    GPU-bound traffic is reflected through the root complex and capped at
    its peer-to-peer ceiling — the 141 Gbps of Figure 14.
    """

    def __init__(self, nic, iommu, domain_name):
        if nic.mode.value != "rc_routed":
            raise EmttError(
                "RcRoutedRegistrar requires an RC_ROUTED-mode RNIC, got %s"
                % nic.mode.value
            )
        self.nic = nic
        self.iommu = iommu
        self.domain_name = domain_name

    def register_host(self, pd, container, gva_region):
        chunks = host_gpa_chunks(container, gva_region)
        return self.nic.reg_mr(
            pd, gva_region.start, chunks, MemoryKind.HOST_DRAM, translated=False
        )

    def register_gpu(self, pd, gpu, offset, length, da_base):
        self.iommu.map(
            self.domain_name,
            da_base,
            gpu.hbm_address(offset),
            length,
            kind=MemoryKind.GPU_HBM,
            pin=False,
        )
        return self.nic.reg_mr(
            pd, da_base, [(da_base, da_base, length)], MemoryKind.GPU_HBM,
            translated=False,
        )
