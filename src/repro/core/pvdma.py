"""PVDMA: Para-Virtualized Direct Memory Access (Section 5).

Instead of pinning all guest memory at boot, PVDMA intercepts the first
DMA touching each 2 MiB guest-physical block, registers the block in the
IOMMU (pinning its host backing), and caches the registration in a Map
Cache so subsequent DMAs are free.  Blocks are refcounted: a block stays
mapped while any consumer (an RDMA MR, a GPU command queue) still uses it
— which is exactly the retention that enables the Figure 5 doorbell
hazard, also modelled here together with its virtio-shm fix.
"""

from repro import calibration
from repro.memory.address import MemoryKind, align_down
from repro.virt.hypervisor import HypervisorError


class PvdmaError(HypervisorError):
    """Invalid PVDMA operation."""


class MapCacheStats:
    """Hit/miss accounting for one container's Map Cache."""

    __slots__ = ("hits", "misses")

    def __init__(self):
        self.hits = 0
        self.misses = 0

    @property
    def accesses(self):
        return self.hits + self.misses

    def __repr__(self):
        return "MapCacheStats(hits=%d, misses=%d)" % (self.hits, self.misses)


class PvdmaEngine:
    """On-demand IOMMU registration for one hypervisor's containers."""

    def __init__(self, hypervisor, block_size=calibration.PVDMA_BLOCK_BYTES):
        if block_size <= 0 or block_size & (block_size - 1):
            raise PvdmaError("PVDMA block size must be a power of two")
        self.hypervisor = hypervisor
        self.block_size = block_size
        # container name -> {block gpa -> refcount}
        self._map_cache = {}
        self._stats = {}
        self.total_pin_seconds = 0.0

    def stats(self, container):
        return self._stats.setdefault(container.name, MapCacheStats())

    def cached_blocks(self, container):
        return dict(self._map_cache.get(container.name, {}))

    # -- telemetry --------------------------------------------------------

    def snapshot(self):
        """Public Map-Cache counter snapshot across every known container."""
        containers = {}
        for name, stats in self._stats.items():
            blocks = len(self._map_cache.get(name, {}))
            containers[name] = {
                "map_cache_blocks": blocks,
                "hits": stats.hits,
                "misses": stats.misses,
                "pinned_bytes": blocks * self.block_size,
            }
        return {
            "block_size": self.block_size,
            "total_pin_seconds": self.total_pin_seconds,
            "containers": containers,
        }

    def register_metrics(self, registry, prefix="pvdma"):
        """Expose Map-Cache economics under ``pvdma.*``."""
        registry.add_provider(prefix, self.snapshot)
        return registry

    def _blocks(self, gpa, length):
        if length <= 0:
            raise PvdmaError("DMA length must be positive: %r" % length)
        first = align_down(gpa, self.block_size)
        last = align_down(gpa + length - 1, self.block_size)
        return range(first, last + self.block_size, self.block_size)

    def _map_block(self, container, block_gpa):
        """Register one 2 MiB block in the IOMMU from the EPT's current view.

        The block may be backed by multiple EPT intervals (RAM plus a
        direct-mapped device register, as in Figure 5c) — each sub-interval
        is mapped as-is, which is faithful to the hazard: PVDMA copies
        whatever the EPT says, including a doorbell page.
        """
        iommu = self.hypervisor.iommu
        ept = self.hypervisor.mmu.ept(container.name)
        cost = 0.0
        cursor = block_gpa
        end = block_gpa + self.block_size
        while cursor < end:
            interval = ept.lookup(cursor)
            if interval is None:
                # Unbacked GPA (hole): skip the gap.
                nxt = min(end, self._next_mapped(ept, cursor, end))
                cursor = nxt
                continue
            take = min(end, interval.src_end) - cursor
            cost += iommu.map(
                container.domain_name,
                cursor,
                interval.translate(cursor),
                take,
                kind=interval.kind,
                pin=True,
            )
            cursor += take
        return cost

    @staticmethod
    def _next_mapped(ept, cursor, end):
        """First mapped GPA in (cursor, end), or end."""
        for interval in ept.intervals():
            if interval.src > cursor:
                return min(interval.src, end)
        return end

    def dma_prepare(self, container, gpa, length):
        """Stage 1+2 of Figure 4: intercept a DMA, pin missing blocks.

        Returns the simulated seconds spent (zero on full Map Cache hits).
        Blocks already present only gain a reference — *even if the EPT
        has changed underneath them*, which is the Figure 5 step-5 flaw.
        """
        if container.memory_mode.value != "pvdma":
            raise PvdmaError(
                "container %r is not in PVDMA memory mode" % container.name
            )
        cache = self._map_cache.setdefault(container.name, {})
        stats = self.stats(container)
        cost = 0.0
        for block in self._blocks(gpa, length):
            if block in cache:
                stats.hits += 1
                cache[block] += 1
                continue
            stats.misses += 1
            cost += self._map_block(container, block)
            cache[block] = 1
        self.total_pin_seconds += cost
        return cost

    def dma_release(self, container, gpa, length):
        """Drop one reference per block; unmap blocks nobody uses.

        A block with remaining references is deliberately retained —
        including any stale device-register mapping inside it (Figure 5d).
        """
        cache = self._map_cache.get(container.name, {})
        iommu = self.hypervisor.iommu
        for block in self._blocks(gpa, length):
            if block not in cache:
                raise PvdmaError(
                    "release of unprepared block 0x%x in %r" % (block, container.name)
                )
            cache[block] -= 1
            if cache[block] == 0:
                del cache[block]
                self._unmap_block(container, block, iommu)

    def _unmap_block(self, container, block_gpa, iommu):
        """Unmap whatever portions of the block the IOMMU currently holds."""
        domain = iommu.domain(container.domain_name)
        cursor = block_gpa
        end = block_gpa + self.block_size
        while cursor < end:
            interval = domain.table.lookup(cursor)
            if interval is None:
                nxt = end
                for candidate in domain.table.intervals():
                    if candidate.src > cursor:
                        nxt = min(candidate.src, end)
                        break
                cursor = nxt
                continue
            take = min(end, interval.src_end) - cursor
            iommu.unmap(container.domain_name, cursor, take)
            cursor += take

    def forget_container(self, container):
        """Tear down every PVDMA mapping a container still holds.

        Container stop (graceful or abnormal) must not leave pinned
        blocks or Map-Cache state behind: a later container reusing the
        name would inherit stale registrations — the fleet-churn variant
        of the Figure 5 hazard.  Blocks are unmapped while the IOMMU
        domain still exists; call this *before* ``container.shutdown()``.

        Returns the number of blocks that were still cached.
        """
        cache = self._map_cache.pop(container.name, None)
        self._stats.pop(container.name, None)
        if not cache:
            return 0
        iommu = self.hypervisor.iommu
        if iommu.has_domain(container.domain_name):
            for block in sorted(cache):
                self._unmap_block(container, block, iommu)
        return len(cache)

    def device_dma(self, container, gpa, length=4096):
        """Model a device (e.g. GPU) DMA through the IOMMU.

        Returns ``(hpa, kind)`` as the IOMMU resolves them.  The *kind*
        tells callers whether the DMA landed in RAM or — the hazard — in a
        device register window.
        """
        result = self.hypervisor.iommu.rc_translate(container.domain_name, gpa)
        return result.hpa, result.kind


class HazardOutcome:
    """Result of running the Figure 5 scenario."""

    def __init__(self, corrupted, dma_hpa, dma_kind, expected_hpa):
        self.corrupted = corrupted
        self.dma_hpa = dma_hpa
        self.dma_kind = dma_kind
        self.expected_hpa = expected_hpa

    def __repr__(self):
        return "HazardOutcome(corrupted=%s, kind=%s)" % (
            self.corrupted,
            self.dma_kind.value if self.dma_kind else None,
        )


def run_doorbell_hazard_scenario(hypervisor, container, pvdma, rnic_db_hpa_region,
                                 use_shm_fix):
    """Execute the five steps of Figure 5 and report whether the GPU's
    final DMA lands on the RNIC doorbell (corruption) or in guest RAM.

    With ``use_shm_fix=True`` the doorbell lives in the virtio shm I/O
    space instead of guest-physical memory, so the 2 MiB PVDMA block that
    covers the command queue contains only RAM and the hazard vanishes
    (Figure 5f).
    """
    mmu = hypervisor.mmu
    block = pvdma.block_size  # 2 MiB
    # Choose a 2 MiB-aligned GPA block inside guest RAM; the vDB page is
    # its first 4 KiB page and the GPU command queue sits right after.
    block_gpa = 8 * block
    vdb_gpa = block_gpa
    cmdq_gpa = block_gpa + calibration.DOORBELL_PAGE_BYTES
    ram_backing_hpa = container.hpa_base + vdb_gpa

    # Step 1: the RDMA program maps the vDB.  Buggy layout: a direct map
    # inside guest RAM.  Fixed layout: a virtio shm region outside GPA.
    if not use_shm_fix:
        mmu.register_direct_map(
            container.name, vdb_gpa, rnic_db_hpa_region, overwrite=True
        )

    # Step 2: the GPU driver allocates its command queue next to the vDB.
    container.alloc_gpa_at(cmdq_gpa, calibration.DOORBELL_PAGE_BYTES)

    # Step 3: first GPU DMA on the command queue; PVDMA pins the whole
    # 2 MiB block — including the vDB page when it lives in GPA space.
    pvdma.dma_prepare(container, cmdq_gpa, calibration.DOORBELL_PAGE_BYTES)

    # Step 4: the RDMA program exits; the EPT releases the vDB and the OS
    # faults regular RAM back in.  The IOMMU block is retained because the
    # command queue still references it.
    if not use_shm_fix:
        mmu.unregister_direct_map(container.name, vdb_gpa)
        mmu.ept(container.name).map_range(
            vdb_gpa,
            ram_backing_hpa,
            calibration.DOORBELL_PAGE_BYTES,
            kind=MemoryKind.HOST_DRAM,
            overwrite=True,
        )

    # Step 5: the OS reuses the old vDB page for a new command queue; the
    # Map Cache says the block is already registered, so PVDMA does not
    # refresh the IOMMU.
    pvdma.dma_prepare(container, vdb_gpa, calibration.DOORBELL_PAGE_BYTES)

    # The GPU now DMAs the new command queue.
    dma_hpa, dma_kind = pvdma.device_dma(container, vdb_gpa)
    expected = mmu.translate(container.name, vdb_gpa)
    corrupted = dma_hpa != expected or dma_kind is MemoryKind.DEVICE_MMIO
    return HazardOutcome(corrupted, dma_hpa, dma_kind, expected)
