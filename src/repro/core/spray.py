"""Multi-path RDMA path-selection algorithms (Section 7).

A connection owns ``path_count`` virtual paths; each packet is stamped
with a path id that the network maps (via ECMP-style hashing) to a
concrete route.  The paper evaluates six algorithms; Stellar ships
128-path Oblivious Packet Spraying (OBS) with a single shared
congestion-control context and a 250 us RTO.

All selectors share one interface so the packet/fluid simulators and the
benchmarks can sweep them uniformly:

* :meth:`PathSelector.next_path` — pick the path for the next packet;
* :meth:`PathSelector.on_feedback` — per-ACK signal (RTT, ECN, loss).
"""

from repro import calibration
from repro.sim.rng import RngStream


class PathSelector:
    """Base class: uniform-interface path selection for one connection."""

    #: registry name -> class, filled by ``register``
    REGISTRY = {}

    def __init__(self, path_count, rng=None):
        if path_count <= 0:
            raise ValueError("path_count must be positive: %r" % path_count)
        self.path_count = path_count
        self.rng = rng if rng is not None else RngStream(0, "spray", type(self).__name__)
        self.packets_sent = 0

    @classmethod
    def register(cls, name):
        def deco(subclass):
            cls.REGISTRY[name] = subclass
            subclass.name = name
            return subclass

        return deco

    def next_path(self, now=None):
        """Pick the path for the next packet.

        ``now`` is the simulation time of the send; only time-sensitive
        selectors (flowlet) use it, everyone else may ignore it.
        """
        raise NotImplementedError

    def on_feedback(self, path, rtt=None, ecn=False, loss=False):
        """Default: oblivious algorithms ignore feedback."""

    def _count(self):
        self.packets_sent += 1


@PathSelector.register("single")
class SinglePathSelector(PathSelector):
    """The pre-Stellar baseline: every packet takes one pinned path.

    The RNIC picks one of its ports (and thus one ECMP route) per
    connection at random; all packets share the header (problem 6).
    """

    def __init__(self, path_count, rng=None):
        super().__init__(path_count, rng)
        self._pinned = self.rng.randint(0, path_count - 1)

    def next_path(self, now=None):
        self._count()
        return self._pinned

    @property
    def pinned_path(self):
        """The single path this connection is pinned to (public, for
        diagnostics: "which uplink did the victim flow land on?")."""
        return self._pinned


@PathSelector.register("rr")
class RoundRobinSelector(PathSelector):
    """Deterministic cyclic spraying across all paths."""

    def __init__(self, path_count, rng=None):
        super().__init__(path_count, rng)
        # Start at a random offset so synchronized connections don't beat.
        self._next = self.rng.randint(0, path_count - 1)

    def next_path(self, now=None):
        self._count()
        path = self._next
        self._next = (self._next + 1) % self.path_count
        return path


@PathSelector.register("obs")
class ObliviousSpraySelector(PathSelector):
    """Oblivious Packet Spraying: uniform pseudo-random path per packet.

    Stellar's production choice.  Its "pseudo-random nature interacts more
    favorably with our CC algorithm" than RR under bursty load (Fig. 10b).
    """

    def __init__(self, path_count, rng=None):
        super().__init__(path_count, rng)
        # randint(0, n-1) bottoms out in Random._randbelow_with_getrandbits:
        # draw n.bit_length() bits and reject draws >= n.  Replicating that
        # loop on a bound getrandbits consumes the generator draw-for-draw
        # identically (tests/test_packet_differential.py pins it) while
        # skipping the
        # randrange call chain — this is the per-packet path draw of every
        # sprayed flow.  Plain random.Random rngs (no getrandbits binding
        # on RngStream-less test doubles) keep the randint path.
        self._bits = path_count.bit_length()
        self._getrandbits = getattr(self.rng, "getrandbits", None)

    def next_path(self, now=None):
        # Inlined _count(): this is the per-packet selector (Stellar's
        # production default), so skip the helper-call overhead.
        self.packets_sent += 1
        getrandbits = self._getrandbits
        if getrandbits is None:
            return self.rng.randint(0, self.path_count - 1)
        n = self.path_count
        r = getrandbits(self._bits)
        while r >= n:
            r = getrandbits(self._bits)
        return r


@PathSelector.register("dwrr")
class DwrrSelector(PathSelector):
    """Dynamic Weighted Round-Robin: weights decay on congestion signals.

    Paths that report ECN or inflated RTT lose weight; clean ACKs slowly
    recover it.  The failure mode the paper observed — activating only a
    few paths and congesting them — emerges when a transient signal
    de-weights most paths and traffic concentrates on the survivors.
    """

    MIN_WEIGHT = 0.05
    DECAY = 0.5
    RECOVER = 0.02

    def __init__(self, path_count, rng=None):
        super().__init__(path_count, rng)
        self.weights = [1.0] * path_count
        self._deficits = [0.0] * path_count
        self._cursor = 0

    def next_path(self, now=None):
        self._count()
        # Deficit round robin: accumulate weight, pick the first path whose
        # deficit crosses 1 packet.
        for _ in range(2 * self.path_count):
            self._deficits[self._cursor] += self.weights[self._cursor]
            if self._deficits[self._cursor] >= 1.0:
                self._deficits[self._cursor] -= 1.0
                path = self._cursor
                self._cursor = (self._cursor + 1) % self.path_count
                return path
            self._cursor = (self._cursor + 1) % self.path_count
        # All weights collapsed; fall back to the max-weight path.
        return max(range(self.path_count), key=lambda p: self.weights[p])

    def on_feedback(self, path, rtt=None, ecn=False, loss=False):
        if ecn or loss or (rtt is not None and rtt > calibration.SPRAY_RTO_SECONDS / 4):
            self.weights[path] = max(self.MIN_WEIGHT, self.weights[path] * self.DECAY)
        else:
            self.weights[path] = min(1.0, self.weights[path] + self.RECOVER)


@PathSelector.register("best_rtt")
class BestRttSelector(PathSelector):
    """Greedy lowest-EWMA-RTT path with epsilon exploration.

    Tends to herd traffic onto the handful of paths that last looked good
    — the paper found it "activated only a small number of paths, leading
    to congestion" (Fig. 10a).
    """

    EXPLORE = 0.02
    ALPHA = 0.2

    def __init__(self, path_count, rng=None):
        super().__init__(path_count, rng)
        self.rtt_ewma = [None] * path_count

    def next_path(self, now=None):
        self._count()
        if self.rng.random() < self.EXPLORE:
            return self.rng.randint(0, self.path_count - 1)
        unmeasured = [p for p in range(self.path_count) if self.rtt_ewma[p] is None]
        if unmeasured:
            return unmeasured[0]
        best = min(range(self.path_count), key=lambda p: self.rtt_ewma[p])
        return best

    def on_feedback(self, path, rtt=None, ecn=False, loss=False):
        if rtt is None:
            return
        prev = self.rtt_ewma[path]
        self.rtt_ewma[path] = rtt if prev is None else (
            (1 - self.ALPHA) * prev + self.ALPHA * rtt
        )


@PathSelector.register("mprdma")
class MpRdmaSelector(PathSelector):
    """MP-RDMA-style congestion-aware spraying.

    Each path keeps a virtual congestion score driven by ECN marks (as in
    MP-RDMA's per-path virtual windows); packets are distributed with
    probability proportional to the inverse congestion score.
    """

    def __init__(self, path_count, rng=None):
        super().__init__(path_count, rng)
        self.scores = [1.0] * path_count  # higher == healthier

    def next_path(self, now=None):
        self._count()
        total = sum(self.scores)
        draw = self.rng.uniform(0.0, total)
        acc = 0.0
        for path, score in enumerate(self.scores):
            acc += score
            if draw <= acc:
                return path
        return self.path_count - 1

    def on_feedback(self, path, rtt=None, ecn=False, loss=False):
        if ecn or loss:
            self.scores[path] = max(0.1, self.scores[path] * 0.6)
        else:
            self.scores[path] = min(1.0, self.scores[path] + 0.05)


@PathSelector.register("flowlet")
class FlowletSelector(PathSelector):
    """Flowlet switching (Section 7.1): re-hash only on inter-packet gaps.

    A flow is cut into flowlets wherever the gap between packets exceeds
    the path-skew threshold; each flowlet rides one path.  The paper notes
    this is "often ineffective for RDMA load balancing due to RDMA's bulk
    traffic patterns" — continuous bulk transfers have no gaps, so the
    whole flow degenerates to a single path — but keeps it for
    older-generation clusters for its simplicity.
    """

    #: Minimum idle gap that opens a new flowlet (~ path-delay skew).
    GAP_SECONDS = 50e-6

    def __init__(self, path_count, rng=None, gap_seconds=None):
        super().__init__(path_count, rng)
        self.gap_seconds = gap_seconds if gap_seconds is not None else self.GAP_SECONDS
        self._current = self.rng.randint(0, path_count - 1)
        self._last_send = None
        self.flowlets = 1

    def next_path(self, now=None):
        self._count()
        if (
            now is not None
            and self._last_send is not None
            and now - self._last_send >= self.gap_seconds
        ):
            self._current = self.rng.randint(0, self.path_count - 1)
            self.flowlets += 1
        if now is not None:
            self._last_send = now
        return self._current


@PathSelector.register("path_aware")
# Wired through the selector registry: consumers instantiate it via
# make_selector("path_aware"), never by importing the class name.
class PathAwareSelector(PathSelector):  # simlint: ok L-api-drift
    """A path-aware sprayer in the SMaRTT-REPS / STrack family (Section 9).

    Recently-successful paths are cached and reused; congested paths are
    evicted and replaced by random exploration.  The paper implemented a
    similar algorithm and "did not observe a significant performance
    advantage over the simpler OBS algorithm" on their regular traffic —
    the ablation benchmark reproduces that finding.
    """

    CACHE_LIMIT = 256

    def __init__(self, path_count, rng=None):
        super().__init__(path_count, rng)
        self._good = []  # FIFO of recently-clean path ids
        self._cursor = 0

    def next_path(self, now=None):
        self._count()
        if self._good:
            self._cursor = (self._cursor + 1) % len(self._good)
            return self._good[self._cursor]
        return self.rng.randint(0, self.path_count - 1)

    def on_feedback(self, path, rtt=None, ecn=False, loss=False):
        if ecn or loss:
            self._good = [p for p in self._good if p != path]
            return
        if len(self._good) < self.CACHE_LIMIT:
            self._good.append(path)

    @property
    def good_paths(self):
        """The recently-clean path cache, oldest first (read-only copy)."""
        return tuple(self._good)


#: Algorithm names in the order the paper's figures list them.
ALGORITHMS = ("single", "rr", "obs", "dwrr", "best_rtt", "mprdma")

#: Extensions beyond the paper's headline six (Sections 7.1 and 9).
EXTENDED_ALGORITHMS = ALGORITHMS + ("flowlet", "path_aware")


def make_selector(name, path_count, rng=None):
    """Instantiate a selector by registry name."""
    try:
        cls = PathSelector.REGISTRY[name]
    except KeyError:
        raise ValueError(
            "unknown multi-path algorithm %r (known: %s)"
            % (name, ", ".join(sorted(PathSelector.REGISTRY)))
        )
    return cls(path_count, rng=rng)


class SprayConnection:
    """A multi-path RDMA connection: selector + shared CC + RTO policy.

    Binds together the three production choices of Section 7: the path
    selection algorithm, the path fan-out, and timeout-based loss recovery
    that *re-sprays* the retransmission on a fresh path.
    """

    def __init__(self, conn_id, algorithm="obs",
                 path_count=calibration.SPRAY_PATH_COUNT,
                 rng=None, cc=None,
                 rto=calibration.SPRAY_RTO_SECONDS):
        from repro.rnic.cc import WindowCC

        self.conn_id = conn_id
        self.rng = rng if rng is not None else RngStream(0, "conn", conn_id)
        self.selector = make_selector(algorithm, path_count, rng=self.rng.child("sel"))
        self.cc = cc if cc is not None else WindowCC()
        self.rto = rto
        self.retransmissions = 0

    @property
    def algorithm(self):
        return type(self.selector).name

    @property
    def path_count(self):
        return self.selector.path_count

    def next_path(self, now=None):
        return self.selector.next_path(now=now)

    def retransmit_path(self, lost_path):
        """Pick the retransmission path: never the one that just lost.

        "Stellar uses a short RTO to retransmit lost packets on a
        different path for instant recovery."
        """
        self.retransmissions += 1
        if self.path_count == 1:
            return lost_path
        for _ in range(64):
            path = self.selector.next_path()
            if path != lost_path:
                return path
        return (lost_path + 1) % self.path_count

    def on_ack(self, path, byte_count, rtt=None, ecn=False, now=None):
        self.cc.on_ack(byte_count, ecn=ecn, rtt=rtt, now=now)
        self.selector.on_feedback(path, rtt=rtt, ecn=ecn)

    def on_loss(self, path):
        self.selector.on_feedback(path, loss=True)

    def snapshot(self):
        """Public counter snapshot for one connection's spray behaviour."""
        return {
            "algorithm": self.algorithm,
            "path_count": self.path_count,
            "packets_sent": self.selector.packets_sent,
            "retransmissions": self.retransmissions,
            "window_bytes": getattr(self.cc, "window", 0),
            "in_flight_bytes": getattr(self.cc, "in_flight", 0),
        }

    def __repr__(self):
        return "SprayConnection(%r, %s x %d paths)" % (
            self.conn_id,
            self.algorithm,
            self.path_count,
        )
