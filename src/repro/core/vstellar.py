"""vStellar: the hybrid para-virtualized RDMA device (Section 4).

Each secure container gets a vStellar device.  Control-path verbs
(QP create/modify, MR registration) travel over virtio to a host backend
that applies security and virtualization policy; the data path is
direct-mapped — the container writes the doorbell and the RNIC reads and
writes guest memory straight through the eMTT, so RDMA performance matches
bare metal (Figure 13).

Isolation (Section 9): every device gets a standalone doorbell register
page, its own protection domain, and its own IOMMU domain selected by
PASID — all virtual devices share the parent's BDF, so neither new switch
LUT entries nor new bus numbers are needed (no problem-3 exposure).
"""

import itertools

from repro import calibration
from repro.core.emtt import EmttRegistrar
from repro.memory.address import MemoryKind
from repro.rnic.datapath import DatapathMode
from repro.rnic.rnic import BaseRnic
from repro.rnic.verbs import VerbsError
from repro.virt.virtio import ShmRegion, VirtioDevice, VirtioDeviceType


class VStellarError(VerbsError):
    """Invalid vStellar device operation."""


class VStellarDevice(BaseRnic):
    """A virtual Stellar RNIC living inside one secure container."""

    def __init__(self, parent, container, doorbell_region, pasid,
                 use_shm_doorbell=True, vdb_gpa=None):
        super().__init__(
            name="vstellar-%s-%d" % (container.name, pasid),
            mode=DatapathMode.DIRECT,
            fabric=parent.fabric,
            function=parent.function,
            ports=parent.ports,
            port_rate=parent.port_rate,
        )
        self.parent = parent
        self.container = container
        self.doorbell_region = doorbell_region
        self.pasid = pasid
        self.use_shm_doorbell = use_shm_doorbell
        self.vdb_gpa = vdb_gpa
        self.default_pd = self.alloc_pd(container.name)
        self.emtt = EmttRegistrar(self)
        self.virtio = VirtioDevice(
            VirtioDeviceType.VSTELLAR, backend=self._control_backend
        )
        self.doorbell_rings = 0
        if use_shm_doorbell:
            # Figure 5f fix: the vDB lives in virtio shm I/O space, outside
            # guest-physical memory, so PVDMA blocks can never cover it.
            self.virtio.add_shm_region(
                ShmRegion("vdb", doorbell_region.length, doorbell_region)
            )
        container.add_virtio_device(self.virtio)

    # -- control path (virtio-intercepted) ----------------------------------

    def _control_backend(self, request):
        """Host-side handler for control commands.

        This is where the hypervisor enforces policy before touching real
        RNIC state; the guest never programs the hardware directly.
        """
        op = request.op
        payload = request.payload
        if op == "create_qp":
            qp = self.create_qp(payload.get("pd", self.default_pd))
            return {"qpn": qp.qpn}
        if op == "reg_mr_host":
            mr = self.emtt.register_host(
                payload.get("pd", self.default_pd),
                self.container,
                payload["gva_region"],
            )
            return {"lkey": mr.lkey, "rkey": mr.rkey}
        if op == "reg_mr_gpu":
            mr = self.emtt.register_gpu(
                payload.get("pd", self.default_pd),
                payload["gpu"],
                payload["offset"],
                payload["length"],
            )
            return {"lkey": mr.lkey, "rkey": mr.rkey}
        if op == "query_device":
            return {
                "max_qp": 64 * 1024,
                "ports": self.ports,
                "port_rate": self.port_rate,
            }
        raise VStellarError("unknown control op %r" % op)

    # -- data path -----------------------------------------------------------

    def ring_doorbell(self):
        """Data-path doorbell write: direct MMIO, no virtio round trip."""
        self.doorbell_rings += 1
        return self.doorbell_region.start

    def enable_gpudirect_async(self, hypervisor, gpu):
        """Let the GPU ring this device's doorbell via DMA (Section 5).

        The shm-region fix moves the vDB out of guest-physical space,
        which breaks GPUDirect Async (the GPU can only DMA through the
        IOMMU).  The paper's remedy — reproduced here — is a hypervisor
        mechanism that explicitly registers the doorbell's I/O memory in
        the GPU's IOMMU page table when needed.  Returns the device
        address the GPU should target.
        """
        if not self.use_shm_doorbell:
            raise VStellarError(
                "GPUDirect Async registration applies to shm doorbells; a "
                "GPA-mapped vDB is already IOMMU-reachable (and hazardous)"
            )
        da = (1 << 46) + self.pasid * calibration.DOORBELL_PAGE_BYTES
        hypervisor.iommu.map(
            self.container.domain_name,
            da,
            self.doorbell_region.start,
            self.doorbell_region.length,
            kind=MemoryKind.DEVICE_MMIO,
            pin=False,
        )
        if self.fabric is not None and gpu.bdf is not None:
            self.fabric.root_complex.bind_domain(
                gpu.bdf, self.container.domain_name
            )
        self.gda_doorbell_da = da
        return da

    def reg_mr_host(self, gva_region, pd=None):
        """Register a guest buffer (control path; returns the MR handle)."""
        return self.emtt.register_host(
            pd if pd is not None else self.default_pd, self.container, gva_region
        )

    def reg_mr_gpu(self, gpu, offset, length, pd=None):
        """Register GPU memory for GDR (eMTT owner bit set to GPU)."""
        return self.emtt.register_gpu(
            pd if pd is not None else self.default_pd, gpu, offset, length
        )

    def rdma_write(self, qp, wr_id, local_mr, local_va, length, remote_rkey,
                   remote_va):
        self.ring_doorbell()
        before = self.bytes_sent
        latency = super().rdma_write(
            qp, wr_id, local_mr, local_va, length, remote_rkey, remote_va
        )
        # Aggregate successful traffic into the physical NIC's counters.
        self.parent.vdev_bytes_sent += self.bytes_sent - before
        return latency

    def snapshot(self):
        snap = super().snapshot()
        snap["doorbell_rings"] = self.doorbell_rings
        snap["pasid"] = self.pasid
        return snap

    def __repr__(self):
        return "VStellarDevice(%r, pasid=%d, shm_vdb=%s)" % (
            self.name,
            self.pasid,
            self.use_shm_doorbell,
        )


class StellarRnic(BaseRnic):
    """The physical 400G Stellar RNIC: eMTT datapath + vDevice factory."""

    def __init__(self, name, fabric, function,
                 max_vdevices=calibration.STELLAR_MAX_VDEVICES,
                 ports=calibration.RNIC_PORTS,
                 port_rate=calibration.RNIC_PORT_RATE):
        super().__init__(
            name=name,
            mode=DatapathMode.DIRECT,
            fabric=fabric,
            function=function,
            ports=ports,
            port_rate=port_rate,
        )
        self.max_vdevices = max_vdevices
        self.vdevices = {}
        self._pasids = itertools.count(1)
        self._doorbell_cursor = 0
        self.vdev_bytes_sent = 0
        self.emtt = EmttRegistrar(self)

    def _allocate_doorbell(self):
        """A standalone 4 KiB register page in the RNIC BAR per device."""
        bar = self.function.bars[0]
        offset = self._doorbell_cursor
        if offset + calibration.DOORBELL_PAGE_BYTES > bar.length:
            raise VStellarError("%s is out of doorbell register space" % self.name)
        self._doorbell_cursor += calibration.DOORBELL_PAGE_BYTES
        region = bar.subregion(offset, calibration.DOORBELL_PAGE_BYTES)
        region.kind = MemoryKind.DEVICE_MMIO
        return region

    def create_vdevice(self, container, use_shm_doorbell=True, vdb_gpa=None,
                       hypervisor=None):
        """Create a vStellar device for a container.

        Returns ``(device, seconds)`` — creation takes ~1.5 s (matching
        MasQ) and no PCIe reset, unlike SR-IOV VF reconfiguration.
        """
        if len(self.vdevices) >= self.max_vdevices:
            raise VStellarError(
                "%s is at its vDevice limit (%d)" % (self.name, self.max_vdevices)
            )
        doorbell = self._allocate_doorbell()
        pasid = next(self._pasids)
        device = VStellarDevice(
            self,
            container,
            doorbell,
            pasid,
            use_shm_doorbell=use_shm_doorbell,
            vdb_gpa=vdb_gpa,
        )
        if not use_shm_doorbell:
            # Legacy layout used for the Figure 5 hazard study: the vDB is
            # direct-mapped into guest-physical space.
            if hypervisor is None or vdb_gpa is None:
                raise VStellarError(
                    "GPA-mapped doorbells need a hypervisor and a vdb_gpa"
                )
            hypervisor.mmu.register_direct_map(
                container.name, vdb_gpa, doorbell, overwrite=True
            )
        if self.fabric is not None:
            self.fabric.root_complex.bind_domain(
                self.function.bdf, container.domain_name, pasid=pasid
            )
        self.vdevices[pasid] = device
        return device, calibration.VSTELLAR_DEVICE_CREATE_SECONDS

    def destroy_vdevice(self, device):
        """Destroy a vDevice; seconds-scale, no host reset, no VF teardown."""
        if device.pasid not in self.vdevices:
            raise VStellarError("%r is not a device of %s" % (device.name, self.name))
        del self.vdevices[device.pasid]
        if self.fabric is not None:
            self.fabric.root_complex.unbind_domain(
                self.function.bdf, pasid=device.pasid
            )

    def snapshot(self):
        snap = super().snapshot()
        snap["vdevices"] = len(self.vdevices)
        snap["vdev_bytes_sent"] = self.vdev_bytes_sent
        return snap

    def register_metrics(self, registry, prefix=None):
        """Register the physical NIC and every live vDevice."""
        super().register_metrics(registry, prefix=prefix)
        for device in self.vdevices.values():
            device.register_metrics(registry)
        return registry

    def __repr__(self):
        return "StellarRnic(%r, vdevices=%d/%d)" % (
            self.name,
            len(self.vdevices),
            self.max_vdevices,
        )
