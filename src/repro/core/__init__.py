"""Stellar's core contributions: PVDMA on-demand pinning, the eMTT GDR
datapath, multi-path packet spraying, vStellar devices, and the assembled
:class:`~repro.core.stellar.StellarHost`.
"""

from repro.core.emtt import (
    AtsRegistrar,
    EmttError,
    EmttRegistrar,
    RcRoutedRegistrar,
    gpu_hpa_chunks,
    host_gpa_chunks,
    host_hpa_chunks,
)
from repro.core.pvdma import (
    HazardOutcome,
    MapCacheStats,
    PvdmaEngine,
    PvdmaError,
    run_doorbell_hazard_scenario,
)
from repro.core.spray import (
    ALGORITHMS,
    BestRttSelector,
    DwrrSelector,
    MpRdmaSelector,
    ObliviousSpraySelector,
    PathSelector,
    RoundRobinSelector,
    SinglePathSelector,
    SprayConnection,
    make_selector,
)
from repro.core.stellar import LaunchRecord, StellarHost
from repro.core.vstellar import StellarRnic, VStellarDevice, VStellarError

__all__ = [
    "AtsRegistrar",
    "EmttError",
    "EmttRegistrar",
    "RcRoutedRegistrar",
    "gpu_hpa_chunks",
    "host_gpa_chunks",
    "host_hpa_chunks",
    "HazardOutcome",
    "MapCacheStats",
    "PvdmaEngine",
    "PvdmaError",
    "run_doorbell_hazard_scenario",
    "ALGORITHMS",
    "BestRttSelector",
    "DwrrSelector",
    "MpRdmaSelector",
    "ObliviousSpraySelector",
    "PathSelector",
    "RoundRobinSelector",
    "SinglePathSelector",
    "SprayConnection",
    "make_selector",
    "LaunchRecord",
    "StellarHost",
    "StellarRnic",
    "VStellarDevice",
    "VStellarError",
]
