"""StellarHost: the assembled per-server Stellar stack (Figure 3).

One object wires together everything a serverless-AI host needs: the PCIe
fabric with 4 Stellar RNICs and 8 GPUs, the RunD hypervisor with PVDMA,
scalable functions for virtio-net, and vStellar device creation — the
top-level API the examples and end-to-end benchmarks drive.
"""

from repro import calibration
from repro.core.pvdma import PvdmaEngine
from repro.core.vstellar import StellarRnic
from repro.pcie.topology import build_ai_server_fabric
from repro.sim.units import GiB
from repro.virt.container import ContainerState, RunDContainer
from repro.virt.hypervisor import Hypervisor, HypervisorError, MemoryMode
from repro.virt.sf import ScalableFunctionManager
from repro.virt.virtio import VirtioDevice, VirtioDeviceType


class LaunchRecord:
    """Timing breakdown for one container launch (what Figure 6 plots)."""

    __slots__ = ("container", "boot_seconds", "device_seconds", "total_seconds")

    def __init__(self, container, boot_seconds, device_seconds):
        self.container = container
        self.boot_seconds = boot_seconds
        self.device_seconds = device_seconds
        self.total_seconds = boot_seconds + device_seconds

    def __repr__(self):
        return "LaunchRecord(%r, boot=%.1fs, devices=%.1fs)" % (
            self.container.name,
            self.boot_seconds,
            self.device_seconds,
        )


class StellarHost:
    """A GPU server running the Stellar RDMA stack."""

    def __init__(self, fabric, rnics, gpus, hypervisor, pvdma, sf_managers):
        self.fabric = fabric
        self.rnics = rnics
        self.gpus = gpus
        self.hypervisor = hypervisor
        self.pvdma = pvdma
        self.sf_managers = sf_managers
        self.launches = []

    @classmethod
    def build(
        cls,
        host_memory_bytes=4 * 1024 * GiB,
        gpus=calibration.SERVER_GPUS,
        rnics=calibration.SERVER_RNICS,
        gpu_hbm_bytes=80 * GiB,
    ):
        """Build the paper's server shape with Stellar RNICs installed."""
        fabric, rnic_functions, gpu_devices = build_ai_server_fabric(
            host_memory_bytes=host_memory_bytes,
            gpus=gpus,
            rnics=rnics,
            pcie_switches=rnics,
            gpu_hbm_bytes=gpu_hbm_bytes,
        )
        hypervisor = Hypervisor(fabric=fabric)
        pvdma = PvdmaEngine(hypervisor)
        stellar_rnics = []
        sf_managers = []
        for index, function in enumerate(rnic_functions):
            rnic = StellarRnic("stellar%d" % index, fabric, function)
            # eMTT traffic is pre-translated; register the RNIC in its
            # switch LUT once so P2P routing is enabled for the function.
            fabric.switch_of(function.bdf).register_lut(function.bdf)
            stellar_rnics.append(rnic)
            sf_managers.append(ScalableFunctionManager(rnic.name, function.bdf))
        return cls(fabric, stellar_rnics, gpu_devices, hypervisor, pvdma, sf_managers)

    def rail_gpus(self, rnic_index):
        """The GPUs sharing a PCIe switch with RNIC ``rnic_index``."""
        per_rail = len(self.gpus) // len(self.rnics)
        return self.gpus[rnic_index * per_rail:(rnic_index + 1) * per_rail]

    def launch_container(
        self,
        name,
        memory_bytes,
        rnic_index=0,
        memory_mode=MemoryMode.PVDMA,
        use_shm_doorbell=True,
    ):
        """Boot a secure container with virtio-net + a vStellar device.

        Returns a :class:`LaunchRecord`; the container is reachable as
        ``record.container`` and its RDMA device as
        ``record.container.vstellar_device``.
        """
        container = RunDContainer(
            name, memory_bytes, self.hypervisor, memory_mode=memory_mode
        )
        boot_seconds = container.boot()
        device_seconds = 0.0
        # TCP side: one scalable function backing a virtio-net device.
        sf = self.sf_managers[rnic_index].create()
        sf.assigned_to = name
        from repro.virt.sf import SF_CREATE_SECONDS

        device_seconds += SF_CREATE_SECONDS
        container.add_virtio_device(VirtioDevice(VirtioDeviceType.NET))
        container.virtio_net_sf = sf
        # RDMA side: a vStellar device (seconds, no reset, no LUT entry).
        rnic = self.rnics[rnic_index]
        vdev, create_seconds = rnic.create_vdevice(
            container, use_shm_doorbell=use_shm_doorbell
        )
        device_seconds += create_seconds
        container.vstellar_device = vdev
        record = LaunchRecord(container, boot_seconds, device_seconds)
        self.launches.append(record)
        return record

    def stop_container(self, container, abnormal=False):
        """Tear down a container and every host resource launched with it.

        The reverse of :meth:`launch_container`, in dependency order:
        PVDMA mappings are unmapped while the IOMMU domain still exists,
        the vStellar device and its PASID binding are destroyed, the
        virtio-net scalable function is returned to its manager, and the
        MicroVM is shut down.  ``abnormal=True`` models a crashed guest
        (the hypervisor reaps it); the resource release is identical —
        that symmetry is what fleet churn depends on.
        """
        if container.state is not ContainerState.RUNNING:
            raise HypervisorError(
                "container %r is not running (state=%s)"
                % (container.name, container.state.value)
            )
        self.pvdma.forget_container(container)
        vdev = getattr(container, "vstellar_device", None)
        if vdev is not None:
            vdev.parent.destroy_vdevice(vdev)
            container.vstellar_device = None
        sf = getattr(container, "virtio_net_sf", None)
        if sf is not None:
            for manager in self.sf_managers:
                if sf in manager.sfs:
                    manager.destroy(sf)
                    break
            container.virtio_net_sf = None
        container.shutdown()
        return container

    def dma_prepare(self, container, gva_region):
        """Run PVDMA preparation for a guest buffer about to be DMA'd.

        Translates the GVA region to its GPA blocks and pins them
        on demand; returns the simulated seconds spent.
        """
        cost = 0.0
        for _, gpa, length in container.gva_to_gpa_chunks(
            gva_region.start, gva_region.length
        ):
            cost += self.pvdma.dma_prepare(container, gpa, length)
        return cost

    def __repr__(self):
        return "StellarHost(rnics=%d, gpus=%d, containers=%d)" % (
            len(self.rnics),
            len(self.gpus),
            len(self.hypervisor.containers),
        )
