"""Calibration constants derived from the Stellar paper.

Every constant cites where in the paper it comes from.  Benchmarks and cost
models import from here rather than hard-coding numbers so that the mapping
from the paper's measurements to our simulators is auditable in one place.
"""

from repro.sim.units import GB, Gbps, KiB, MiB, usec

# ---------------------------------------------------------------------------
# Host / container startup (Section 3.1 problem 2, Section 5, Figure 6)
# ---------------------------------------------------------------------------

#: "Pinning a container with 1.6 TB of memory typically takes 390 seconds."
PIN_SECONDS_PER_BYTE = 390.0 / (1.6 * 1e12)

#: Base RunD container boot time excluding memory pinning (hypervisor,
#: kernel, device plumbing).  Chosen so the PVDMA curve in Figure 6 stays
#: below 20 s at 1.6 TB while a 16 GB pod boots in a few seconds.
CONTAINER_BASE_BOOT_SECONDS = 3.5

#: General hypervisor overhead that grows slowly with container memory even
#: under PVDMA ("the slight increase in boot time (11 seconds) between the
#: 160 GB and 1.6 TB configurations is attributable to general hypervisor
#: overhead").  Linear coefficient fit to that 11 s delta over 1.44 TB.
HYPERVISOR_OVERHEAD_SECONDS_PER_BYTE = 11.0 / (1.44 * 1e12)

#: PVDMA pins on demand at this granularity (Section 5: "PVDMA operates
#: with a memory granularity of 2 MiB").
PVDMA_BLOCK_BYTES = 2 * MiB

#: Device-register direct mappings use 4 KiB pages (Section 5).
DOORBELL_PAGE_BYTES = 4 * KiB

# Several anchors below are not consumed by any model yet: they are
# retained as the machine-readable record of the paper's numbers and
# carry explicit L-api-drift waivers instead of being deleted.
#: Cost of one IOMMU map/pin call.  Dominated by hypervisor/IOMMU
#: interaction; calibrated so that full-pin of 1.6 TB in 2 MiB blocks
#: reproduces the paper's 390 s (390 s / (1.6 TB / 2 MiB) ~= 465 us).
IOMMU_PIN_CALL_SECONDS = PIN_SECONDS_PER_BYTE * PVDMA_BLOCK_BYTES  # simlint: ok L-api-drift

#: Figure 6 sweep points for container memory sizes.
FIG6_MEMORY_POINTS_BYTES = (16 * GB, 160 * GB, int(1.6e12))

#: Headline claim: container initialisation is reduced 15x (abstract) and
#: start-up accelerated up to 30x including registration (Section 4).
STARTUP_SPEEDUP_MIN = 15.0

# ---------------------------------------------------------------------------
# SR-IOV / virtual-device scalability (Section 3.1 problems 1 and 3, Section 4)
# ---------------------------------------------------------------------------

#: "each VF claims 63 virtual queues of 5000 MTU messages each, consuming
#: 2.4 GB of memory in total."
VF_QUEUE_COUNT = 63  # simlint: ok L-api-drift
VF_QUEUE_MTU_BYTES = 5000  # simlint: ok L-api-drift
VF_MEMORY_BYTES = int(2.4 * 1e9)

#: "each PCIe switch can only accommodate 32 BDFs" on the problem server.
PCIE_SWITCH_LUT_CAPACITY = 32

#: Server shape used throughout the paper's evaluation.
SERVER_GPUS = 8
SERVER_RNICS = 4
SERVER_PCIE_SWITCHES = 4
RNIC_PORTS = 2
RNIC_PORT_GBPS = 200.0  # simlint: ok L-api-drift
RNIC_PORT_RATE = Gbps(RNIC_PORT_GBPS)
RNIC_TOTAL_RATE = Gbps(RNIC_PORT_GBPS * RNIC_PORTS)

#: Stellar supports up to 64k virtual devices per RNIC (Section 4).
STELLAR_MAX_VDEVICES = 64 * 1024

#: "create a new vStellar device in 1.5 seconds (matching MasQ)".
VSTELLAR_DEVICE_CREATE_SECONDS = 1.5

# ---------------------------------------------------------------------------
# GDR datapaths (Sections 2, 6, 8.1; Figures 8 and 14)
# ---------------------------------------------------------------------------

#: Peak GDR throughput of the 400G Stellar RNIC via PCIe P2P (Figure 14).
GDR_P2P_PEAK_RATE = Gbps(393.0)

#: HyV/MasQ route GDR through the root complex; the RC path caps at
#: ~141 Gbps, "approximately 36% of the maximum bandwidth" (Figure 14).
GDR_RC_ROUTED_RATE = Gbps(141.0)

#: CX6 200G experiment of Figure 8: line-rate GDR is ~190 Gbps when the ATC
#: covers the working set; ATC-miss regime drops to ~170 Gbps; when IOTLB
#: also thrashes (>32 MB messages) it drops to ~150 Gbps.
CX6_GDR_PEAK_RATE = Gbps(190.0)
CX6_GDR_ATC_MISS_RATE = Gbps(170.0)  # simlint: ok L-api-drift
CX6_GDR_IOTLB_MISS_RATE = Gbps(150.0)  # simlint: ok L-api-drift

#: GDR page size used in the Figure 8 worst-case experiment.
GDR_PAGE_BYTES = 4 * KiB

#: "an ATC can only cache mappings for tens of thousands of memory pages."
#: Sized so that the Figure 8 working set (16 connections x message size in
#: 4 KiB pages) starts missing for messages over 2 MB (16 x 2 MB = 8192
#: pages fit; 16 x 4 MB = 16384 pages thrash).
ATC_CAPACITY_PAGES = 10_000

#: IOTLB reach of the root-complex IOMMU for ATS-translated pages.  Sized so
#: that messages over 32 MB (16 x 32 MB = 131072 pages) additionally thrash
#: the IOTLB, reproducing the second knee of Figure 8.
IOTLB_CAPACITY_PAGES = 150_000

#: Figure 8 experiment shape: 16 connections, round-robin GDR writes.
FIG8_CONNECTIONS = 16

# ---------------------------------------------------------------------------
# RDMA microbenchmark datapath costs (Figure 13)
# ---------------------------------------------------------------------------

#: Base one-way latency for a minimal RDMA write on the Stellar RNIC
#: (doorbell + WQE fetch + wire + completion), bare metal.  Typical
#: low-latency RNIC numbers are ~2 us.
RDMA_BASE_LATENCY_SECONDS = 2.0e-6

#: Extra latency the VF+VxLAN (CX7 SOTA) datapath adds for tiny messages:
#: "a 7% latency overhead for 8 B packets".
VXLAN_SMALL_MSG_LATENCY_OVERHEAD = 0.07

#: Bandwidth loss of VF+VxLAN for large messages: "9% bandwidth loss for
#: 8 MB messages".
VXLAN_LARGE_MSG_BW_LOSS = 0.09

#: virtio/SF/VxLAN TCP datapath penalty vs vfio/VF (Section 4): ~5%.
VIRTIO_TCP_PENALTY = 0.05

# ---------------------------------------------------------------------------
# Multi-path transport (Section 7, Figures 9-12)
# ---------------------------------------------------------------------------

#: Production choice: 128-path Oblivious Packet Spraying.
SPRAY_PATH_COUNT = 128

#: "Our current implementation relies on a Retransmission Timeout (RTO) of
#: 250 us to detect packet loss."
SPRAY_RTO_SECONDS = usec(250)

#: The HPN7.0 network has 60 aggregation switches per plane; 128 paths are
#: "sufficient to uniformly cover all possible routes" (Figure 12).
AGG_SWITCHES_PER_PLANE = 60

#: Path-count sweep of Figure 12.
FIG12_PATH_COUNTS = (4, 8, 16, 32, 64, 128, 256)

#: AllReduce bus bandwidth target per server: "fully utilize the RNIC's
#: bandwidth (50 GB/s)" (Figure 10a).
ALLREDUCE_BUS_BANDWIDTH_TARGET_BYTES = 50 * GB  # simlint: ok L-api-drift

#: Abstract headline: switch queue length reduced by ~90%.
QUEUE_LENGTH_REDUCTION_TARGET = 0.90  # simlint: ok L-api-drift

# ---------------------------------------------------------------------------
# End-to-end training (Section 8.2, Figures 15-16, Table 1)
# ---------------------------------------------------------------------------

#: Figure 16a: reranked placement, Stellar beats CX7 SOTA by 0.72% average.
FIG16_RERANKED_MEAN_GAIN = 0.0072  # simlint: ok L-api-drift

#: Figure 16b: random placement, ~6% average and up to 14% max gain.
FIG16_RANDOM_MEAN_GAIN = 0.06  # simlint: ok L-api-drift
FIG16_RANDOM_MAX_GAIN = 0.14

#: Abstract headline: average training speed improved by 14% (max).
TRAINING_SPEEDUP_MAX = 0.14  # simlint: ok L-api-drift

# ---------------------------------------------------------------------------
# Address-translation micro-costs (used by the GDR cost models)
# ---------------------------------------------------------------------------

#: PCIe round trip for an ATS translation request to the IOMMU on hit.
ATS_QUERY_SECONDS = 0.9e-6

#: Additional cost when the IOMMU's IOTLB also misses and a page-table walk
#: is required.
IOTLB_WALK_SECONDS = 1.6e-6

#: MTT/eMTT lookup on the RNIC itself (on-chip SRAM; effectively free
#: relative to PCIe but modelled for completeness).
MTT_LOOKUP_SECONDS = 25e-9

#: ATC hit lookup cost inside the RNIC.
ATC_HIT_SECONDS = 10e-9

#: Number of ATS translation requests an RNIC keeps in flight.  Translation
#: stalls are amortized over this depth, which is what turns a 0.9 us ATS
#: round trip into the ~20 Gbps plateau drop seen in Figure 8 rather than a
#: collapse: 4 KiB at 190 Gbps is 172 ns/page; adding 0.9 us / 48 = ~19 ns
#: lands at ~171 Gbps, and adding (0.9+1.6) us / 48 = ~52 ns lands at
#: ~146 Gbps — the paper's 170/150 Gbps regimes.
ATS_PIPELINE_DEPTH = 48

#: MTT capacity (entries).  "The MTT ... commonly has orders of magnitude
#: larger capacity than the PCIe ATC" (Section 6).
MTT_CAPACITY_ENTRIES = 4 * 1024 * 1024
