"""Unit helpers for sizes, time, and bandwidth.

Conventions used across the whole code base:

* sizes are **bytes** (plain ``int``),
* time is **seconds** (``float``),
* bandwidth is **bits per second** (``float``).

Keeping a single convention makes cost models composable: a DMA engine can
hand a byte count to a link model without conversions scattered around.
"""

import re

# Decimal (SI) sizes — used for link speeds and marketing-style capacities.
KB = 1_000
MB = 1_000_000
GB = 1_000_000_000
TB = 1_000_000_000_000

# Binary (IEC) sizes — used for memory pages and buffers.
KiB = 1 << 10
MiB = 1 << 20
GiB = 1 << 30
TiB = 1 << 40

_SIZE_UNITS = {
    "b": 1,
    "kb": KB,
    "mb": MB,
    "gb": GB,
    "tb": TB,
    "kib": KiB,
    "mib": MiB,
    "gib": GiB,
    "tib": TiB,
}

_SIZE_RE = re.compile(r"^\s*([0-9]+(?:\.[0-9]+)?)\s*([a-zA-Z]+)?\s*$")


def Gbps(value):
    """Return a bandwidth in bits/second given a value in gigabits/second."""
    return float(value) * 1e9


def bits_per_sec(byte_count, seconds):
    """Average rate in bits/second for ``byte_count`` bytes over ``seconds``."""
    if seconds <= 0:
        raise ValueError("duration must be positive, got %r" % seconds)
    return byte_count * 8.0 / seconds


def usec(value):
    """Return a duration in seconds given a value in microseconds."""
    return float(value) * 1e-6


def transfer_time(byte_count, rate_bps):
    """Seconds needed to move ``byte_count`` bytes at ``rate_bps`` bits/second."""
    if rate_bps <= 0:
        raise ValueError("rate must be positive, got %r" % rate_bps)
    if byte_count < 0:
        raise ValueError("byte count must be non-negative, got %r" % byte_count)
    return byte_count * 8.0 / rate_bps


def parse_size(text):
    """Parse a human-readable size such as ``"8MB"`` or ``"2 MiB"`` to bytes.

    Bare numbers are interpreted as bytes.  Raises :class:`ValueError` on
    malformed input or unknown units.
    """
    if isinstance(text, (int, float)):
        return int(text)
    match = _SIZE_RE.match(text)
    if match is None:
        raise ValueError("unparseable size: %r" % text)
    value, unit = match.groups()
    multiplier = _SIZE_UNITS.get((unit or "b").lower())
    if multiplier is None:
        raise ValueError("unknown size unit in %r" % text)
    return int(float(value) * multiplier)


def format_bytes(byte_count):
    """Format a byte count with a binary suffix, e.g. ``2.0MiB``."""
    magnitude = float(byte_count)
    for suffix in ("B", "KiB", "MiB", "GiB", "TiB"):
        if magnitude < 1024 or suffix == "TiB":
            if suffix == "B":
                return "%d%s" % (int(magnitude), suffix)
            return "%.1f%s" % (magnitude, suffix)
        magnitude /= 1024.0
    raise AssertionError("unreachable")


def format_rate(rate_bps):
    """Format a bandwidth, e.g. ``393.2Gbps``."""
    magnitude = float(rate_bps)
    for suffix in ("bps", "Kbps", "Mbps", "Gbps"):
        if magnitude < 1000 or suffix == "Gbps":
            return "%.1f%s" % (magnitude, suffix)
        magnitude /= 1000.0
    raise AssertionError("unreachable")


def format_time(seconds):
    """Format a duration using the most readable unit, e.g. ``250.0us``."""
    if seconds < 0:
        return "-" + format_time(-seconds)
    if seconds >= 1.0:
        return "%.2fs" % seconds
    if seconds >= 1e-3:
        return "%.1fms" % (seconds * 1e3)
    if seconds >= 1e-6:
        return "%.1fus" % (seconds * 1e6)
    return "%.0fns" % (seconds * 1e9)
