"""Runtime sim-invariant sanitizer: the dynamic half of the simlint
contract.

:mod:`repro.lint` proves statically that nothing *can* smuggle ambient
randomness or wall-clock time into a run; :class:`SimSanitizer` checks at
runtime that the simulation actually *behaves* like a deterministic
discrete-event system:

* **monotonic clock** — the scheduler's ``now`` never goes backwards
  across executed events (a regression here reorders everything
  downstream);
* **event-leak detection** — a workload that declares completion while
  live events remain queued has leaked them; the leaked events are named
  in the error so the culprit callback is one grep away;
* **conservation** — cross-checks sourced from a metrics snapshot:
  packets sent == delivered + dropped (+ in flight), every bounded
  structure (ATC/IOTLB ``size``/``capacity``, switch LUT
  ``lut_used``/``lut_capacity``, per-host ``gpus_used``/
  ``gpus_capacity``) stays within its configured capacity, fleet
  job accounting balances (submitted == queued + starting + running +
  completed + failed), and the hybrid-fidelity byte ledger conserves
  (``dp_bytes_fluid + dp_bytes_packet == dp_bytes_total``, fleet-wide
  and per job).

The sanitizer is opt-in and composable: ``attach()`` wraps one
:class:`~repro.sim.engine.EventScheduler` instance's ``step`` (the run
loop calls ``self.step()``, so instance-attribute shadowing is enough),
``detach()`` restores it, and the class works as a context manager that
runs a full :meth:`check` on clean exit.  Tests inject violations
(a leaked event, a cooked snapshot) and assert the sanitizer trips.
"""

from repro.sim.engine import SimProcessError


class SanitizerError(SimProcessError):
    """A simulation invariant was violated at runtime."""


class SimSanitizer:
    """Opt-in runtime invariant checks for one :class:`EventScheduler`.

    Args:
        scheduler: the scheduler to watch.
        registry: optional :class:`repro.obs.metrics.MetricsRegistry`
            whose snapshot feeds :meth:`check_conservation`.
    """

    def __init__(self, scheduler, registry=None):
        self.scheduler = scheduler
        self.registry = registry
        self.checks_run = 0
        self._attached = False
        self._orig_step = None
        self._max_now_seen = scheduler.now

    # -- clock monotonicity ----------------------------------------------

    def attach(self):
        """Wrap ``scheduler.step`` so every executed event checks the
        clock; returns ``self`` for chaining."""
        if self._attached:
            return self
        self._orig_step = self.scheduler.step
        sanitizer = self

        def checked_step():
            before = sanitizer.scheduler.now
            progressed = sanitizer._orig_step()
            now = sanitizer.scheduler.now
            if now < before:
                raise SanitizerError(
                    "clock went backwards inside step(): %g -> %g"
                    % (before, now)
                )
            if now > sanitizer._max_now_seen:
                sanitizer._max_now_seen = now
            return progressed

        self.scheduler.step = checked_step
        self._attached = True
        return self

    def detach(self):
        """Restore the scheduler's original ``step``."""
        if self._attached:
            del self.scheduler.step  # uncovers the class method
            self._orig_step = None
            self._attached = False
        return self

    def __enter__(self):
        return self.attach()

    def __exit__(self, exc_type, exc, tb):
        self.detach()
        if exc_type is None:
            self.check(drained=None)
        return False

    def check_clock(self):
        """The clock never regressed below its high-water mark."""
        now = self.scheduler.now
        if now < self._max_now_seen:
            raise SanitizerError(
                "clock regressed: now=%g below high-water mark %g"
                % (now, self._max_now_seen)
            )

    # -- event-leak detection --------------------------------------------

    def assert_drained(self, max_leaked_shown=5):
        """Fail if live events remain after a workload declared completion.

        The error names the leaked events (time + callback) so the
        offending component is identifiable without a debugger.
        """
        leaked = self.scheduler.live_events()
        if not leaked:
            return
        from repro.sim.engine import callback_name

        shown = ", ".join(
            "t=%g:%s" % (event.time, callback_name(event.callback))
            for event in leaked[:max_leaked_shown]
        )
        more = len(leaked) - min(len(leaked), max_leaked_shown)
        raise SanitizerError(
            "event leak: %d live event(s) still queued at drain: %s%s"
            % (len(leaked), shown, " (+%d more)" % more if more else "")
        )

    # -- conservation ----------------------------------------------------

    def check_conservation(self, snapshot=None, drained=None):
        """Cross-check counters from a flat metrics snapshot.

        Args:
            snapshot: flat ``{dotted name: value}`` mapping; defaults to
                ``self.registry.snapshot()``.
            drained: whether the simulation has fully drained.  ``None``
                (default) infers it from the scheduler queue.  When
                drained, packet conservation must hold exactly; mid-run,
                in-flight packets make it an inequality.
        """
        if snapshot is None:
            if self.registry is None:
                raise SanitizerError(
                    "no snapshot given and no registry configured"
                )
            snapshot = self.registry.snapshot()
        if drained is None:
            drained = self.scheduler.pending() == 0
        self.checks_run += 1
        self._check_packet_conservation(snapshot, drained)
        self._check_capacities(snapshot)
        self._check_job_conservation(snapshot)
        self._check_fidelity_conservation(snapshot)

    @staticmethod
    def _check_packet_conservation(snapshot, drained):
        for key, sent in snapshot.items():
            if not key.endswith(".packets_sent"):
                continue
            base = key[:-len("packets_sent")]
            delivered = snapshot.get(base + "packets_delivered")
            dropped = snapshot.get(base + "packets_dropped")
            if delivered is None or dropped is None:
                continue
            accounted = delivered + dropped
            if accounted > sent:
                raise SanitizerError(
                    "%s*: delivered+dropped (%d+%d) exceeds sent (%d)"
                    % (base, delivered, dropped, sent)
                )
            if drained and accounted != sent:
                raise SanitizerError(
                    "%s*: %d packet(s) unaccounted for at drain "
                    "(sent=%d, delivered=%d, dropped=%d)"
                    % (base, sent - accounted, sent, delivered, dropped)
                )

    @staticmethod
    def _check_capacities(snapshot):
        # Occupancy leaves pair with a capacity leaf by naming convention:
        # ``<base>size``/``<base>capacity`` (ATC/IOTLB caches) and
        # ``<base>used``/``<base>capacity`` (switch LUTs) — covering both
        # ``x.size`` and ``iotlb_size`` spellings.
        for key, used in snapshot.items():
            if key.endswith("size") or key.endswith("used"):
                bound = snapshot.get(key[:-4] + "capacity")
            else:
                continue
            if bound is None:
                continue
            if used < 0:
                raise SanitizerError(
                    "%s occupancy is negative: %r" % (key, used)
                )
            if used > bound:
                raise SanitizerError(
                    "%s exceeds configured capacity: %r > %r"
                    % (key, used, bound)
                )

    @staticmethod
    def _check_job_conservation(snapshot):
        # Fleet job accounting: every submitted job is in exactly one
        # state at all times (``repro.cluster`` exports the counters from
        # independent increments, so a missed transition trips this).
        states = ("queued", "starting", "running", "completed", "failed")
        for key, submitted in snapshot.items():
            if not key.endswith(".jobs_submitted"):
                continue
            base = key[:-len("jobs_submitted")]
            counts = [snapshot.get(base + "jobs_" + state) for state in states]
            if any(count is None for count in counts):
                continue
            accounted = sum(counts)
            if accounted != submitted:
                raise SanitizerError(
                    "%s*: job states sum to %d but %d were submitted "
                    "(queued=%d starting=%d running=%d completed=%d "
                    "failed=%d)"
                    % ((base, accounted, submitted) + tuple(counts))
                )

    @staticmethod
    def _check_fidelity_conservation(snapshot):
        # Cross-fidelity byte ledger: every DP-allreduce byte a hybrid
        # fleet accounts is attributed to exactly one pricing regime, so
        # fluid + packet must equal the total — fleet-wide and per job
        # (both spell their counters ``dp_bytes_{fluid,packet,total}``).
        for key, total in snapshot.items():
            if not key.endswith("dp_bytes_total"):
                continue
            base = key[:-len("dp_bytes_total")]
            fluid = snapshot.get(base + "dp_bytes_fluid")
            packet = snapshot.get(base + "dp_bytes_packet")
            if fluid is None or packet is None:
                continue
            if fluid + packet != total:
                raise SanitizerError(
                    "%s*: fluid+packet bytes (%d+%d) != total (%d) — "
                    "a congestion epoch was double-counted or dropped"
                    % (base or "dp_bytes_", fluid, packet, total)
                )

    # -- everything ------------------------------------------------------

    def check(self, drained=None):
        """Run every invariant that applies right now.

        ``drained=True`` additionally requires an empty event queue
        (leak detection); ``None`` checks leaks only if the queue is
        already empty — i.e. it never fails mid-run.
        """
        self.check_clock()
        if drained is True:
            self.assert_drained()
        if self.registry is not None:
            self.check_conservation(drained=drained)

    def __repr__(self):
        return "SimSanitizer(attached=%s, checks_run=%d, now=%g)" % (
            self._attached, self.checks_run, self.scheduler.now,
        )
