"""Heap-based discrete-event scheduler.

The scheduler is deliberately minimal: events are ``(time, sequence,
callback)`` triples, ties broken by insertion order so runs are fully
deterministic.  Components schedule callbacks; the run loop executes them
in timestamp order until the queue drains or a time/ event budget is hit.
"""

import heapq
import itertools
import time

try:
    from repro.obs.trace import callback_name
except ImportError:  # pragma: no cover — stripped deployments without obs
    def callback_name(callback):
        """Fallback label when the obs package is unavailable."""
        name = getattr(callback, "__qualname__", None)
        return name if name is not None else type(callback).__name__


class SimProcessError(RuntimeError):
    """Raised when the simulation is driven incorrectly (e.g. time travel)."""


class Event:
    """Handle for a scheduled callback; supports cancellation."""

    __slots__ = ("time", "callback", "cancelled", "seq")

    def __init__(self, time, seq, callback):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def cancel(self):
        """Mark the event dead; the run loop skips cancelled events."""
        self.cancelled = True

    def __lt__(self, other):
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self):
        state = " cancelled" if self.cancelled else ""
        return "Event(t=%g, seq=%d%s)" % (self.time, self.seq, state)


class EventScheduler:
    """Discrete-event run loop with deterministic tie-breaking."""

    #: Emit a queue-depth counter sample every N traced callbacks.
    QUEUE_SAMPLE_EVERY = 32

    def __init__(self, start_time=0.0, tracer=None):
        self.now = float(start_time)
        self._heap = []
        self._counter = itertools.count()
        self.events_executed = 0
        self.tracer = None
        if tracer is not None:
            self.set_tracer(tracer)

    def set_tracer(self, tracer):
        """Attach a :class:`repro.obs.trace.Tracer` (or ``None`` to detach).

        Disabled tracers (``NULL_TRACER``) normalize to ``None`` so the run
        loop's only overhead when tracing is off is one ``is not None``
        test per event.
        """
        if tracer is not None and not getattr(tracer, "enabled", True):
            tracer = None
        self.tracer = tracer
        return tracer

    def register_metrics(self, registry, prefix="scheduler"):
        """Expose run-loop health under ``scheduler.*`` in ``registry``."""
        registry.add_provider(prefix, self.snapshot)
        return registry

    def snapshot(self):
        """Public counter snapshot of the run loop."""
        return {
            "now": self.now,
            "events_executed": self.events_executed,
            "queue_len": len(self._heap),
        }

    def schedule(self, delay, callback):
        """Schedule ``callback()`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimProcessError("cannot schedule into the past (delay=%r)" % delay)
        return self.schedule_at(self.now + delay, callback)

    def schedule_at(self, time, callback):
        """Schedule ``callback()`` at an absolute simulation time."""
        if time < self.now:
            raise SimProcessError(
                "cannot schedule at t=%g before now=%g" % (time, self.now)
            )
        event = Event(float(time), next(self._counter), callback)
        heapq.heappush(self._heap, event)
        return event

    def peek_time(self):
        """Timestamp of the next live event, or ``None`` if the queue is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def step(self):
        """Execute the next live event.  Returns ``False`` when queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.now = event.time
            self.events_executed += 1
            tracer = self.tracer
            if tracer is None:
                event.callback()
                return True
            # Wall-clock here profiles the *simulator itself* (how long a
            # callback took in host time); it never feeds simulation state.
            wall_start = time.perf_counter()  # simlint: ok D-wallclock
            event.callback()
            wall = time.perf_counter() - wall_start  # simlint: ok D-wallclock
            depth = None
            if self.events_executed % self.QUEUE_SAMPLE_EVERY == 0:
                depth = len(self._heap)
            tracer.record_callback(
                event.time, callback_name(event.callback), wall, queue_depth=depth
            )
            return True
        return False

    def run(self, until=None, max_events=None):
        """Run events in order.

        Args:
            until: stop once simulation time would exceed this value.  The
                clock is advanced to ``until`` when the queue outlives it.
            max_events: safety valve against runaway event storms.

        Returns:
            The number of events executed by this call.
        """
        executed = 0
        while True:
            if max_events is not None and executed >= max_events:
                return executed
            next_time = self.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                self.now = float(until)
                return executed
            self.step()
            executed += 1
        if until is not None and self.now < until:
            self.now = float(until)
        return executed

    def pending(self):
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for event in self._heap if not event.cancelled)

    def live_events(self):
        """The live events still queued, in execution order.

        Public accessor for leak diagnostics (``SimSanitizer``): a
        workload that declares completion while events remain queued has
        leaked them, and their reprs/callbacks name the culprit.
        """
        return sorted(event for event in self._heap if not event.cancelled)

    def __repr__(self):
        return "EventScheduler(now=%g, pending=%d)" % (self.now, self.pending())
