"""Heap-based discrete-event scheduler.

The scheduler is deliberately minimal: events are ``(time, sequence,
callback)`` triples, ties broken by insertion order so runs are fully
deterministic.  Components schedule callbacks; the run loop executes them
in timestamp order until the queue drains or a time/ event budget is hit.

Hot-path design (the perf suite in :mod:`repro.perf` tracks all of it):

* Heap entries are plain ``(time, seq, event)`` tuples, so ``heappush``/
  ``heappop`` compare tuples in C instead of calling ``Event.__lt__``
  per comparison (``seq`` is unique, so the ``event`` element is never
  compared).
* Live/cancelled counts are maintained incrementally — ``pending()`` is
  O(1) instead of an O(n) heap scan.
* ``run()`` is a fused loop: one heap pop per event, instead of the old
  ``peek_time()`` + ``step()`` pair that could touch the heap twice.
* Cancelled events are skipped lazily, and when tracing is off the heap
  is compacted once dead entries outnumber live ones (loss-heavy packet
  runs cancel thousands of RTO timers that would otherwise linger until
  their deadline).  Traced runs never compact: the tracer's queue-depth
  samples are part of the determinism digest, and a traced heap must
  look exactly like it always did.
"""

import heapq
import itertools
import time

try:
    from repro.obs.trace import callback_name
except ImportError:  # pragma: no cover — stripped deployments without obs
    def callback_name(callback):
        """Fallback label when the obs package is unavailable."""
        name = getattr(callback, "__qualname__", None)
        return name if name is not None else type(callback).__name__


class SimProcessError(RuntimeError):
    """Raised when the simulation is driven incorrectly (e.g. time travel)."""


class Event:
    """Handle for a scheduled callback; supports cancellation."""

    __slots__ = ("time", "callback", "cancelled", "seq", "_sched")

    def __init__(self, time, seq, callback, sched=None):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        # Owning scheduler while the event sits in its heap; cleared on
        # execution/skip so late cancels don't corrupt the live count.
        self._sched = sched

    def cancel(self):
        """Mark the event dead; the run loop skips cancelled events."""
        if not self.cancelled:
            self.cancelled = True
            sched = self._sched
            if sched is not None:
                self._sched = None
                sched._note_cancel()

    def __lt__(self, other):
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self):
        state = " cancelled" if self.cancelled else ""
        return "Event(t=%g, seq=%d%s)" % (self.time, self.seq, state)


class EventScheduler:
    """Discrete-event run loop with deterministic tie-breaking."""

    #: Emit a queue-depth counter sample every N traced callbacks.
    QUEUE_SAMPLE_EVERY = 32

    #: Compact the heap (untraced runs only) once cancelled entries both
    #: outnumber live ones and exceed this floor — below it, lazy
    #: skipping is cheaper than a heapify.
    COMPACT_MIN_DEAD = 64

    def __init__(self, start_time=0.0, tracer=None):
        self.now = float(start_time)
        # Heap entries are (time, seq, payload) where payload is either a
        # cancellable Event handle or — via schedule_call() — the bare
        # callback itself.  seq is unique, so payloads are never compared.
        self._heap = []
        self._counter = itertools.count()
        self.events_executed = 0
        # Cancelled-but-still-queued entry count; live = len(heap) - dead.
        self._dead = 0
        self.tracer = None
        if tracer is not None:
            self.set_tracer(tracer)

    def set_tracer(self, tracer):
        """Attach a :class:`repro.obs.trace.Tracer` (or ``None`` to detach).

        Disabled tracers (``NULL_TRACER``) normalize to ``None`` so the run
        loop's only overhead when tracing is off is one ``is not None``
        test per run.  Attach tracers between ``run()`` calls — the run
        loop latches the tracer when it starts.
        """
        if tracer is not None and not getattr(tracer, "enabled", True):
            tracer = None
        self.tracer = tracer
        return tracer

    def register_metrics(self, registry, prefix="scheduler"):
        """Expose run-loop health under ``scheduler.*`` in ``registry``."""
        registry.add_provider(prefix, self.snapshot)
        return registry

    def snapshot(self):
        """Public counter snapshot of the run loop."""
        return {
            "now": self.now,
            "events_executed": self.events_executed,
            "queue_len": len(self._heap),
        }

    def schedule(self, delay, callback):
        """Schedule ``callback()`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimProcessError("cannot schedule into the past (delay=%r)" % delay)
        # Inlined schedule_at(): this is the per-packet hot call, and
        # delay >= 0 already guarantees the past-scheduling invariant.
        time = self.now + delay
        event = Event(time, next(self._counter), callback, self)
        heapq.heappush(self._heap, (time, event.seq, event))
        return event

    def schedule_call(self, delay, callback):
        """Fire-and-forget :meth:`schedule`: no :class:`Event` handle.

        For hot paths that never cancel (per-hop packet forwarding): the
        bare callback goes into the heap, skipping the Event allocation.
        Execution order and tracing are identical to :meth:`schedule`.
        """
        if delay < 0:
            raise SimProcessError("cannot schedule into the past (delay=%r)" % delay)
        heapq.heappush(
            self._heap, (self.now + delay, next(self._counter), callback)
        )

    def schedule_at(self, time, callback):
        """Schedule ``callback()`` at an absolute simulation time."""
        if time < self.now:
            raise SimProcessError(
                "cannot schedule at t=%g before now=%g" % (time, self.now)
            )
        time = float(time)
        event = Event(time, next(self._counter), callback, self)
        heapq.heappush(self._heap, (time, event.seq, event))
        return event

    def _note_cancel(self):
        """Accounting hook from :meth:`Event.cancel` (pending events only)."""
        dead = self._dead = self._dead + 1
        if (
            dead >= self.COMPACT_MIN_DEAD
            and dead * 2 > len(self._heap)
            and self.tracer is None
        ):
            self._compact()

    def _compact(self):
        """Drop cancelled entries in place and re-heapify.

        In place (``heap[:] =``) on purpose: the fused run loop holds a
        local reference to the heap list, which must stay valid across a
        compaction triggered from inside a callback.
        """
        heap = self._heap
        heap[:] = [
            entry for entry in heap
            if entry[2].__class__ is not Event or not entry[2].cancelled
        ]
        heapq.heapify(heap)
        self._dead = 0

    def peek_time(self):
        """Timestamp of the next live event, or ``None`` if the queue is empty."""
        heap = self._heap
        while heap:
            payload = heap[0][2]
            if payload.__class__ is Event and payload.cancelled:
                heapq.heappop(heap)
                self._dead -= 1
                continue
            return heap[0][0]
        return None

    def step(self):
        """Execute the next live event.  Returns ``False`` when queue is empty.

        The fused ``run()`` loop is the fast path; ``step()`` stays the
        single-event building block for drivers that need per-event
        control (``SimSanitizer`` shadows it to interpose checks).
        """
        heap = self._heap
        while heap:
            event_time, _seq, payload = heapq.heappop(heap)
            if payload.__class__ is Event:
                if payload.cancelled:
                    self._dead -= 1
                    continue
                payload._sched = None
                callback = payload.callback
            else:
                callback = payload
            self.now = event_time
            self.events_executed += 1
            tracer = self.tracer
            if tracer is None:
                callback()
                return True
            # Wall-clock here profiles the *simulator itself* (how long a
            # callback took in host time); it never feeds simulation state.
            wall_start = time.perf_counter()  # simlint: ok D-wallclock D-sim-pure
            callback()
            wall = time.perf_counter() - wall_start  # simlint: ok D-wallclock D-sim-pure
            depth = None
            if self.events_executed % self.QUEUE_SAMPLE_EVERY == 0:
                depth = len(heap)
            tracer.record_callback(
                event_time, callback_name(callback), wall, queue_depth=depth
            )
            return True
        return False

    def run(self, until=None, max_events=None):
        """Run events in order.

        Args:
            until: stop once simulation time would exceed this value.  The
                clock is advanced to ``until`` when the queue outlives it.
            max_events: safety valve against runaway event storms.

        Returns:
            The number of events executed by this call.
        """
        if "step" in self.__dict__:
            # step() has been instance-shadowed (SimSanitizer does this to
            # interpose per-event checks); honour it instead of the fused
            # loop so every event still flows through the shadow.
            return self._run_stepped(until, max_events)
        executed = 0
        budget = float("inf") if max_events is None else max_events
        limit = float("inf") if until is None else until
        heap = self._heap
        heappop = heapq.heappop
        tracer = self.tracer
        sample_every = self.QUEUE_SAMPLE_EVERY
        while heap:
            if executed >= budget:
                return executed
            entry = heap[0]
            payload = entry[2]
            is_event = payload.__class__ is Event
            if is_event and payload.cancelled:
                heappop(heap)
                self._dead -= 1
                continue
            event_time = entry[0]
            if event_time > limit:
                self.now = float(until)
                return executed
            if tracer is None:
                heappop(heap)
                if is_event:
                    payload._sched = None
                    callback = payload.callback
                else:
                    callback = payload
                self.now = event_time
                self.events_executed += 1
                executed += 1
                callback()
                # Batched dispatch: while the next entries share this
                # timestamp, drain them here without re-running the
                # outer loop's limit compare, clock store, and tracer
                # dispatch — none of which can change within one
                # timestamp.  Heap pops stay one-per-event (ties are
                # ordered by seq, which only the heap knows), but the
                # per-event bookkeeping collapses to the cancellation
                # check and the budget guard.  Events a callback
                # schedules at this same timestamp carry larger seqs
                # and are drained by this same loop, in order; events
                # it cancels are still heap-resident and are skipped
                # with exact dead-entry accounting.
                while heap and heap[0][0] == event_time and executed < budget:
                    payload = heap[0][2]
                    if payload.__class__ is Event:
                        if payload.cancelled:
                            heappop(heap)
                            self._dead -= 1
                            continue
                        heappop(heap)
                        payload._sched = None
                        callback = payload.callback
                    else:
                        heappop(heap)
                        callback = payload
                    self.events_executed += 1
                    executed += 1
                    callback()
                continue
            callback = payload.callback if is_event else payload
            heappop(heap)
            if is_event:
                payload._sched = None
            self.now = event_time
            self.events_executed += 1
            executed += 1
            # Wall-clock here profiles the *simulator itself*; see step().
            wall_start = time.perf_counter()  # simlint: ok D-wallclock D-sim-pure
            callback()
            wall = time.perf_counter() - wall_start  # simlint: ok D-wallclock D-sim-pure
            depth = None
            if self.events_executed % sample_every == 0:
                depth = len(heap)
            tracer.record_callback(
                event_time, callback_name(callback), wall, queue_depth=depth
            )
        if until is not None and self.now < until:
            self.now = float(until)
        return executed

    def _run_stepped(self, until, max_events):
        """Pre-fusion run loop over ``peek_time()``/``step()``.

        Kept for instance-level ``step`` shadowing; executes the same
        events in the same order as the fused loop.
        """
        executed = 0
        while True:
            if max_events is not None and executed >= max_events:
                return executed
            next_time = self.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                self.now = float(until)
                return executed
            self.step()
            executed += 1
        if until is not None and self.now < until:
            self.now = float(until)
        return executed

    def pending(self):
        """Number of live (non-cancelled) events still queued."""
        return len(self._heap) - self._dead

    def live_events(self):
        """The live events still queued, in execution order.

        Public accessor for leak diagnostics (``SimSanitizer``): a
        workload that declares completion while events remain queued has
        leaked them, and their reprs/callbacks name the culprit.
        Handle-free ``schedule_call`` entries are wrapped in synthetic
        Events so callers see one uniform shape.
        """
        live = []
        for entry in self._heap:
            payload = entry[2]
            if payload.__class__ is Event:
                if not payload.cancelled:
                    live.append(payload)
            else:
                live.append(Event(entry[0], entry[1], payload))
        live.sort()
        return live

    def __repr__(self):
        return "EventScheduler(now=%g, pending=%d)" % (self.now, self.pending())
