"""Seeded random-number streams.

Each simulated component draws from its own named stream so that adding a
new consumer of randomness never perturbs the draws seen by existing ones.
Streams are derived from a root seed with a stable hash, which keeps whole
experiments reproducible across processes and Python versions.
"""

import hashlib
import random

_MASK64 = (1 << 64) - 1


def derive_seed(root_seed, *names):
    """Derive a 64-bit child seed from ``root_seed`` and a path of names.

    The derivation uses SHA-256 so it is stable across interpreter runs
    (unlike built-in ``hash``) and statistically independent between names.
    """
    digest = hashlib.sha256()
    digest.update(str(int(root_seed)).encode("ascii"))
    for name in names:
        digest.update(b"/")
        digest.update(str(name).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big") & _MASK64


class RngStream:
    """A named, independently-seeded random stream.

    Wraps :class:`random.Random` and exposes only the draws the simulators
    need, plus :meth:`child` for hierarchical derivation (e.g. one stream
    per flow under one stream per experiment).
    """

    def __init__(self, root_seed, *names):
        self.seed = derive_seed(root_seed, *names)
        self._names = tuple(names)
        self._root_seed = int(root_seed)
        self._random = random.Random(self.seed)
        # Hot-path bindings: expose the underlying generator's bound
        # methods directly so per-draw calls skip one Python frame.  The
        # same generator methods run either way, so draw sequences (and
        # therefore determinism digests) are unchanged.
        self.random = self._random.random
        self.randint = self._random.randint
        self.getrandbits = self._random.getrandbits

    def child(self, *names):
        """Return a new stream derived from this stream's identity."""
        return RngStream(self._root_seed, *(self._names + tuple(names)))

    def uniform(self, low=0.0, high=1.0):
        return self._random.uniform(low, high)

    def randint(self, low, high):
        """Uniform integer in the inclusive range [low, high]."""
        return self._random.randint(low, high)

    def choice(self, seq):
        return self._random.choice(seq)

    def shuffle(self, seq):
        self._random.shuffle(seq)

    def sample(self, population, k):
        return self._random.sample(population, k)

    def expovariate(self, rate):
        return self._random.expovariate(rate)

    def random(self):
        return self._random.random()

    def permutation(self, n):
        """A random permutation of range(n) with no fixed point when n > 1.

        Permutation traffic benchmarks require every sender to target a
        *different* endpoint, so the identity mapping positions are rejected.
        """
        if n <= 0:
            return []
        if n == 1:
            return [0]
        while True:
            perm = list(range(n))
            self._random.shuffle(perm)
            if all(perm[i] != i for i in range(n)):
                return perm

    def __repr__(self):
        return "RngStream(seed=%d, names=%r)" % (self.seed, list(self._names))
