"""Deterministic discrete-event simulation substrate.

Every Stellar experiment runs on top of this package: a heap-based event
scheduler (:mod:`repro.sim.engine`), unit helpers for bytes/time/bandwidth
(:mod:`repro.sim.units`), and seeded random-number streams
(:mod:`repro.sim.rng`) so that every run is reproducible bit-for-bit.
"""

from repro.sim.engine import Event, EventScheduler, SimProcessError
from repro.sim.rng import RngStream, derive_seed
from repro.sim.sanitizer import SanitizerError, SimSanitizer
from repro.sim.units import (
    GB,
    GiB,
    Gbps,
    KB,
    KiB,
    MB,
    MiB,
    TB,
    TiB,
    bits_per_sec,
    format_bytes,
    format_rate,
    format_time,
    parse_size,
    transfer_time,
    usec,
)

__all__ = [
    "Event",
    "EventScheduler",
    "SimProcessError",
    "SanitizerError",
    "SimSanitizer",
    "RngStream",
    "derive_seed",
    "KB",
    "MB",
    "GB",
    "TB",
    "KiB",
    "MiB",
    "GiB",
    "TiB",
    "Gbps",
    "bits_per_sec",
    "usec",
    "parse_size",
    "format_bytes",
    "format_rate",
    "format_time",
    "transfer_time",
]
