"""The whole-program simlint driver: per-file rules + deep analysis + cache.

One :func:`lint_project` call does everything ``python -m repro.lint``
needs: walk the paths, lint each file with the per-file rules
(:mod:`repro.lint.rules`), summarize it for the call graph
(:mod:`repro.lint.callgraph`), resolve the graph and run the transitive
rules (:mod:`repro.lint.purity`), and fold in reference-only paths
(examples) so ``L-api-drift`` sees every consumer.

**Incremental cache.**  Parsing ~150 files dominates a warm run, so the
engine persists one JSON entry per file — source digest, serialized
per-file violations, and the call-graph summary — keyed on the same
per-file SHA-256 the runner's result cache uses
(:func:`repro.runner.fingerprint.file_digest`).  A warm run on an
unchanged tree re-parses nothing: per-file violations replay from the
cache and the deep analysis rebuilds from cached summaries (the
cross-file fixed point is always recomputed — it is cheap, and caching
it would be wrong the moment any*other* file changes).  The whole cache
is invalidated when the lint package's own source closure changes
(``closure_digest("repro.lint")``), so rule edits never replay stale
results.  A corrupt or unwritable cache degrades to a cold run, never
to an error.
"""

import ast
import json
import os
import tempfile

from repro.lint.callgraph import ProjectIndex, summarize_tree
from repro.lint.purity import api_drift_violations, deep_violations
from repro.lint.rules import (
    RULES,
    Violation,
    iter_python_files,
    lint_tree,
    parse_waivers,
)
from repro.runner.fingerprint import closure_digest, file_digest

#: Bump when the cache entry shape or lint semantics change.
LINT_CACHE_SCHEMA = "simlint-cache-v1"

#: Default on-disk location (gitignored), relative to the invocation cwd.
DEFAULT_CACHE_PATH = ".simlint_cache.json"


class LintReport:
    """Everything one lint run produced: violations + run statistics."""

    __slots__ = ("violations", "stats")

    def __init__(self, violations, stats):
        self.violations = sorted(violations, key=Violation.sort_key)
        self.stats = stats

    @property
    def clean(self):
        return not self.violations

    def to_plain(self):
        """JSON-plain dict (the ``--format=json`` payload)."""
        return {
            "clean": self.clean,
            "stats": dict(self.stats),
            "violations": [
                {
                    "path": v.path, "line": v.line, "col": v.col,
                    "rule": v.rule, "message": v.message,
                }
                for v in self.violations
            ],
        }


def _serialize_violations(violations):
    return [
        [v.path, v.line, v.col, v.rule, v.message] for v in violations
    ]


def _deserialize_violations(rows):
    return [Violation(*row) for row in rows]


def _load_cache(path, lint_digest):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            cache = json.load(handle)
    except (OSError, ValueError):
        return None
    if not isinstance(cache, dict):
        return None
    if cache.get("schema") != LINT_CACHE_SCHEMA:
        return None
    if cache.get("lint_digest") != lint_digest:
        return None
    files = cache.get("files")
    return files if isinstance(files, dict) else None


def _save_cache(path, lint_digest, entries):
    payload = {
        "schema": LINT_CACHE_SCHEMA,
        "lint_digest": lint_digest,
        "files": entries,
    }
    directory = os.path.dirname(os.path.abspath(path))
    try:
        handle = tempfile.NamedTemporaryFile(
            "w", encoding="utf-8", dir=directory,
            prefix=".simlint_cache.", suffix=".tmp", delete=False,
        )
        with handle:
            json.dump(payload, handle, sort_keys=True)
        os.replace(handle.name, path)
    except OSError:
        pass  # unwritable cache degrades to cold runs, never to failure


class _Run:
    """Shared state for one lint invocation (disk- or memory-backed)."""

    def __init__(self, deep=True):
        self.deep = deep
        self.summaries = []
        self.extra_refs = []
        self.violations = []
        self.stats = {
            "files": 0, "parsed": 0, "cache_hits": 0, "deep": bool(deep),
        }

    def process_source(self, path, source, refs_only=False):
        """Parse + lint + summarize one file (a cache miss or no cache)."""
        self.stats["parsed"] += 1
        tree = ast.parse(source, filename=path)
        waivers = parse_waivers(source)
        file_violations = []
        if not refs_only:
            file_violations = lint_tree(
                tree, source, path=path, waivers=waivers,
            )
        summary = summarize_tree(path, tree, waivers)
        return file_violations, summary

    def admit(self, path, file_violations, summary, refs_only=False):
        if refs_only:
            self.extra_refs.append((path, summary["refs"]))
            return
        self.stats["files"] += 1
        self.violations.extend(file_violations)
        self.summaries.append(summary)

    def finish(self):
        if self.deep:
            index = ProjectIndex(self.summaries)
            self.stats.update(index.stats)
            deep_found = deep_violations(index)
            drift_found = api_drift_violations(
                self.summaries, extra_refs=self.extra_refs,
            )
            self.stats["deep_violations"] = len(deep_found) + len(drift_found)
            self.violations.extend(deep_found)
            self.violations.extend(drift_found)
        report = LintReport(self.violations, self.stats)
        for violation in report.violations:
            # Orphaned rule ids are a bug in the linter itself; fail loud.
            assert violation.rule in RULES, violation.rule
        return report


def lint_sources(files, deep=True, reference_sources=None):
    """Lint an in-memory ``{path: source}`` tree (tests and fixtures).

    ``reference_sources`` maps extra paths to sources that only feed the
    ``L-api-drift`` usage pool, mirroring ``reference_paths`` on
    :func:`lint_project`.
    """
    run = _Run(deep=deep)
    for path in sorted(files):
        file_violations, summary = run.process_source(path, files[path])
        run.admit(path, file_violations, summary)
    for path in sorted(reference_sources or {}):
        _, summary = run.process_source(
            path, reference_sources[path], refs_only=True,
        )
        run.admit(path, None, summary, refs_only=True)
    return run.finish()


def lint_project(paths, deep=True, cache_path=DEFAULT_CACHE_PATH,
                 use_cache=True, reference_paths=()):
    """Lint a source tree from disk, incrementally.

    ``paths`` are linted in full; ``reference_paths`` (e.g. ``examples``)
    are parsed only for the names they reference.  With ``use_cache``,
    unchanged files (by source digest) are replayed from ``cache_path``
    without re-parsing; the report's ``stats`` expose ``parsed`` and
    ``cache_hits`` so callers can assert incrementality.
    """
    run = _Run(deep=deep)
    memo = {}
    lint_digest = closure_digest("repro.lint", memo=memo)
    cached_files = None
    if use_cache and cache_path:
        cached_files = _load_cache(cache_path, lint_digest)
    entries = {}

    def process(path, refs_only):
        digest = file_digest(path, memo=memo)
        entry = (cached_files or {}).get(path)
        if (
            entry is not None
            and entry.get("digest") == digest
            and (not refs_only or "summary" in entry)
            and (refs_only or entry.get("refs_only") is False)
        ):
            run.stats["cache_hits"] += 1
            run.admit(
                path,
                _deserialize_violations(entry.get("violations") or []),
                entry["summary"], refs_only=refs_only,
            )
            entries[path] = entry
            return
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        file_violations, summary = run.process_source(
            path, source, refs_only=refs_only,
        )
        run.admit(path, file_violations, summary, refs_only=refs_only)
        entries[path] = {
            "digest": digest,
            "refs_only": refs_only,
            "violations": _serialize_violations(file_violations or []),
            "summary": summary,
        }

    seen = set()
    for path in iter_python_files(paths):
        if path in seen:
            continue
        seen.add(path)
        process(path, refs_only=False)
    for path in iter_python_files(reference_paths):
        if path in seen:
            continue
        seen.add(path)
        process(path, refs_only=True)

    if use_cache and cache_path:
        _save_cache(cache_path, lint_digest, entries)
    return run.finish()
