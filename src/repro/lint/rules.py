"""simlint rule engine: AST checks for determinism, layering, and API shape.

The reproduction's whole value is that every figure regenerates
bit-for-bit from a seed.  Three things silently break that contract and
nothing in the interpreter stops them: ambient randomness (``random``,
``os.urandom``), ambient wall-clock time (``time.time`` feeding a
scheduling decision), and order-dependent iteration over unordered
containers.  ``simlint`` makes the contract machine-checked, the way
trace-replay simulators treat reproducibility as a first-class
invariant.

Three rule families (see :data:`RULES` for one-liners):

* **D-rules** — determinism.  All randomness flows through
  :mod:`repro.sim.rng`; all wall-clock reads live in :mod:`repro.obs`
  (self-profiling) or carry a waiver; sets are never iterated bare; no
  ``id()``-based sort keys.
* **L-rules** — layering.  The import DAG is explicit: ``sim``/``obs``
  never import a domain layer, ``memory``/``pcie`` never import
  ``virt``/``training``, nothing outside ``legacy`` imports ``legacy``.
  Cross-module private-attribute reads are flagged so public
  ``snapshot()`` surfaces stay the only coupling points.
* **A-rules** — API shape.  A class exporting metrics
  (``register_metrics``) must expose a public ``snapshot``, and
  ``snapshot()`` must return plain dict/list/scalar data (no sets,
  lambdas, or generators — they either lose ordering or break JSON
  export).

Waivers are per-line: ``# simlint: ok <rule> [<rule> ...]`` on the
violating line (or the closing line of a multi-line statement).  A bare
``# simlint: ok`` or a family letter (``D``/``L``/``A``) waives broadly;
prefer naming the exact rule.  Pure stdlib (``ast``), no third-party
dependencies, so the lint gate runs in the dependency-frozen container.
"""

import ast
import os
import re
import tokenize


#: Rule id -> one-line description (``python -m repro.lint --list-rules``).
RULES = {
    "D-random": (
        "ambient randomness (random/secrets/np.random/os.urandom) outside "
        "repro.sim.rng; draw from a seeded RngStream instead"
    ),
    "D-nprandom": (
        "numpy.random imported into repro.* (import numpy.random / from "
        "numpy import random / from numpy.random import ...); the local "
        "alias hides the ambient generator from the np.random attribute "
        "check — draw from a seeded RngStream instead"
    ),
    "D-wallclock": (
        "wall-clock read (time.time/perf_counter/datetime.now/...) outside "
        "repro.obs/repro.perf; simulations must only consume scheduler.now"
    ),
    "D-set-iter": (
        "iteration over a bare set/frozenset; wrap in sorted(...) so the "
        "visit order cannot leak hash randomization into scheduling"
    ),
    "D-id-key": (
        "id()-based sort key; id() changes across processes, so the order "
        "is not reproducible — sort on a stable attribute"
    ),
    "D-taskpure": (
        "@task callable captures ambient state (module-level mutable, "
        "ambient RNG, the process-default registry, global/nonlocal, or a "
        "mutable default); runner tasks must be pure — pool workers and "
        "sequential runs must compute bit-identical results"
    ),
    "D-taskpure-deep": (
        "@task callable transitively reaches a determinism taint through "
        "the static call graph (a helper that reads the wall clock, draws "
        "ambient RNG, or mutates module state, any number of hops away); "
        "the per-file D-taskpure audit cannot see past the first call"
    ),
    "D-sim-pure": (
        "callback registered on the EventScheduler (schedule/schedule_call/"
        "schedule_at) transitively reaches a wall-clock or ambient-RNG "
        "read; everything the event loop runs must be a pure function of "
        "seeded simulation state"
    ),
    "L-layer": (
        "import breaks the layer DAG (sim/obs import no domain layer, "
        "memory/pcie never import virt/training, nothing imports legacy, "
        "only workloads imports the cluster layer, traces is imported "
        "only by workloads/runner/perf and never imports the obs probe)"
    ),
    "L-private": (
        "cross-module private-attribute access x._attr; use the public "
        "snapshot()/accessor surface instead of reaching into internals"
    ),
    "L-api-drift": (
        "public symbol defined in repro.* but never referenced from any "
        "other module, test, benchmark, CLI, or example; demote it to a "
        "_private name, delete it, or wire it to an entry point"
    ),
    "A-snapshot-pair": (
        "class defines register_metrics without a public snapshot(); the "
        "metrics registry needs both"
    ),
    "A-snapshot-plain": (
        "snapshot() must build and return plain dict/list/scalar data "
        "(no sets, lambdas, or generators) so exports stay deterministic"
    ),
    "A-flight-plain": (
        "flight-recorder record(...) payloads must be plain scalar/dict/"
        "list data (no sets, lambdas, or generators) so the flight log "
        "digests and exports deterministically"
    ),
}

#: repro subpackages that model the paper's stack (the "domain" layers).
_DOMAIN_LAYERS = frozenset({
    "core", "memory", "pcie", "rnic", "net", "virt", "training",
    "collectives", "workloads", "analysis", "legacy", "calibration",
    "cluster", "perf", "runner", "traces",
})

#: Infrastructure layers every domain layer may depend on — never the
#: reverse.
_INFRA_LAYERS = frozenset({"sim", "obs"})

#: The passive observability plane: events flow *into* these modules via
#: record()/observe() hooks, never via imports.  They may not import the
#: probe (which drives domain workloads under a waiver) — that would
#: invert the hook direction and drag domain layers into every consumer
#: of the flight recorder.
_OBS_PLANE = ("repro.obs.flight", "repro.obs.slo")

#: Wall-clock attribute chains D-wallclock rejects.
WALLCLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns", "datetime.now", "datetime.utcnow",
    "datetime.today", "date.today", "datetime.datetime.now",
    "datetime.datetime.utcnow", "datetime.date.today",
})

#: Names that, imported from ``time``, are wall-clock reads.
WALLCLOCK_IMPORTS = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "process_time", "process_time_ns",
})

#: Packages sanctioned to read the wall clock: the observability layer
#: (profiling the simulator itself, never feeding simulated state), the
#: perf harness (benchmark timing is its whole job), and the runner's
#: pool module (per-task worker seconds for the report table — task
#: bodies themselves stay clock-free).  Everything else must consume
#: ``scheduler.now``.
WALLCLOCK_ALLOWED = ("repro.obs", "repro.perf", "repro.runner.pool")

#: Modules whose import is ambient randomness.
RANDOM_MODULES = frozenset({"random", "secrets"})

#: Receiver names whose ``.record(...)`` calls A-flight-plain treats as
#: flight-recorder appends.  Matching is by the last dotted segment, so
#: ``self.flight.record(...)`` and ``sim.flight.record(...)`` both count.
_FLIGHT_RECEIVERS = frozenset({"flight", "recorder", "flight_recorder"})

_WAIVER_RE = re.compile(r"#\s*simlint:\s*ok\b([^#\n]*)")


class Violation:
    """One rule hit at a source location."""

    __slots__ = ("path", "line", "col", "rule", "message")

    def __init__(self, path, line, col, rule, message):
        self.path = path
        self.line = line
        self.col = col
        self.rule = rule
        self.message = message

    def sort_key(self):
        return (self.path, self.line, self.col, self.rule)

    def __repr__(self):
        return "%s:%d:%d: %s %s" % (
            self.path, self.line, self.col, self.rule, self.message,
        )


def module_name_for(path):
    """Best-effort dotted module name for ``path``.

    Returns e.g. ``repro.sim.engine`` for any path with a ``repro``
    directory component; ``None`` for files outside the package (tests,
    benchmarks), which opt out of the layering DAG but not of the other
    rules.
    """
    parts = list(os.path.normpath(path).split(os.sep))
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if "repro" not in parts:
        return None
    index = len(parts) - 1 - parts[::-1].index("repro")  # last occurrence
    module_parts = parts[index:]
    if module_parts[-1] == "__init__":
        module_parts = module_parts[:-1]
    return ".".join(module_parts)


def parse_waivers(source):
    """``{line number: set of waived rule ids}`` from waiver comments.

    Uses the token stream so a ``# simlint: ok`` inside a string literal
    does not count as a waiver.
    """
    waivers = {}
    try:
        tokens = tokenize.generate_tokens(iter(source.splitlines(True)).__next__)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _WAIVER_RE.search(token.string)
            if match is None:
                continue
            names = match.group(1).split()
            line = token.start[0]
            waivers.setdefault(line, set()).update(names if names else {"*"})
    except tokenize.TokenError:
        pass  # syntax errors surface from ast.parse with a real location
    return waivers


def waiver_lines_for(node):
    """Source lines where a waiver comment suppresses rules on ``node``.

    The node's own first and last line, plus — for decorated defs — each
    decorator line, so ``@task  # simlint: ok D-taskpure`` reads
    naturally next to the contract it relaxes.
    """
    lines = {getattr(node, "lineno", 0)}
    end = getattr(node, "end_lineno", None)
    if end is not None:
        lines.add(end)
    for decorator in getattr(node, "decorator_list", []):
        lines.add(getattr(decorator, "lineno", 0))
    return lines


def rule_waived_at(waivers, lines, rule):
    """True when any of ``lines`` carries a waiver covering ``rule``.

    A waiver covers a rule when it names it exactly, names its family
    letter (``D``/``L``/``A``), or is a bare ``# simlint: ok`` (``*``).
    """
    family = rule.split("-", 1)[0]
    for line in lines:
        waived = waivers.get(line)
        if waived and ({"*", rule, family} & waived):
            return True
    return False


def _waived(waivers, node, rule):
    return rule_waived_at(waivers, waiver_lines_for(node), rule)


def dotted_name(node):
    """``a.b.c`` for a pure Name/Attribute chain, else ``None``."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _collect_private_defs(tree):
    """Every private name the module itself defines or assigns.

    Access to one of these via ``obj._attr`` is intra-module coupling
    (a class touching its sibling's plan cache, a class-level id
    counter) and allowed; access to any *other* private is reaching into
    a different module's internals and flagged by L-private.
    """
    defined = set()

    def add_target(target):
        if isinstance(target, ast.Name):
            if target.id.startswith("_"):
                defined.add(target.id)
        elif isinstance(target, ast.Attribute):
            if target.attr.startswith("_"):
                defined.add(target.attr)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                add_target(element)
        elif isinstance(target, ast.Starred):
            add_target(target.value)

    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if node.name.startswith("_"):
                defined.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                add_target(target)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            add_target(node.target)
        elif isinstance(node, (ast.arguments,)):
            for arg in getattr(node, "args", []):
                if arg.arg.startswith("_"):
                    defined.add(arg.arg)
    return defined


def _is_mutable_literal(node):
    """Literal/constructor expressions that produce a mutable object."""
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.SetComp, ast.DictComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        return name in ("list", "dict", "set", "bytearray", "deque",
                        "defaultdict", "OrderedDict", "Counter")
    return False


def _collect_mutable_globals(tree):
    """Module-level names bound to mutable literals/constructors.

    A ``@task`` callable reading one of these captures shared process
    state: under the pool each worker sees its own fork-time copy, so
    sequential and pooled runs can silently diverge (D-taskpure).
    """
    mutable = set()
    for node in tree.body:
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
            value = node.value
        else:
            continue
        if not _is_mutable_literal(value):
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                mutable.add(target.id)
    return mutable


def _layer_of(module):
    """The repro subpackage a dotted module belongs to, or ``None``."""
    if module is None:
        return None
    parts = module.split(".")
    if parts[0] != "repro" or len(parts) < 2:
        return None
    return parts[1]


def layer_violation(importer_module, imported_module):
    """Message when ``importer_module`` importing ``imported_module``
    breaks the DAG, else ``None``.  Both are dotted names.

    Modules outside the ``repro`` package (tests, benchmarks, examples)
    sit outside the DAG: they exercise every layer, including legacy.
    """
    if importer_module is None:
        return None
    src = _layer_of(importer_module)
    dst = _layer_of(imported_module)
    if dst is None:
        return None
    if dst == "legacy" and src != "legacy":
        return "nothing imports repro.legacy (import of %s)" % imported_module
    if src in _INFRA_LAYERS and dst in _DOMAIN_LAYERS:
        return "repro.%s must not import domain layer repro.%s" % (src, dst)
    if importer_module in _OBS_PLANE or any(
        importer_module.startswith(plane + ".") for plane in _OBS_PLANE
    ):
        if imported_module == "repro.obs.probe" or imported_module.startswith(
            "repro.obs.probe."
        ):
            return (
                "%s must not import repro.obs.probe; flight/SLO events "
                "arrive via record()/observe() hooks, not imports"
                % importer_module
            )
    if src in ("memory", "pcie") and dst in ("virt", "training"):
        return "repro.%s must not import repro.%s" % (src, dst)
    # cluster is the top domain layer: it may import everything (except
    # legacy, covered above); below it only workloads may drive a fleet.
    if dst == "cluster" and src is not None and src not in ("cluster", "workloads"):
        return "repro.%s must not import the cluster layer (only workloads may)" % src
    # traces sits beside workloads: it builds on sim/net/training/
    # collectives and the passive obs surface, and is consumed only by
    # the drivers (workloads tooling, runner tasks, perf kernels).  The
    # fleet's trace recorder arrives via a duck-typed ctor hook, never an
    # import — same inversion as the flight recorder.
    if dst == "traces" and src is not None and src not in (
        "traces", "workloads", "runner", "perf", "__main__"
    ):
        return (
            "repro.%s must not import the traces layer (recorders attach "
            "via duck-typed hooks; only workloads/runner/perf replay)" % src
        )
    if src == "traces" and (
        imported_module == "repro.obs.probe"
        or imported_module.startswith("repro.obs.probe.")
    ):
        return (
            "%s must not import repro.obs.probe; traces feed the obs "
            "plane via record() hooks, not imports" % importer_module
        )
    return None


class _Checker(ast.NodeVisitor):
    """Single-pass visitor applying every rule to one module."""

    def __init__(self, path, module, waivers, private_defs,
                 mutable_globals=frozenset()):
        self.path = path
        self.module = module
        self.waivers = waivers
        self.private_defs = private_defs
        self.mutable_globals = mutable_globals
        self.violations = []
        self._stmt_stack = []
        self._in_rng_module = module == "repro.sim.rng"
        self._wallclock_ok = module is not None and any(
            module == pkg or module.startswith(pkg + ".")
            for pkg in WALLCLOCK_ALLOWED
        )

    # -- plumbing --------------------------------------------------------

    def visit(self, node):
        # Track the enclosing statement so a waiver on its first or
        # closing line covers expression-level findings inside it (the
        # "closing line of a multi-line statement" contract).
        if isinstance(node, ast.stmt):
            self._stmt_stack.append(node)
            try:
                super().visit(node)
            finally:
                self._stmt_stack.pop()
        else:
            super().visit(node)

    def _report(self, node, rule, message, owner=None):
        if _waived(self.waivers, node, rule):
            return
        if owner is not None and _waived(self.waivers, owner, rule):
            return
        if self._stmt_stack and rule_waived_at(
            self.waivers, waiver_lines_for(self._stmt_stack[-1]), rule,
        ):
            return
        self.violations.append(Violation(
            self.path, getattr(node, "lineno", 0),
            getattr(node, "col_offset", 0), rule, message,
        ))

    def _resolve_from(self, node):
        """Absolute dotted module for an ImportFrom (handles relative)."""
        if node.level == 0:
            return node.module
        if self.module is None:
            return node.module
        base = self.module.split(".")
        # level 1 = current package: for a module file, drop the leaf.
        base = base[:len(base) - node.level] if len(base) >= node.level else []
        if node.module:
            base = base + node.module.split(".")
        return ".".join(base) if base else node.module

    # -- imports ---------------------------------------------------------

    def _check_random_import(self, node, module):
        if self._in_rng_module or module is None:
            return
        root = module.split(".", 1)[0]
        if root in RANDOM_MODULES:
            self._report(
                node, "D-random",
                "import of %r outside repro.sim.rng; use a seeded RngStream"
                % module,
            )
        # Importing the numpy.random package (or anything inside it)
        # rebinds the ambient generator under a local name, which the
        # np.random.* attribute check (D-random) can no longer see.
        if module == "numpy.random" or module.startswith("numpy.random."):
            self._report(
                node, "D-nprandom",
                "import of %r binds the ambient numpy generator under a "
                "local alias; draw from a seeded RngStream" % module,
            )

    def visit_Import(self, node):
        for alias in node.names:
            self._check_random_import(node, alias.name)
            message = layer_violation(self.module, alias.name)
            if message:
                self._report(node, "L-layer", message)
        self.generic_visit(node)

    def visit_ImportFrom(self, node):
        module = self._resolve_from(node)
        self._check_random_import(node, module)
        if module == "numpy" and not self._in_rng_module:
            for alias in node.names:
                if alias.name == "random":
                    self._report(
                        node, "D-nprandom",
                        "'from numpy import random' aliases the ambient "
                        "generator; draw from a seeded RngStream",
                    )
        if module == "time" and not self._wallclock_ok:
            clocks = sorted(
                alias.name for alias in node.names
                if alias.name in WALLCLOCK_IMPORTS
            )
            if clocks:
                self._report(
                    node, "D-wallclock",
                    "wall-clock import from time (%s); simulations read "
                    "scheduler.now" % ", ".join(clocks),
                )
        if module is not None:
            message = layer_violation(self.module, module)
            if message:
                self._report(node, "L-layer", message)
            for alias in node.names:
                if alias.name.startswith("_") and not alias.name.startswith("__"):
                    if module.split(".", 1)[0] == "repro":
                        self._report(
                            node, "L-private",
                            "importing private name %s from %s"
                            % (alias.name, module),
                        )
        self.generic_visit(node)

    # -- expression-level determinism rules ------------------------------

    def visit_Attribute(self, node):
        dotted = dotted_name(node)
        if dotted is not None:
            root = dotted.split(".", 1)[0]
            if not self._in_rng_module and (
                root in RANDOM_MODULES
                or dotted.startswith(("np.random.", "numpy.random."))
                or dotted in ("np.random", "numpy.random", "os.urandom")
            ):
                self._report(
                    node, "D-random",
                    "%s is ambient randomness; draw from a seeded RngStream"
                    % dotted,
                )
            if not self._wallclock_ok and dotted in WALLCLOCK_CALLS:
                self._report(
                    node, "D-wallclock",
                    "%s reads the wall clock; simulations read scheduler.now"
                    % dotted,
                )
        if (
            node.attr.startswith("_")
            and not node.attr.startswith("__")
            and not (isinstance(node.value, ast.Name)
                     and node.value.id in ("self", "cls"))
            and node.attr not in self.private_defs
        ):
            self._report(
                node, "L-private",
                "access to %s reaches into another module's internals"
                % ("%s.%s" % (dotted.rsplit(".", 1)[0], node.attr)
                   if dotted else node.attr),
            )
        self.generic_visit(node)

    @staticmethod
    def _is_bare_set(node):
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")
        )

    def _check_iter(self, node, iter_node):
        if self._is_bare_set(iter_node):
            self._report(
                node, "D-set-iter",
                "iterating a bare set; wrap in sorted(...) for a "
                "deterministic visit order",
            )

    def visit_For(self, node):
        self._check_iter(node, node.iter)
        self.generic_visit(node)

    def visit_AsyncFor(self, node):
        self._check_iter(node, node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node):
        self._check_iter(node, node.iter)
        self.generic_visit(node)

    def visit_Call(self, node):
        if isinstance(node.func, ast.Name):
            if node.func.id in ("list", "tuple", "enumerate") and node.args:
                if self._is_bare_set(node.args[0]):
                    self._report(
                        node, "D-set-iter",
                        "%s(set(...)) materializes an unordered set; use "
                        "sorted(...)" % node.func.id,
                    )
        for keyword in node.keywords:
            if keyword.arg != "key":
                continue
            value = keyword.value
            uses_id = (
                isinstance(value, ast.Name) and value.id == "id"
            ) or (
                isinstance(value, ast.Lambda) and any(
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Name)
                    and sub.func.id == "id"
                    for sub in ast.walk(value)
                )
            )
            if uses_id:
                self._report(
                    node, "D-id-key",
                    "id()-based sort key is process-dependent; key on a "
                    "stable attribute",
                )
        self._check_flight_payload(node)
        self.generic_visit(node)

    def _check_flight_payload(self, node):
        """A-flight-plain: flight record(...) arguments stay plain data.

        Flight events are digested (canonical JSON) and exported to JSONL
        and Perfetto; a set loses ordering and a lambda/generator breaks
        serialization, so neither may ride in a payload.  Mirrors the
        A-snapshot-plain walk, applied at the call site.
        """
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "record"):
            return
        dotted = dotted_name(func.value)
        if dotted is None:
            return
        leaf = dotted.rsplit(".", 1)[-1]
        if leaf not in _FLIGHT_RECEIVERS and not leaf.endswith("flight"):
            return
        values = list(node.args) + [kw.value for kw in node.keywords]
        for value in values:
            for sub in ast.walk(value):
                if isinstance(sub, (ast.Set, ast.SetComp, ast.Lambda,
                                    ast.GeneratorExp)):
                    self._report(
                        node, "A-flight-plain",
                        "flight record(...) payload must be plain "
                        "dict/list/scalar data (found a %s)"
                        % type(sub).__name__.lower(),
                    )
                    return

    # -- D-taskpure ------------------------------------------------------

    @staticmethod
    def _is_task_decorator(decorator):
        if isinstance(decorator, ast.Call):
            decorator = decorator.func
        if isinstance(decorator, ast.Name):
            return decorator.id == "task"
        if isinstance(decorator, ast.Attribute):
            return decorator.attr == "task"
        return False

    def visit_FunctionDef(self, node):
        if any(self._is_task_decorator(d) for d in node.decorator_list):
            self._check_task_purity(node)
        self.generic_visit(node)

    visit_AsyncFunctionDef = visit_FunctionDef

    def _check_task_purity(self, fn):
        """Audit a ``@task`` callable for ambient-state capture.

        Runner tasks execute in pool workers; anything they consume
        besides kwargs/seed — a module-level mutable, ambient RNG, the
        process-default metrics registry — makes pooled and sequential
        runs diverge without any error.
        """
        args = fn.args
        defaults = list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]
        for default in defaults:
            if _is_mutable_literal(default):
                self._report(
                    default, "D-taskpure",
                    "task %s has a mutable default argument (shared across "
                    "calls); default to None and build inside" % fn.name,
                    owner=fn,
                )
        bound = {
            arg.arg for arg in (
                list(getattr(args, "posonlyargs", []))
                + list(args.args) + list(args.kwonlyargs)
            )
        }
        for vararg in (args.vararg, args.kwarg):
            if vararg is not None:
                bound.add(vararg.arg)
        for sub in ast.walk(fn):
            if isinstance(sub, ast.Name) and isinstance(
                sub.ctx, (ast.Store, ast.Del)
            ):
                bound.add(sub.id)
            elif isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)) and sub is not fn:
                bound.add(sub.name)
            elif isinstance(sub, (ast.Import, ast.ImportFrom)):
                for alias in sub.names:
                    bound.add((alias.asname or alias.name).split(".", 1)[0])
        for sub in ast.walk(fn):
            if isinstance(sub, (ast.Global, ast.Nonlocal)):
                self._report(
                    sub, "D-taskpure",
                    "task %s uses %s; tasks must be pure functions of "
                    "their kwargs" % (fn.name, type(sub).__name__.lower()),
                    owner=fn,
                )
            elif isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
                if sub.id in self.mutable_globals and sub.id not in bound:
                    self._report(
                        sub, "D-taskpure",
                        "task %s captures module-level mutable %r; pass it "
                        "through kwargs instead" % (fn.name, sub.id),
                        owner=fn,
                    )
            elif isinstance(sub, ast.Call):
                func = sub.func
                call_name = func.id if isinstance(func, ast.Name) else (
                    func.attr if isinstance(func, ast.Attribute) else None
                )
                if call_name == "get_registry":
                    self._report(
                        sub, "D-taskpure",
                        "task %s reads the process-default metrics registry; "
                        "build a fresh MetricsRegistry inside the task"
                        % fn.name, owner=fn,
                    )
                dotted = dotted_name(func) if isinstance(
                    func, ast.Attribute
                ) else None
                if dotted is not None:
                    root = dotted.split(".", 1)[0]
                    if root in RANDOM_MODULES or dotted.startswith(
                        ("np.random.", "numpy.random.")
                    ):
                        self._report(
                            sub, "D-taskpure",
                            "task %s draws ambient randomness (%s); thread "
                            "a seed through kwargs" % (fn.name, dotted),
                            owner=fn,
                        )

    # -- A-rules ---------------------------------------------------------

    def visit_ClassDef(self, node):
        methods = {
            stmt.name for stmt in node.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        if "register_metrics" in methods and "snapshot" not in methods:
            self._report(
                node, "A-snapshot-pair",
                "class %s defines register_metrics but no snapshot()"
                % node.name,
            )
        for stmt in node.body:
            if isinstance(stmt, ast.FunctionDef) and stmt.name == "snapshot":
                self._check_snapshot_body(stmt)
        self.generic_visit(node)

    def _check_snapshot_body(self, fn):
        dictish = set()
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign) and self._is_dictish(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        dictish.add(target.id)
        returns = [
            node for node in ast.walk(fn) if isinstance(node, ast.Return)
        ]
        if not returns:
            self._report(
                fn, "A-snapshot-plain",
                "snapshot() must return a plain dict of counters",
            )
            return
        for ret in returns:
            value = ret.value
            if value is None or not self._returns_plain(value, dictish):
                self._report(
                    ret, "A-snapshot-plain",
                    "snapshot() must return a plain dict built in the "
                    "method body",
                )
                continue
            for sub in ast.walk(value):
                if isinstance(sub, (ast.Set, ast.SetComp, ast.Lambda,
                                    ast.GeneratorExp)):
                    self._report(
                        ret, "A-snapshot-plain",
                        "snapshot() values must be plain dict/list/scalar "
                        "data (found a %s)" % type(sub).__name__.lower(),
                    )
                    break

    @staticmethod
    def _is_dictish(node):
        if isinstance(node, (ast.Dict, ast.DictComp)):
            return True
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id == "dict":
                return True
            # x.snapshot() / super().snapshot(): plain by induction, since
            # this rule holds every snapshot() to plain data.
            if (isinstance(node.func, ast.Attribute)
                    and node.func.attr == "snapshot"):
                return True
        return False

    def _returns_plain(self, node, dictish):
        if self._is_dictish(node):
            return True
        if isinstance(node, ast.Name):
            return node.id in dictish
        if isinstance(node, ast.IfExp):
            return (self._returns_plain(node.body, dictish)
                    and self._returns_plain(node.orelse, dictish))
        return False


def lint_tree(tree, source, path="<string>", module=None, waivers=None):
    """Apply every per-file rule to an already-parsed module.

    Split out of :func:`lint_source` so the whole-program engine
    (:mod:`repro.lint.engine`) can parse each file exactly once and feed
    the same tree to both the per-file rules and the call-graph summary.
    """
    if module is None:
        module = module_name_for(path)
    if waivers is None:
        waivers = parse_waivers(source)
    checker = _Checker(
        path, module, waivers, _collect_private_defs(tree),
        mutable_globals=_collect_mutable_globals(tree),
    )
    checker.visit(tree)
    return sorted(checker.violations, key=Violation.sort_key)


def lint_source(source, path="<string>", module=None):
    """Lint one source string; returns a list of :class:`Violation`."""
    tree = ast.parse(source, filename=path)
    return lint_tree(tree, source, path=path, module=module)


def lint_file(path):
    with open(path, "r", encoding="utf-8") as handle:
        return lint_source(handle.read(), path=path)


def iter_python_files(paths):
    """Yield every ``.py`` file under ``paths`` (files or directories)."""
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py"):
                yield path
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                name for name in dirnames
                if name != "__pycache__" and not name.startswith(".")
            )
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    yield os.path.join(dirpath, filename)


def lint_paths(paths):
    """Lint every Python file under ``paths``; returns sorted violations."""
    violations = []
    for path in iter_python_files(paths):
        violations.extend(lint_file(path))
    return sorted(violations, key=Violation.sort_key)
